//! Personalized forecasting across a cohort — the paper's headline use
//! case: one model per individual, evaluated on the last 30% of each
//! series, aggregated as mean(std) across the cohort.
//!
//! ```bash
//! cargo run --release -p ema-core --example personalized_forecasting
//! ```

use ema_core::pipeline::{run_cohort, GraphSpec, RunSpec};
use ema_core::results::CellStat;
use ema_core::train::TrainConfig;
use ema_data::{EmaGenerator, GeneratorConfig};
use ema_graph::sparsify::DensityThreshold;
use ema_models::{ModelConfig, ModelKind};
use ema_similarity::GraphMetric;

fn main() {
    let dataset = EmaGenerator::new(GeneratorConfig::quick(6, 10, 2024)).generate();
    println!(
        "cohort: {} individuals, {} variables\n",
        dataset.num_individuals(),
        dataset.num_variables()
    );

    let model_config = ModelConfig {
        hidden: 16,
        ..ModelConfig::default()
    };
    let train_config = TrainConfig::quick(50, 7);

    println!("{:<12}{:>16}{:>12}", "model", "MSE mean(std)", "best ind.");
    println!("{}", "-".repeat(40));
    for (kind, graph) in [
        (ModelKind::Lstm, GraphSpec::None),
        (
            ModelKind::A3tgcn,
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt: DensityThreshold::Gdt20,
            },
        ),
        (
            ModelKind::Astgcn,
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt: DensityThreshold::Gdt20,
            },
        ),
        (
            ModelKind::Mtgnn,
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt: DensityThreshold::Gdt20,
            },
        ),
    ] {
        let spec = RunSpec {
            model_config,
            train_config: train_config.clone(),
            ..RunSpec::new(kind, graph, 5)
        };
        let outcomes = run_cohort(&dataset, &spec);
        let mses: Vec<f64> = outcomes.iter().map(|o| o.mse).collect();
        let stat = CellStat::from_samples(&mses);
        let best = outcomes
            .iter()
            .min_by(|a, b| a.mse.total_cmp(&b.mse))
            .expect("non-empty cohort");
        println!(
            "{:<12}{:>16}{:>12}",
            kind.label(),
            stat.to_string(),
            format!("#{} {:.3}", best.id, best.mse)
        );
    }

    println!("\nper-variable errors expose which symptoms are hardest to forecast;");
    println!("see ema_core::evaluate::evaluate_per_variable_mse.");
}
