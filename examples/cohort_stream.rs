//! Streamed sharded cohort training: the study is generated shard by
//! shard on the executor workers (`EmaGenerator::generate_range`), each
//! shard trains as ONE cohort tape graph per epoch
//! (`CohortPath::Batched`), and per-shard memory is dropped when its
//! job ends — so peak heap is bounded by (workers × shard size), not
//! the study size.
//!
//! ```bash
//! EMA_OBS=full cargo run --release -p ema-core --example cohort_stream
//! ```
//!
//! With `EMA_OBS=full` the run manifest carries the shard telemetry
//! (`exec.shard_batches` / `exec.shard_individuals`, per-worker
//! utilization); render it with
//! `cargo run -p ema-bench --bin obs_report -- cohort_stream`.

use ema_core::{run_cohort_sharded, Executor, GraphSpec, Json, RunSpec, TrainConfig};
use ema_data::{EmaGenerator, GeneratorConfig};
use ema_models::{ModelConfig, ModelKind};
use ema_obs::recorder;

const RUN: &str = "cohort_stream";
const INDIVIDUALS: usize = 256;
const SHARD: usize = 16;

fn main() {
    let obs = recorder().begin_run(
        RUN,
        Json::obj(vec![
            ("example", Json::from(RUN)),
            ("individuals", Json::from(INDIVIDUALS as u64)),
            ("shard_size", Json::from(SHARD as u64)),
        ]),
    );

    let generator = EmaGenerator::new(GeneratorConfig::quick(INDIVIDUALS, 4, 11));
    let mut spec = RunSpec::new(ModelKind::Lstm, GraphSpec::None, 2);
    spec.model_config = ModelConfig::tiny(0);
    spec.train_config = TrainConfig::quick(8, 7);
    let executor = Executor::from_env();

    let start = std::time::Instant::now();
    let outcomes = run_cohort_sharded(&generator, &spec, SHARD, &executor);
    let secs = start.elapsed().as_secs_f64();

    assert_eq!(outcomes.len(), INDIVIDUALS);
    let mean_mse = outcomes.iter().map(|o| o.mse).sum::<f64>() / outcomes.len() as f64;
    println!(
        "streamed {INDIVIDUALS} individuals in shards of {SHARD} on {} worker(s):",
        executor.threads()
    );
    println!(
        "  {:.2} s wall, {:.0} individuals/s, mean test MSE {mean_mse:.4}",
        secs,
        outcomes.len() as f64 / secs
    );

    if obs {
        let summary = recorder().finish_run().expect("summary written");
        println!("obs manifest at {}", summary.display());
    }
}
