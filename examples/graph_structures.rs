//! Exploring individual graph structures: build all similarity graphs
//! for one individual, inspect their properties and check how much
//! ground-truth structure each one recovers.
//!
//! ```bash
//! cargo run --release -p ema-core --example graph_structures
//! ```

use ema_data::{split_train_test, EmaGenerator, GeneratorConfig};
use ema_graph::sparsify::{sparsify, DensityThreshold};
use ema_graph::stats::{degree_summary, edge_weight_correlation};
use ema_similarity::{build_graph, GraphMetric};

fn main() {
    // Long series with strong couplings so structure is recoverable.
    let cfg = GeneratorConfig {
        num_individuals: 2,
        num_variables: 12,
        mean_time_points: 300,
        coupling_strength: 0.6,
        circadian_amplitude: 0.1,
        seed: 7,
        ..GeneratorConfig::default()
    };
    let dataset = EmaGenerator::new(cfg).generate();

    for individual in &dataset.individuals {
        let gt = individual
            .ground_truth
            .as_ref()
            .expect("synthetic data has ground truth")
            .symmetrized();
        let (train, _) = split_train_test(&individual.data, 0.7);

        println!(
            "individual {} ({} time points) — ground truth: {} edges",
            individual.id,
            individual.num_time_points(),
            gt.num_edges()
        );
        println!(
            "{:<8}{:>8}{:>10}{:>12}{:>14}",
            "metric", "edges", "density", "mean degree", "gt-correlation"
        );
        for metric in [
            GraphMetric::Euclidean,
            GraphMetric::Knn(3),
            GraphMetric::Dtw,
            GraphMetric::Correlation,
            GraphMetric::Cosine,
            GraphMetric::Random(99),
        ] {
            let g = build_graph(&train, metric);
            let deg = degree_summary(&g);
            println!(
                "{:<8}{:>8}{:>10.2}{:>12.2}{:>14.3}",
                metric.label(),
                g.num_edges(),
                g.density(),
                deg.mean,
                edge_weight_correlation(&g, &gt)
            );
        }

        // Sparsity: the paper's GDT levels.
        let corr = build_graph(&train, GraphMetric::Correlation);
        print!("CORR at GDT levels:");
        for gdt in DensityThreshold::all() {
            let s = sparsify(&corr, gdt);
            print!("  {} -> {} edges", gdt.label(), s.num_edges());
        }
        println!("\n");
    }
}
