//! Observability demo: train one individual with full tracing enabled,
//! then read the JSONL run log back and plot the loss curve it recorded.
//!
//! ```bash
//! EMA_OBS=full cargo run -p ema-core --example obs_loss_curve
//! ```
//!
//! This doubles as the CI smoke test for the obs layer (`scripts/ci.sh`
//! runs it): every JSONL line must parse with `ema_core::Json`, the
//! per-epoch `train_epoch` events must carry `loss` and `grad_norm`,
//! and the run summary must exist.

use ema_core::pipeline::{run_individual, GraphSpec, RunSpec};
use ema_core::train::TrainConfig;
use ema_core::Json;
use ema_data::{EmaGenerator, GeneratorConfig};
use ema_graph::sparsify::DensityThreshold;
use ema_models::{ModelConfig, ModelKind};
use ema_obs::{default_obs_dir, recorder, ObsMode};
use ema_similarity::GraphMetric;

const RUN: &str = "obs_loss_curve";
const EPOCHS: usize = 40;

fn main() {
    // Only `full` mode streams per-event JSONL; escalate if the env
    // knob asked for less, so the example always has a log to read.
    if ema_obs::mode() != ObsMode::Full {
        println!("(escalating EMA_OBS to `full` so the run log exists)\n");
        ema_obs::set_mode(ObsMode::Full);
    }

    let config = Json::obj(vec![
        ("example", Json::from(RUN)),
        ("model", Json::from("MTGNN")),
        ("epochs", Json::from(EPOCHS)),
    ]);
    assert!(recorder().begin_run(RUN, config), "full mode must start a run");

    // One small synthetic individual, trained with early stopping on.
    // The whole workload lives under one root `main` span so the run's
    // span profile covers (nearly) all of its wall time — `obs_report`
    // prints the coverage and the CI smoke checks the profile exists.
    let (individual_id, outcome) = {
        let _main = ema_obs::span!("main", example = RUN);
        recorder().phase("train");
        let dataset = EmaGenerator::new(GeneratorConfig::quick(1, 8, 42)).generate();
        let individual = &dataset.individuals[0];
        let spec = RunSpec {
            model_config: ModelConfig {
                hidden: 12,
                ..ModelConfig::default()
            },
            train_config: TrainConfig::quick(EPOCHS, 7),
            ..RunSpec::new(
                ModelKind::Mtgnn,
                GraphSpec::Static {
                    metric: GraphMetric::Correlation,
                    gdt: DensityThreshold::Gdt20,
                },
                5,
            )
        };
        let outcome = run_individual(individual.id, &individual.data, &spec);
        recorder().phase("report");
        recorder().annotate("test_mse", Json::from(outcome.mse));
        (individual.id, outcome)
    };

    let summary = recorder().finish_run().expect("run summary written");

    // Read the log back; every line must be valid JSON.
    let log = default_obs_dir().join(format!("{RUN}.jsonl"));
    let text = std::fs::read_to_string(&log)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", log.display()));
    let mut epochs: Vec<(usize, f64, f64)> = Vec::new();
    let mut early_stop_epoch = None;
    for (i, line) in text.lines().enumerate() {
        let event = Json::parse(line).unwrap_or_else(|e| {
            panic!("line {} of {} is not valid JSON: {e:?}", i + 1, log.display())
        });
        let name = event.get("name").and_then(Json::as_str).unwrap_or_default();
        let fields = event.get("fields");
        if name == "train_epoch" {
            let fields = fields.expect("train_epoch carries fields");
            epochs.push((
                fields.require("epoch").unwrap().to_usize().unwrap(),
                fields.require("loss").unwrap().to_f64().unwrap(),
                fields.require("grad_norm").unwrap().to_f64().unwrap(),
            ));
        } else if name == "early_stop" {
            early_stop_epoch =
                fields.and_then(|f| f.get("epoch")).and_then(Json::as_usize);
        }
    }
    assert!(!epochs.is_empty(), "full-mode log must contain train_epoch events");
    assert_eq!(epochs.len(), outcome.epochs_run, "one event per epoch run");

    // ASCII loss curve straight from the telemetry.
    println!("individual {individual_id} loss curve ({} epochs):\n", epochs.len());
    let max_loss = epochs.iter().map(|e| e.1).fold(f64::MIN, f64::max);
    for &(epoch, loss, grad_norm) in &epochs {
        let width = ((loss / max_loss) * 50.0).round().max(1.0) as usize;
        println!("  {epoch:>3} {:<50} {loss:>8.4}  |grad| {grad_norm:>8.3}", "#".repeat(width));
    }
    match early_stop_epoch {
        Some(e) => println!("\nearly stop fired at epoch {e}"),
        None => println!("\nno early stop: ran the full schedule"),
    }
    println!("test MSE: {:.3}", outcome.mse);
    println!("\n{} events in {}", text.lines().count(), log.display());
    println!("run summary at {}", summary.display());
    println!("profile it:     cargo run -p ema-bench --bin obs_report -- {RUN}");
}
