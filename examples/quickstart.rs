//! Quickstart: generate a small synthetic EMA study, train an MTGNN on
//! one individual and compare it with the LSTM baseline.
//!
//! ```bash
//! cargo run --release -p ema-core --example quickstart
//! ```

use ema_core::pipeline::{run_individual, GraphSpec, RunSpec};
use ema_core::train::TrainConfig;
use ema_data::{EmaGenerator, GeneratorConfig};
use ema_graph::sparsify::DensityThreshold;
use ema_models::{ModelConfig, ModelKind};
use ema_similarity::GraphMetric;

fn main() {
    // 1. A small synthetic study: 3 individuals, 12 EMA variables.
    let dataset = EmaGenerator::new(GeneratorConfig::quick(3, 12, 42)).generate();
    println!(
        "study: {} individuals × {} variables, mean T = {:.0}\n",
        dataset.num_individuals(),
        dataset.num_variables(),
        dataset.mean_time_points()
    );

    // 2. Personalized forecasting for individual 0 with both models.
    let individual = &dataset.individuals[0];
    let train_config = TrainConfig::quick(60, 7);
    let model_config = ModelConfig {
        hidden: 16,
        ..ModelConfig::default()
    };

    let lstm_spec = RunSpec {
        model_config,
        train_config: train_config.clone(),
        ..RunSpec::new(ModelKind::Lstm, GraphSpec::None, 5)
    };
    let lstm = run_individual(individual.id, &individual.data, &lstm_spec);

    let mtgnn_spec = RunSpec {
        model_config,
        train_config,
        ..RunSpec::new(
            ModelKind::Mtgnn,
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt: DensityThreshold::Gdt20,
            },
            5,
        )
    };
    let mtgnn = run_individual(individual.id, &individual.data, &mtgnn_spec);

    // 3. Compare test MSEs (z-normalised data: 1.0 ≈ predicting the mean).
    println!("individual {} test MSE:", individual.id);
    println!("  LSTM  : {:.3}  ({} epochs)", lstm.mse, lstm.epochs_run);
    println!("  MTGNN : {:.3}  ({} epochs)", mtgnn.mse, mtgnn.epochs_run);

    let learned = mtgnn.learned_graph.expect("MTGNN exposes its graph");
    println!(
        "\nMTGNN learned a graph with {} edges (density {:.2})",
        learned.num_edges(),
        learned.density()
    );
}
