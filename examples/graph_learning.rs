//! Graph learning in action (the paper's Experiment C in miniature):
//! train MTGNN from a static prior, watch the learned graph drift from
//! it, then feed the learned graph to A3TGCN and ASTGCN.
//!
//! ```bash
//! cargo run --release -p ema-core --example graph_learning
//! ```

use ema_core::pipeline::{run_individual, GraphSpec, RunSpec};
use ema_core::train::TrainConfig;
use ema_data::{EmaGenerator, GeneratorConfig};
use ema_graph::sparsify::DensityThreshold;
use ema_graph::stats::edge_weight_correlation;
use ema_models::{ModelConfig, ModelKind};
use ema_similarity::GraphMetric;

fn main() {
    let dataset = EmaGenerator::new(GeneratorConfig::quick(1, 10, 77)).generate();
    let individual = &dataset.individuals[0];
    let model_config = ModelConfig {
        hidden: 16,
        ..ModelConfig::default()
    };
    let train_config = TrainConfig::quick(60, 5);
    let gdt = DensityThreshold::Gdt20;
    let metric = GraphMetric::Correlation;

    // 1. MTGNN primed with the CORR graph.
    let mtgnn_spec = RunSpec {
        model_config,
        train_config: train_config.clone(),
        ..RunSpec::new(ModelKind::Mtgnn, GraphSpec::Static { metric, gdt }, 5)
    };
    let mtgnn = run_individual(individual.id, &individual.data, &mtgnn_spec);
    let static_graph = mtgnn.graph_used.clone().expect("static prior present");
    let learned = mtgnn.learned_graph.clone().expect("learned graph present");

    println!("MTGNN test MSE: {:.3}", mtgnn.mse);
    println!(
        "learned graph: {} edges; correlation with the static prior: {:.1}%",
        learned.num_edges(),
        100.0 * edge_weight_correlation(&learned, &static_graph)
    );

    // 2. Feed static vs learned graphs to the other GNNs.
    println!(
        "\n{:<10}{:>14}{:>14}{:>10}",
        "model", "static MSE", "learned MSE", "Δ%"
    );
    for model in [ModelKind::A3tgcn, ModelKind::Astgcn] {
        let static_spec = RunSpec {
            model_config,
            train_config: train_config.clone(),
            ..RunSpec::new(model, GraphSpec::Static { metric, gdt }, 5)
        };
        let with_static = run_individual(individual.id, &individual.data, &static_spec);

        let learned_spec = RunSpec {
            model_config,
            train_config: train_config.clone(),
            ..RunSpec::new(model, GraphSpec::Provided(learned.clone()), 5)
        };
        let with_learned = run_individual(individual.id, &individual.data, &learned_spec);

        let delta = 100.0 * (with_learned.mse - with_static.mse) / with_static.mse;
        println!(
            "{:<10}{:>14.3}{:>14.3}{:>+10.1}",
            model.label(),
            with_static.mse,
            with_learned.mse,
            delta
        );
    }
    println!("\nnegative Δ% = the MTGNN-learned graph helped that model (paper Fig. 3).");
}
