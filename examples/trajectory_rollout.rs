//! Clinical-style trajectory projection: train a personalized model,
//! checkpoint it, and roll it several beeps ahead — plus the VAR
//! baseline's interpretable coefficient network.
//!
//! ```bash
//! cargo run --release -p ema-core --example trajectory_rollout
//! ```

use ema_core::checkpoint::Checkpoint;
use ema_core::forecast::{horizon_mse, iterative_forecast};
use ema_core::train::{train_model, TrainConfig};
use ema_data::{make_windows, split_train_test, EmaGenerator, GeneratorConfig};
use ema_models::{build_model, ModelConfig, ModelKind, VarForecaster};
use ema_tensor::Rng64;

fn main() {
    let dataset = EmaGenerator::new(GeneratorConfig::quick(1, 8, 314)).generate();
    let individual = &dataset.individuals[0];
    let (train, test) = split_train_test(&individual.data, 0.7);
    let seq = 5;
    let windows = make_windows(&train, seq);

    // 1. Train a personalized LSTM and checkpoint it.
    let mut model = build_model(
        ModelKind::Lstm,
        dataset.num_variables(),
        seq,
        &ModelConfig {
            hidden: 16,
            ..ModelConfig::default()
        },
        None,
    );
    let report = train_model(&mut *model, &windows, &TrainConfig::quick(80, 3));
    println!(
        "trained LSTM: loss {:.3} -> {:.3} over {} epochs",
        report.initial_loss(),
        report.final_loss(),
        report.epochs_run
    );
    let ckpt = Checkpoint::capture(model.params());
    println!(
        "checkpoint captured: {} tensors, {} scalars\n",
        ckpt.params.len(),
        model.params().num_scalars()
    );

    // 2. Roll the model 8 beeps (one day) ahead from the last window.
    let mut rng = Rng64::seed_from(9);
    let seed_window = train.last_rows(seq);
    let trajectory = iterative_forecast(&*model, &seed_window, 8, &mut rng);
    println!("projected next day (first 4 variables):");
    for h in 0..8 {
        let row = trajectory.row(h);
        println!(
            "  beep +{}: {:+.2} {:+.2} {:+.2} {:+.2}",
            h + 1,
            row.data()[0],
            row.data()[1],
            row.data()[2],
            row.data()[3]
        );
    }

    // 3. How fast does the rollout degrade? Horizon-wise MSE on test.
    let errs = horizon_mse(&*model, &test, seq, 4, &mut rng);
    println!("\nhorizon-wise test MSE:");
    for (h, e) in errs.iter().enumerate() {
        println!("  {}-step ahead: {:.3}", h + 1, e);
    }

    // 4. The VAR baseline's interpretable lag-1 network.
    let mut var = VarForecaster::new(dataset.num_variables(), 1, &ModelConfig::default());
    let var_windows = make_windows(&train, 1);
    var.fit_closed_form(&var_windows.inputs, &var_windows.targets, 0.1);
    let coef = var.coefficient_matrix(0);
    println!("\nVAR(1) strongest lag-1 effects:");
    let mut effects: Vec<(usize, usize, f64)> = (0..coef.dims()[0])
        .flat_map(|i| (0..coef.dims()[1]).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j)
        .map(|(i, j)| (i, j, coef.at2(i, j)))
        .collect();
    effects.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
    for &(i, j, w) in effects.iter().take(5) {
        println!(
            "  {} -> {}: {:+.3}",
            dataset.variable_names[j], dataset.variable_names[i], w
        );
    }
}
