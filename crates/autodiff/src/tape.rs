//! The tape: node storage, basic elementwise ops and the backward pass.

use crate::grads::{PendingKind, PendingUse};
use crate::{tape_ops_batched, Grads, Op};
use ema_tensor::{kernels, pool, Tensor};
use std::cell::RefCell;

/// A handle to a node on a [`Tape`].
///
/// `Var` is a plain index — `Copy`, comparable and hashable — and is only
/// meaningful for the tape that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Builds a `Var` from a raw index. Exposed for tests and tooling;
    /// regular code should only use vars returned by tape operations.
    #[must_use]
    pub fn from_raw(index: usize) -> Self {
        Var(index)
    }

    /// The raw node index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
}

/// A reverse-mode autodiff tape.
///
/// Operations are methods taking `&self`; interior mutability keeps call
/// sites clean. A tape grows monotonically within one step; training
/// loops call [`Tape::reset`] between steps to reuse the node storage
/// (and, through the tensor pool, the value buffers) epoch after epoch.
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: RefCell::new(Vec::with_capacity(1024)),
        }
    }

    /// Clears all recorded nodes while keeping the node storage's
    /// capacity. Dropped node values return their buffers to the tensor
    /// pool, so the next step's forward pass re-uses them — the
    /// epoch-persistent-workspace half of the allocation-free hot path.
    ///
    /// All `Var` handles from before the reset become invalid; rebind
    /// parameters afterwards.
    pub fn reset(&mut self) {
        self.nodes.get_mut().clear();
    }

    /// [`Tape::reset`] keeping the first `keep` nodes alive — a
    /// persistent prefix for graph parts that are constant across
    /// epochs (e.g. the training target leaf). `Var` handles into the
    /// prefix stay valid; everything after it is dropped (buffers
    /// return to the tensor pool) and must be rebuilt.
    ///
    /// # Panics
    /// Panics if fewer than `keep` nodes are recorded.
    pub fn reset_to(&mut self, keep: usize) {
        let nodes = self.nodes.get_mut();
        assert!(
            nodes.len() >= keep,
            "reset_to({keep}) on a tape of {} nodes",
            nodes.len()
        );
        nodes.truncate(keep);
    }

    /// Number of nodes recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no nodes have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Inserts a constant/input/parameter node.
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The forward value of `v` (cloned).
    ///
    /// # Panics
    /// Panics if `v` does not belong to this tape.
    #[must_use]
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// The shape dims of `v` without cloning the buffer.
    #[must_use]
    pub fn dims(&self, v: Var) -> Vec<usize> {
        self.nodes.borrow()[v.0].value.dims().to_vec()
    }

    pub(crate) fn push(&self, value: Tensor, op: Op) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var(nodes.len() - 1)
    }

    /// Applies `f` to the values of `vars` and records the result.
    ///
    /// Every tape op routes through here, so the common small arities
    /// borrow the values through a stack array instead of heap-allocating
    /// a `Vec` of references per recorded node.
    pub(crate) fn compute<R>(&self, f: impl FnOnce(&[&Tensor]) -> R, vars: &[Var]) -> R {
        let nodes = self.nodes.borrow();
        match *vars {
            [] => f(&[]),
            [a] => f(&[&nodes[a.0].value]),
            [a, b] => f(&[&nodes[a.0].value, &nodes[b.0].value]),
            [a, b, c] => f(&[&nodes[a.0].value, &nodes[b.0].value, &nodes[c.0].value]),
            _ => {
                let refs: Vec<&Tensor> = vars.iter().map(|v| &nodes[v.0].value).collect();
                f(&refs)
            }
        }
    }

    // ------------------------------------------------------------------
    // Elementwise ops
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].add(v[1]), &[a, b]);
        self.push(out, Op::Add(a, b))
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].sub(v[1]), &[a, b]);
        self.push(out, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].mul(v[1]), &[a, b]);
        self.push(out, Op::Mul(a, b))
    }

    /// Elementwise quotient `a / b`.
    pub fn div(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].div(v[1]), &[a, b]);
        self.push(out, Op::Div(a, b))
    }

    /// Adds a constant scalar.
    pub fn add_scalar(&self, a: Var, s: f64) -> Var {
        let out = self.compute(|v| v[0].add_scalar(s), &[a]);
        self.push(out, Op::AddScalar(a, s))
    }

    /// Multiplies by a constant scalar.
    pub fn scale(&self, a: Var, s: f64) -> Var {
        let out = self.compute(|v| v[0].scale(s), &[a]);
        self.push(out, Op::Scale(a, s))
    }

    /// Elementwise negation (recorded as `scale(-1)`).
    pub fn neg(&self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].tanh(), &[a]);
        self.push(out, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].sigmoid(), &[a]);
        self.push(out, Op::Sigmoid(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].relu(), &[a]);
        self.push(out, Op::Relu(a))
    }

    /// Elementwise leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, a: Var, alpha: f64) -> Var {
        let out = self.compute(|v| v[0].map(|x| if x >= 0.0 { x } else { alpha * x }), &[a]);
        self.push(out, Op::LeakyRelu(a, alpha))
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].square(), &[a]);
        self.push(out, Op::Square(a))
    }

    /// Softmax along the last axis.
    pub fn softmax_last(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].softmax_last(), &[a]);
        self.push(out, Op::SoftmaxLast(a))
    }

    /// Sum of all elements, as a `[1]` tensor.
    pub fn sum_all(&self, a: Var) -> Var {
        let out = self.compute(|v| Tensor::from_vec1(vec![v[0].sum()]), &[a]);
        self.push(out, Op::SumAll(a))
    }

    /// Mean of all elements, as a `[1]` tensor.
    pub fn mean_all(&self, a: Var) -> Var {
        let out = self.compute(|v| Tensor::from_vec1(vec![v[0].mean()]), &[a]);
        self.push(out, Op::MeanAll(a))
    }

    /// Mean-squared-error loss between a prediction and a target,
    /// composed from `sub → square → mean_all`.
    pub fn mse(&self, pred: Var, target: Var) -> Var {
        let diff = self.sub(pred, target);
        let sq = self.square(diff);
        self.mean_all(sq)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from `loss` (which must hold a
    /// single element) and returns gradients for every node.
    ///
    /// # Panics
    /// Panics if `loss` is not scalar-shaped.
    #[must_use]
    pub fn backward(&self, loss: Var) -> Grads {
        let mut grads = Grads::empty();
        self.backward_into(loss, &mut grads);
        grads
    }

    /// [`Tape::backward`] writing into a caller-owned [`Grads`]
    /// workspace. Reusing one workspace across epochs keeps the slot
    /// vector's capacity and recycles last epoch's gradient buffers
    /// through the tensor pool instead of allocating fresh ones.
    ///
    /// # Panics
    /// Panics if `loss` is not scalar-shaped.
    pub fn backward_into(&self, loss: Var, out: &mut Grads) {
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[loss.0].value.len(),
            1,
            "backward requires a scalar loss, got shape {:?}",
            nodes[loss.0].value.dims()
        );
        let (grads, pending) = out.slots_and_pending_mut();
        grads.clear();
        grads.resize_with(nodes.len(), || None);
        if pending.len() < nodes.len() {
            pending.resize_with(nodes.len(), Vec::new);
        }
        grads[loss.0] = Some(Tensor::from_vec1(vec![1.0]));

        let mut contribs: Vec<(Var, Tensor)> = Vec::new();
        let mut deferred: Vec<(Var, PendingUse)> = Vec::new();
        for i in (0..=loss.0).rev() {
            // The tape is append-only, so every parent index is < i:
            // node i's gradient can be borrowed while the parents'
            // accumulators are written, with no clone of `g` and no
            // reallocation on accumulation.
            let (parents, rest) = grads.split_at_mut(i);
            let (slot_i, later) = rest.split_first_mut().expect("slot exists");
            if !pending[i].is_empty() {
                // Batched consumers above deposited deferred per-window
                // pieces for this node; replay them into the slot in the
                // per-window graph's accumulation order before this
                // node's own backward step reads it.
                finalize_pending(&nodes, i, &pending[i], slot_i, later);
                pending[i].clear();
            }
            let Some(g) = slot_i.as_ref() else { continue };
            let node = &nodes[i];
            backward_one(&nodes, i, &node.op, &node.value, g, &mut contribs, &mut deferred);
            for (parent, contrib) in contribs.drain(..) {
                debug_assert!(parent.0 < i, "tape parents must precede children");
                match &mut parents[parent.0] {
                    Some(acc) => acc.add_assign(&contrib),
                    slot @ None => *slot = Some(contrib),
                }
            }
            for (parent, use_) in deferred.drain(..) {
                debug_assert!(parent.0 < i, "tape parents must precede children");
                pending[parent.0].push(use_);
            }
        }
    }
}

/// Replays a shared operand's deferred per-window gradient pieces into
/// its slot, reproducing the per-window reference graph's accumulation
/// exactly: windows in descending order (the order backward visits the
/// per-window subgraphs), and within each window the uses in arrival
/// (= node descending) order. `grouped` uses fold one window's pieces
/// into a temporary first — replicating a per-window intermediate node
/// (e.g. a per-window transpose) that summed its own uses locally
/// before contributing once per window.
fn finalize_pending(
    nodes: &[Node],
    i: usize,
    uses: &[PendingUse],
    slot: &mut Option<Tensor>,
    later: &[Option<Tensor>],
) {
    debug_assert!(
        slot.is_none(),
        "deferred operands must have no dense contributions (node {i})"
    );
    let wins = uses[0].wins;
    let grouped = uses[0].grouped;
    debug_assert!(
        uses.iter().all(|u| u.wins == wins && u.grouped == grouped),
        "all deferred uses of one operand must agree on wins/grouping"
    );
    let piece_dims = nodes[i].value.dims().to_vec();
    let piece_len = nodes[i].value.len();
    let grad_of = |n: usize| -> &Tensor {
        debug_assert!(n > i, "piece gradients must come from later nodes");
        later[n - i - 1]
            .as_ref()
            .expect("batched node gradient alive at finalize time")
    };
    let mut scratch = pool::take_uninit(piece_len);
    let mut group_tmp = if grouped {
        Some(pool::take_uninit(piece_len))
    } else {
        None
    };
    for w in (0..wins).rev() {
        let mut first_in_group = true;
        for u in uses {
            compute_piece(nodes, u, w, grad_of(u.g_node), &mut scratch);
            match &mut group_tmp {
                Some(tmp) => {
                    if first_in_group {
                        tmp.copy_from_slice(&scratch);
                        first_in_group = false;
                    } else {
                        for (t, &s) in tmp.iter_mut().zip(scratch.iter()) {
                            *t += s;
                        }
                    }
                }
                None => add_piece(slot, &scratch, &piece_dims),
            }
        }
        if let Some(tmp) = &group_tmp {
            add_piece(slot, tmp, &piece_dims);
        }
    }
    pool::recycle(scratch);
    if let Some(tmp) = group_tmp {
        pool::recycle(tmp);
    }
}

/// Adds one replayed piece to the operand's slot with the backward
/// pass's set-or-accumulate semantics.
fn add_piece(slot: &mut Option<Tensor>, piece: &[f64], dims: &[usize]) {
    match slot {
        Some(acc) => {
            for (a, &p) in acc.data_mut().iter_mut().zip(piece) {
                *a += p;
            }
        }
        None => {
            *slot = Some(Tensor::from_vec(dims, piece.to_vec()).expect("piece shape"));
        }
    }
}

/// Computes one per-window gradient piece into `out` — the exact kernel
/// call the per-window reference graph's backward pass makes for this
/// use, on window `w`'s contiguous row blocks.
fn compute_piece(nodes: &[Node], u: &PendingUse, w: usize, g: &Tensor, out: &mut [f64]) {
    let gd = g.data();
    let (g_rows, g_cols) = (u.g_rows, g.dims()[1]);
    let g_start = (u.g_off + w * g_rows) * g_cols;
    let g_w = &gd[g_start..g_start + g_rows * g_cols];
    match u.kind {
        PendingKind::ColSums => kernels::col_sums_into(g_w, out, g_rows, g_cols),
        kind => {
            let x = &nodes[u.x_node].value;
            let xd = x.data();
            let (x_rows, x_cols) = (u.x_rows, x.dims()[1]);
            let x_start = (u.x_off + w * x_rows) * x_cols;
            let x_w = &xd[x_start..x_start + x_rows * x_cols];
            match kind {
                // rhs of Matmul: x_wᵀ [r,k]ᵀ · g_w [r,n] -> [k,n].
                PendingKind::XtG => {
                    kernels::matmul_tn_into(x_w, g_w, out, x_rows, x_cols, g_cols);
                }
                // rhs of MatmulNT / weight of Addmm:
                // g_wᵀ [r,n]ᵀ · x_w [r,k] -> [n,k].
                PendingKind::GtX => {
                    kernels::matmul_tn_into(g_w, x_w, out, g_rows, g_cols, x_cols);
                }
                // lhs of a block matmul: g_w [p,n] · x_wᵀ [q,n]ᵀ -> [p,q].
                PendingKind::GntX => {
                    kernels::matmul_nt_into(g_w, x_w, out, g_rows, g_cols, x_rows);
                }
                PendingKind::ColSums => unreachable!(),
            }
        }
    }
}

/// Computes the gradient contributions of one node to its parents,
/// appending them to the caller's reusable `contribs` buffer. Batched
/// ops additionally append deferred per-window uses for their shared
/// operands to `deferred` (finalized when the backward loop reaches the
/// operand); `i` is the node's own tape index, recorded as the
/// gradient source of those pieces.
#[allow(clippy::too_many_arguments)]
fn backward_one(
    nodes: &[Node],
    i: usize,
    op: &Op,
    out_value: &Tensor,
    g: &Tensor,
    contribs: &mut Vec<(Var, Tensor)>,
    deferred: &mut Vec<(Var, PendingUse)>,
) {
    let val = |v: Var| &nodes[v.0].value;
    match *op {
        Op::Leaf => {}
        Op::Add(a, b) => contribs.extend([(a, g.clone()), (b, g.clone())]),
        Op::Sub(a, b) => contribs.extend([(a, g.clone()), (b, g.neg())]),
        Op::Mul(a, b) => contribs.extend([(a, g.mul(val(b))), (b, g.mul(val(a)))]),
        Op::Div(a, b) => {
            let bv = val(b);
            let da = g.div(bv);
            let db = g.mul(val(a)).div(&bv.square()).neg();
            contribs.extend([(a, da), (b, db)]);
        }
        Op::AddScalar(a, _) => contribs.push((a, g.clone())),
        Op::Scale(a, s) => contribs.push((a, g.scale(s))),
        Op::Matmul(a, b) => {
            // da = g·bᵀ, db = aᵀ·g via the transpose-aware kernels —
            // bit-identical to the materialized-transpose formulation
            // (see the kernel contract in ema_tensor's linalg module)
            // without allocating either transpose.
            let da = g.matmul_nt(val(b));
            let db = val(a).matmul_tn(g);
            contribs.extend([(a, da), (b, db)]);
        }
        Op::MatmulTN(a, b) => {
            // out = aᵀ·b with a:[k,m], b:[k,n], g:[m,n].
            // da = b·gᵀ : [k,m]; db = a·g : [k,n].
            let da = val(b).matmul_nt(g);
            let db = val(a).matmul(g);
            contribs.extend([(a, da), (b, db)]);
        }
        Op::MatmulNT(a, b) => {
            // out = a·bᵀ with a:[m,k], b:[n,k], g:[m,n].
            // da = g·b : [m,k]; db = gᵀ·a : [n,k].
            let da = g.matmul(val(b));
            let db = g.matmul_tn(val(a));
            contribs.extend([(a, da), (b, db)]);
        }
        Op::Addmm(x, w, bias) => {
            // out = x·wᵀ + bias with x:[n,k], w:[out,k], g:[n,out].
            let dx = g.matmul(val(w));
            let dw = g.matmul_tn(val(x));
            let dbias = g.col_sums();
            contribs.extend([(x, dx), (w, dw), (bias, dbias)]);
        }
        Op::LstmCell(gates, c_prev) => {
            lstm_cell_backward(val(gates), val(c_prev), out_value, g, gates, c_prev, contribs);
        }
        Op::GruCell(gi, gh, h_prev) => {
            gru_cell_backward(val(gi), val(gh), val(h_prev), g, gi, gh, h_prev, contribs);
        }
        Op::Transpose(a) => contribs.push((a, g.transpose())),
        Op::Tanh(a) => {
            // d tanh = 1 - tanh²; out_value already holds tanh(x).
            let d = out_value.map(|y| 1.0 - y * y);
            contribs.push((a, g.mul(&d)));
        }
        Op::Sigmoid(a) => {
            let d = out_value.map(|y| y * (1.0 - y));
            contribs.push((a, g.mul(&d)));
        }
        Op::Relu(a) => {
            let d = val(a).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
            contribs.push((a, g.mul(&d)));
        }
        Op::LeakyRelu(a, alpha) => {
            let d = val(a).map(|x| if x >= 0.0 { 1.0 } else { alpha });
            contribs.push((a, g.mul(&d)));
        }
        Op::Square(a) => contribs.push((a, g.mul(&val(a).scale(2.0)))),
        Op::SoftmaxLast(a) => {
            // grad_in = s ⊙ (g - <g, s>_row) per row.
            let s = out_value;
            let (rows, cols) = if s.rank() == 1 {
                (1, s.len())
            } else {
                (s.dims()[0], s.dims()[1])
            };
            let mut out = g.clone();
            for r in 0..rows {
                let mut dot = 0.0;
                for c in 0..cols {
                    dot += g.data()[r * cols + c] * s.data()[r * cols + c];
                }
                for c in 0..cols {
                    let i = r * cols + c;
                    out.data_mut()[i] = s.data()[i] * (g.data()[i] - dot);
                }
            }
            contribs.push((a, out));
        }
        Op::SumAll(a) => {
            let gv = g.data()[0];
            contribs.push((a, Tensor::filled(val(a).dims(), gv)));
        }
        Op::MeanAll(a) => {
            let n = val(a).len() as f64;
            let gv = g.data()[0] / n;
            contribs.push((a, Tensor::filled(val(a).dims(), gv)));
        }
        Op::AddRowBroadcast(m, r) => {
            contribs.extend([(m, g.clone()), (r, g.col_sums())]);
        }
        Op::MulRowBroadcast(m, r) => {
            let dm = g.mul_row_broadcast(val(r));
            let dr = g.mul(val(m)).col_sums();
            contribs.extend([(m, dm), (r, dr)]);
        }
        Op::HCat(a, b) => {
            let ca = val(a).dims()[1];
            let total = out_value.dims()[1];
            contribs.extend([
                (a, g.slice_cols(0, ca)),
                (b, g.slice_cols(ca, total)),
            ]);
        }
        Op::VCat(a, b) => {
            let ra = val(a).dims()[0];
            let total = out_value.dims()[0];
            contribs.extend([
                (a, g.slice_rows(0, ra)),
                (b, g.slice_rows(ra, total)),
            ]);
        }
        Op::SliceRows(a, start, end) => {
            let dims = val(a).dims().to_vec();
            let mut da = Tensor::zeros(&dims);
            let n = dims[1];
            da.data_mut()[start * n..end * n].copy_from_slice(g.data());
            contribs.push((a, da));
        }
        Op::SliceCols(a, start, end) => {
            let dims = val(a).dims().to_vec();
            let mut da = Tensor::zeros(&dims);
            let (m, n) = (dims[0], dims[1]);
            let w = end - start;
            for i in 0..m {
                da.data_mut()[i * n + start..i * n + end]
                    .copy_from_slice(&g.data()[i * w..(i + 1) * w]);
            }
            contribs.push((a, da));
        }
        Op::Reshape(a) => {
            let dims = val(a).dims().to_vec();
            contribs.push((a, g.reshaped(&dims)));
        }
        Op::Dropout(a, ref mask) => contribs.push((a, g.mul(mask))),
        Op::StackRows(ref vars) => {
            contribs.extend(vars.iter().enumerate().map(|(i, &v)| (v, g.row(i))));
        }
        Op::BatchedMatmul(x, rhs, wins, grouped) => {
            // Stacked lhs gradient batches the per-window `g_w · rhsᵀ`
            // rows (row-identical to the per-window kernel); the shared
            // rhs gradient is replayed per window at finalize time.
            contribs.push((x, g.matmul_nt(val(rhs))));
            deferred.push((
                rhs,
                PendingUse {
                    kind: PendingKind::XtG,
                    g_node: i,
                    x_node: x.0,
                    wins,
                    grouped,
                    g_rows: g.dims()[0] / wins,
                    g_off: 0,
                    x_rows: val(x).dims()[0] / wins,
                    x_off: 0,
                },
            ));
        }
        Op::BatchedMatmulNT(x, rhs, wins) => {
            contribs.push((x, g.matmul(val(rhs))));
            deferred.push((
                rhs,
                PendingUse {
                    kind: PendingKind::GtX,
                    g_node: i,
                    x_node: x.0,
                    wins,
                    grouped: false,
                    g_rows: g.dims()[0] / wins,
                    g_off: 0,
                    x_rows: val(x).dims()[0] / wins,
                    x_off: 0,
                },
            ));
        }
        Op::BatchedAddmm(x, w, bias, wins) => {
            contribs.push((x, g.matmul(val(w))));
            let g_rows = g.dims()[0] / wins;
            deferred.push((
                w,
                PendingUse {
                    kind: PendingKind::GtX,
                    g_node: i,
                    x_node: x.0,
                    wins,
                    grouped: false,
                    g_rows,
                    g_off: 0,
                    x_rows: val(x).dims()[0] / wins,
                    x_off: 0,
                },
            ));
            deferred.push((
                bias,
                PendingUse {
                    kind: PendingKind::ColSums,
                    g_node: i,
                    x_node: i,
                    wins,
                    grouped: false,
                    g_rows,
                    g_off: 0,
                    x_rows: g_rows,
                    x_off: 0,
                },
            ));
        }
        Op::BatchedAddRow(m, r, wins) => {
            contribs.push((m, g.clone()));
            let g_rows = g.dims()[0] / wins;
            deferred.push((
                r,
                PendingUse {
                    kind: PendingKind::ColSums,
                    g_node: i,
                    x_node: i,
                    wins,
                    grouped: false,
                    g_rows,
                    g_off: 0,
                    x_rows: g_rows,
                    x_off: 0,
                },
            ));
        }
        Op::BlockLhsMatmul(lhs, x, wins) => {
            // Per-block dx_w = lhsᵀ · g_w (the per-window Matmul rhs
            // gradient, dense in the stack); shared lhs deferred. Like
            // the forward, all W products share the lhs, so one
            // `lhsᵀ · [g_0 | … | g_{W-1}]` on the column-permuted
            // layout computes them in a single kernel call —
            // bit-identical per element (and the lhsᵀ repack happens
            // once instead of per window).
            let lv = val(lhs);
            let xv = val(x);
            let (p, q) = (lv.dims()[0], lv.dims()[1]);
            let n = xv.dims()[1];
            let ghat = tape_ops_batched::gather_window_cols(g.data(), wins, p, n);
            let mut dxhat = pool::take_uninit(q * wins * n);
            kernels::matmul_tn_into(lv.data(), &ghat, &mut dxhat, p, q, wins * n);
            pool::recycle(ghat);
            let dx = tape_ops_batched::scatter_window_cols(&dxhat, wins, q, n);
            pool::recycle(dxhat);
            contribs.push((x, Tensor::from_vec(xv.dims(), dx).expect("block dx shape")));
            deferred.push((
                lhs,
                PendingUse {
                    kind: PendingKind::GntX,
                    g_node: i,
                    x_node: x.0,
                    wins,
                    grouped: false,
                    g_rows: p,
                    g_off: 0,
                    x_rows: q,
                    x_off: 0,
                },
            ));
        }
        Op::BlockMatmul(x, y, wins) => {
            // Per block: dx_w = g_w · y_wᵀ, dy_w = x_wᵀ · g_w — both
            // operands are window stacks, so both gradients stay dense.
            let xv = val(x);
            let yv = val(y);
            let (m, k) = (xv.dims()[0] / wins, xv.dims()[1]);
            let n = yv.dims()[1];
            let mut dx = pool::take_uninit(xv.len());
            let mut dy = pool::take_uninit(yv.len());
            for w in 0..wins {
                let g_w = &g.data()[w * m * n..(w + 1) * m * n];
                let x_w = &xv.data()[w * m * k..(w + 1) * m * k];
                let y_w = &yv.data()[w * k * n..(w + 1) * k * n];
                kernels::matmul_nt_into(g_w, y_w, &mut dx[w * m * k..(w + 1) * m * k], m, n, k);
                kernels::matmul_tn_into(x_w, g_w, &mut dy[w * k * n..(w + 1) * k * n], m, k, n);
            }
            contribs.extend([
                (x, Tensor::from_vec(xv.dims(), dx).expect("block dx shape")),
                (y, Tensor::from_vec(yv.dims(), dy).expect("block dy shape")),
            ]);
        }
        Op::BlockMatmulNT(x, y, wins) => {
            // Per block: dx_w = g_w · y_w, dy_w = g_wᵀ · x_w.
            let xv = val(x);
            let yv = val(y);
            let (m, k) = (xv.dims()[0] / wins, xv.dims()[1]);
            let n = yv.dims()[0] / wins;
            let mut dx = pool::take_uninit(xv.len());
            let mut dy = pool::take_uninit(yv.len());
            for w in 0..wins {
                let g_w = &g.data()[w * m * n..(w + 1) * m * n];
                let x_w = &xv.data()[w * m * k..(w + 1) * m * k];
                let y_w = &yv.data()[w * n * k..(w + 1) * n * k];
                kernels::matmul_into(g_w, y_w, &mut dx[w * m * k..(w + 1) * m * k], m, n, k);
                kernels::matmul_tn_into(g_w, x_w, &mut dy[w * n * k..(w + 1) * n * k], m, n, k);
            }
            contribs.extend([
                (x, Tensor::from_vec(xv.dims(), dx).expect("block dx shape")),
                (y, Tensor::from_vec(yv.dims(), dy).expect("block dy shape")),
            ]);
        }
        Op::StackWindowBlocks(ref states, wins) => {
            // Scatter the stacked gradient back: state t's block w is
            // output block w's row t.
            let t_count = states.len();
            for (t, &s) in states.iter().enumerate() {
                let sv = val(s);
                let (rows, h) = (sv.dims()[0], sv.dims()[1]);
                let n = rows / wins;
                let block = n * h;
                let mut d = pool::take_uninit(rows * h);
                for w in 0..wins {
                    d[w * block..(w + 1) * block]
                        .copy_from_slice(&g.data()[(w * t_count + t) * block..(w * t_count + t + 1) * block]);
                }
                contribs.push((s, Tensor::from_vec(sv.dims(), d).expect("state grad shape")));
            }
        }
        Op::GroupLinear(x, ref params, ref wins, block_rows) => {
            // Per group b: dx_b = g_b · w_b (dense in the stack, one
            // kernel call per group with the same (m, k, n) as the
            // per-individual `Op::BatchedAddmm` dx, so the blocked-path
            // decision — and every bit — matches the oracle), while
            // w_b and bias_b gradients are deferred as per-window
            // pieces of `block_rows` rows anchored at the group's row
            // offset and replayed in the per-individual graph's
            // accumulation order.
            let xv = val(x);
            let k = xv.dims()[1];
            let out_cols = out_value.dims()[1];
            let mut dx = pool::take_uninit(xv.len());
            let mut off = 0usize;
            for (&(w, bias), &wb) in params.iter().zip(wins) {
                let r = wb * block_rows;
                let g_b = &g.data()[off * out_cols..(off + r) * out_cols];
                kernels::matmul_into(
                    g_b,
                    val(w).data(),
                    &mut dx[off * k..(off + r) * k],
                    r,
                    out_cols,
                    k,
                );
                deferred.push((
                    w,
                    PendingUse {
                        kind: PendingKind::GtX,
                        g_node: i,
                        x_node: x.0,
                        wins: wb,
                        grouped: false,
                        g_rows: block_rows,
                        g_off: off,
                        x_rows: block_rows,
                        x_off: off,
                    },
                ));
                deferred.push((
                    bias,
                    PendingUse {
                        kind: PendingKind::ColSums,
                        g_node: i,
                        x_node: i,
                        wins: wb,
                        grouped: false,
                        g_rows: block_rows,
                        g_off: off,
                        x_rows: block_rows,
                        x_off: off,
                    },
                ));
                off += r;
            }
            contribs.push((x, Tensor::from_vec(xv.dims(), dx).expect("group dx shape")));
        }
        Op::GroupMatmul(x, ref rhses, ref wins, block_rows, grouped) => {
            // Per group b: dx_b = g_b · rhs_bᵀ (dense, same (m, k, n)
            // as the per-individual `Op::BatchedMatmul` dx); each
            // group's rhs gradient is deferred as per-window XᵀG pieces
            // anchored at the group's row offset.
            let xv = val(x);
            let k = xv.dims()[1];
            let n = out_value.dims()[1];
            let mut dx = pool::take_uninit(xv.len());
            let mut off = 0usize;
            for (&rhs, &wb) in rhses.iter().zip(wins) {
                let r = wb * block_rows;
                let g_b = &g.data()[off * n..(off + r) * n];
                kernels::matmul_nt_into(
                    g_b,
                    val(rhs).data(),
                    &mut dx[off * k..(off + r) * k],
                    r,
                    n,
                    k,
                );
                deferred.push((
                    rhs,
                    PendingUse {
                        kind: PendingKind::XtG,
                        g_node: i,
                        x_node: x.0,
                        wins: wb,
                        grouped,
                        g_rows: block_rows,
                        g_off: off,
                        x_rows: block_rows,
                        x_off: off,
                    },
                ));
                off += r;
            }
            contribs.push((x, Tensor::from_vec(xv.dims(), dx).expect("group dx shape")));
        }
        Op::GroupMatmulNT(x, ref rhses, ref wins, block_rows) => {
            // Per group b: dx_b = g_b · rhs_b (dense); each group's rhs
            // gradient is deferred as per-window GᵀX pieces.
            let xv = val(x);
            let k = xv.dims()[1];
            let n = out_value.dims()[1];
            let mut dx = pool::take_uninit(xv.len());
            let mut off = 0usize;
            for (&rhs, &wb) in rhses.iter().zip(wins) {
                let r = wb * block_rows;
                let g_b = &g.data()[off * n..(off + r) * n];
                kernels::matmul_into(
                    g_b,
                    val(rhs).data(),
                    &mut dx[off * k..(off + r) * k],
                    r,
                    n,
                    k,
                );
                deferred.push((
                    rhs,
                    PendingUse {
                        kind: PendingKind::GtX,
                        g_node: i,
                        x_node: x.0,
                        wins: wb,
                        grouped: false,
                        g_rows: block_rows,
                        g_off: off,
                        x_rows: block_rows,
                        x_off: off,
                    },
                ));
                off += r;
            }
            contribs.push((x, Tensor::from_vec(xv.dims(), dx).expect("group dx shape")));
        }
        Op::GroupAddRow(m, ref rows, ref wins, block_rows) => {
            // dm is the gradient unchanged; each group's row gradient
            // is deferred as per-window column sums over its block.
            contribs.push((m, g.clone()));
            let mut off = 0usize;
            for (&row, &wb) in rows.iter().zip(wins) {
                deferred.push((
                    row,
                    PendingUse {
                        kind: PendingKind::ColSums,
                        g_node: i,
                        x_node: i,
                        wins: wb,
                        grouped: false,
                        g_rows: block_rows,
                        g_off: off,
                        x_rows: block_rows,
                        x_off: off,
                    },
                ));
                off += wb * block_rows;
            }
        }
        Op::GroupBlockLhsMatmul(ref lhses, x, ref wins) => {
            // Per group b: the shared-lhs backward restricted to the
            // group's window span — gather its g slice to the
            // column-permuted layout, one lhs_bᵀ · ĝ product, scatter
            // back — so every window block matches the per-individual
            // `Op::BlockLhsMatmul` backward bit for bit. Each group's
            // lhs gradient is deferred as per-window G·Xᵀ pieces at the
            // group's (output, input) row offsets.
            let xv = val(x);
            let n = xv.dims()[1];
            let (p, q) = (val(lhses[0]).dims()[0], val(lhses[0]).dims()[1]);
            let mut dx = pool::take_uninit(xv.len());
            let (mut xoff, mut goff) = (0usize, 0usize);
            for (&lhs, &wb) in lhses.iter().zip(wins) {
                let lv = val(lhs);
                let ghat = tape_ops_batched::gather_window_cols(
                    &g.data()[goff * n..(goff + wb * p) * n],
                    wb,
                    p,
                    n,
                );
                let mut dxhat = pool::take_uninit(q * wb * n);
                kernels::matmul_tn_into(lv.data(), &ghat, &mut dxhat, p, q, wb * n);
                pool::recycle(ghat);
                let dx_b = tape_ops_batched::scatter_window_cols(&dxhat, wb, q, n);
                pool::recycle(dxhat);
                dx[xoff * n..(xoff + wb * q) * n].copy_from_slice(&dx_b);
                pool::recycle(dx_b);
                deferred.push((
                    lhs,
                    PendingUse {
                        kind: PendingKind::GntX,
                        g_node: i,
                        x_node: x.0,
                        wins: wb,
                        grouped: false,
                        g_rows: p,
                        g_off: goff,
                        x_rows: q,
                        x_off: xoff,
                    },
                ));
                xoff += wb * q;
                goff += wb * p;
            }
            contribs.push((x, Tensor::from_vec(xv.dims(), dx).expect("group dx shape")));
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Backward pass of the fused LSTM cell step (see [`Op::LstmCell`]).
///
/// Activations are recomputed from the stored pre-activations; `c'` is
/// read back from the node value's second half, so no intermediate
/// tensors from the forward pass need to be kept.
#[allow(clippy::too_many_arguments)]
fn lstm_cell_backward(
    gates: &Tensor,
    c_prev: &Tensor,
    out_value: &Tensor,
    g: &Tensor,
    gates_var: Var,
    c_prev_var: Var,
    contribs: &mut Vec<(Var, Tensor)>,
) {
    let (n, g4) = (gates.dims()[0], gates.dims()[1]);
    let h = g4 / 4;
    let gd = gates.data();
    let cd = c_prev.data();
    let od = out_value.data();
    let gg = g.data();
    let mut d_gates = ema_tensor::pool::take_uninit(n * g4);
    let mut d_cprev = ema_tensor::pool::take_uninit(n * h);
    for r in 0..n {
        for j in 0..h {
            let i = sigmoid(gd[r * g4 + j]);
            let f = sigmoid(gd[r * g4 + h + j]);
            let gt = gd[r * g4 + 2 * h + j].tanh();
            let o = sigmoid(gd[r * g4 + 3 * h + j]);
            let c = od[r * 2 * h + h + j];
            let tc = c.tanh();
            let gh_ = gg[r * 2 * h + j];
            let gc_ = gg[r * 2 * h + h + j];
            let dc = gc_ + gh_ * o * (1.0 - tc * tc);
            d_gates[r * g4 + j] = dc * gt * i * (1.0 - i);
            d_gates[r * g4 + h + j] = dc * cd[r * h + j] * f * (1.0 - f);
            d_gates[r * g4 + 2 * h + j] = dc * i * (1.0 - gt * gt);
            d_gates[r * g4 + 3 * h + j] = gh_ * tc * o * (1.0 - o);
            d_cprev[r * h + j] = dc * f;
        }
    }
    let d_gates = Tensor::from_vec(&[n, g4], d_gates).expect("lstm backward gate grads");
    let d_cprev = Tensor::from_vec(&[n, h], d_cprev).expect("lstm backward cell grads");
    contribs.extend([(gates_var, d_gates), (c_prev_var, d_cprev)]);
}

/// Backward pass of the fused GRU cell step (see [`Op::GruCell`]).
/// The gate activations are cheap to recompute from the stored
/// pre-activations, so the node value is not needed here.
#[allow(clippy::too_many_arguments)]
fn gru_cell_backward(
    gi: &Tensor,
    gh: &Tensor,
    h_prev: &Tensor,
    g: &Tensor,
    gi_var: Var,
    gh_var: Var,
    h_prev_var: Var,
    contribs: &mut Vec<(Var, Tensor)>,
) {
    let (n, g3) = (gi.dims()[0], gi.dims()[1]);
    let h = g3 / 3;
    let gid = gi.data();
    let ghd = gh.data();
    let hd = h_prev.data();
    let gg = g.data();
    let mut d_gi = ema_tensor::pool::take_uninit(n * g3);
    let mut d_gh = ema_tensor::pool::take_uninit(n * g3);
    let mut d_hprev = ema_tensor::pool::take_uninit(n * h);
    for row in 0..n {
        for j in 0..h {
            let r = sigmoid(gid[row * g3 + j] + ghd[row * g3 + j]);
            let z = sigmoid(gid[row * g3 + h + j] + ghd[row * g3 + h + j]);
            let gh_n = ghd[row * g3 + 2 * h + j];
            let nn = (gid[row * g3 + 2 * h + j] + r * gh_n).tanh();
            let gv = gg[row * h + j];
            let dn = gv * (1.0 - z);
            let dz = gv * (hd[row * h + j] - nn);
            let dn_pre = dn * (1.0 - nn * nn);
            let dr = dn_pre * gh_n;
            let dr_pre = dr * r * (1.0 - r);
            let dz_pre = dz * z * (1.0 - z);
            d_gi[row * g3 + j] = dr_pre;
            d_gi[row * g3 + h + j] = dz_pre;
            d_gi[row * g3 + 2 * h + j] = dn_pre;
            d_gh[row * g3 + j] = dr_pre;
            d_gh[row * g3 + h + j] = dz_pre;
            d_gh[row * g3 + 2 * h + j] = dn_pre * r;
            d_hprev[row * h + j] = gv * z;
        }
    }
    let d_gi = Tensor::from_vec(&[n, g3], d_gi).expect("gru backward input-gate grads");
    let d_gh = Tensor::from_vec(&[n, g3], d_gh).expect("gru backward hidden-gate grads");
    let d_hprev = Tensor::from_vec(&[n, h], d_hprev).expect("gru backward state grads");
    contribs.extend([(gi_var, d_gi), (gh_var, d_gh), (h_prev_var, d_hprev)]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_backward_distributes() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec1(vec![3.0, 4.0]));
        let s = tape.add(a, b);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_backward_swaps_operands() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![2.0, 3.0]));
        let b = tape.leaf(Tensor::from_vec1(vec![5.0, 7.0]));
        let p = tape.mul(a, b);
        let loss = tape.sum_all(p);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[5.0, 7.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn fanout_accumulates() {
        // loss = sum(a + a) → da = 2.
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![1.0]));
        let s = tape.add(a, a);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[2.0]);
    }

    #[test]
    fn mse_of_equal_inputs_has_zero_grad() {
        let tape = Tape::new();
        let p = tape.leaf(Tensor::from_vec1(vec![1.0, 2.0]));
        let t = tape.leaf(Tensor::from_vec1(vec![1.0, 2.0]));
        let loss = tape.mse(p, t);
        assert_eq!(tape.value(loss).data(), &[0.0]);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(p).unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![1.0, 2.0]));
        let _ = tape.backward(a);
    }

    #[test]
    fn unused_nodes_have_no_grad() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![1.0]));
        let b = tape.leaf(Tensor::from_vec1(vec![1.0]));
        let loss = tape.sum_all(a);
        let grads = tape.backward(loss);
        assert!(grads.get(b).is_none());
    }
}
