//! The tape: node storage, basic elementwise ops and the backward pass.

use crate::{Grads, Op};
use ema_tensor::Tensor;
use std::cell::RefCell;

/// A handle to a node on a [`Tape`].
///
/// `Var` is a plain index — `Copy`, comparable and hashable — and is only
/// meaningful for the tape that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Builds a `Var` from a raw index. Exposed for tests and tooling;
    /// regular code should only use vars returned by tape operations.
    #[must_use]
    pub fn from_raw(index: usize) -> Self {
        Var(index)
    }

    /// The raw node index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
}

/// A reverse-mode autodiff tape.
///
/// Operations are methods taking `&self`; interior mutability keeps call
/// sites clean. A tape grows monotonically — build a fresh one per
/// training step (the models do) rather than clearing.
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: RefCell::new(Vec::with_capacity(1024)),
        }
    }

    /// Number of nodes recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no nodes have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Inserts a constant/input/parameter node.
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The forward value of `v` (cloned).
    ///
    /// # Panics
    /// Panics if `v` does not belong to this tape.
    #[must_use]
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// The shape dims of `v` without cloning the buffer.
    #[must_use]
    pub fn dims(&self, v: Var) -> Vec<usize> {
        self.nodes.borrow()[v.0].value.dims().to_vec()
    }

    pub(crate) fn push(&self, value: Tensor, op: Op) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var(nodes.len() - 1)
    }

    /// Applies `f` to the values of `vars` and records the result.
    pub(crate) fn compute<R>(&self, f: impl FnOnce(&[&Tensor]) -> R, vars: &[Var]) -> R {
        let nodes = self.nodes.borrow();
        let refs: Vec<&Tensor> = vars.iter().map(|v| &nodes[v.0].value).collect();
        f(&refs)
    }

    // ------------------------------------------------------------------
    // Elementwise ops
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].add(v[1]), &[a, b]);
        self.push(out, Op::Add(a, b))
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].sub(v[1]), &[a, b]);
        self.push(out, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].mul(v[1]), &[a, b]);
        self.push(out, Op::Mul(a, b))
    }

    /// Elementwise quotient `a / b`.
    pub fn div(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].div(v[1]), &[a, b]);
        self.push(out, Op::Div(a, b))
    }

    /// Adds a constant scalar.
    pub fn add_scalar(&self, a: Var, s: f64) -> Var {
        let out = self.compute(|v| v[0].add_scalar(s), &[a]);
        self.push(out, Op::AddScalar(a, s))
    }

    /// Multiplies by a constant scalar.
    pub fn scale(&self, a: Var, s: f64) -> Var {
        let out = self.compute(|v| v[0].scale(s), &[a]);
        self.push(out, Op::Scale(a, s))
    }

    /// Elementwise negation (recorded as `scale(-1)`).
    pub fn neg(&self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].tanh(), &[a]);
        self.push(out, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].sigmoid(), &[a]);
        self.push(out, Op::Sigmoid(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].relu(), &[a]);
        self.push(out, Op::Relu(a))
    }

    /// Elementwise leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, a: Var, alpha: f64) -> Var {
        let out = self.compute(|v| v[0].map(|x| if x >= 0.0 { x } else { alpha * x }), &[a]);
        self.push(out, Op::LeakyRelu(a, alpha))
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].square(), &[a]);
        self.push(out, Op::Square(a))
    }

    /// Softmax along the last axis.
    pub fn softmax_last(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].softmax_last(), &[a]);
        self.push(out, Op::SoftmaxLast(a))
    }

    /// Sum of all elements, as a `[1]` tensor.
    pub fn sum_all(&self, a: Var) -> Var {
        let out = self.compute(|v| Tensor::from_vec1(vec![v[0].sum()]), &[a]);
        self.push(out, Op::SumAll(a))
    }

    /// Mean of all elements, as a `[1]` tensor.
    pub fn mean_all(&self, a: Var) -> Var {
        let out = self.compute(|v| Tensor::from_vec1(vec![v[0].mean()]), &[a]);
        self.push(out, Op::MeanAll(a))
    }

    /// Mean-squared-error loss between a prediction and a target,
    /// composed from `sub → square → mean_all`.
    pub fn mse(&self, pred: Var, target: Var) -> Var {
        let diff = self.sub(pred, target);
        let sq = self.square(diff);
        self.mean_all(sq)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from `loss` (which must hold a
    /// single element) and returns gradients for every node.
    ///
    /// # Panics
    /// Panics if `loss` is not scalar-shaped.
    #[must_use]
    pub fn backward(&self, loss: Var) -> Grads {
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[loss.0].value.len(),
            1,
            "backward requires a scalar loss, got shape {:?}",
            nodes[loss.0].value.dims()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[loss.0] = Some(Tensor::from_vec1(vec![1.0]));

        for i in (0..=loss.0).rev() {
            // The tape is append-only, so every parent index is < i:
            // node i's gradient can be borrowed while the parents'
            // accumulators are written, with no clone of `g` and no
            // reallocation on accumulation.
            let (parents, rest) = grads.split_at_mut(i);
            let Some(g) = rest[0].as_ref() else { continue };
            let node = &nodes[i];
            let contribs = backward_one(&nodes, &node.op, &node.value, g);
            for (parent, contrib) in contribs {
                debug_assert!(parent.0 < i, "tape parents must precede children");
                match &mut parents[parent.0] {
                    Some(acc) => acc.add_assign(&contrib),
                    slot @ None => *slot = Some(contrib),
                }
            }
        }
        Grads::new(grads)
    }
}

/// Computes the gradient contributions of one node to its parents.
fn backward_one(
    nodes: &[Node],
    op: &Op,
    out_value: &Tensor,
    g: &Tensor,
) -> Vec<(Var, Tensor)> {
    let val = |v: Var| &nodes[v.0].value;
    match *op {
        Op::Leaf => vec![],
        Op::Add(a, b) => vec![(a, g.clone()), (b, g.clone())],
        Op::Sub(a, b) => vec![(a, g.clone()), (b, g.neg())],
        Op::Mul(a, b) => vec![(a, g.mul(val(b))), (b, g.mul(val(a)))],
        Op::Div(a, b) => {
            let bv = val(b);
            let da = g.div(bv);
            let db = g.mul(val(a)).div(&bv.square()).neg();
            vec![(a, da), (b, db)]
        }
        Op::AddScalar(a, _) => vec![(a, g.clone())],
        Op::Scale(a, s) => vec![(a, g.scale(s))],
        Op::Matmul(a, b) => {
            let da = g.matmul(&val(b).transpose());
            let db = val(a).transpose().matmul(g);
            vec![(a, da), (b, db)]
        }
        Op::Transpose(a) => vec![(a, g.transpose())],
        Op::Tanh(a) => {
            // d tanh = 1 - tanh²; out_value already holds tanh(x).
            let d = out_value.map(|y| 1.0 - y * y);
            vec![(a, g.mul(&d))]
        }
        Op::Sigmoid(a) => {
            let d = out_value.map(|y| y * (1.0 - y));
            vec![(a, g.mul(&d))]
        }
        Op::Relu(a) => {
            let d = val(a).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
            vec![(a, g.mul(&d))]
        }
        Op::LeakyRelu(a, alpha) => {
            let d = val(a).map(|x| if x >= 0.0 { 1.0 } else { alpha });
            vec![(a, g.mul(&d))]
        }
        Op::Square(a) => vec![(a, g.mul(&val(a).scale(2.0)))],
        Op::SoftmaxLast(a) => {
            // grad_in = s ⊙ (g - <g, s>_row) per row.
            let s = out_value;
            let (rows, cols) = if s.rank() == 1 {
                (1, s.len())
            } else {
                (s.dims()[0], s.dims()[1])
            };
            let mut out = g.clone();
            for r in 0..rows {
                let mut dot = 0.0;
                for c in 0..cols {
                    dot += g.data()[r * cols + c] * s.data()[r * cols + c];
                }
                for c in 0..cols {
                    let i = r * cols + c;
                    out.data_mut()[i] = s.data()[i] * (g.data()[i] - dot);
                }
            }
            vec![(a, out)]
        }
        Op::SumAll(a) => {
            let gv = g.data()[0];
            vec![(a, Tensor::filled(val(a).dims(), gv))]
        }
        Op::MeanAll(a) => {
            let n = val(a).len() as f64;
            let gv = g.data()[0] / n;
            vec![(a, Tensor::filled(val(a).dims(), gv))]
        }
        Op::AddRowBroadcast(m, r) => {
            vec![(m, g.clone()), (r, g.col_sums())]
        }
        Op::MulRowBroadcast(m, r) => {
            let dm = g.mul_row_broadcast(val(r));
            let dr = g.mul(val(m)).col_sums();
            vec![(m, dm), (r, dr)]
        }
        Op::HCat(a, b) => {
            let ca = val(a).dims()[1];
            let total = out_value.dims()[1];
            vec![
                (a, g.slice_cols(0, ca)),
                (b, g.slice_cols(ca, total)),
            ]
        }
        Op::VCat(a, b) => {
            let ra = val(a).dims()[0];
            let total = out_value.dims()[0];
            vec![
                (a, g.slice_rows(0, ra)),
                (b, g.slice_rows(ra, total)),
            ]
        }
        Op::SliceRows(a, start, end) => {
            let dims = val(a).dims().to_vec();
            let mut da = Tensor::zeros(&dims);
            let n = dims[1];
            da.data_mut()[start * n..end * n].copy_from_slice(g.data());
            vec![(a, da)]
        }
        Op::SliceCols(a, start, end) => {
            let dims = val(a).dims().to_vec();
            let mut da = Tensor::zeros(&dims);
            let (m, n) = (dims[0], dims[1]);
            let w = end - start;
            for i in 0..m {
                da.data_mut()[i * n + start..i * n + end]
                    .copy_from_slice(&g.data()[i * w..(i + 1) * w]);
            }
            vec![(a, da)]
        }
        Op::Reshape(a) => {
            let dims = val(a).dims().to_vec();
            vec![(a, g.reshaped(&dims))]
        }
        Op::Dropout(a, ref mask) => vec![(a, g.mul(mask))],
        Op::StackRows(ref vars) => vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, g.row(i)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_backward_distributes() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec1(vec![3.0, 4.0]));
        let s = tape.add(a, b);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_backward_swaps_operands() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![2.0, 3.0]));
        let b = tape.leaf(Tensor::from_vec1(vec![5.0, 7.0]));
        let p = tape.mul(a, b);
        let loss = tape.sum_all(p);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[5.0, 7.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn fanout_accumulates() {
        // loss = sum(a + a) → da = 2.
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![1.0]));
        let s = tape.add(a, a);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[2.0]);
    }

    #[test]
    fn mse_of_equal_inputs_has_zero_grad() {
        let tape = Tape::new();
        let p = tape.leaf(Tensor::from_vec1(vec![1.0, 2.0]));
        let t = tape.leaf(Tensor::from_vec1(vec![1.0, 2.0]));
        let loss = tape.mse(p, t);
        assert_eq!(tape.value(loss).data(), &[0.0]);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(p).unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![1.0, 2.0]));
        let _ = tape.backward(a);
    }

    #[test]
    fn unused_nodes_have_no_grad() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![1.0]));
        let b = tape.leaf(Tensor::from_vec1(vec![1.0]));
        let loss = tape.sum_all(a);
        let grads = tape.backward(loss);
        assert!(grads.get(b).is_none());
    }
}
