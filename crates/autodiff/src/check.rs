//! Finite-difference gradient checking.
//!
//! Used by tests throughout the workspace to verify that every
//! analytically-derived backward pass matches a central finite-difference
//! approximation of the same function.

use crate::{Tape, Var};
use ema_tensor::Tensor;

/// Result of a gradient check: the largest relative error observed.
#[derive(Debug, Clone, Copy)]
pub struct CheckReport {
    /// Maximum relative error between analytic and numeric gradient.
    pub max_rel_error: f64,
    /// Flat index of the worst element.
    pub worst_index: usize,
    /// Analytic gradient value at the worst element.
    pub analytic: f64,
    /// Numeric gradient value at the worst element.
    pub numeric: f64,
}

/// Checks the analytic gradient of `f` with respect to `input` against a
/// central finite difference with step `eps`.
///
/// `f` receives a fresh tape and the leaf var for the (possibly
/// perturbed) input and must return a scalar loss var. Relative error is
/// measured as `|a - n| / max(1, |a|, |n|)`.
pub fn check_gradient(
    input: &Tensor,
    eps: f64,
    f: impl Fn(&Tape, Var) -> Var,
) -> CheckReport {
    // Analytic gradient.
    let tape = Tape::new();
    let x = tape.leaf(input.clone());
    let loss = f(&tape, x);
    let grads = tape.backward(loss);
    let analytic = grads.get_or_zeros(x, input.dims());

    let mut report = CheckReport {
        max_rel_error: 0.0,
        worst_index: 0,
        analytic: 0.0,
        numeric: 0.0,
    };

    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;

        let lp = eval_scalar(&plus, &f);
        let lm = eval_scalar(&minus, &f);
        let numeric = (lp - lm) / (2.0 * eps);
        let a = analytic.data()[i];
        let denom = 1.0f64.max(a.abs()).max(numeric.abs());
        let rel = (a - numeric).abs() / denom;
        if rel > report.max_rel_error {
            report = CheckReport {
                max_rel_error: rel,
                worst_index: i,
                analytic: a,
                numeric,
            };
        }
    }
    report
}

fn eval_scalar(input: &Tensor, f: &impl Fn(&Tape, Var) -> Var) -> f64 {
    let tape = Tape::new();
    let x = tape.leaf(input.clone());
    let loss = f(&tape, x);
    let v = tape.value(loss);
    assert_eq!(v.len(), 1, "gradient check requires a scalar loss");
    v.data()[0]
}

/// Asserts the gradient check passes within `tol`; panics with a
/// diagnostic otherwise. The workhorse of the op test-suites.
pub fn assert_gradients_close(input: &Tensor, tol: f64, f: impl Fn(&Tape, Var) -> Var) {
    let report = check_gradient(input, 1e-5, f);
    assert!(
        report.max_rel_error < tol,
        "gradient mismatch at flat index {}: analytic {} vs numeric {} (rel err {:.3e}, tol {:.1e})",
        report.worst_index,
        report.analytic,
        report.numeric,
        report.max_rel_error,
        tol
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_for_correct_gradient() {
        let x = Tensor::from_vec1(vec![0.3, -0.7, 1.2]);
        assert_gradients_close(&x, 1e-6, |t, v| {
            let s = t.square(v);
            t.sum_all(s)
        });
    }

    #[test]
    fn detects_wrong_gradient() {
        // scale-by-3 forward but treat as identity via a constant leaf
        // trick would be contrived; instead verify the report numbers on
        // a known function: loss = sum(2x) -> grad 2.
        let x = Tensor::from_vec1(vec![1.0]);
        let report = check_gradient(&x, 1e-5, |t, v| {
            let s = t.scale(v, 2.0);
            t.sum_all(s)
        });
        assert!(report.max_rel_error < 1e-8);
        // And that the numeric side really sees slope 2.
        let report2 = check_gradient(&x, 1e-5, |t, v| {
            let s = t.scale(v, 2.0);
            t.sum_all(s)
        });
        assert!((report2.numeric - 0.0).abs() < 3.0); // numeric recorded only for worst element
    }
}
