//! # ema-autodiff
//!
//! Reverse-mode automatic differentiation over [`ema_tensor::Tensor`].
//!
//! The design is a classic *tape*: every operation appends a node holding
//! its forward value and an [`Op`] descriptor; [`Tape::backward`] walks the
//! tape in reverse, propagating gradients to every node. Variables are
//! plain `Copy` indices ([`Var`]), so model code reads naturally:
//!
//! ```
//! use ema_autodiff::Tape;
//! use ema_tensor::Tensor;
//!
//! let tape = Tape::new();
//! let w = tape.leaf(Tensor::from_vec2(vec![vec![2.0]]).unwrap());
//! let x = tape.leaf(Tensor::from_vec2(vec![vec![3.0]]).unwrap());
//! let y = tape.matmul(w, x);          // y = w · x
//! let loss = tape.sum_all(y);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(w).unwrap().data(), &[3.0]); // ∂(wx)/∂w = x
//! ```
//!
//! Training loops in `ema-nn`/`ema-models` build a fresh tape per epoch:
//! parameters live outside the tape as plain tensors, are inserted as
//! leaves each forward pass, and their gradients are read back from the
//! returned [`Grads`].
//!
//! Every differentiable op is covered by a central-finite-difference
//! gradient check in this crate's tests (see [`check`]).

#![warn(missing_docs)]

pub mod check;
mod grads;
mod op;
mod tape;
mod tape_ops_batched;
mod tape_ops_group;
mod tape_ops_linalg;
mod tape_ops_nn;
mod tape_ops_shape;

pub use grads::Grads;
pub use op::Op;
pub use tape::{Tape, Var};
