//! The operation descriptor recorded on the tape for each node.

use crate::Var;
use ema_tensor::Tensor;

/// Describes how a tape node was produced from its parents.
///
/// The forward value is stored on the node itself; `Op` carries exactly
/// the information needed to route gradients backwards. Ops that need
/// forward-time randomness (dropout) store the sampled mask inline so the
/// backward pass is deterministic.
#[derive(Debug, Clone)]
pub enum Op {
    /// An input with no parents (constant, input data or parameter).
    Leaf,
    /// Elementwise sum of two same-shaped nodes.
    Add(Var, Var),
    /// Elementwise difference.
    Sub(Var, Var),
    /// Elementwise (Hadamard) product.
    Mul(Var, Var),
    /// Elementwise quotient.
    Div(Var, Var),
    /// Adds a compile-time constant scalar.
    AddScalar(Var, f64),
    /// Multiplies by a constant scalar.
    Scale(Var, f64),
    /// Matrix product `[m,k] x [k,n]`.
    Matmul(Var, Var),
    /// Transpose-aware product `aᵀ·b`: `[k,m]ᵀ x [k,n]`.
    MatmulTN(Var, Var),
    /// Transpose-aware product `a·bᵀ`: `[m,k] x [n,k]ᵀ`.
    MatmulNT(Var, Var),
    /// Fused linear layer `x·wᵀ + bias` for `x: [n,k]`, `w: [out,k]`,
    /// `bias: [out]`. Fields: x, w, bias.
    Addmm(Var, Var, Var),
    /// Fused LSTM cell step. Fields: pre-activation gates `[n, 4H]`
    /// (i|f|g|o order) and previous cell state `[n, H]`; the node value
    /// is `[n, 2H]` holding `[h' | c']`.
    LstmCell(Var, Var),
    /// Fused GRU cell step. Fields: input-side and hidden-side gate
    /// pre-activations (both `[n, 3H]`, r|z|n order) and previous
    /// hidden state `[n, H]`; the node value is the new hidden state.
    GruCell(Var, Var, Var),
    /// Matrix transpose.
    Transpose(Var),
    /// Elementwise `tanh`.
    Tanh(Var),
    /// Elementwise logistic sigmoid.
    Sigmoid(Var),
    /// Elementwise `max(0, x)`.
    Relu(Var),
    /// Elementwise leaky ReLU with the given negative slope.
    LeakyRelu(Var, f64),
    /// Elementwise square.
    Square(Var),
    /// Softmax over the last axis (rank 1 or 2).
    SoftmaxLast(Var),
    /// Sum of all elements, producing a `[1]` tensor.
    SumAll(Var),
    /// Mean of all elements, producing a `[1]` tensor.
    MeanAll(Var),
    /// `[r,c]` matrix plus a `[c]` row vector broadcast over rows.
    AddRowBroadcast(Var, Var),
    /// `[r,c]` matrix times a `[c]` row vector broadcast over rows.
    MulRowBroadcast(Var, Var),
    /// Horizontal concatenation of two matrices.
    HCat(Var, Var),
    /// Vertical concatenation of two matrices.
    VCat(Var, Var),
    /// Row range `[start, end)` of a matrix. Fields: input, start, end.
    SliceRows(Var, usize, usize),
    /// Column range `[start, end)` of a matrix.
    SliceCols(Var, usize, usize),
    /// Same data viewed under a different shape.
    Reshape(Var),
    /// Inverted dropout; the stored mask holds `0` or `1/(1-p)` factors.
    Dropout(Var, Tensor),
    /// Stacks rank-1 parents into the rows of a matrix.
    StackRows(Vec<Var>),
    /// Batched matrix product of a window-stacked lhs against one
    /// shared rhs: `[W·r, k] x [k, n] -> [W·r, n]`. Forward is a single
    /// `matmul`; backward keeps the stacked gradient dense but defers
    /// the shared rhs gradient as per-window pieces replayed in the
    /// per-window graph's accumulation order. Fields: x, rhs, window
    /// count, grouped-replay flag (see `Grads`' pending machinery).
    BatchedMatmul(Var, Var, usize, bool),
    /// Batched `x · rhsᵀ` against one shared rhs:
    /// `[W·r, k] x [n, k]ᵀ -> [W·r, n]`. Fields: x, rhs, window count.
    BatchedMatmulNT(Var, Var, usize),
    /// Batched fused linear layer `x·wᵀ + bias` with shared weights:
    /// `[W·r, k] x [out, k]ᵀ + [out]`. Fields: x, w, bias, window count.
    BatchedAddmm(Var, Var, Var, usize),
    /// Shared `[c]` row added to every row of a `[W·r, c]` stack.
    /// Fields: m, row, window count.
    BatchedAddRow(Var, Var, usize),
    /// Shared lhs times per-window blocks: `lhs: [p, q]` times each
    /// `[q, n]` block of `x: [W·q, n]`, giving `[W·p, n]`. Fields:
    /// lhs, x, window count.
    BlockLhsMatmul(Var, Var, usize),
    /// Blockwise product of two window stacks: block `w` of
    /// `x: [W·m, k]` times block `w` of `y: [W·k, n]` -> `[W·m, n]`.
    /// Fields: x, y, window count.
    BlockMatmul(Var, Var, usize),
    /// Blockwise `x_w · y_wᵀ`: block `w` of `x: [W·m, k]` times the
    /// transpose of block `w` of `y: [W·n, k]` -> `[W·m, n]`. Fields:
    /// x, y, window count.
    BlockMatmulNT(Var, Var, usize),
    /// Stacks `T` window-blocked states (each `[W·n, h]`) into
    /// `[W·T, n·h]`: output block `w`, row `t` is the flattening of
    /// state `t`'s block `w`. Fields: states, window count.
    StackWindowBlocks(Vec<Var>, usize),
    /// Per-group fused linear layer over a cohort row stack: group `b`
    /// of `x: [Σ wins·rows, k]` (its `wins[b]·rows` contiguous rows)
    /// times its own `w_b: [out, k]ᵀ` plus `bias_b: [out]`, giving
    /// `[Σ wins·rows, out]`. Forward is one `addmm` per group on the
    /// row block; backward keeps the stacked `dx` dense and defers each
    /// group's (w, bias) gradients as per-window pieces of `rows` rows
    /// replayed in the per-individual graph's accumulation order.
    /// Fields: x, per-group `(w, bias)` pairs, per-group window counts,
    /// rows per window block.
    GroupLinear(Var, Vec<(Var, Var)>, Vec<usize>, usize),
    /// Per-group matrix product of a cohort row stack against each
    /// group's own rhs: group `b` of `x: [Σ wins·rows, k]` times its
    /// `rhs_b: [k, n]`, giving `[Σ wins·rows, n]`. Backward keeps the
    /// stacked `dx` dense and defers each group's rhs gradient as
    /// per-window pieces. Fields: x, per-group rhs, per-group window
    /// counts, rows per window block, grouped-replay flag (see `Grads`'
    /// pending machinery).
    GroupMatmul(Var, Vec<Var>, Vec<usize>, usize, bool),
    /// Per-group `x · rhsᵀ` against each group's own rhs: group `b` of
    /// `x: [Σ wins·rows, k]` times `rhs_b: [n, k]ᵀ`, giving
    /// `[Σ wins·rows, n]`. Fields: x, per-group rhs, per-group window
    /// counts, rows per window block.
    GroupMatmulNT(Var, Vec<Var>, Vec<usize>, usize),
    /// Each group's own `[c]` row added to every row of that group's
    /// block of a `[Σ wins·rows, c]` cohort stack. Fields: m, per-group
    /// rows, per-group window counts, rows per window block.
    GroupAddRow(Var, Vec<Var>, Vec<usize>, usize),
    /// Per-group block-lhs product: group `b`'s own `lhs_b: [p, q]`
    /// times each `[q, n]` window block of its slice of
    /// `x: [Σ wins·q, n]`, giving `[Σ wins·p, n]` — the grouped twin of
    /// `BlockLhsMatmul` for per-individual graph constants. Fields:
    /// per-group lhs, x, per-group window counts.
    GroupBlockLhsMatmul(Vec<Var>, Var, Vec<usize>),
}

impl Op {
    /// The parent variables this op reads, in positional order.
    #[must_use]
    pub fn parents(&self) -> Vec<Var> {
        match self {
            Op::Leaf => vec![],
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::Div(a, b)
            | Op::Matmul(a, b)
            | Op::MatmulTN(a, b)
            | Op::MatmulNT(a, b)
            | Op::LstmCell(a, b)
            | Op::AddRowBroadcast(a, b)
            | Op::MulRowBroadcast(a, b)
            | Op::HCat(a, b)
            | Op::VCat(a, b)
            | Op::BatchedMatmul(a, b, _, _)
            | Op::BatchedMatmulNT(a, b, _)
            | Op::BatchedAddRow(a, b, _)
            | Op::BlockLhsMatmul(a, b, _)
            | Op::BlockMatmul(a, b, _)
            | Op::BlockMatmulNT(a, b, _) => vec![*a, *b],
            Op::Addmm(a, b, c) | Op::GruCell(a, b, c) | Op::BatchedAddmm(a, b, c, _) => {
                vec![*a, *b, *c]
            }
            Op::AddScalar(a, _)
            | Op::Scale(a, _)
            | Op::Transpose(a)
            | Op::Tanh(a)
            | Op::Sigmoid(a)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Square(a)
            | Op::SoftmaxLast(a)
            | Op::SumAll(a)
            | Op::MeanAll(a)
            | Op::SliceRows(a, _, _)
            | Op::SliceCols(a, _, _)
            | Op::Reshape(a)
            | Op::Dropout(a, _) => vec![*a],
            Op::StackRows(vars) => vars.clone(),
            Op::StackWindowBlocks(vars, _) => vars.clone(),
            Op::GroupLinear(x, params, _, _) => {
                let mut out = vec![*x];
                for &(w, b) in params {
                    out.push(w);
                    out.push(b);
                }
                out
            }
            Op::GroupMatmul(x, rhses, _, _, _)
            | Op::GroupMatmulNT(x, rhses, _, _)
            | Op::GroupAddRow(x, rhses, _, _) => {
                let mut out = vec![*x];
                out.extend_from_slice(rhses);
                out
            }
            Op::GroupBlockLhsMatmul(lhses, x, _) => {
                let mut out = lhses.clone();
                out.push(*x);
                out
            }
        }
    }

    /// True for nodes with no parents.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Op::Leaf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parents_of_binary_ops() {
        let a = Var::from_raw(0);
        let b = Var::from_raw(1);
        assert_eq!(Op::Add(a, b).parents(), vec![a, b]);
        assert_eq!(Op::Matmul(a, b).parents(), vec![a, b]);
    }

    #[test]
    fn parents_of_leaf_is_empty() {
        assert!(Op::Leaf.parents().is_empty());
        assert!(Op::Leaf.is_leaf());
    }

    #[test]
    fn parents_of_stack_preserves_order() {
        let vars: Vec<Var> = (0..4).map(Var::from_raw).collect();
        assert_eq!(Op::StackRows(vars.clone()).parents(), vars);
    }
}
