//! Linear-algebra tape operations.

use crate::{Op, Tape, Var};

impl Tape {
    /// Matrix product `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].matmul(v[1]), &[a, b]);
        self.push(out, Op::Matmul(a, b))
    }

    /// Matrix transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].transpose(), &[a]);
        self.push(out, Op::Transpose(a))
    }

    /// Adds a `[c]` row vector to every row of an `[r,c]` matrix.
    pub fn add_row_broadcast(&self, m: Var, row: Var) -> Var {
        let out = self.compute(|v| v[0].add_row_broadcast(v[1]), &[m, row]);
        self.push(out, Op::AddRowBroadcast(m, row))
    }

    /// Multiplies every row of an `[r,c]` matrix by a `[c]` row vector.
    pub fn mul_row_broadcast(&self, m: Var, row: Var) -> Var {
        let out = self.compute(|v| v[0].mul_row_broadcast(v[1]), &[m, row]);
        self.push(out, Op::MulRowBroadcast(m, row))
    }

    /// A linear layer step: `x · wᵀ + bias` for `x: [n, in]`,
    /// `w: [out, in]`, `bias: [out]`. Convenience composition used by
    /// every model.
    pub fn linear(&self, x: Var, w: Var, bias: Var) -> Var {
        let wt = self.transpose(w);
        let xw = self.matmul(x, wt);
        self.add_row_broadcast(xw, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Tensor;

    #[test]
    fn matmul_backward_known_values() {
        // loss = sum(A·B); dA = 1·Bᵀ rows, dB = Aᵀ·1.
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec2(vec![vec![1.0, 2.0]]).unwrap()); // [1,2]
        let b = tape.leaf(Tensor::from_vec2(vec![vec![3.0], vec![4.0]]).unwrap()); // [2,1]
        let c = tape.matmul(a, b); // [[11]]
        assert_eq!(tape.value(c).data(), &[11.0]);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[3.0, 4.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn transpose_backward_transposes_grad() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(&[2, 3], (0..6).map(f64::from).collect()).unwrap());
        let t = tape.transpose(a);
        assert_eq!(tape.dims(t), vec![3, 2]);
        let loss = tape.sum_all(t);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().dims(), &[2, 3]);
    }

    #[test]
    fn linear_shapes() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[5, 3]));
        let w = tape.leaf(Tensor::ones(&[4, 3]));
        let b = tape.leaf(Tensor::ones(&[4]));
        let y = tape.linear(x, w, b);
        assert_eq!(tape.dims(y), vec![5, 4]);
        // Each output = 3 * 1 + 1 = 4.
        assert!(tape.value(y).data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn bias_grad_is_column_sum() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[5, 3]));
        let w = tape.leaf(Tensor::zeros(&[2, 3]));
        let b = tape.leaf(Tensor::zeros(&[2]));
        let y = tape.linear(x, w, b);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        // 5 rows each contribute 1 to every bias element.
        assert_eq!(grads.get(b).unwrap().data(), &[5.0, 5.0]);
    }
}
