//! Linear-algebra tape operations.

use crate::{Op, Tape, Var};

impl Tape {
    /// Matrix product `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].matmul(v[1]), &[a, b]);
        self.push(out, Op::Matmul(a, b))
    }

    /// Transpose-aware product `aᵀ · b`: `[k,m] x [k,n] -> [m,n]`
    /// without materializing the transpose. Bit-identical to
    /// `matmul(transpose(a), b)` but records a single node.
    pub fn matmul_tn(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].matmul_tn(v[1]), &[a, b]);
        self.push(out, Op::MatmulTN(a, b))
    }

    /// Transpose-aware product `a · bᵀ`: `[m,k] x [n,k] -> [m,n]`
    /// without materializing the transpose. Bit-identical to
    /// `matmul(a, transpose(b))` but records a single node.
    pub fn matmul_nt(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].matmul_nt(v[1]), &[a, b]);
        self.push(out, Op::MatmulNT(a, b))
    }

    /// Matrix transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let out = self.compute(|v| v[0].transpose(), &[a]);
        self.push(out, Op::Transpose(a))
    }

    /// Adds a `[c]` row vector to every row of an `[r,c]` matrix.
    pub fn add_row_broadcast(&self, m: Var, row: Var) -> Var {
        let out = self.compute(|v| v[0].add_row_broadcast(v[1]), &[m, row]);
        self.push(out, Op::AddRowBroadcast(m, row))
    }

    /// Multiplies every row of an `[r,c]` matrix by a `[c]` row vector.
    pub fn mul_row_broadcast(&self, m: Var, row: Var) -> Var {
        let out = self.compute(|v| v[0].mul_row_broadcast(v[1]), &[m, row]);
        self.push(out, Op::MulRowBroadcast(m, row))
    }

    /// A linear layer step: `x · wᵀ + bias` for `x: [n, in]`,
    /// `w: [out, in]`, `bias: [out]`. Used by every model; records a
    /// single fused node instead of the transpose → matmul → broadcast
    /// chain (bit-identical values, three fewer intermediate tensors).
    pub fn linear(&self, x: Var, w: Var, bias: Var) -> Var {
        let out = self.compute(|v| v[0].addmm(v[1], v[2]), &[x, w, bias]);
        self.push(out, Op::Addmm(x, w, bias))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Tensor;

    #[test]
    fn matmul_backward_known_values() {
        // loss = sum(A·B); dA = 1·Bᵀ rows, dB = Aᵀ·1.
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec2(vec![vec![1.0, 2.0]]).unwrap()); // [1,2]
        let b = tape.leaf(Tensor::from_vec2(vec![vec![3.0], vec![4.0]]).unwrap()); // [2,1]
        let c = tape.matmul(a, b); // [[11]]
        assert_eq!(tape.value(c).data(), &[11.0]);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[3.0, 4.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn transpose_backward_transposes_grad() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(&[2, 3], (0..6).map(f64::from).collect()).unwrap());
        let t = tape.transpose(a);
        assert_eq!(tape.dims(t), vec![3, 2]);
        let loss = tape.sum_all(t);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().dims(), &[2, 3]);
    }

    #[test]
    fn matmul_tn_matches_composed_graph() {
        let mut rng = ema_tensor::Rng64::seed_from(11);
        let av = Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut rng);
        let bv = Tensor::rand_normal(&[4, 5], 0.0, 1.0, &mut rng);

        let tape = Tape::new();
        let a = tape.leaf(av.clone());
        let b = tape.leaf(bv.clone());
        let fused = tape.matmul_tn(a, b);
        let loss = tape.sum_all(fused);
        let grads = tape.backward(loss);

        let reference = Tape::new();
        let ra = reference.leaf(av);
        let rb = reference.leaf(bv);
        let composed = reference.matmul(reference.transpose(ra), rb);
        let rloss = reference.sum_all(composed);
        let rgrads = reference.backward(rloss);

        assert_eq!(tape.value(fused).data(), reference.value(composed).data());
        assert_eq!(grads.get(a).unwrap().data(), rgrads.get(ra).unwrap().data());
        assert_eq!(grads.get(b).unwrap().data(), rgrads.get(rb).unwrap().data());
    }

    #[test]
    fn matmul_nt_matches_composed_graph() {
        let mut rng = ema_tensor::Rng64::seed_from(12);
        let av = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let bv = Tensor::rand_normal(&[5, 4], 0.0, 1.0, &mut rng);

        let tape = Tape::new();
        let a = tape.leaf(av.clone());
        let b = tape.leaf(bv.clone());
        let fused = tape.matmul_nt(a, b);
        let loss = tape.sum_all(fused);
        let grads = tape.backward(loss);

        let reference = Tape::new();
        let ra = reference.leaf(av);
        let rb = reference.leaf(bv);
        let composed = reference.matmul(ra, reference.transpose(rb));
        let rloss = reference.sum_all(composed);
        let rgrads = reference.backward(rloss);

        assert_eq!(tape.value(fused).data(), reference.value(composed).data());
        assert_eq!(grads.get(a).unwrap().data(), rgrads.get(ra).unwrap().data());
        assert_eq!(grads.get(b).unwrap().data(), rgrads.get(rb).unwrap().data());
    }

    #[test]
    fn linear_shapes() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[5, 3]));
        let w = tape.leaf(Tensor::ones(&[4, 3]));
        let b = tape.leaf(Tensor::ones(&[4]));
        let y = tape.linear(x, w, b);
        assert_eq!(tape.dims(y), vec![5, 4]);
        // Each output = 3 * 1 + 1 = 4.
        assert!(tape.value(y).data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn bias_grad_is_column_sum() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[5, 3]));
        let w = tape.leaf(Tensor::zeros(&[2, 3]));
        let b = tape.leaf(Tensor::zeros(&[2]));
        let y = tape.linear(x, w, b);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        // 5 rows each contribute 1 to every bias element.
        assert_eq!(grads.get(b).unwrap().data(), &[5.0, 5.0]);
    }
}
