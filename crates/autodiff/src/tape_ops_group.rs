//! Grouped-operand tape operations for cohort-batched training.
//!
//! A cohort stack row-stacks B individuals' window batches into one
//! operand (`[Σ_b rows_b, c]`, individual-major); each individual keeps
//! its *own* parameters and graph constants, so the shared-operand
//! batched ops in `tape_ops_batched` do not apply. Each op here is the
//! grouped-operand twin of a batched op: group `b`'s contiguous row
//! block goes through its own parameter/constant.
//!
//! Row geometry: group `b` spans `group_wins[b] · block_rows`
//! contiguous rows — `block_rows` is 1 for window-level stacks (LSTM
//! hidden rows, attention scores) and `V` (nodes per window) for the
//! graph models' node-level stacks.
//!
//! The bit-identity contract mirrors the batched ops: forward runs the
//! exact per-individual kernel on each row block (the kernel contract
//! makes every output row independent of the batch height, and the
//! per-group call even repeats the per-individual blocked-path
//! decision, since the block's `(m, k, n)` matches); backward keeps
//! the stacked `dx` dense and defers each group's weight/bias/constant
//! gradients as per-window pieces anchored at the group's row offset,
//! replayed in the per-individual graph's accumulation order by the
//! pending machinery in `Grads`/`Tape::backward_into`.

use crate::tape_ops_batched::{gather_window_cols, scatter_window_cols};
use crate::{Op, Tape, Var};
use ema_tensor::{kernels, pool, Tensor};

/// Asserts the shared group-geometry preconditions and returns the
/// total row count `Σ group_wins[b] · block_rows`.
fn group_rows_check(name: &str, operands: usize, group_wins: &[usize], block_rows: usize) -> usize {
    assert_eq!(
        operands,
        group_wins.len(),
        "{name}: {operands} per-group operands vs {} window counts",
        group_wins.len()
    );
    assert!(!group_wins.is_empty(), "{name} needs at least one group");
    assert!(block_rows > 0, "{name}: block_rows must be positive");
    for (b, &w) in group_wins.iter().enumerate() {
        assert!(w > 0, "{name}: group {b} has zero windows");
    }
    group_wins.iter().sum::<usize>() * block_rows
}

impl Tape {
    /// Per-group fused linear layer over a window-level cohort stack:
    /// [`Tape::group_linear_blocks`] with one row per window.
    ///
    /// # Panics
    /// Panics when `params` and `group_rows` disagree in length, are
    /// empty, the row counts don't sum to `x`'s rows, a group has zero
    /// rows, or any group's parameter shapes mismatch.
    pub fn group_linear(&self, x: Var, params: &[(Var, Var)], group_rows: &[usize]) -> Var {
        self.group_linear_blocks(x, params, group_rows, 1)
    }

    /// Per-group fused linear layer over a cohort row stack: group `b`
    /// (its `group_wins[b] · block_rows` contiguous rows of
    /// `x: [Σ wins·rows, k]`) times its own `w_b: [out, k]ᵀ` plus
    /// `bias_b: [out]`, producing `[Σ wins·rows, out]`. All groups must
    /// share the in/out widths.
    ///
    /// # Panics
    /// Panics when `params` and `group_wins` disagree in length, are
    /// empty, the row counts don't sum to `x`'s rows, a group has zero
    /// windows, or any group's parameter shapes mismatch.
    pub fn group_linear_blocks(
        &self,
        x: Var,
        params: &[(Var, Var)],
        group_wins: &[usize],
        block_rows: usize,
    ) -> Var {
        let total = group_rows_check("group_linear", params.len(), group_wins, block_rows);
        let mut vars = Vec::with_capacity(1 + 2 * params.len());
        vars.push(x);
        for &(w, b) in params {
            vars.push(w);
            vars.push(b);
        }
        let out = self.compute(
            |v| {
                let xv = v[0];
                let k = xv.dims()[1];
                assert_eq!(
                    total,
                    xv.dims()[0],
                    "group_linear: group rows must sum to the stacked row count {}",
                    xv.dims()[0]
                );
                let out_cols = v[1].dims()[0];
                let mut out = pool::take_uninit(total * out_cols);
                let mut off = 0usize;
                for (b, &wins) in group_wins.iter().enumerate() {
                    let r = wins * block_rows;
                    let (wv, bv) = (v[1 + 2 * b], v[2 + 2 * b]);
                    assert_eq!(
                        wv.dims(),
                        &[out_cols, k],
                        "group_linear: group {b} weight shape mismatch"
                    );
                    assert_eq!(
                        bv.len(),
                        out_cols,
                        "group_linear: group {b} bias length mismatch"
                    );
                    kernels::addmm_into(
                        &xv.data()[off * k..(off + r) * k],
                        wv.data(),
                        bv.data(),
                        &mut out[off * out_cols..(off + r) * out_cols],
                        r,
                        k,
                        out_cols,
                    );
                    off += r;
                }
                Tensor::from_vec(&[total, out_cols], out).expect("group_linear shape")
            },
            &vars,
        );
        self.push(
            out,
            Op::GroupLinear(x, params.to_vec(), group_wins.to_vec(), block_rows),
        )
    }

    /// Per-group matrix product: group `b`'s row block of
    /// `x: [Σ wins·rows, k]` times its own `rhs_b: [k, n]`, producing
    /// `[Σ wins·rows, n]`. The grouped twin of `batched_matmul`.
    ///
    /// # Panics
    /// Panics on length/shape mismatches (see [`Tape::group_linear_blocks`]).
    pub fn group_matmul(
        &self,
        x: Var,
        rhses: &[Var],
        group_wins: &[usize],
        block_rows: usize,
    ) -> Var {
        self.group_matmul_impl(x, rhses, group_wins, block_rows, false)
    }

    /// [`Tape::group_matmul`] whose deferred rhs gradients replay with
    /// window-grouped accumulation — for oracle graphs that fold one
    /// window's pieces before accumulating (e.g. attention scores built
    /// via `batched_matmul_grouped`).
    pub fn group_matmul_grouped(
        &self,
        x: Var,
        rhses: &[Var],
        group_wins: &[usize],
        block_rows: usize,
    ) -> Var {
        self.group_matmul_impl(x, rhses, group_wins, block_rows, true)
    }

    fn group_matmul_impl(
        &self,
        x: Var,
        rhses: &[Var],
        group_wins: &[usize],
        block_rows: usize,
        grouped: bool,
    ) -> Var {
        let total = group_rows_check("group_matmul", rhses.len(), group_wins, block_rows);
        let mut vars = Vec::with_capacity(1 + rhses.len());
        vars.push(x);
        vars.extend_from_slice(rhses);
        let out = self.compute(
            |v| {
                let xv = v[0];
                let k = xv.dims()[1];
                assert_eq!(
                    total,
                    xv.dims()[0],
                    "group_matmul: group rows must sum to the stacked row count {}",
                    xv.dims()[0]
                );
                let n = v[1].dims()[1];
                let mut out = pool::take_uninit(total * n);
                let mut off = 0usize;
                for (b, &wins) in group_wins.iter().enumerate() {
                    let r = wins * block_rows;
                    let rv = v[1 + b];
                    assert_eq!(
                        rv.dims(),
                        &[k, n],
                        "group_matmul: group {b} rhs shape mismatch"
                    );
                    kernels::matmul_into(
                        &xv.data()[off * k..(off + r) * k],
                        rv.data(),
                        &mut out[off * n..(off + r) * n],
                        r,
                        k,
                        n,
                    );
                    off += r;
                }
                Tensor::from_vec(&[total, n], out).expect("group_matmul shape")
            },
            &vars,
        );
        self.push(
            out,
            Op::GroupMatmul(x, rhses.to_vec(), group_wins.to_vec(), block_rows, grouped),
        )
    }

    /// Per-group `x · rhsᵀ`: group `b`'s row block of
    /// `x: [Σ wins·rows, k]` times its own `rhs_b: [n, k]ᵀ`, producing
    /// `[Σ wins·rows, n]`. The grouped twin of `batched_matmul_nt`.
    ///
    /// # Panics
    /// Panics on length/shape mismatches (see [`Tape::group_linear_blocks`]).
    pub fn group_matmul_nt(
        &self,
        x: Var,
        rhses: &[Var],
        group_wins: &[usize],
        block_rows: usize,
    ) -> Var {
        let total = group_rows_check("group_matmul_nt", rhses.len(), group_wins, block_rows);
        let mut vars = Vec::with_capacity(1 + rhses.len());
        vars.push(x);
        vars.extend_from_slice(rhses);
        let out = self.compute(
            |v| {
                let xv = v[0];
                let k = xv.dims()[1];
                assert_eq!(
                    total,
                    xv.dims()[0],
                    "group_matmul_nt: group rows must sum to the stacked row count {}",
                    xv.dims()[0]
                );
                let n = v[1].dims()[0];
                let mut out = pool::take_uninit(total * n);
                let mut off = 0usize;
                for (b, &wins) in group_wins.iter().enumerate() {
                    let r = wins * block_rows;
                    let rv = v[1 + b];
                    assert_eq!(
                        rv.dims(),
                        &[n, k],
                        "group_matmul_nt: group {b} rhs shape mismatch"
                    );
                    kernels::matmul_nt_into(
                        &xv.data()[off * k..(off + r) * k],
                        rv.data(),
                        &mut out[off * n..(off + r) * n],
                        r,
                        k,
                        n,
                    );
                    off += r;
                }
                Tensor::from_vec(&[total, n], out).expect("group_matmul_nt shape")
            },
            &vars,
        );
        self.push(
            out,
            Op::GroupMatmulNT(x, rhses.to_vec(), group_wins.to_vec(), block_rows),
        )
    }

    /// Each group's own `[c]` row added to every row of that group's
    /// block of `m: [Σ wins·rows, c]`. The grouped twin of
    /// `batched_add_row_broadcast`.
    ///
    /// # Panics
    /// Panics on length/shape mismatches (see [`Tape::group_linear_blocks`]).
    pub fn group_add_row_broadcast(
        &self,
        m: Var,
        rows: &[Var],
        group_wins: &[usize],
        block_rows: usize,
    ) -> Var {
        let total = group_rows_check("group_add_row_broadcast", rows.len(), group_wins, block_rows);
        let mut vars = Vec::with_capacity(1 + rows.len());
        vars.push(m);
        vars.extend_from_slice(rows);
        let out = self.compute(
            |v| {
                let mv = v[0];
                let c = mv.dims()[1];
                assert_eq!(
                    total,
                    mv.dims()[0],
                    "group_add_row_broadcast: group rows must sum to the stacked row count {}",
                    mv.dims()[0]
                );
                let mut out = pool::take_uninit(total * c);
                out.copy_from_slice(mv.data());
                let mut off = 0usize;
                for (b, &wins) in group_wins.iter().enumerate() {
                    let r = wins * block_rows;
                    let rv = v[1 + b];
                    assert_eq!(
                        rv.len(),
                        c,
                        "group_add_row_broadcast: group {b} row length mismatch"
                    );
                    let row = rv.data();
                    for chunk in out[off * c..(off + r) * c].chunks_exact_mut(c) {
                        for (o, &a) in chunk.iter_mut().zip(row) {
                            *o += a;
                        }
                    }
                    off += r;
                }
                Tensor::from_vec(mv.dims(), out).expect("group_add_row_broadcast shape")
            },
            &vars,
        );
        self.push(
            out,
            Op::GroupAddRow(m, rows.to_vec(), group_wins.to_vec(), block_rows),
        )
    }

    /// Per-group block-lhs product: group `b`'s own `lhs_b: [p, q]`
    /// (a per-individual graph constant or derived adjacency) times
    /// each `[q, n]` window block of its slice of `x: [Σ wins·q, n]`,
    /// producing `[Σ wins·p, n]`. The grouped twin of
    /// `block_lhs_matmul`; all groups must share the lhs shape.
    ///
    /// # Panics
    /// Panics on length/shape mismatches (see [`Tape::group_linear_blocks`]).
    pub fn group_block_lhs_matmul(&self, lhses: &[Var], x: Var, group_wins: &[usize]) -> Var {
        let total_wins =
            group_rows_check("group_block_lhs_matmul", lhses.len(), group_wins, 1);
        let mut vars = Vec::with_capacity(1 + lhses.len());
        vars.extend_from_slice(lhses);
        vars.push(x);
        let out = self.compute(
            |v| {
                let xv = v[lhses.len()];
                let n = xv.dims()[1];
                let (p, q) = (v[0].dims()[0], v[0].dims()[1]);
                assert_eq!(
                    xv.dims()[0],
                    total_wins * q,
                    "group_block_lhs_matmul: x rows must be Σ wins ({total_wins}) x lhs cols ({q})"
                );
                let mut out = pool::take_uninit(total_wins * p * n);
                let (mut xoff, mut goff) = (0usize, 0usize);
                for (b, &wins) in group_wins.iter().enumerate() {
                    let lv = v[b];
                    assert_eq!(
                        lv.dims(),
                        &[p, q],
                        "group_block_lhs_matmul: group {b} lhs shape mismatch"
                    );
                    // Same gather → one matmul → scatter as the shared
                    // op, restricted to this group's window span, so
                    // each window block is bit-identical to the
                    // per-individual `block_lhs_matmul`.
                    let xhat =
                        gather_window_cols(&xv.data()[xoff * n..(xoff + wins * q) * n], wins, q, n);
                    let mut yhat = pool::take_uninit(p * wins * n);
                    kernels::matmul_into(lv.data(), &xhat, &mut yhat, p, q, wins * n);
                    pool::recycle(xhat);
                    let y = scatter_window_cols(&yhat, wins, p, n);
                    pool::recycle(yhat);
                    out[goff * n..(goff + wins * p) * n].copy_from_slice(&y);
                    pool::recycle(y);
                    xoff += wins * q;
                    goff += wins * p;
                }
                Tensor::from_vec(&[total_wins * p, n], out).expect("group_block_lhs_matmul shape")
            },
            &vars,
        );
        self.push(
            out,
            Op::GroupBlockLhsMatmul(lhses.to_vec(), x, group_wins.to_vec()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Rng64;

    fn rand(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        Tensor::rand_normal(dims, 0.0, 1.0, &mut rng)
    }

    /// The cohort stack through `group_linear` must match B separate
    /// per-individual `batched_linear` graphs bit for bit — values and
    /// every parameter gradient, including the deferred replay order
    /// through a chain of two grouped layers (as in an unrolled RNN).
    #[test]
    fn group_linear_matches_per_individual_graphs() {
        let rows = [3usize, 1, 4];
        let (k, o) = (5, 2);
        let total: usize = rows.iter().sum();
        let xv = rand(&[total, k], 1);
        let ws: Vec<Tensor> = (0..rows.len()).map(|b| rand(&[o, k], 10 + b as u64)).collect();
        let bs: Vec<Tensor> = (0..rows.len()).map(|b| rand(&[o], 20 + b as u64)).collect();
        let w2s: Vec<Tensor> = (0..rows.len()).map(|b| rand(&[o, o], 30 + b as u64)).collect();
        let b2s: Vec<Tensor> = (0..rows.len()).map(|b| rand(&[o], 40 + b as u64)).collect();

        // Cohort graph: one stack, two grouped layers, one scalar loss
        // summing per-group mse-style terms.
        let tape = Tape::new();
        let x = tape.leaf(xv.clone());
        let params: Vec<(Var, Var)> = ws
            .iter()
            .zip(&bs)
            .map(|(w, b)| (tape.leaf(w.clone()), tape.leaf(b.clone())))
            .collect();
        let params2: Vec<(Var, Var)> = w2s
            .iter()
            .zip(&b2s)
            .map(|(w, b)| (tape.leaf(w.clone()), tape.leaf(b.clone())))
            .collect();
        let h = tape.group_linear(x, &params, &rows);
        let y = tape.group_linear(h, &params2, &rows);
        // Per-group scalar losses added pairwise, so each group's loss
        // node receives exactly the seed gradient 1.0 (Add backward
        // clones g), matching the standalone graphs.
        let mut off = 0;
        let mut total_loss = None;
        let mut group_losses = Vec::new();
        for &r in &rows {
            let y_b = tape.slice_rows(y, off, off + r);
            let l_b = tape.mean_all(tape.square(y_b));
            group_losses.push(l_b);
            total_loss = Some(match total_loss {
                None => l_b,
                Some(acc) => tape.add(acc, l_b),
            });
            off += r;
        }
        let grads = tape.backward(total_loss.unwrap());

        // Reference: one standalone per-individual graph per group,
        // using the batched path PR 5 proved bit-identical per window.
        let mut off = 0;
        for (b, &r) in rows.iter().enumerate() {
            let reference = Tape::new();
            let rx = reference.leaf(xv.slice_rows(off, off + r));
            let rw = reference.leaf(ws[b].clone());
            let rb = reference.leaf(bs[b].clone());
            let rw2 = reference.leaf(w2s[b].clone());
            let rb2 = reference.leaf(b2s[b].clone());
            let rh = reference.batched_linear(rx, rw, rb, r);
            let ry = reference.batched_linear(rh, rw2, rb2, r);
            let rloss = reference.mean_all(reference.square(ry));
            let rgrads = reference.backward(rloss);

            let (w, bias) = params[b];
            let (w2, bias2) = params2[b];
            assert_eq!(
                &tape.value(y).data()[off * o..(off + r) * o],
                reference.value(ry).data(),
                "group {b} forward rows"
            );
            assert_eq!(
                tape.value(group_losses[b]).data(),
                reference.value(rloss).data(),
                "group {b} loss"
            );
            assert_eq!(
                grads.get(w).unwrap().data(),
                rgrads.get(rw).unwrap().data(),
                "group {b} weight grad"
            );
            assert_eq!(
                grads.get(bias).unwrap().data(),
                rgrads.get(rb).unwrap().data(),
                "group {b} bias grad"
            );
            assert_eq!(
                grads.get(w2).unwrap().data(),
                rgrads.get(rw2).unwrap().data(),
                "group {b} layer-2 weight grad"
            );
            assert_eq!(
                grads.get(bias2).unwrap().data(),
                rgrads.get(rb2).unwrap().data(),
                "group {b} layer-2 bias grad"
            );
            let dx = grads.get(x).unwrap();
            assert_eq!(
                &dx.data()[off * k..(off + r) * k],
                rgrads.get(rx).unwrap().data(),
                "group {b} input grad rows"
            );
            off += r;
        }
    }

    /// Shared scaffolding for the per-op bit-identity tests below: runs
    /// the cohort graph built by `grouped` over a `[Σ wins·rows, k]`
    /// stack with per-group pairwise-added mse-style losses, and for
    /// each group a standalone reference graph built by `reference`
    /// over just that group's rows, then asserts forward rows, per-rhs
    /// gradients, and dx rows match bit for bit.
    fn assert_grouped_matches_oracle(
        wins: &[usize],
        block_rows: usize,
        k: usize,
        rhs_tensors: &[Tensor],
        grouped: impl Fn(&Tape, Var, &[Var]) -> Var,
        reference: impl Fn(&Tape, Var, Var, usize) -> Var,
    ) {
        let total: usize = wins.iter().sum::<usize>() * block_rows;
        let xv = rand(&[total, k], 1);

        let tape = Tape::new();
        let x = tape.leaf(xv.clone());
        let rhses: Vec<Var> = rhs_tensors.iter().map(|t| tape.leaf(t.clone())).collect();
        let y = grouped(&tape, x, &rhses);
        let o = tape.value(y).dims()[1];
        let mut off = 0;
        let mut total_loss = None;
        for &wb in wins {
            let r = wb * block_rows;
            let y_b = tape.slice_rows(y, off, off + r);
            let l_b = tape.mean_all(tape.square(y_b));
            total_loss = Some(match total_loss {
                None => l_b,
                Some(acc) => tape.add(acc, l_b),
            });
            off += r;
        }
        let grads = tape.backward(total_loss.unwrap());

        let mut off = 0;
        for (b, &wb) in wins.iter().enumerate() {
            let r = wb * block_rows;
            let ref_tape = Tape::new();
            let rx = ref_tape.leaf(xv.slice_rows(off, off + r));
            let rrhs = ref_tape.leaf(rhs_tensors[b].clone());
            let ry = reference(&ref_tape, rx, rrhs, wb);
            let rloss = ref_tape.mean_all(ref_tape.square(ry));
            let rgrads = ref_tape.backward(rloss);

            assert_eq!(
                &tape.value(y).data()[off * o..(off + r) * o],
                ref_tape.value(ry).data(),
                "group {b} forward rows"
            );
            assert_eq!(
                grads.get(rhses[b]).unwrap().data(),
                rgrads.get(rrhs).unwrap().data(),
                "group {b} rhs grad"
            );
            assert_eq!(
                &grads.get(x).unwrap().data()[off * k..(off + r) * k],
                rgrads.get(rx).unwrap().data(),
                "group {b} input grad rows"
            );
            off += r;
        }
    }

    /// `group_matmul` must match B separate `batched_matmul` graphs —
    /// per-individual rhs constants/parameters over node-level blocks.
    #[test]
    fn group_matmul_matches_per_individual_graphs() {
        let wins = [2usize, 1, 3];
        let (block_rows, k, n) = (2usize, 4usize, 3usize);
        let rhses: Vec<Tensor> = (0..wins.len()).map(|b| rand(&[k, n], 50 + b as u64)).collect();
        assert_grouped_matches_oracle(
            &wins,
            block_rows,
            k,
            &rhses,
            |tape, x, rv| tape.group_matmul(x, rv, &wins, block_rows),
            |tape, rx, rrhs, wb| tape.batched_matmul(rx, rrhs, wb),
        );
    }

    /// `group_matmul_grouped` must match `batched_matmul_grouped`
    /// graphs, including the window-grouped replay of the rhs pieces.
    #[test]
    fn group_matmul_grouped_matches_per_individual_graphs() {
        let wins = [3usize, 2];
        let (block_rows, k, n) = (1usize, 5usize, 1usize);
        let rhses: Vec<Tensor> = (0..wins.len()).map(|b| rand(&[k, n], 60 + b as u64)).collect();
        assert_grouped_matches_oracle(
            &wins,
            block_rows,
            k,
            &rhses,
            |tape, x, rv| tape.group_matmul_grouped(x, rv, &wins, block_rows),
            |tape, rx, rrhs, wb| tape.batched_matmul_grouped(rx, rrhs, wb),
        );
    }

    /// `group_matmul_nt` must match B separate `batched_matmul_nt`
    /// graphs.
    #[test]
    fn group_matmul_nt_matches_per_individual_graphs() {
        let wins = [1usize, 4, 2];
        let (block_rows, k, n) = (3usize, 2usize, 4usize);
        let rhses: Vec<Tensor> = (0..wins.len()).map(|b| rand(&[n, k], 70 + b as u64)).collect();
        assert_grouped_matches_oracle(
            &wins,
            block_rows,
            k,
            &rhses,
            |tape, x, rv| tape.group_matmul_nt(x, rv, &wins, block_rows),
            |tape, rx, rrhs, wb| tape.batched_matmul_nt(rx, rrhs, wb),
        );
    }

    /// `group_add_row_broadcast` must match B separate
    /// `batched_add_row_broadcast` graphs.
    #[test]
    fn group_add_row_broadcast_matches_per_individual_graphs() {
        let wins = [2usize, 3];
        let (block_rows, c) = (2usize, 5usize);
        let rows: Vec<Tensor> = (0..wins.len()).map(|b| rand(&[c], 80 + b as u64)).collect();
        assert_grouped_matches_oracle(
            &wins,
            block_rows,
            c,
            &rows,
            |tape, x, rv| tape.group_add_row_broadcast(x, rv, &wins, block_rows),
            |tape, rx, rrow, wb| tape.batched_add_row_broadcast(rx, rrow, wb),
        );
    }

    /// `group_block_lhs_matmul` must match B separate `block_lhs_matmul`
    /// graphs — each individual propagating through its *own* graph
    /// constant (the op individual graphs actually break sharing on).
    #[test]
    fn group_block_lhs_matmul_matches_per_individual_graphs() {
        let wins = [3usize, 1, 2];
        let (q, n) = (4usize, 2usize);
        // Square lhs (p == q) so chained use keeps row geometry simple.
        let lhses: Vec<Tensor> = (0..wins.len()).map(|b| rand(&[q, q], 90 + b as u64)).collect();
        assert_grouped_matches_oracle(
            &wins,
            q,
            n,
            &lhses,
            |tape, x, lv| tape.group_block_lhs_matmul(lv, x, &wins),
            |tape, rx, rlhs, wb| tape.block_lhs_matmul(rlhs, rx, wb),
        );
    }

    /// `group_linear_blocks` at `block_rows > 1` must match B separate
    /// `batched_linear` graphs over node-level row blocks.
    #[test]
    fn group_linear_blocks_matches_per_individual_graphs() {
        let wins = [2usize, 3, 1];
        let (block_rows, k, o) = (3usize, 4usize, 2usize);
        let total: usize = wins.iter().sum::<usize>() * block_rows;
        let xv = rand(&[total, k], 2);
        let ws: Vec<Tensor> = (0..wins.len()).map(|b| rand(&[o, k], 110 + b as u64)).collect();
        let bs: Vec<Tensor> = (0..wins.len()).map(|b| rand(&[o], 120 + b as u64)).collect();

        let tape = Tape::new();
        let x = tape.leaf(xv.clone());
        let params: Vec<(Var, Var)> = ws
            .iter()
            .zip(&bs)
            .map(|(w, b)| (tape.leaf(w.clone()), tape.leaf(b.clone())))
            .collect();
        let y = tape.group_linear_blocks(x, &params, &wins, block_rows);
        let mut off = 0;
        let mut total_loss = None;
        for &wb in &wins {
            let r = wb * block_rows;
            let l_b = tape.mean_all(tape.square(tape.slice_rows(y, off, off + r)));
            total_loss = Some(match total_loss {
                None => l_b,
                Some(acc) => tape.add(acc, l_b),
            });
            off += r;
        }
        let grads = tape.backward(total_loss.unwrap());

        let mut off = 0;
        for (b, &wb) in wins.iter().enumerate() {
            let r = wb * block_rows;
            let ref_tape = Tape::new();
            let rx = ref_tape.leaf(xv.slice_rows(off, off + r));
            let rw = ref_tape.leaf(ws[b].clone());
            let rb = ref_tape.leaf(bs[b].clone());
            let ry = ref_tape.batched_linear(rx, rw, rb, wb);
            let rloss = ref_tape.mean_all(ref_tape.square(ry));
            let rgrads = ref_tape.backward(rloss);

            let (w, bias) = params[b];
            assert_eq!(
                &tape.value(y).data()[off * o..(off + r) * o],
                ref_tape.value(ry).data(),
                "group {b} forward rows"
            );
            assert_eq!(
                grads.get(w).unwrap().data(),
                rgrads.get(rw).unwrap().data(),
                "group {b} weight grad"
            );
            assert_eq!(
                grads.get(bias).unwrap().data(),
                rgrads.get(rb).unwrap().data(),
                "group {b} bias grad"
            );
            assert_eq!(
                &grads.get(x).unwrap().data()[off * k..(off + r) * k],
                rgrads.get(rx).unwrap().data(),
                "group {b} input grad rows"
            );
            off += r;
        }
    }

    #[test]
    #[should_panic(expected = "group rows must sum")]
    fn group_linear_rejects_bad_row_split() {
        let tape = Tape::new();
        let x = tape.leaf(rand(&[4, 3], 1));
        let w = tape.leaf(rand(&[2, 3], 2));
        let b = tape.leaf(rand(&[2], 3));
        let _ = tape.group_linear(x, &[(w, b)], &[3]);
    }

    #[test]
    #[should_panic(expected = "lhs shape mismatch")]
    fn group_block_lhs_matmul_rejects_mismatched_lhs_shapes() {
        let tape = Tape::new();
        let x = tape.leaf(rand(&[10, 2], 1));
        let l0 = tape.leaf(rand(&[2, 2], 2));
        let l1 = tape.leaf(rand(&[3, 3], 3));
        let _ = tape.group_block_lhs_matmul(&[l0, l1], x, &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "weight shape mismatch")]
    fn group_linear_rejects_mismatched_group_widths() {
        let tape = Tape::new();
        let x = tape.leaf(rand(&[4, 3], 1));
        let w0 = tape.leaf(rand(&[2, 3], 2));
        let b0 = tape.leaf(rand(&[2], 3));
        let w1 = tape.leaf(rand(&[5, 3], 4));
        let b1 = tape.leaf(rand(&[5], 5));
        let _ = tape.group_linear(x, &[(w0, b0), (w1, b1)], &[2, 2]);
    }
}
