//! Grouped-operand tape operations for cohort-batched training.
//!
//! A cohort stack row-stacks B individuals' window batches into one
//! operand (`[Σ_b rows_b, c]`, individual-major); each individual keeps
//! its *own* parameters, so the shared-operand batched ops in
//! `tape_ops_batched` do not apply. [`Tape::group_linear`] is the
//! grouped-LHS variant: group `b`'s contiguous row block goes through
//! its own `(w_b, bias_b)` pair.
//!
//! The bit-identity contract mirrors the batched ops: forward runs the
//! exact per-individual `addmm` kernel on each row block (the kernel
//! contract makes every output row independent of the batch height,
//! and the per-group call even repeats the per-individual blocked-path
//! decision, since the block's `(m, k, n)` matches); backward keeps
//! the stacked `dx` dense and defers each group's weight/bias
//! gradients as single-row pieces anchored at the group's row offset,
//! replayed in the per-individual graph's accumulation order by the
//! pending machinery in `Grads`/`Tape::backward_into`.

use crate::{Op, Tape, Var};
use ema_tensor::{kernels, pool, Tensor};

impl Tape {
    /// Per-group fused linear layer over a cohort row stack: group `b`
    /// (rows `[off_b, off_b + rows[b])` of `x: [Σ rows, k]`) times its
    /// own `w_b: [out, k]ᵀ` plus `bias_b: [out]`, producing
    /// `[Σ rows, out]`. All groups must share the in/out widths.
    ///
    /// # Panics
    /// Panics when `params` and `group_rows` disagree in length, are
    /// empty, the row counts don't sum to `x`'s rows, a group has zero
    /// rows, or any group's parameter shapes mismatch.
    pub fn group_linear(&self, x: Var, params: &[(Var, Var)], group_rows: &[usize]) -> Var {
        assert_eq!(
            params.len(),
            group_rows.len(),
            "group_linear: {} param pairs vs {} row counts",
            params.len(),
            group_rows.len()
        );
        assert!(!params.is_empty(), "group_linear needs at least one group");
        let mut vars = Vec::with_capacity(1 + 2 * params.len());
        vars.push(x);
        for &(w, b) in params {
            vars.push(w);
            vars.push(b);
        }
        let out = self.compute(
            |v| {
                let xv = v[0];
                let (total, k) = (xv.dims()[0], xv.dims()[1]);
                assert_eq!(
                    group_rows.iter().sum::<usize>(),
                    total,
                    "group_linear: group rows must sum to the stacked row count {total}"
                );
                let out_cols = v[1].dims()[0];
                let mut out = pool::take_uninit(total * out_cols);
                let mut off = 0usize;
                for (b, &r) in group_rows.iter().enumerate() {
                    assert!(r > 0, "group_linear: group {b} has zero rows");
                    let (wv, bv) = (v[1 + 2 * b], v[2 + 2 * b]);
                    assert_eq!(
                        wv.dims(),
                        &[out_cols, k],
                        "group_linear: group {b} weight shape mismatch"
                    );
                    assert_eq!(
                        bv.len(),
                        out_cols,
                        "group_linear: group {b} bias length mismatch"
                    );
                    kernels::addmm_into(
                        &xv.data()[off * k..(off + r) * k],
                        wv.data(),
                        bv.data(),
                        &mut out[off * out_cols..(off + r) * out_cols],
                        r,
                        k,
                        out_cols,
                    );
                    off += r;
                }
                Tensor::from_vec(&[total, out_cols], out).expect("group_linear shape")
            },
            &vars,
        );
        self.push(out, Op::GroupLinear(x, params.to_vec(), group_rows.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Rng64;

    fn rand(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        Tensor::rand_normal(dims, 0.0, 1.0, &mut rng)
    }

    /// The cohort stack through `group_linear` must match B separate
    /// per-individual `batched_linear` graphs bit for bit — values and
    /// every parameter gradient, including the deferred replay order
    /// through a chain of two grouped layers (as in an unrolled RNN).
    #[test]
    fn group_linear_matches_per_individual_graphs() {
        let rows = [3usize, 1, 4];
        let (k, o) = (5, 2);
        let total: usize = rows.iter().sum();
        let xv = rand(&[total, k], 1);
        let ws: Vec<Tensor> = (0..rows.len()).map(|b| rand(&[o, k], 10 + b as u64)).collect();
        let bs: Vec<Tensor> = (0..rows.len()).map(|b| rand(&[o], 20 + b as u64)).collect();
        let w2s: Vec<Tensor> = (0..rows.len()).map(|b| rand(&[o, o], 30 + b as u64)).collect();
        let b2s: Vec<Tensor> = (0..rows.len()).map(|b| rand(&[o], 40 + b as u64)).collect();

        // Cohort graph: one stack, two grouped layers, one scalar loss
        // summing per-group mse-style terms.
        let tape = Tape::new();
        let x = tape.leaf(xv.clone());
        let params: Vec<(Var, Var)> = ws
            .iter()
            .zip(&bs)
            .map(|(w, b)| (tape.leaf(w.clone()), tape.leaf(b.clone())))
            .collect();
        let params2: Vec<(Var, Var)> = w2s
            .iter()
            .zip(&b2s)
            .map(|(w, b)| (tape.leaf(w.clone()), tape.leaf(b.clone())))
            .collect();
        let h = tape.group_linear(x, &params, &rows);
        let y = tape.group_linear(h, &params2, &rows);
        // Per-group scalar losses added pairwise, so each group's loss
        // node receives exactly the seed gradient 1.0 (Add backward
        // clones g), matching the standalone graphs.
        let mut off = 0;
        let mut total_loss = None;
        let mut group_losses = Vec::new();
        for &r in &rows {
            let y_b = tape.slice_rows(y, off, off + r);
            let l_b = tape.mean_all(tape.square(y_b));
            group_losses.push(l_b);
            total_loss = Some(match total_loss {
                None => l_b,
                Some(acc) => tape.add(acc, l_b),
            });
            off += r;
        }
        let grads = tape.backward(total_loss.unwrap());

        // Reference: one standalone per-individual graph per group,
        // using the batched path PR 5 proved bit-identical per window.
        let mut off = 0;
        for (b, &r) in rows.iter().enumerate() {
            let reference = Tape::new();
            let rx = reference.leaf(xv.slice_rows(off, off + r));
            let rw = reference.leaf(ws[b].clone());
            let rb = reference.leaf(bs[b].clone());
            let rw2 = reference.leaf(w2s[b].clone());
            let rb2 = reference.leaf(b2s[b].clone());
            let rh = reference.batched_linear(rx, rw, rb, r);
            let ry = reference.batched_linear(rh, rw2, rb2, r);
            let rloss = reference.mean_all(reference.square(ry));
            let rgrads = reference.backward(rloss);

            let (w, bias) = params[b];
            let (w2, bias2) = params2[b];
            assert_eq!(
                &tape.value(y).data()[off * o..(off + r) * o],
                reference.value(ry).data(),
                "group {b} forward rows"
            );
            assert_eq!(
                tape.value(group_losses[b]).data(),
                reference.value(rloss).data(),
                "group {b} loss"
            );
            assert_eq!(
                grads.get(w).unwrap().data(),
                rgrads.get(rw).unwrap().data(),
                "group {b} weight grad"
            );
            assert_eq!(
                grads.get(bias).unwrap().data(),
                rgrads.get(rb).unwrap().data(),
                "group {b} bias grad"
            );
            assert_eq!(
                grads.get(w2).unwrap().data(),
                rgrads.get(rw2).unwrap().data(),
                "group {b} layer-2 weight grad"
            );
            assert_eq!(
                grads.get(bias2).unwrap().data(),
                rgrads.get(rb2).unwrap().data(),
                "group {b} layer-2 bias grad"
            );
            let dx = grads.get(x).unwrap();
            assert_eq!(
                &dx.data()[off * k..(off + r) * k],
                rgrads.get(rx).unwrap().data(),
                "group {b} input grad rows"
            );
            off += r;
        }
    }

    #[test]
    #[should_panic(expected = "group rows must sum")]
    fn group_linear_rejects_bad_row_split() {
        let tape = Tape::new();
        let x = tape.leaf(rand(&[4, 3], 1));
        let w = tape.leaf(rand(&[2, 3], 2));
        let b = tape.leaf(rand(&[2], 3));
        let _ = tape.group_linear(x, &[(w, b)], &[3]);
    }

    #[test]
    #[should_panic(expected = "weight shape mismatch")]
    fn group_linear_rejects_mismatched_group_widths() {
        let tape = Tape::new();
        let x = tape.leaf(rand(&[4, 3], 1));
        let w0 = tape.leaf(rand(&[2, 3], 2));
        let b0 = tape.leaf(rand(&[2], 3));
        let w1 = tape.leaf(rand(&[5, 3], 4));
        let b1 = tape.leaf(rand(&[5], 5));
        let _ = tape.group_linear(x, &[(w0, b0), (w1, b1)], &[2, 2]);
    }
}
