//! Shape-manipulating tape operations: concatenation, slicing, stacking.

use crate::{Op, Tape, Var};
use ema_tensor::Tensor;

impl Tape {
    /// Horizontal concatenation `[m,a] ++ [m,b] -> [m,a+b]`.
    pub fn hcat(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].hcat(v[1]), &[a, b]);
        self.push(out, Op::HCat(a, b))
    }

    /// Vertical concatenation `[a,n] ++ [b,n] -> [a+b,n]`.
    pub fn vcat(&self, a: Var, b: Var) -> Var {
        let out = self.compute(|v| v[0].vcat(v[1]), &[a, b]);
        self.push(out, Op::VCat(a, b))
    }

    /// Rows `[start, end)` of a matrix node.
    pub fn slice_rows(&self, a: Var, start: usize, end: usize) -> Var {
        let out = self.compute(|v| v[0].slice_rows(start, end), &[a]);
        self.push(out, Op::SliceRows(a, start, end))
    }

    /// Columns `[start, end)` of a matrix node.
    pub fn slice_cols(&self, a: Var, start: usize, end: usize) -> Var {
        let out = self.compute(|v| v[0].slice_cols(start, end), &[a]);
        self.push(out, Op::SliceCols(a, start, end))
    }

    /// Reinterprets a node under a new shape with equal volume.
    ///
    /// # Panics
    /// Panics if the volumes differ.
    pub fn reshape(&self, a: Var, dims: &[usize]) -> Var {
        let out = self.compute(|v| v[0].reshaped(dims), &[a]);
        self.push(out, Op::Reshape(a))
    }

    /// Stacks rank-1 nodes of equal length into the rows of a matrix.
    ///
    /// # Panics
    /// Panics if `vars` is empty or lengths differ.
    pub fn stack_rows(&self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "cannot stack zero rows");
        let out = {
            let nodes = self.nodes.borrow();
            let rows: Vec<Tensor> = vars.iter().map(|v| nodes[v.0].value.clone()).collect();
            Tensor::stack_rows(&rows)
        };
        self.push(out, Op::StackRows(vars.to_vec()))
    }

    /// Flattens a matrix node to rank 1.
    pub fn flatten(&self, a: Var) -> Var {
        let n = self.compute(|v| v[0].len(), &[a]);
        self.reshape(a, &[n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcat_backward_splits_grad() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2, 2]));
        let b = tape.leaf(Tensor::ones(&[2, 1]));
        let c = tape.hcat(a, b);
        assert_eq!(tape.dims(c), vec![2, 3]);
        // Weight the loss so the two sides see different gradients.
        let w = tape.leaf(Tensor::from_vec2(vec![
            vec![1.0, 1.0, 5.0],
            vec![1.0, 1.0, 5.0],
        ])
        .unwrap());
        let weighted = tape.mul(c, w);
        let loss = tape.sum_all(weighted);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[5.0, 5.0]);
    }

    #[test]
    fn vcat_backward_splits_grad() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[1, 2]));
        let b = tape.leaf(Tensor::ones(&[2, 2]));
        let c = tape.vcat(a, b);
        assert_eq!(tape.dims(c), vec![3, 2]);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().dims(), &[1, 2]);
        assert_eq!(grads.get(b).unwrap().dims(), &[2, 2]);
    }

    #[test]
    fn slice_rows_backward_zero_pads() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[4, 2]));
        let s = tape.slice_rows(a, 1, 3);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        let g = grads.get(a).unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn slice_cols_backward_zero_pads() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2, 3]));
        let s = tape.slice_cols(a, 2, 3);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        let g = grads.get(a).unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn reshape_round_trips_grad_shape() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2, 3]));
        let r = tape.reshape(a, &[3, 2]);
        let loss = tape.sum_all(r);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().dims(), &[2, 3]);
    }

    #[test]
    fn stack_rows_backward_routes_rows() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec1(vec![3.0, 4.0]));
        let m = tape.stack_rows(&[a, b]);
        assert_eq!(tape.dims(m), vec![2, 2]);
        let w = tape.leaf(Tensor::from_vec2(vec![vec![1.0, 1.0], vec![10.0, 10.0]]).unwrap());
        let weighted = tape.mul(m, w);
        let loss = tape.sum_all(weighted);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[10.0, 10.0]);
    }
}
