//! Gradient container returned by the backward pass.

use crate::Var;
use ema_tensor::Tensor;

/// How one deferred per-window gradient piece is computed from a
/// batched node's stacked gradient `g` and operand value `x` (both
/// sliced to window `w`'s contiguous row block at replay time).
///
/// Each kind is the exact kernel call the per-window graph's backward
/// pass makes for one use of the shared operand, so replaying pieces in
/// the per-window order reproduces its accumulation bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PendingKind {
    /// `piece_w = x_wᵀ · g_w` — `Op::Matmul`'s rhs gradient.
    XtG,
    /// `piece_w = g_wᵀ · x_w` — `Op::MatmulNT`'s / `Op::Addmm`'s
    /// weight gradient.
    GtX,
    /// `piece_w = g_w · x_wᵀ` — `Op::Matmul`'s lhs gradient.
    GntX,
    /// `piece_w = col_sums(g_w)` — a bias/row gradient.
    ColSums,
}

/// One batched node's deferred gradient contribution to a shared
/// operand, recorded while the backward pass walks the batched graph
/// and replayed per window when the pass reaches the operand itself.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingUse {
    pub kind: PendingKind,
    /// Tape index of the batched node whose gradient supplies the
    /// per-window `g` blocks (always greater than the operand's index,
    /// so its slot is still alive at finalize time).
    pub g_node: usize,
    /// Tape index of the node whose *value* supplies the per-window
    /// `x` blocks (ignored by [`PendingKind::ColSums`]).
    pub x_node: usize,
    /// Number of window blocks.
    pub wins: usize,
    /// Grouped replay: fold this window's pieces into a temporary
    /// before adding it to the slot (replicating a per-window
    /// intermediate node in the reference graph) instead of adding
    /// each piece directly.
    pub grouped: bool,
    /// Rows per window block of the `g_node` gradient. Window `w`'s
    /// block is `g[(g_off + w·g_rows) .. (g_off + (w+1)·g_rows), :]`.
    /// Uniform batched ops use `g.dims()[0] / wins` with offset 0;
    /// grouped-operand ops (one parameter group inside a cohort stack)
    /// use their own block geometry with `g_off` pointing at the
    /// group's first row.
    pub g_rows: usize,
    /// Starting row of window 0's `g` block.
    pub g_off: usize,
    /// Rows per window block of the `x_node` value (ignored by
    /// [`PendingKind::ColSums`]).
    pub x_rows: usize,
    /// Starting row of window 0's `x` block.
    pub x_off: usize,
}

/// Gradients for every node of a tape, indexed by [`Var`].
///
/// Nodes that did not participate in the loss have no gradient (`None`).
#[derive(Debug)]
pub struct Grads {
    grads: Vec<Option<Tensor>>,
    /// Per-node deferred uses from batched ops, in arrival (= node
    /// descending) order. Reused across backward passes; every entry
    /// is drained by the pass that filled it.
    pending: Vec<Vec<PendingUse>>,
}

impl Grads {
    /// An empty gradient workspace for [`crate::Tape::backward_into`].
    ///
    /// Create one per training run, reuse it across epochs: the slot
    /// vector (and, via the tensor pool, the gradient buffers) are
    /// recycled instead of reallocated every backward pass.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            grads: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Gradient slots and the pending-use workspace, borrowed together
    /// for the backward pass.
    pub(crate) fn slots_and_pending_mut(
        &mut self,
    ) -> (&mut Vec<Option<Tensor>>, &mut Vec<Vec<PendingUse>>) {
        (&mut self.grads, &mut self.pending)
    }

    /// The gradient of the loss with respect to `v`, if `v` influenced
    /// the loss.
    #[must_use]
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.index()).and_then(|g| g.as_ref())
    }

    /// The gradient of `v`, or a zero tensor of the given shape when `v`
    /// did not influence the loss. Keeps optimizer code branch-free.
    #[must_use]
    pub fn get_or_zeros(&self, v: Var, dims: &[usize]) -> Tensor {
        match self.get(v) {
            Some(g) => g.clone(),
            None => Tensor::zeros(dims),
        }
    }

    /// Number of slots (== tape length at backward time).
    #[must_use]
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True when the tape was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Global L2 norm across a set of variables' gradients — used for
    /// gradient clipping diagnostics.
    #[must_use]
    pub fn global_norm(&self, vars: &[Var]) -> f64 {
        let mut acc = 0.0;
        for &v in vars {
            if let Some(g) = self.get(v) {
                acc += g.data().iter().map(|&x| x * x).sum::<f64>();
            }
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    #[test]
    fn get_or_zeros_for_unused_var() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2]));
        let b = tape.leaf(Tensor::ones(&[3]));
        let loss = tape.sum_all(a);
        let grads = tape.backward(loss);
        assert_eq!(grads.get_or_zeros(b, &[3]).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(grads.get_or_zeros(a, &[2]).data(), &[1.0, 1.0]);
    }

    #[test]
    fn global_norm_matches_manual() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![3.0]));
        let b = tape.leaf(Tensor::from_vec1(vec![4.0]));
        let s = tape.add(a, b);
        let p = tape.mul(s, s); // d/da = 2s = 14 for both
        let loss = tape.sum_all(p);
        let grads = tape.backward(loss);
        let norm = grads.global_norm(&[a, b]);
        let expected = (14.0f64 * 14.0 * 2.0).sqrt();
        assert!((norm - expected).abs() < 1e-9);
    }
}
