//! Gradient container returned by the backward pass.

use crate::Var;
use ema_tensor::Tensor;

/// Gradients for every node of a tape, indexed by [`Var`].
///
/// Nodes that did not participate in the loss have no gradient (`None`).
#[derive(Debug)]
pub struct Grads {
    grads: Vec<Option<Tensor>>,
}

impl Grads {
    /// An empty gradient workspace for [`crate::Tape::backward_into`].
    ///
    /// Create one per training run, reuse it across epochs: the slot
    /// vector (and, via the tensor pool, the gradient buffers) are
    /// recycled instead of reallocated every backward pass.
    #[must_use]
    pub fn empty() -> Self {
        Self { grads: Vec::new() }
    }

    pub(crate) fn slots_mut(&mut self) -> &mut Vec<Option<Tensor>> {
        &mut self.grads
    }

    /// The gradient of the loss with respect to `v`, if `v` influenced
    /// the loss.
    #[must_use]
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.index()).and_then(|g| g.as_ref())
    }

    /// The gradient of `v`, or a zero tensor of the given shape when `v`
    /// did not influence the loss. Keeps optimizer code branch-free.
    #[must_use]
    pub fn get_or_zeros(&self, v: Var, dims: &[usize]) -> Tensor {
        match self.get(v) {
            Some(g) => g.clone(),
            None => Tensor::zeros(dims),
        }
    }

    /// Number of slots (== tape length at backward time).
    #[must_use]
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True when the tape was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Global L2 norm across a set of variables' gradients — used for
    /// gradient clipping diagnostics.
    #[must_use]
    pub fn global_norm(&self, vars: &[Var]) -> f64 {
        let mut acc = 0.0;
        for &v in vars {
            if let Some(g) = self.get(v) {
                acc += g.data().iter().map(|&x| x * x).sum::<f64>();
            }
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    #[test]
    fn get_or_zeros_for_unused_var() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2]));
        let b = tape.leaf(Tensor::ones(&[3]));
        let loss = tape.sum_all(a);
        let grads = tape.backward(loss);
        assert_eq!(grads.get_or_zeros(b, &[3]).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(grads.get_or_zeros(a, &[2]).data(), &[1.0, 1.0]);
    }

    #[test]
    fn global_norm_matches_manual() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec1(vec![3.0]));
        let b = tape.leaf(Tensor::from_vec1(vec![4.0]));
        let s = tape.add(a, b);
        let p = tape.mul(s, s); // d/da = 2s = 14 for both
        let loss = tape.sum_all(p);
        let grads = tape.backward(loss);
        let norm = grads.global_norm(&[a, b]);
        let expected = (14.0f64 * 14.0 * 2.0).sqrt();
        assert!((norm - expected).abs() < 1e-9);
    }
}
