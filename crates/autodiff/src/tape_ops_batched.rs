//! Batched-window tape operations: one node per op across all windows.
//!
//! These power the batched forward path (`predict_batch` in
//! `ema-models`): a window axis of `W` blocks is stacked into the row
//! dimension, so an epoch records one node per model op instead of one
//! per window per op. Every op here is **bit-identical** to its
//! per-window twin in both directions:
//!
//! * forward — the matmul kernel contract (`ema_tensor::linalg`) makes
//!   each output row's accumulation independent of the batch height,
//!   so row block `w` matches the per-window op on window `w` exactly;
//!   blockwise ops run the per-window kernel per block outright;
//! * backward — gradients along the stacked axis stay dense (row
//!   blocks again match per window), while gradients of *shared*
//!   operands (parameters, memoized constants) are deferred as
//!   per-window pieces and replayed in the per-window graph's
//!   accumulation order when the backward pass reaches the operand
//!   (see the pending machinery in `Grads`/`Tape::backward_into`).

use crate::{Op, Tape, Var};
use ema_tensor::{kernels, pool, Tensor};

impl Tape {
    /// Batched matrix product of a window-stacked lhs against one
    /// shared rhs: `[W·r, k] x [k, n] -> [W·r, n]`.
    ///
    /// # Panics
    /// Panics on shape mismatches or when `wins` does not divide the
    /// stacked row count.
    pub fn batched_matmul(&self, x: Var, rhs: Var, wins: usize) -> Var {
        let out = self.compute(|v| batched_rows_check(v[0], wins, v[0].matmul(v[1])), &[x, rhs]);
        self.push(out, Op::BatchedMatmul(x, rhs, wins, false))
    }

    /// [`Tape::batched_matmul`] whose shared-rhs gradient pieces are
    /// replayed *grouped*: each window's pieces fold into a temporary
    /// before reaching the slot, replicating a per-window intermediate
    /// node (e.g. a per-window transpose) in the reference graph.
    ///
    /// # Panics
    /// Panics on shape mismatches or when `wins` does not divide the
    /// stacked row count.
    pub fn batched_matmul_grouped(&self, x: Var, rhs: Var, wins: usize) -> Var {
        let out = self.compute(|v| batched_rows_check(v[0], wins, v[0].matmul(v[1])), &[x, rhs]);
        self.push(out, Op::BatchedMatmul(x, rhs, wins, true))
    }

    /// Batched `x · rhsᵀ` against one shared rhs:
    /// `[W·r, k] x [n, k]ᵀ -> [W·r, n]`.
    ///
    /// # Panics
    /// Panics on shape mismatches or when `wins` does not divide the
    /// stacked row count.
    pub fn batched_matmul_nt(&self, x: Var, rhs: Var, wins: usize) -> Var {
        let out = self.compute(|v| batched_rows_check(v[0], wins, v[0].matmul_nt(v[1])), &[x, rhs]);
        self.push(out, Op::BatchedMatmulNT(x, rhs, wins))
    }

    /// Batched linear layer with shared weights: `x · wᵀ + bias` for
    /// `x: [W·r, k]`, `w: [out, k]`, `bias: [out]`.
    ///
    /// # Panics
    /// Panics on shape mismatches or when `wins` does not divide the
    /// stacked row count.
    pub fn batched_linear(&self, x: Var, w: Var, bias: Var, wins: usize) -> Var {
        let out = self.compute(
            |v| batched_rows_check(v[0], wins, v[0].addmm(v[1], v[2])),
            &[x, w, bias],
        );
        self.push(out, Op::BatchedAddmm(x, w, bias, wins))
    }

    /// Adds one shared `[c]` row vector to every row of a `[W·r, c]`
    /// window stack.
    ///
    /// # Panics
    /// Panics on shape mismatches or when `wins` does not divide the
    /// stacked row count.
    pub fn batched_add_row_broadcast(&self, m: Var, row: Var, wins: usize) -> Var {
        let out = self.compute(
            |v| batched_rows_check(v[0], wins, v[0].add_row_broadcast(v[1])),
            &[m, row],
        );
        self.push(out, Op::BatchedAddRow(m, row, wins))
    }

    /// Shared lhs times per-window blocks: `lhs: [p, q]` times each
    /// `[q, n]` block of `x: [W·q, n]`, giving `[W·p, n]`. The forward
    /// pass fuses all `W` products into **one** kernel call on a
    /// column-permuted layout (see [`gather_window_cols`]): since the
    /// lhs is shared, `lhs · [x_0 | x_1 | … | x_{W-1}]` computes every
    /// block in a single `[p, q] x [q, W·n]` matmul. Each output
    /// element keeps the exact per-window accumulation sequence
    /// (ascending-`k` from `0.0`, same `lhs == 0.0` skips — the kernel
    /// contract makes element results independent of the output
    /// width), so this is bit-identical to `W` separate `matmul`
    /// nodes while amortizing the lhs across all windows.
    ///
    /// # Panics
    /// Panics on shape mismatches or when `wins` does not divide the
    /// stacked row count.
    pub fn block_lhs_matmul(&self, lhs: Var, x: Var, wins: usize) -> Var {
        let out = self.compute(
            |v| {
                let (lhs, x) = (v[0], v[1]);
                let (p, q) = (lhs.dims()[0], lhs.dims()[1]);
                let n = x.dims()[1];
                assert_eq!(
                    x.dims()[0],
                    wins * q,
                    "block_lhs_matmul: x rows must be wins ({wins}) x lhs cols ({q})"
                );
                let xhat = gather_window_cols(x.data(), wins, q, n);
                let mut yhat = pool::take_uninit(p * wins * n);
                kernels::matmul_into(lhs.data(), &xhat, &mut yhat, p, q, wins * n);
                pool::recycle(xhat);
                let out = scatter_window_cols(&yhat, wins, p, n);
                pool::recycle(yhat);
                Tensor::from_vec(&[wins * p, n], out).expect("block_lhs_matmul shape")
            },
            &[lhs, x],
        );
        self.push(out, Op::BlockLhsMatmul(lhs, x, wins))
    }

    /// Blockwise product of two window stacks: block `w` of
    /// `x: [W·m, k]` times block `w` of `y: [W·k, n]` -> `[W·m, n]`.
    ///
    /// # Panics
    /// Panics on shape mismatches or when `wins` does not divide the
    /// stacked row counts.
    pub fn block_matmul(&self, x: Var, y: Var, wins: usize) -> Var {
        let out = self.compute(
            |v| {
                let (x, y) = (v[0], v[1]);
                let (m, k) = (block_rows(x, wins, "block_matmul x"), x.dims()[1]);
                let (ky, n) = (block_rows(y, wins, "block_matmul y"), y.dims()[1]);
                assert_eq!(k, ky, "block_matmul inner dimension mismatch");
                let mut out = pool::take_uninit(wins * m * n);
                for w in 0..wins {
                    kernels::matmul_into(
                        &x.data()[w * m * k..(w + 1) * m * k],
                        &y.data()[w * k * n..(w + 1) * k * n],
                        &mut out[w * m * n..(w + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
                Tensor::from_vec(&[wins * m, n], out).expect("block_matmul shape")
            },
            &[x, y],
        );
        self.push(out, Op::BlockMatmul(x, y, wins))
    }

    /// Blockwise `x_w · y_wᵀ`: block `w` of `x: [W·m, k]` times the
    /// transpose of block `w` of `y: [W·n, k]` -> `[W·m, n]`.
    ///
    /// # Panics
    /// Panics on shape mismatches or when `wins` does not divide the
    /// stacked row counts.
    pub fn block_matmul_nt(&self, x: Var, y: Var, wins: usize) -> Var {
        let out = self.compute(
            |v| {
                let (x, y) = (v[0], v[1]);
                let (m, k) = (block_rows(x, wins, "block_matmul_nt x"), x.dims()[1]);
                let (n, ky) = (block_rows(y, wins, "block_matmul_nt y"), y.dims()[1]);
                assert_eq!(k, ky, "block_matmul_nt trailing dimension mismatch");
                let mut out = pool::take_uninit(wins * m * n);
                for w in 0..wins {
                    kernels::matmul_nt_into(
                        &x.data()[w * m * k..(w + 1) * m * k],
                        &y.data()[w * n * k..(w + 1) * n * k],
                        &mut out[w * m * n..(w + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
                Tensor::from_vec(&[wins * m, n], out).expect("block_matmul_nt shape")
            },
            &[x, y],
        );
        self.push(out, Op::BlockMatmulNT(x, y, wins))
    }

    /// Stacks `T` window-blocked states (each `[W·n, h]`) into
    /// `[W·T, n·h]`: output block `w`, row `t` holds the flattening of
    /// state `t`'s block `w`. The batched twin of flattening each
    /// state and stacking the flattenings per window.
    ///
    /// # Panics
    /// Panics if `states` is empty, shapes differ, or `wins` does not
    /// divide the row counts.
    pub fn stack_window_blocks(&self, states: &[Var], wins: usize) -> Var {
        assert!(!states.is_empty(), "cannot stack zero states");
        let t_count = states.len();
        let out = self.compute(
            |v| {
                let (rows, h) = (v[0].dims()[0], v[0].dims()[1]);
                let n = block_rows(v[0], wins, "stack_window_blocks");
                let block = n * h;
                let mut out = pool::take_uninit(wins * t_count * block);
                for (t, s) in v.iter().enumerate() {
                    assert_eq!(s.dims(), &[rows, h], "state {t} shape mismatch");
                    for w in 0..wins {
                        out[(w * t_count + t) * block..(w * t_count + t + 1) * block]
                            .copy_from_slice(&s.data()[w * block..(w + 1) * block]);
                    }
                }
                Tensor::from_vec(&[wins * t_count, block], out).expect("stack_window_blocks shape")
            },
            states,
        );
        self.push(out, Op::StackWindowBlocks(states.to_vec(), wins))
    }

    /// Applies a pre-drawn inverted-dropout mask (entries `0` or
    /// `1/(1-p)`). The batched forward path draws all windows' masks
    /// up front in window-major order so the RNG consumes draws in
    /// exactly the per-window sequence (see `Tape::dropout`), then
    /// applies each via this op. Backward is identical to
    /// [`Tape::dropout`]'s.
    ///
    /// # Panics
    /// Panics if the mask's shape differs from the input's.
    pub fn dropout_masked(&self, a: Var, mask: Tensor) -> Var {
        let out = self.compute(
            |v| {
                assert_eq!(v[0].dims(), mask.dims(), "dropout mask shape mismatch");
                v[0].mul(&mask)
            },
            &[a],
        );
        self.push(out, Op::Dropout(a, mask))
    }
}

/// Asserts the stacked row count divides into `wins` blocks and passes
/// the computed output through.
fn batched_rows_check(x: &Tensor, wins: usize, out: Tensor) -> Tensor {
    assert!(wins > 0, "batched op needs at least one window");
    assert_eq!(
        x.dims()[0] % wins,
        0,
        "stacked rows {} not divisible by window count {wins}",
        x.dims()[0]
    );
    out
}

/// Gathers a window stack `[W·r, n]` into the column-concatenated
/// layout `[r, W·n]`: element `(w·r + i, c)` lands at `(i, w·n + c)`.
/// The result is a pooled buffer — recycle it when done. A matmul
/// against this layout computes all `W` per-window products in one
/// call without changing any output element's accumulation sequence.
pub(crate) fn gather_window_cols(x: &[f64], wins: usize, r: usize, n: usize) -> Vec<f64> {
    let mut xhat = pool::take_uninit(r * wins * n);
    for w in 0..wins {
        for i in 0..r {
            xhat[i * wins * n + w * n..i * wins * n + (w + 1) * n]
                .copy_from_slice(&x[(w * r + i) * n..(w * r + i + 1) * n]);
        }
    }
    xhat
}

/// Inverse of [`gather_window_cols`]: scatters `[r, W·n]` back into the
/// window-stacked `[W·r, n]` layout, into a fresh pooled buffer.
pub(crate) fn scatter_window_cols(yhat: &[f64], wins: usize, r: usize, n: usize) -> Vec<f64> {
    let mut out = pool::take_uninit(wins * r * n);
    for w in 0..wins {
        for i in 0..r {
            out[(w * r + i) * n..(w * r + i + 1) * n]
                .copy_from_slice(&yhat[i * wins * n + w * n..i * wins * n + (w + 1) * n]);
        }
    }
    out
}

/// Rows per window block of a stacked operand.
fn block_rows(x: &Tensor, wins: usize, what: &str) -> usize {
    assert!(wins > 0, "{what}: needs at least one window");
    assert_eq!(
        x.dims()[0] % wins,
        0,
        "{what}: stacked rows {} not divisible by window count {wins}",
        x.dims()[0]
    );
    x.dims()[0] / wins
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Rng64;

    fn rand(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        Tensor::rand_normal(dims, 0.0, 1.0, &mut rng)
    }

    /// Runs the same computation per window on a reference tape and
    /// asserts stacked values and every shared/stacked gradient match
    /// bit for bit.
    #[test]
    fn batched_matmul_matches_per_window_graph() {
        let wins = 3;
        let (r, k, n) = (2, 4, 5);
        let xv = rand(&[wins * r, k], 1);
        let rhsv = rand(&[k, n], 2);

        let tape = Tape::new();
        let x = tape.leaf(xv.clone());
        let rhs = tape.leaf(rhsv.clone());
        let out = tape.batched_matmul(x, rhs, wins);
        let loss = tape.mean_all(tape.square(out));
        let grads = tape.backward(loss);

        let reference = Tape::new();
        let rrhs = reference.leaf(rhsv);
        let mut outs = Vec::new();
        let mut xs = Vec::new();
        for w in 0..wins {
            let xw = reference.leaf(xv.slice_rows(w * r, (w + 1) * r));
            xs.push(xw);
            outs.push(reference.matmul(xw, rrhs));
        }
        // Stack per-window outputs by vcat to get the same loss.
        let stacked = outs
            .iter()
            .skip(1)
            .fold(outs[0], |acc, &o| reference.vcat(acc, o));
        let rloss = reference.mean_all(reference.square(stacked));
        let rgrads = reference.backward(rloss);

        assert_eq!(tape.value(out).data(), {
            let mut all = Vec::new();
            for &o in &outs {
                all.extend_from_slice(reference.value(o).data());
            }
            all
        });
        assert_eq!(tape.value(loss).data(), reference.value(rloss).data());
        // Shared rhs gradient: replayed pieces must equal the
        // per-window accumulation bit for bit.
        assert_eq!(
            grads.get(rhs).unwrap().data(),
            rgrads.get(rrhs).unwrap().data()
        );
        // Stacked x gradient row blocks match the per-window ones.
        let dx = grads.get(x).unwrap();
        for (w, &xw) in xs.iter().enumerate() {
            assert_eq!(
                &dx.data()[w * r * k..(w + 1) * r * k],
                rgrads.get(xw).unwrap().data()
            );
        }
    }

    #[test]
    fn batched_linear_matches_per_window_graph() {
        let wins = 4;
        let (r, k, o) = (3, 5, 2);
        let xv = rand(&[wins * r, k], 3);
        let wv = rand(&[o, k], 4);
        let bv = rand(&[o], 5);

        let tape = Tape::new();
        let x = tape.leaf(xv.clone());
        let w = tape.leaf(wv.clone());
        let b = tape.leaf(bv.clone());
        let out = tape.batched_linear(x, w, b, wins);
        let loss = tape.mean_all(tape.square(out));
        let grads = tape.backward(loss);

        let reference = Tape::new();
        let rw = reference.leaf(wv);
        let rb = reference.leaf(bv);
        let mut outs = Vec::new();
        for win in 0..wins {
            let xw = reference.leaf(xv.slice_rows(win * r, (win + 1) * r));
            outs.push(reference.linear(xw, rw, rb));
        }
        let stacked = outs
            .iter()
            .skip(1)
            .fold(outs[0], |acc, &o| reference.vcat(acc, o));
        let rloss = reference.mean_all(reference.square(stacked));
        let rgrads = reference.backward(rloss);

        assert_eq!(tape.value(loss).data(), reference.value(rloss).data());
        assert_eq!(grads.get(w).unwrap().data(), rgrads.get(rw).unwrap().data());
        assert_eq!(grads.get(b).unwrap().data(), rgrads.get(rb).unwrap().data());
    }

    #[test]
    fn block_lhs_matmul_matches_per_window_graph() {
        let wins = 3;
        let (p, q, n) = (4, 4, 2);
        let lhsv = rand(&[p, q], 6);
        let xv = rand(&[wins * q, n], 7);

        let tape = Tape::new();
        let lhs = tape.leaf(lhsv.clone());
        let x = tape.leaf(xv.clone());
        let out = tape.block_lhs_matmul(lhs, x, wins);
        let loss = tape.mean_all(tape.square(out));
        let grads = tape.backward(loss);

        let reference = Tape::new();
        let rlhs = reference.leaf(lhsv);
        let mut outs = Vec::new();
        for w in 0..wins {
            let xw = reference.leaf(xv.slice_rows(w * q, (w + 1) * q));
            outs.push(reference.matmul(rlhs, xw));
        }
        let stacked = outs
            .iter()
            .skip(1)
            .fold(outs[0], |acc, &o| reference.vcat(acc, o));
        let rloss = reference.mean_all(reference.square(stacked));
        let rgrads = reference.backward(rloss);

        assert_eq!(tape.value(out).dims(), &[wins * p, n]);
        assert_eq!(tape.value(loss).data(), reference.value(rloss).data());
        assert_eq!(
            grads.get(lhs).unwrap().data(),
            rgrads.get(rlhs).unwrap().data()
        );
    }

    #[test]
    fn stack_window_blocks_roundtrip() {
        let wins = 2;
        let (n, h) = (3, 2);
        let s0 = rand(&[wins * n, h], 8);
        let s1 = rand(&[wins * n, h], 9);

        let tape = Tape::new();
        let v0 = tape.leaf(s0.clone());
        let v1 = tape.leaf(s1.clone());
        let stacked = tape.stack_window_blocks(&[v0, v1], wins);
        assert_eq!(tape.dims(stacked), vec![wins * 2, n * h]);
        // Block w row t == flattened block w of state t.
        let sv = tape.value(stacked);
        for w in 0..wins {
            assert_eq!(
                &sv.data()[(w * 2) * n * h..(w * 2 + 1) * n * h],
                &s0.data()[w * n * h..(w + 1) * n * h]
            );
            assert_eq!(
                &sv.data()[(w * 2 + 1) * n * h..(w * 2 + 2) * n * h],
                &s1.data()[w * n * h..(w + 1) * n * h]
            );
        }
        // Backward scatters straight back.
        let loss = tape.mean_all(tape.square(stacked));
        let grads = tape.backward(loss);
        assert_eq!(grads.get(v0).unwrap().dims(), &[wins * n, h]);
        assert_eq!(grads.get(v1).unwrap().dims(), &[wins * n, h]);
    }

    #[test]
    fn dropout_masked_matches_dropout_node() {
        let a_val = rand(&[4, 3], 10);
        let mask = {
            let mut rng = Rng64::seed_from(11);
            let mut m = Tensor::zeros(&[4, 3]);
            for v in m.data_mut() {
                if rng.bernoulli(0.8) {
                    *v = 1.0 / 0.8;
                }
            }
            m
        };
        let tape = Tape::new();
        let a = tape.leaf(a_val.clone());
        let d = tape.dropout_masked(a, mask.clone());
        assert_eq!(tape.value(d).data(), a_val.mul(&mask).data());
        let loss = tape.mean_all(tape.square(d));
        let grads = tape.backward(loss);
        assert!(grads.get(a).is_some());
    }
}
