//! Neural-network-specific tape operations (dropout, attention helpers).

use crate::{Op, Tape, Var};
use ema_tensor::{Rng64, Tensor};

impl Tape {
    /// Inverted dropout: zeroes each element with probability `rate` and
    /// scales survivors by `1 / (1 - rate)` so the expectation is
    /// unchanged. When `training` is false this is the identity.
    ///
    /// # Panics
    /// Panics unless `0 <= rate < 1`.
    pub fn dropout(&self, a: Var, rate: f64, training: bool, rng: &mut Rng64) -> Var {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must be in [0, 1), got {rate}"
        );
        if !training || rate == 0.0 {
            return a;
        }
        let keep = 1.0 - rate;
        let dims = self.dims(a);
        let mut mask = Tensor::zeros(&dims);
        for v in mask.data_mut() {
            if rng.bernoulli(keep) {
                *v = 1.0 / keep;
            }
        }
        let out = self.compute(|v| v[0].mul(&mask), &[a]);
        self.push(out, Op::Dropout(a, mask))
    }

    /// Scaled dot-product attention score matrix:
    /// `softmax((q · kᵀ) / sqrt(d))` for `q: [n, d]`, `k: [m, d]`,
    /// producing `[n, m]` attention weights.
    pub fn attention_scores(&self, q: Var, k: Var) -> Var {
        let d = self.dims(q)[1] as f64;
        let kt = self.transpose(k);
        let logits = self.matmul(q, kt);
        let scaled = self.scale(logits, 1.0 / d.sqrt());
        self.softmax_last(scaled)
    }

    /// Full scaled dot-product attention: `scores(q, k) · v`.
    pub fn attention(&self, q: Var, k: Var, v: Var) -> Var {
        let scores = self.attention_scores(q, k);
        self.matmul(scores, v)
    }

    /// Gated tanh unit used by MTGNN's temporal convolutions:
    /// `tanh(a) ⊙ sigmoid(b)`.
    pub fn gated_tanh(&self, a: Var, b: Var) -> Var {
        let filt = self.tanh(a);
        let gate = self.sigmoid(b);
        self.mul(filt, gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_identity_when_not_training() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(0);
        let a = tape.leaf(Tensor::ones(&[4, 4]));
        let d = tape.dropout(a, 0.5, false, &mut rng);
        assert_eq!(d, a);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(1);
        let a = tape.leaf(Tensor::ones(&[100, 100]));
        let d = tape.dropout(a, 0.3, true, &mut rng);
        let m = tape.value(d).mean();
        assert!((m - 1.0).abs() < 0.05, "dropout mean {m} drifted from 1");
    }

    #[test]
    fn dropout_zeroes_fraction() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(2);
        let a = tape.leaf(Tensor::ones(&[100, 100]));
        let d = tape.dropout(a, 0.3, true, &mut rng);
        let zeros = tape.value(d).data().iter().filter(|&&v| v == 0.0).count();
        let rate = zeros as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "zero rate {rate}");
    }

    #[test]
    fn dropout_grad_matches_mask() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(3);
        let a = tape.leaf(Tensor::ones(&[10, 10]));
        let d = tape.dropout(a, 0.5, true, &mut rng);
        let loss = tape.sum_all(d);
        let grads = tape.backward(loss);
        let g = grads.get(a).unwrap();
        // grad equals the mask itself (0 or 2).
        assert!(g.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn attention_rows_are_convex_weights() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(4);
        let q = tape.leaf(Tensor::rand_normal(&[3, 8], 0.0, 1.0, &mut rng));
        let k = tape.leaf(Tensor::rand_normal(&[5, 8], 0.0, 1.0, &mut rng));
        let s = tape.attention_scores(q, k);
        let sv = tape.value(s);
        assert_eq!(sv.dims(), &[3, 5]);
        for r in 0..3 {
            assert!((sv.row(r).sum() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn attention_output_shape() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(5);
        let q = tape.leaf(Tensor::rand_normal(&[3, 8], 0.0, 1.0, &mut rng));
        let k = tape.leaf(Tensor::rand_normal(&[5, 8], 0.0, 1.0, &mut rng));
        let v = tape.leaf(Tensor::rand_normal(&[5, 6], 0.0, 1.0, &mut rng));
        let out = tape.attention(q, k, v);
        assert_eq!(tape.dims(out), vec![3, 6]);
    }

    #[test]
    fn gated_tanh_bounded() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(6);
        let a = tape.leaf(Tensor::rand_normal(&[4, 4], 0.0, 3.0, &mut rng));
        let b = tape.leaf(Tensor::rand_normal(&[4, 4], 0.0, 3.0, &mut rng));
        let g = tape.gated_tanh(a, b);
        assert!(tape.value(g).data().iter().all(|&v| v.abs() <= 1.0));
    }
}
