//! Neural-network-specific tape operations (dropout, attention helpers).

use crate::{Op, Tape, Var};
use ema_tensor::{Rng64, Tensor};

impl Tape {
    /// Inverted dropout: zeroes each element with probability `rate` and
    /// scales survivors by `1 / (1 - rate)` so the expectation is
    /// unchanged. When `training` is false this is the identity.
    ///
    /// # Panics
    /// Panics unless `0 <= rate < 1`.
    pub fn dropout(&self, a: Var, rate: f64, training: bool, rng: &mut Rng64) -> Var {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must be in [0, 1), got {rate}"
        );
        if !training || rate == 0.0 {
            return a;
        }
        let keep = 1.0 - rate;
        let dims = self.dims(a);
        let mut mask = Tensor::zeros(&dims);
        for v in mask.data_mut() {
            if rng.bernoulli(keep) {
                *v = 1.0 / keep;
            }
        }
        let out = self.compute(|v| v[0].mul(&mask), &[a]);
        self.push(out, Op::Dropout(a, mask))
    }

    /// Scaled dot-product attention score matrix:
    /// `softmax((q · kᵀ) / sqrt(d))` for `q: [n, d]`, `k: [m, d]`,
    /// producing `[n, m]` attention weights. The logits use the
    /// transpose-aware kernel, so `kᵀ` is never materialized.
    pub fn attention_scores(&self, q: Var, k: Var) -> Var {
        let d = self.dims(q)[1] as f64;
        let logits = self.matmul_nt(q, k);
        let scaled = self.scale(logits, 1.0 / d.sqrt());
        self.softmax_last(scaled)
    }

    /// Full scaled dot-product attention: `scores(q, k) · v`.
    pub fn attention(&self, q: Var, k: Var, v: Var) -> Var {
        let scores = self.attention_scores(q, k);
        self.matmul(scores, v)
    }

    /// Gated tanh unit used by MTGNN's temporal convolutions:
    /// `tanh(a) ⊙ sigmoid(b)`.
    pub fn gated_tanh(&self, a: Var, b: Var) -> Var {
        let filt = self.tanh(a);
        let gate = self.sigmoid(b);
        self.mul(filt, gate)
    }

    /// Fused LSTM cell step: from pre-activation gates `[n, 4H]`
    /// (i|f|g|o order) and previous cell state `[n, H]`, computes
    ///
    /// ```text
    /// i = σ(pᵢ)  f = σ(p_f)  g̃ = tanh(p_g)  o = σ(p_o)
    /// c' = f ⊙ c + i ⊙ g̃     h' = o ⊙ tanh(c')
    /// ```
    ///
    /// in one pass, recording a single node whose value is `[n, 2H]`
    /// holding `[h' | c']` (slice with [`Tape::slice_cols`]). Replaces
    /// the ~12-node composed graph per timestep with identical math.
    ///
    /// # Panics
    /// Panics on rank or dimension mismatches.
    pub fn lstm_cell(&self, gates_pre: Var, c_prev: Var) -> Var {
        let out = self.compute(|v| lstm_cell_forward(v[0], v[1]), &[gates_pre, c_prev]);
        self.push(out, Op::LstmCell(gates_pre, c_prev))
    }

    /// Fused GRU cell step: from input-side and hidden-side gate
    /// pre-activations (both `[n, 3H]`, r|z|n order) and previous
    /// hidden state `[n, H]`, computes
    ///
    /// ```text
    /// r = σ(gᵢʳ + gₕʳ)   z = σ(gᵢᶻ + gₕᶻ)
    /// ñ = tanh(gᵢⁿ + r ⊙ gₕⁿ)
    /// h' = (ñ - z ⊙ ñ) + z ⊙ h
    /// ```
    ///
    /// in one pass, recording a single node. The hidden-side candidate
    /// pre-activation `gₕⁿ` is gated by `r` *inside* the cell, matching
    /// the standard (PyTorch-style) GRU formulation.
    ///
    /// # Panics
    /// Panics on rank or dimension mismatches.
    pub fn gru_cell(&self, gi: Var, gh: Var, h_prev: Var) -> Var {
        let out = self.compute(|v| gru_cell_forward(v[0], v[1], v[2]), &[gi, gh, h_prev]);
        self.push(out, Op::GruCell(gi, gh, h_prev))
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn lstm_cell_forward(gates: &Tensor, c_prev: &Tensor) -> Tensor {
    assert_eq!(gates.rank(), 2, "lstm_cell gates must be rank 2");
    assert_eq!(c_prev.rank(), 2, "lstm_cell state must be rank 2");
    let (n, g4) = (gates.dims()[0], gates.dims()[1]);
    assert_eq!(g4 % 4, 0, "lstm_cell gate width {g4} must be divisible by 4");
    let h = g4 / 4;
    assert_eq!(
        c_prev.dims(),
        &[n, h],
        "lstm_cell state shape mismatch: expected [{n}, {h}]"
    );
    let gd = gates.data();
    let cd = c_prev.data();
    let mut out = ema_tensor::pool::take_uninit(n * 2 * h);
    for r in 0..n {
        for j in 0..h {
            let i = sigmoid(gd[r * g4 + j]);
            let f = sigmoid(gd[r * g4 + h + j]);
            let gt = gd[r * g4 + 2 * h + j].tanh();
            let o = sigmoid(gd[r * g4 + 3 * h + j]);
            let c = f * cd[r * h + j] + i * gt;
            out[r * 2 * h + j] = o * c.tanh();
            out[r * 2 * h + h + j] = c;
        }
    }
    Tensor::from_vec(&[n, 2 * h], out).expect("lstm_cell output")
}

fn gru_cell_forward(gi: &Tensor, gh: &Tensor, h_prev: &Tensor) -> Tensor {
    assert_eq!(gi.rank(), 2, "gru_cell input gates must be rank 2");
    assert_eq!(gh.rank(), 2, "gru_cell hidden gates must be rank 2");
    assert_eq!(h_prev.rank(), 2, "gru_cell state must be rank 2");
    let (n, g3) = (gi.dims()[0], gi.dims()[1]);
    assert_eq!(g3 % 3, 0, "gru_cell gate width {g3} must be divisible by 3");
    let h = g3 / 3;
    assert_eq!(gh.dims(), &[n, g3], "gru_cell gate shape mismatch");
    assert_eq!(
        h_prev.dims(),
        &[n, h],
        "gru_cell state shape mismatch: expected [{n}, {h}]"
    );
    let gid = gi.data();
    let ghd = gh.data();
    let hd = h_prev.data();
    let mut out = ema_tensor::pool::take_uninit(n * h);
    for row in 0..n {
        for j in 0..h {
            let r = sigmoid(gid[row * g3 + j] + ghd[row * g3 + j]);
            let z = sigmoid(gid[row * g3 + h + j] + ghd[row * g3 + h + j]);
            let nn = (gid[row * g3 + 2 * h + j] + r * ghd[row * g3 + 2 * h + j]).tanh();
            let hv = hd[row * h + j];
            out[row * h + j] = (nn - z * nn) + z * hv;
        }
    }
    Tensor::from_vec(&[n, h], out).expect("gru_cell output")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_identity_when_not_training() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(0);
        let a = tape.leaf(Tensor::ones(&[4, 4]));
        let d = tape.dropout(a, 0.5, false, &mut rng);
        assert_eq!(d, a);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(1);
        let a = tape.leaf(Tensor::ones(&[100, 100]));
        let d = tape.dropout(a, 0.3, true, &mut rng);
        let m = tape.value(d).mean();
        assert!((m - 1.0).abs() < 0.05, "dropout mean {m} drifted from 1");
    }

    #[test]
    fn dropout_zeroes_fraction() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(2);
        let a = tape.leaf(Tensor::ones(&[100, 100]));
        let d = tape.dropout(a, 0.3, true, &mut rng);
        let zeros = tape.value(d).data().iter().filter(|&&v| v == 0.0).count();
        let rate = zeros as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "zero rate {rate}");
    }

    #[test]
    fn dropout_grad_matches_mask() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(3);
        let a = tape.leaf(Tensor::ones(&[10, 10]));
        let d = tape.dropout(a, 0.5, true, &mut rng);
        let loss = tape.sum_all(d);
        let grads = tape.backward(loss);
        let g = grads.get(a).unwrap();
        // grad equals the mask itself (0 or 2).
        assert!(g.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn attention_rows_are_convex_weights() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(4);
        let q = tape.leaf(Tensor::rand_normal(&[3, 8], 0.0, 1.0, &mut rng));
        let k = tape.leaf(Tensor::rand_normal(&[5, 8], 0.0, 1.0, &mut rng));
        let s = tape.attention_scores(q, k);
        let sv = tape.value(s);
        assert_eq!(sv.dims(), &[3, 5]);
        for r in 0..3 {
            assert!((sv.row(r).sum() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn attention_output_shape() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(5);
        let q = tape.leaf(Tensor::rand_normal(&[3, 8], 0.0, 1.0, &mut rng));
        let k = tape.leaf(Tensor::rand_normal(&[5, 8], 0.0, 1.0, &mut rng));
        let v = tape.leaf(Tensor::rand_normal(&[5, 6], 0.0, 1.0, &mut rng));
        let out = tape.attention(q, k, v);
        assert_eq!(tape.dims(out), vec![3, 6]);
    }

    #[test]
    fn gated_tanh_bounded() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(6);
        let a = tape.leaf(Tensor::rand_normal(&[4, 4], 0.0, 3.0, &mut rng));
        let b = tape.leaf(Tensor::rand_normal(&[4, 4], 0.0, 3.0, &mut rng));
        let g = tape.gated_tanh(a, b);
        assert!(tape.value(g).data().iter().all(|&v| v.abs() <= 1.0));
    }
}
