//! Property-based tests of the autodiff engine: calculus identities
//! that must hold for arbitrary inputs and compositions.

use ema_check::{gen, prop_assert, prop_tests};
use ema_autodiff::{Tape, Var};
use ema_tensor::{Rng64, Tensor};

fn vec_tensor(n: usize) -> impl Fn(&mut Rng64) -> Tensor {
    move |rng| Tensor::from_vec1(gen::vec_f64_len(rng, -3.0, 3.0, n))
}

/// A small catalogue of differentiable unary ops to compose.
#[derive(Debug, Clone, Copy)]
enum UnaryOp {
    Tanh,
    Sigmoid,
    Square,
    ScaleHalf,
    AddOne,
    LeakyRelu,
}

impl UnaryOp {
    fn apply(self, tape: &Tape, v: Var) -> Var {
        match self {
            UnaryOp::Tanh => tape.tanh(v),
            UnaryOp::Sigmoid => tape.sigmoid(v),
            UnaryOp::Square => tape.square(v),
            UnaryOp::ScaleHalf => tape.scale(v, 0.5),
            UnaryOp::AddOne => tape.add_scalar(v, 1.0),
            UnaryOp::LeakyRelu => tape.leaky_relu(v, 0.1),
        }
    }
}

const ALL_OPS: [UnaryOp; 6] = [
    UnaryOp::Tanh,
    UnaryOp::Sigmoid,
    UnaryOp::Square,
    UnaryOp::ScaleHalf,
    UnaryOp::AddOne,
    UnaryOp::LeakyRelu,
];

fn op_chain(rng: &mut Rng64) -> Vec<UnaryOp> {
    gen::vec_of(gen::one_of(&ALL_OPS), 1, 5)(rng)
}

prop_tests! {
    /// Chain rule: any random composition of smooth unary ops matches a
    /// central finite difference.
    fn random_compositions_pass_gradient_check(
        (x, ops) in |rng: &mut Rng64| (vec_tensor(5)(rng), op_chain(rng)),
    ) {
        // Keep clear of the leaky-ReLU kink where finite differences lie.
        let x = x.map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        let report = ema_autodiff::check::check_gradient(&x, 1e-5, |tape, v| {
            let mut cur = v;
            for op in &ops {
                cur = op.apply(tape, cur);
            }
            tape.sum_all(cur)
        });
        prop_assert!(
            report.max_rel_error < 1e-4,
            "composition {:?} failed: rel err {}",
            ops,
            report.max_rel_error
        );
    }

    /// d(sum)/dx is exactly a tensor of ones.
    fn grad_of_sum_is_ones(x in vec_tensor(7)) {
        let tape = Tape::new();
        let v = tape.leaf(x.clone());
        let loss = tape.sum_all(v);
        let grads = tape.backward(loss);
        let g = grads.get(v).unwrap();
        prop_assert!(g.data().iter().all(|&gi| gi == 1.0));
    }

    /// Linearity: ∇(α·f) = α·∇f.
    fn gradients_scale_linearly(
        (x, alpha) in |rng: &mut Rng64| (vec_tensor(6)(rng), gen::f64_in(rng, -3.0, 3.0)),
    ) {
        let grad_of = |scale: f64| {
            let tape = Tape::new();
            let v = tape.leaf(x.clone());
            let y = tape.tanh(v);
            let scaled = tape.scale(y, scale);
            let loss = tape.sum_all(scaled);
            let grads = tape.backward(loss);
            grads.get(v).unwrap().clone()
        };
        let g1 = grad_of(1.0);
        let ga = grad_of(alpha);
        for (a, b) in g1.data().iter().zip(ga.data().iter()) {
            prop_assert!((a * alpha - b).abs() < 1e-9);
        }
    }

    /// Additivity: ∇(f + g) = ∇f + ∇g when f and g share the input.
    fn gradients_add(x in vec_tensor(6)) {
        let grad_combined = {
            let tape = Tape::new();
            let v = tape.leaf(x.clone());
            let f = tape.tanh(v);
            let g = tape.square(v);
            let sum = tape.add(f, g);
            let loss = tape.sum_all(sum);
            tape.backward(loss).get(v).unwrap().clone()
        };
        let grad_f = {
            let tape = Tape::new();
            let v = tape.leaf(x.clone());
            let f = tape.tanh(v);
            let loss = tape.sum_all(f);
            tape.backward(loss).get(v).unwrap().clone()
        };
        let grad_g = {
            let tape = Tape::new();
            let v = tape.leaf(x.clone());
            let g = tape.square(v);
            let loss = tape.sum_all(g);
            tape.backward(loss).get(v).unwrap().clone()
        };
        for i in 0..x.len() {
            prop_assert!(
                (grad_combined.data()[i] - grad_f.data()[i] - grad_g.data()[i]).abs() < 1e-9
            );
        }
    }

    /// MSE gradient at the minimum is zero, and grows with the residual.
    fn mse_gradient_points_at_target(x in vec_tensor(5)) {
        let tape = Tape::new();
        let v = tape.leaf(x.clone());
        let target = tape.leaf(Tensor::zeros(&[5]));
        let loss = tape.mse(v, target);
        let grads = tape.backward(loss);
        let g = grads.get(v).unwrap();
        // ∇ = 2(x − t)/n: sign matches the residual.
        for (xi, gi) in x.data().iter().zip(g.data().iter()) {
            prop_assert!((gi - 2.0 * xi / 5.0).abs() < 1e-9);
        }
    }

    /// Constant leaves that do not feed the loss receive no gradient.
    fn disconnected_leaves_get_no_gradient(
        (x, y) in |rng: &mut Rng64| (vec_tensor(4)(rng), vec_tensor(4)(rng)),
    ) {
        let tape = Tape::new();
        let vx = tape.leaf(x);
        let vy = tape.leaf(y);
        let sq = tape.square(vx);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        prop_assert!(grads.get(vy).is_none());
        prop_assert!(grads.get(vx).is_some());
    }

    /// Softmax gradient rows sum to ~0 (probability mass is conserved).
    fn softmax_grad_rows_sum_to_zero(x in vec_tensor(6)) {
        let tape = Tape::new();
        let v = tape.leaf(x);
        let s = tape.softmax_last(v);
        // Weight the output so the gradient is non-trivial.
        let w = tape.leaf(Tensor::linspace(-1.0, 1.0, 6));
        let p = tape.mul(s, w);
        let loss = tape.sum_all(p);
        let grads = tape.backward(loss);
        let g = grads.get(v).unwrap();
        prop_assert!(g.sum().abs() < 1e-9, "softmax grad sum {}", g.sum());
    }
}
