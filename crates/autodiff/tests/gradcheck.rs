//! Central finite-difference gradient checks for every differentiable op.
//!
//! Each test perturbs the *input* tensor elementwise and compares the
//! analytic tape gradient against a central difference. This is the
//! ground-truth safety net for all model training in the workspace.

use ema_autodiff::check::assert_gradients_close;
use ema_autodiff::Tape;
use ema_tensor::{Rng64, Tensor};

const TOL: f64 = 1e-5;

fn rand(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng64::seed_from(seed);
    Tensor::rand_normal(dims, 0.0, 1.0, &mut rng)
}

#[test]
fn grad_add() {
    let x = rand(&[3, 4], 1);
    let other = rand(&[3, 4], 2);
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let s = t.add(v, o);
        let sq = t.square(s);
        t.sum_all(sq)
    });
}

#[test]
fn grad_sub_both_sides() {
    let x = rand(&[2, 3], 3);
    let other = rand(&[2, 3], 4);
    // x as minuend
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let s = t.sub(v, o);
        let sq = t.square(s);
        t.sum_all(sq)
    });
    // x as subtrahend
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let s = t.sub(o, v);
        let sq = t.square(s);
        t.sum_all(sq)
    });
}

#[test]
fn grad_mul() {
    let x = rand(&[4], 5);
    let other = rand(&[4], 6);
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let p = t.mul(v, o);
        t.sum_all(p)
    });
}

#[test]
fn grad_div_numerator_and_denominator() {
    let x = rand(&[4], 7).map(|v| v + 3.0); // keep away from zero
    let other = rand(&[4], 8).map(|v| v + 3.0);
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let q = t.div(v, o);
        t.sum_all(q)
    });
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let q = t.div(o, v);
        t.sum_all(q)
    });
}

#[test]
fn grad_scale_and_add_scalar() {
    let x = rand(&[5], 9);
    assert_gradients_close(&x, TOL, |t, v| {
        let a = t.scale(v, -2.5);
        let b = t.add_scalar(a, 7.0);
        let sq = t.square(b);
        t.sum_all(sq)
    });
}

#[test]
fn grad_matmul_lhs_and_rhs() {
    let x = rand(&[3, 4], 10);
    let other = rand(&[4, 2], 11);
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let p = t.matmul(v, o);
        let sq = t.square(p);
        t.sum_all(sq)
    });
    let x2 = rand(&[4, 2], 12);
    let lhs = rand(&[3, 4], 13);
    assert_gradients_close(&x2, TOL, |t, v| {
        let l = t.leaf(lhs.clone());
        let p = t.matmul(l, v);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_transpose() {
    let x = rand(&[3, 5], 14);
    let w = rand(&[3, 5], 15);
    assert_gradients_close(&x, TOL, |t, v| {
        let tr = t.transpose(v);
        let tr2 = t.transpose(tr);
        let wl = t.leaf(w.clone());
        let p = t.mul(tr2, wl);
        t.sum_all(p)
    });
}

#[test]
fn grad_tanh() {
    let x = rand(&[6], 16);
    assert_gradients_close(&x, TOL, |t, v| {
        let y = t.tanh(v);
        let sq = t.square(y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_sigmoid() {
    let x = rand(&[6], 17);
    assert_gradients_close(&x, TOL, |t, v| {
        let y = t.sigmoid(v);
        let sq = t.square(y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_relu_away_from_kink() {
    // Shift all values away from 0 so the finite difference is valid.
    let x = rand(&[8], 18).map(|v| if v.abs() < 0.1 { v + 0.5 } else { v });
    assert_gradients_close(&x, TOL, |t, v| {
        let y = t.relu(v);
        let sq = t.square(y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_leaky_relu() {
    let x = rand(&[8], 19).map(|v| if v.abs() < 0.1 { v + 0.5 } else { v });
    assert_gradients_close(&x, TOL, |t, v| {
        let y = t.leaky_relu(v, 0.2);
        let sq = t.square(y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_square() {
    let x = rand(&[7], 20);
    assert_gradients_close(&x, TOL, |t, v| {
        let y = t.square(v);
        t.sum_all(y)
    });
}

#[test]
fn grad_softmax_vector() {
    let x = rand(&[5], 21);
    let w = Tensor::from_vec1(vec![1.0, -2.0, 3.0, 0.5, 2.0]);
    assert_gradients_close(&x, TOL, |t, v| {
        let s = t.softmax_last(v);
        let wl = t.leaf(w.clone());
        let p = t.mul(s, wl);
        t.sum_all(p)
    });
}

#[test]
fn grad_softmax_matrix_rows() {
    let x = rand(&[3, 4], 22);
    let w = rand(&[3, 4], 23);
    assert_gradients_close(&x, TOL, |t, v| {
        let s = t.softmax_last(v);
        let wl = t.leaf(w.clone());
        let p = t.mul(s, wl);
        t.sum_all(p)
    });
}

#[test]
fn grad_mean_all() {
    let x = rand(&[4, 4], 24);
    assert_gradients_close(&x, TOL, |t, v| {
        let sq = t.square(v);
        t.mean_all(sq)
    });
}

#[test]
fn grad_add_row_broadcast_matrix_and_row() {
    let m = rand(&[4, 3], 25);
    let row = rand(&[3], 26);
    assert_gradients_close(&m, TOL, |t, v| {
        let r = t.leaf(row.clone());
        let y = t.add_row_broadcast(v, r);
        let sq = t.square(y);
        t.sum_all(sq)
    });
    assert_gradients_close(&row, TOL, |t, v| {
        let ml = t.leaf(m.clone());
        let y = t.add_row_broadcast(ml, v);
        let sq = t.square(y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_mul_row_broadcast_matrix_and_row() {
    let m = rand(&[4, 3], 27);
    let row = rand(&[3], 28);
    assert_gradients_close(&m, TOL, |t, v| {
        let r = t.leaf(row.clone());
        let y = t.mul_row_broadcast(v, r);
        let sq = t.square(y);
        t.sum_all(sq)
    });
    assert_gradients_close(&row, TOL, |t, v| {
        let ml = t.leaf(m.clone());
        let y = t.mul_row_broadcast(ml, v);
        let sq = t.square(y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_hcat_vcat() {
    let x = rand(&[3, 2], 29);
    let other = rand(&[3, 4], 30);
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let c = t.hcat(v, o);
        let sq = t.square(c);
        t.sum_all(sq)
    });
    let x2 = rand(&[2, 3], 31);
    let other2 = rand(&[4, 3], 32);
    assert_gradients_close(&x2, TOL, |t, v| {
        let o = t.leaf(other2.clone());
        let c = t.vcat(o, v);
        let sq = t.square(c);
        t.sum_all(sq)
    });
}

#[test]
fn grad_slices() {
    let x = rand(&[5, 4], 33);
    assert_gradients_close(&x, TOL, |t, v| {
        let s = t.slice_rows(v, 1, 4);
        let sq = t.square(s);
        t.sum_all(sq)
    });
    assert_gradients_close(&x, TOL, |t, v| {
        let s = t.slice_cols(v, 0, 2);
        let sq = t.square(s);
        t.sum_all(sq)
    });
}

#[test]
fn grad_reshape() {
    let x = rand(&[2, 6], 34);
    let w = rand(&[3, 4], 35);
    assert_gradients_close(&x, TOL, |t, v| {
        let r = t.reshape(v, &[3, 4]);
        let wl = t.leaf(w.clone());
        let p = t.mul(r, wl);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_stack_rows() {
    let x = rand(&[4], 36);
    let other = rand(&[4], 37);
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let m = t.stack_rows(&[v, o, v]); // reuse to test accumulation
        let sq = t.square(m);
        t.sum_all(sq)
    });
}

#[test]
fn grad_mse() {
    let x = rand(&[3, 4], 38);
    let target = rand(&[3, 4], 39);
    assert_gradients_close(&x, TOL, |t, v| {
        let tgt = t.leaf(target.clone());
        t.mse(v, tgt)
    });
}

#[test]
fn grad_attention_composite() {
    // Differentiates through softmax-attention end to end.
    let q = rand(&[3, 4], 40);
    let k = rand(&[5, 4], 41);
    let v_ = rand(&[5, 2], 42);
    assert_gradients_close(&q, 1e-4, |t, var| {
        let kl = t.leaf(k.clone());
        let vl = t.leaf(v_.clone());
        let out = t.attention(var, kl, vl);
        let sq = t.square(out);
        t.sum_all(sq)
    });
    assert_gradients_close(&k, 1e-4, |t, var| {
        let ql = t.leaf(q.clone());
        let vl = t.leaf(v_.clone());
        let out = t.attention(ql, var, vl);
        let sq = t.square(out);
        t.sum_all(sq)
    });
}

#[test]
fn grad_gated_tanh() {
    let x = rand(&[4, 4], 43);
    let other = rand(&[4, 4], 44);
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let g = t.gated_tanh(v, o);
        t.sum_all(g)
    });
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let g = t.gated_tanh(o, v);
        t.sum_all(g)
    });
}

#[test]
fn grad_deep_composition() {
    // A small MLP-like composition exercising many ops together.
    let x = rand(&[4, 3], 45);
    let w1 = rand(&[5, 3], 46);
    let b1 = rand(&[5], 47);
    let w2 = rand(&[2, 5], 48);
    let b2 = rand(&[2], 49);
    let target = rand(&[4, 2], 50);
    assert_gradients_close(&x, 1e-4, |t, v| {
        let w1l = t.leaf(w1.clone());
        let b1l = t.leaf(b1.clone());
        let w2l = t.leaf(w2.clone());
        let b2l = t.leaf(b2.clone());
        let h = t.linear(v, w1l, b1l);
        let a = t.tanh(h);
        let y = t.linear(a, w2l, b2l);
        let tgt = t.leaf(target.clone());
        t.mse(y, tgt)
    });
}

#[test]
fn grad_linear_weight() {
    // Check gradient w.r.t. the weight matrix too.
    let w = rand(&[5, 3], 51);
    let x = rand(&[4, 3], 52);
    let b = rand(&[5], 53);
    assert_gradients_close(&w, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let bl = t.leaf(b.clone());
        let y = t.linear(xl, v, bl);
        let sq = t.square(y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_neg() {
    let x = rand(&[3, 4], 55);
    assert_gradients_close(&x, TOL, |t, v| {
        let n = t.neg(v);
        let sq = t.square(n);
        let n2 = t.neg(sq);
        t.sum_all(n2)
    });
}

#[test]
fn grad_flatten() {
    let x = rand(&[3, 4], 56);
    let w = rand(&[12], 57);
    assert_gradients_close(&x, TOL, |t, v| {
        let f = t.flatten(v);
        let wl = t.leaf(w.clone());
        let p = t.mul(f, wl);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_attention_scores() {
    let q = rand(&[3, 4], 58);
    let k = rand(&[5, 4], 59);
    let w = rand(&[3, 5], 60);
    assert_gradients_close(&q, 1e-4, |t, var| {
        let kl = t.leaf(k.clone());
        let s = t.attention_scores(var, kl);
        let wl = t.leaf(w.clone());
        let p = t.mul(s, wl);
        t.sum_all(p)
    });
    assert_gradients_close(&k, 1e-4, |t, var| {
        let ql = t.leaf(q.clone());
        let s = t.attention_scores(ql, var);
        let wl = t.leaf(w.clone());
        let p = t.mul(s, wl);
        t.sum_all(p)
    });
}

#[test]
fn grad_dropout_with_fixed_mask() {
    // Recreate the mask RNG inside the closure so every finite-difference
    // evaluation sees the identical dropout mask — the masked graph is
    // then an ordinary differentiable function.
    let x = rand(&[4, 4], 61);
    assert_gradients_close(&x, TOL, |t, v| {
        let mut mask_rng = Rng64::seed_from(62);
        let d = t.dropout(v, 0.4, true, &mut mask_rng);
        let sq = t.square(d);
        t.sum_all(sq)
    });
}

#[test]
fn grad_dropout_eval_mode_is_identity() {
    let x = rand(&[4, 4], 63);
    assert_gradients_close(&x, TOL, |t, v| {
        let mut mask_rng = Rng64::seed_from(64);
        let d = t.dropout(v, 0.4, false, &mut mask_rng);
        let sq = t.square(d);
        t.sum_all(sq)
    });
}

#[test]
fn grad_matmul_tn_lhs_and_rhs() {
    let x = rand(&[4, 3], 65);
    let other = rand(&[4, 2], 66);
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let p = t.matmul_tn(v, o);
        let sq = t.square(p);
        t.sum_all(sq)
    });
    assert_gradients_close(&other, TOL, |t, v| {
        let l = t.leaf(x.clone());
        let p = t.matmul_tn(l, v);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_matmul_nt_lhs_and_rhs() {
    let x = rand(&[3, 4], 67);
    let other = rand(&[2, 4], 68);
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let p = t.matmul_nt(v, o);
        let sq = t.square(p);
        t.sum_all(sq)
    });
    assert_gradients_close(&other, TOL, |t, v| {
        let l = t.leaf(x.clone());
        let p = t.matmul_nt(l, v);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_addmm_all_three_parents() {
    // linear() now records a single fused Addmm node; check its gradient
    // against finite differences through every parent.
    let x = rand(&[4, 3], 69);
    let w = rand(&[5, 3], 70);
    let b = rand(&[5], 71);
    assert_gradients_close(&x, TOL, |t, v| {
        let wl = t.leaf(w.clone());
        let bl = t.leaf(b.clone());
        let y = t.linear(v, wl, bl);
        let sq = t.square(y);
        t.sum_all(sq)
    });
    assert_gradients_close(&w, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let bl = t.leaf(b.clone());
        let y = t.linear(xl, v, bl);
        let sq = t.square(y);
        t.sum_all(sq)
    });
    assert_gradients_close(&b, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let wl = t.leaf(w.clone());
        let y = t.linear(xl, wl, v);
        let sq = t.square(y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_lstm_cell_gates_and_state() {
    // [n=3, H=2] cell: perturb the pre-activation gates and the carry.
    let gates = rand(&[3, 8], 72);
    let c_prev = rand(&[3, 2], 73);
    let w = rand(&[3, 4], 74);
    assert_gradients_close(&gates, 1e-4, |t, v| {
        let c = t.leaf(c_prev.clone());
        let hc = t.lstm_cell(v, c);
        let wl = t.leaf(w.clone());
        let p = t.mul(hc, wl);
        t.sum_all(p)
    });
    assert_gradients_close(&c_prev, 1e-4, |t, v| {
        let g = t.leaf(gates.clone());
        let hc = t.lstm_cell(g, v);
        let wl = t.leaf(w.clone());
        let p = t.mul(hc, wl);
        t.sum_all(p)
    });
}

#[test]
fn grad_gru_cell_all_three_parents() {
    // [n=3, H=2] cell: perturb both gate pre-activations and the state.
    let gi = rand(&[3, 6], 75);
    let gh = rand(&[3, 6], 76);
    let h_prev = rand(&[3, 2], 77);
    let w = rand(&[3, 2], 78);
    assert_gradients_close(&gi, 1e-4, |t, v| {
        let ghl = t.leaf(gh.clone());
        let hl = t.leaf(h_prev.clone());
        let h = t.gru_cell(v, ghl, hl);
        let wl = t.leaf(w.clone());
        let p = t.mul(h, wl);
        t.sum_all(p)
    });
    assert_gradients_close(&gh, 1e-4, |t, v| {
        let gil = t.leaf(gi.clone());
        let hl = t.leaf(h_prev.clone());
        let h = t.gru_cell(gil, v, hl);
        let wl = t.leaf(w.clone());
        let p = t.mul(h, wl);
        t.sum_all(p)
    });
    assert_gradients_close(&h_prev, 1e-4, |t, v| {
        let gil = t.leaf(gi.clone());
        let ghl = t.leaf(gh.clone());
        let h = t.gru_cell(gil, ghl, v);
        let wl = t.leaf(w.clone());
        let p = t.mul(h, wl);
        t.sum_all(p)
    });
}

#[test]
fn grad_batched_matmul_both_parents() {
    // 3 windows of 2 rows sharing one rhs.
    let x = rand(&[6, 4], 80);
    let rhs = rand(&[4, 3], 81);
    assert_gradients_close(&x, TOL, |t, v| {
        let r = t.leaf(rhs.clone());
        let p = t.batched_matmul(v, r, 3);
        let sq = t.square(p);
        t.sum_all(sq)
    });
    assert_gradients_close(&rhs, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let p = t.batched_matmul(xl, v, 3);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_batched_matmul_grouped_replay() {
    // The grouped flag only changes accumulation association on the
    // shared side — the analytic gradient must still match finite
    // differences exactly.
    let x = rand(&[6, 4], 82);
    let rhs = rand(&[4, 1], 83);
    assert_gradients_close(&rhs, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let p = t.batched_matmul_grouped(xl, v, 3);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_batched_matmul_nt_both_parents() {
    let x = rand(&[6, 4], 84);
    let rhs = rand(&[3, 4], 85);
    assert_gradients_close(&x, TOL, |t, v| {
        let r = t.leaf(rhs.clone());
        let p = t.batched_matmul_nt(v, r, 2);
        let sq = t.square(p);
        t.sum_all(sq)
    });
    assert_gradients_close(&rhs, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let p = t.batched_matmul_nt(xl, v, 2);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_batched_linear_all_three_parents() {
    let x = rand(&[6, 3], 86);
    let w = rand(&[5, 3], 87);
    let b = rand(&[5], 88);
    assert_gradients_close(&x, TOL, |t, v| {
        let wl = t.leaf(w.clone());
        let bl = t.leaf(b.clone());
        let y = t.batched_linear(v, wl, bl, 3);
        let sq = t.square(y);
        t.sum_all(sq)
    });
    assert_gradients_close(&w, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let bl = t.leaf(b.clone());
        let y = t.batched_linear(xl, v, bl, 3);
        let sq = t.square(y);
        t.sum_all(sq)
    });
    assert_gradients_close(&b, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let wl = t.leaf(w.clone());
        let y = t.batched_linear(xl, wl, v, 3);
        let sq = t.square(y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_batched_add_row_broadcast_both_parents() {
    let m = rand(&[6, 3], 89);
    let row = rand(&[3], 90);
    assert_gradients_close(&m, TOL, |t, v| {
        let r = t.leaf(row.clone());
        let y = t.batched_add_row_broadcast(v, r, 3);
        let sq = t.square(y);
        t.sum_all(sq)
    });
    assert_gradients_close(&row, TOL, |t, v| {
        let ml = t.leaf(m.clone());
        let y = t.batched_add_row_broadcast(ml, v, 3);
        let sq = t.square(y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_block_lhs_matmul_both_parents() {
    // Shared [2, 3] lhs against 3 window blocks of [3, 4].
    let lhs = rand(&[2, 3], 91);
    let x = rand(&[9, 4], 92);
    assert_gradients_close(&lhs, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let p = t.block_lhs_matmul(v, xl, 3);
        let sq = t.square(p);
        t.sum_all(sq)
    });
    assert_gradients_close(&x, TOL, |t, v| {
        let ll = t.leaf(lhs.clone());
        let p = t.block_lhs_matmul(ll, v, 3);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_block_matmul_both_parents() {
    // Per-window [2, 3] x [3, 4] products.
    let x = rand(&[6, 3], 93);
    let y = rand(&[9, 4], 94);
    assert_gradients_close(&x, TOL, |t, v| {
        let yl = t.leaf(y.clone());
        let p = t.block_matmul(v, yl, 3);
        let sq = t.square(p);
        t.sum_all(sq)
    });
    assert_gradients_close(&y, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let p = t.block_matmul(xl, v, 3);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_block_matmul_nt_both_parents() {
    // Per-window [2, 3] x [4, 3]ᵀ products.
    let x = rand(&[6, 3], 95);
    let y = rand(&[12, 3], 96);
    assert_gradients_close(&x, TOL, |t, v| {
        let yl = t.leaf(y.clone());
        let p = t.block_matmul_nt(v, yl, 3);
        let sq = t.square(p);
        t.sum_all(sq)
    });
    assert_gradients_close(&y, TOL, |t, v| {
        let xl = t.leaf(x.clone());
        let p = t.block_matmul_nt(xl, v, 3);
        let sq = t.square(p);
        t.sum_all(sq)
    });
}

#[test]
fn grad_stack_window_blocks() {
    // Two states of 2 windows x 3 rows x 2 cols; reuse one state to test
    // gradient accumulation across stack positions.
    let x = rand(&[6, 2], 97);
    let other = rand(&[6, 2], 98);
    assert_gradients_close(&x, TOL, |t, v| {
        let o = t.leaf(other.clone());
        let s = t.stack_window_blocks(&[v, o, v], 2);
        let sq = t.square(s);
        t.sum_all(sq)
    });
}

#[test]
fn grad_dropout_masked() {
    let x = rand(&[4, 3], 99);
    let mask = {
        let mut rng = Rng64::seed_from(100);
        let mut m = Tensor::zeros(&[4, 3]);
        for v in m.data_mut() {
            if rng.bernoulli(0.6) {
                *v = 1.0 / 0.6;
            }
        }
        m
    };
    assert_gradients_close(&x, TOL, |t, v| {
        let d = t.dropout_masked(v, mask.clone());
        let sq = t.square(d);
        t.sum_all(sq)
    });
}

#[test]
fn tape_reuse_multiple_backwards() {
    // Two backward passes over the same tape agree.
    let tape = Tape::new();
    let x = tape.leaf(rand(&[3], 54));
    let y = tape.square(x);
    let loss = tape.sum_all(y);
    let g1 = tape.backward(loss);
    let g2 = tape.backward(loss);
    assert_eq!(g1.get(x).unwrap().data(), g2.get(x).unwrap().data());
}

#[test]
fn grad_group_linear_all_parents() {
    // A 3-group cohort stack with uneven row counts (3 + 1 + 2); check
    // the stacked input and every group's weight and bias.
    let rows = [3usize, 1, 2];
    let x = rand(&[6, 3], 101);
    let ws: Vec<Tensor> = (0..3).map(|b| rand(&[4, 3], 102 + b)).collect();
    let bs: Vec<Tensor> = (0..3).map(|b| rand(&[4], 105 + b)).collect();
    let build = |t: &Tape, xv, ws: &[Tensor], bs: &[Tensor], swap: Option<(usize, bool, ema_autodiff::Var)>| {
        let params: Vec<(ema_autodiff::Var, ema_autodiff::Var)> = ws
            .iter()
            .zip(bs)
            .enumerate()
            .map(|(g, (w, b))| match swap {
                Some((sg, is_bias, v)) if sg == g => {
                    if is_bias {
                        (t.leaf(w.clone()), v)
                    } else {
                        (v, t.leaf(b.clone()))
                    }
                }
                _ => (t.leaf(w.clone()), t.leaf(b.clone())),
            })
            .collect();
        let y = t.group_linear(xv, &params, &rows);
        let sq = t.square(y);
        t.sum_all(sq)
    };
    assert_gradients_close(&x, TOL, |t, v| build(t, v, &ws, &bs, None));
    for g in 0..3 {
        assert_gradients_close(&ws[g], TOL, |t, v| {
            let xl = t.leaf(x.clone());
            build(t, xl, &ws, &bs, Some((g, false, v)))
        });
        assert_gradients_close(&bs[g], TOL, |t, v| {
            let xl = t.leaf(x.clone());
            build(t, xl, &ws, &bs, Some((g, true, v)))
        });
    }
}

#[test]
fn grad_group_linear_blocks_all_parents() {
    // Mixed group sizes with multi-row window blocks (wins 2 + 1 + 3,
    // block_rows 2): the graph-model layout.
    let wins = [2usize, 1, 3];
    let x = rand(&[12, 3], 110);
    let ws: Vec<Tensor> = (0..3).map(|b| rand(&[4, 3], 111 + b)).collect();
    let bs: Vec<Tensor> = (0..3).map(|b| rand(&[4], 114 + b)).collect();
    let build = |t: &Tape, xv, ws: &[Tensor], bs: &[Tensor], swap: Option<(usize, bool, ema_autodiff::Var)>| {
        let params: Vec<(ema_autodiff::Var, ema_autodiff::Var)> = ws
            .iter()
            .zip(bs)
            .enumerate()
            .map(|(g, (w, b))| match swap {
                Some((sg, is_bias, v)) if sg == g => {
                    if is_bias {
                        (t.leaf(w.clone()), v)
                    } else {
                        (v, t.leaf(b.clone()))
                    }
                }
                _ => (t.leaf(w.clone()), t.leaf(b.clone())),
            })
            .collect();
        let y = t.group_linear_blocks(xv, &params, &wins, 2);
        let sq = t.square(y);
        t.sum_all(sq)
    };
    assert_gradients_close(&x, TOL, |t, v| build(t, v, &ws, &bs, None));
    for g in 0..3 {
        assert_gradients_close(&ws[g], TOL, |t, v| {
            let xl = t.leaf(x.clone());
            build(t, xl, &ws, &bs, Some((g, false, v)))
        });
        assert_gradients_close(&bs[g], TOL, |t, v| {
            let xl = t.leaf(x.clone());
            build(t, xl, &ws, &bs, Some((g, true, v)))
        });
    }
}

#[test]
fn grad_group_matmul_all_parents() {
    // wins 2 + 1 + 3, block_rows 2 → 12 stacked rows; per-group [3, 4]
    // right-hand sides.
    let wins = [2usize, 1, 3];
    let x = rand(&[12, 3], 120);
    let rs: Vec<Tensor> = (0..3).map(|b| rand(&[3, 4], 121 + b)).collect();
    let build = |t: &Tape, xv, rs: &[Tensor], swap: Option<(usize, ema_autodiff::Var)>| {
        let rhses: Vec<ema_autodiff::Var> = rs
            .iter()
            .enumerate()
            .map(|(g, r)| match swap {
                Some((sg, v)) if sg == g => v,
                _ => t.leaf(r.clone()),
            })
            .collect();
        let y = t.group_matmul(xv, &rhses, &wins, 2);
        let sq = t.square(y);
        t.sum_all(sq)
    };
    assert_gradients_close(&x, TOL, |t, v| build(t, v, &rs, None));
    for g in 0..3 {
        assert_gradients_close(&rs[g], TOL, |t, v| {
            let xl = t.leaf(x.clone());
            build(t, xl, &rs, Some((g, v)))
        });
    }
}

#[test]
fn grad_group_matmul_grouped_all_parents() {
    // The grouped-replay variant (attention score layout: n = 1).
    let wins = [3usize, 2];
    let x = rand(&[5, 4], 130);
    let rs: Vec<Tensor> = (0..2).map(|b| rand(&[4, 1], 131 + b)).collect();
    let build = |t: &Tape, xv, rs: &[Tensor], swap: Option<(usize, ema_autodiff::Var)>| {
        let rhses: Vec<ema_autodiff::Var> = rs
            .iter()
            .enumerate()
            .map(|(g, r)| match swap {
                Some((sg, v)) if sg == g => v,
                _ => t.leaf(r.clone()),
            })
            .collect();
        let y = t.group_matmul_grouped(xv, &rhses, &wins, 1);
        let sq = t.square(y);
        t.sum_all(sq)
    };
    assert_gradients_close(&x, TOL, |t, v| build(t, v, &rs, None));
    for g in 0..2 {
        assert_gradients_close(&rs[g], TOL, |t, v| {
            let xl = t.leaf(x.clone());
            build(t, xl, &rs, Some((g, v)))
        });
    }
}

#[test]
fn grad_group_matmul_nt_all_parents() {
    // wins 1 + 4 + 2, block_rows 3; per-group transposed [4, 2] weights.
    let wins = [1usize, 4, 2];
    let x = rand(&[21, 2], 140);
    let rs: Vec<Tensor> = (0..3).map(|b| rand(&[4, 2], 141 + b)).collect();
    let build = |t: &Tape, xv, rs: &[Tensor], swap: Option<(usize, ema_autodiff::Var)>| {
        let rhses: Vec<ema_autodiff::Var> = rs
            .iter()
            .enumerate()
            .map(|(g, r)| match swap {
                Some((sg, v)) if sg == g => v,
                _ => t.leaf(r.clone()),
            })
            .collect();
        let y = t.group_matmul_nt(xv, &rhses, &wins, 3);
        let sq = t.square(y);
        t.sum_all(sq)
    };
    assert_gradients_close(&x, TOL, |t, v| build(t, v, &rs, None));
    for g in 0..3 {
        assert_gradients_close(&rs[g], TOL, |t, v| {
            let xl = t.leaf(x.clone());
            build(t, xl, &rs, Some((g, v)))
        });
    }
}

#[test]
fn grad_group_add_row_broadcast_all_parents() {
    // wins 2 + 3, block_rows 2 → 10 stacked rows; per-group [5] rows.
    let wins = [2usize, 3];
    let m = rand(&[10, 5], 150);
    let rs: Vec<Tensor> = (0..2).map(|b| rand(&[5], 151 + b)).collect();
    let build = |t: &Tape, mv, rs: &[Tensor], swap: Option<(usize, ema_autodiff::Var)>| {
        let rows: Vec<ema_autodiff::Var> = rs
            .iter()
            .enumerate()
            .map(|(g, r)| match swap {
                Some((sg, v)) if sg == g => v,
                _ => t.leaf(r.clone()),
            })
            .collect();
        let y = t.group_add_row_broadcast(mv, &rows, &wins, 2);
        let sq = t.square(y);
        t.sum_all(sq)
    };
    assert_gradients_close(&m, TOL, |t, v| build(t, v, &rs, None));
    for g in 0..2 {
        assert_gradients_close(&rs[g], TOL, |t, v| {
            let ml = t.leaf(m.clone());
            build(t, ml, &rs, Some((g, v)))
        });
    }
}

#[test]
fn grad_group_block_lhs_matmul_all_parents() {
    // wins 3 + 1 + 2 with rectangular [2, 3] per-group lhs matrices:
    // x is [Σ wins·3, 2] and the output [Σ wins·2, 2].
    let wins = [3usize, 1, 2];
    let x = rand(&[18, 2], 160);
    let ls: Vec<Tensor> = (0..3).map(|b| rand(&[2, 3], 161 + b)).collect();
    let build = |t: &Tape, xv, ls: &[Tensor], swap: Option<(usize, ema_autodiff::Var)>| {
        let lhses: Vec<ema_autodiff::Var> = ls
            .iter()
            .enumerate()
            .map(|(g, l)| match swap {
                Some((sg, v)) if sg == g => v,
                _ => t.leaf(l.clone()),
            })
            .collect();
        let y = t.group_block_lhs_matmul(&lhses, xv, &wins);
        let sq = t.square(y);
        t.sum_all(sq)
    };
    assert_gradients_close(&x, TOL, |t, v| build(t, v, &ls, None));
    for g in 0..3 {
        assert_gradients_close(&ls[g], TOL, |t, v| {
            let xl = t.leaf(x.clone());
            build(t, xl, &ls, Some((g, v)))
        });
    }
}
