//! Missing-value imputation for EMA matrices.
//!
//! The generator models missed beeps by *dropping rows* (shortening
//! `T_i`, as in the paper's preprocessing); real EMA exports instead
//! often contain per-item missing values (`NaN`). This module provides
//! the standard repairs so such data can enter the pipeline, which
//! requires fully-observed matrices.

use ema_tensor::Tensor;

/// How a missing (NaN) value is replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImputeStrategy {
    /// Carry the last observed value of the variable forward; leading
    /// missing values fall back to the column mean.
    ForwardFill,
    /// Replace with the variable's observed mean.
    Mean,
    /// Linearly interpolate between the surrounding observed values;
    /// boundary gaps fall back to the nearest observation.
    Linear,
}

/// Counts missing (NaN) entries in a `[T, V]` matrix.
#[must_use]
pub fn count_missing(data: &Tensor) -> usize {
    data.data().iter().filter(|v| v.is_nan()).count()
}

/// Fraction of missing entries, in `[0, 1]`.
#[must_use]
pub fn missing_rate(data: &Tensor) -> f64 {
    count_missing(data) as f64 / data.len() as f64
}

/// Imputes every NaN in a `[T, V]` matrix under the chosen strategy.
/// Columns with *no* observed values are filled with zeros.
///
/// # Panics
/// Panics unless `data` is rank 2.
#[must_use]
pub fn impute(data: &Tensor, strategy: ImputeStrategy) -> Tensor {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    let (t, v) = (data.dims()[0], data.dims()[1]);
    let mut out = data.clone();
    for j in 0..v {
        let observed: Vec<(usize, f64)> = (0..t)
            .filter_map(|i| {
                let val = data.at2(i, j);
                val.is_finite().then_some((i, val))
            })
            .collect();
        if observed.is_empty() {
            for i in 0..t {
                out.set2(i, j, 0.0);
            }
            continue;
        }
        let mean = observed.iter().map(|&(_, v)| v).sum::<f64>() / observed.len() as f64;
        for i in 0..t {
            if out.at2(i, j).is_finite() {
                continue;
            }
            let filled = match strategy {
                ImputeStrategy::Mean => mean,
                ImputeStrategy::ForwardFill => observed
                    .iter()
                    .rev()
                    .find(|&&(k, _)| k < i)
                    .map_or(mean, |&(_, v)| v),
                ImputeStrategy::Linear => {
                    let before = observed.iter().rev().find(|&&(k, _)| k < i);
                    let after = observed.iter().find(|&&(k, _)| k > i);
                    match (before, after) {
                        (Some(&(k0, v0)), Some(&(k1, v1))) => {
                            let frac = (i - k0) as f64 / (k1 - k0) as f64;
                            v0 + frac * (v1 - v0)
                        }
                        (Some(&(_, v0)), None) => v0,
                        (None, Some(&(_, v1))) => v1,
                        (None, None) => mean,
                    }
                }
            };
            out.set2(i, j, filled);
        }
    }
    out
}

/// Randomly masks entries of a matrix with NaN at the given rate —
/// used by tests and robustness experiments to simulate item
/// non-response.
///
/// # Panics
/// Panics unless `0 <= rate < 1`.
#[must_use]
pub fn mask_random(data: &Tensor, rate: f64, rng: &mut ema_tensor::Rng64) -> Tensor {
    assert!((0.0..1.0).contains(&rate), "invalid mask rate {rate}");
    let mut out = data.clone();
    for v in out.data_mut() {
        if rng.bernoulli(rate) {
            *v = f64::NAN;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Rng64;

    fn with_gaps() -> Tensor {
        let nan = f64::NAN;
        Tensor::from_vec2(vec![
            vec![1.0, nan],
            vec![nan, 4.0],
            vec![3.0, nan],
            vec![nan, 8.0],
        ])
        .unwrap()
    }

    #[test]
    fn counting() {
        let d = with_gaps();
        assert_eq!(count_missing(&d), 4);
        assert_eq!(missing_rate(&d), 0.5);
    }

    #[test]
    fn mean_imputation() {
        let filled = impute(&with_gaps(), ImputeStrategy::Mean);
        assert_eq!(count_missing(&filled), 0);
        assert_eq!(filled.at2(1, 0), 2.0); // mean of 1, 3
        assert_eq!(filled.at2(0, 1), 6.0); // mean of 4, 8
    }

    #[test]
    fn forward_fill_carries_last_value() {
        let filled = impute(&with_gaps(), ImputeStrategy::ForwardFill);
        assert_eq!(filled.at2(1, 0), 1.0);
        assert_eq!(filled.at2(3, 0), 3.0);
        // Leading gap falls back to the mean.
        assert_eq!(filled.at2(0, 1), 6.0);
        assert_eq!(filled.at2(2, 1), 4.0);
    }

    #[test]
    fn linear_interpolation() {
        let filled = impute(&with_gaps(), ImputeStrategy::Linear);
        assert_eq!(filled.at2(1, 0), 2.0); // midpoint of 1 and 3
        assert_eq!(filled.at2(2, 1), 6.0); // midpoint of 4 and 8
        // Trailing gap clamps to the last observation.
        assert_eq!(filled.at2(3, 0), 3.0);
    }

    #[test]
    fn fully_missing_column_becomes_zero() {
        let nan = f64::NAN;
        let d = Tensor::from_vec2(vec![vec![nan, 1.0], vec![nan, 2.0]]).unwrap();
        for strategy in [
            ImputeStrategy::Mean,
            ImputeStrategy::ForwardFill,
            ImputeStrategy::Linear,
        ] {
            let filled = impute(&d, strategy);
            assert_eq!(filled.col(0).data(), &[0.0, 0.0]);
            assert_eq!(filled.col(1).data(), &[1.0, 2.0]);
        }
    }

    #[test]
    fn observed_values_are_untouched() {
        let d = with_gaps();
        for strategy in [
            ImputeStrategy::Mean,
            ImputeStrategy::ForwardFill,
            ImputeStrategy::Linear,
        ] {
            let filled = impute(&d, strategy);
            assert_eq!(filled.at2(0, 0), 1.0);
            assert_eq!(filled.at2(2, 0), 3.0);
            assert_eq!(filled.at2(1, 1), 4.0);
            assert_eq!(filled.at2(3, 1), 8.0);
        }
    }

    #[test]
    fn mask_and_impute_round_trip_is_close_for_smooth_series() {
        // Low-noise AR series: linear interpolation recovers most mass.
        let mut rng = Rng64::seed_from(5);
        let mut rows = vec![vec![0.0; 3]];
        for t in 1..200 {
            let prev = rows[t - 1].clone();
            rows.push(
                prev.iter()
                    .map(|&x| 0.95 * x + 0.05 * rng.normal())
                    .collect(),
            );
        }
        let data = Tensor::from_vec2(rows).unwrap();
        let masked = mask_random(&data, 0.2, &mut rng);
        let filled = impute(&masked, ImputeStrategy::Linear);
        let err = filled.mse(&data);
        assert!(err < 0.01, "interpolation error {err} too large");
    }

    #[test]
    fn mask_rate_is_respected() {
        let mut rng = Rng64::seed_from(6);
        let data = Tensor::ones(&[100, 100]);
        let masked = mask_random(&data, 0.3, &mut rng);
        let rate = missing_rate(&masked);
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
