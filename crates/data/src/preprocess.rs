//! Preprocessing: normalisation and the paper's filtering steps.

use crate::dataset::EmaDataset;
use ema_tensor::Tensor;

/// Z-normalises each column (variable) of a `[T, V]` matrix to zero mean
/// and unit variance. Constant columns map to all zeros.
///
/// # Panics
/// Panics unless `data` is rank 2.
#[must_use]
pub fn z_normalize(data: &Tensor) -> Tensor {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    let (t, v) = (data.dims()[0], data.dims()[1]);
    let mut out = data.clone();
    for j in 0..v {
        let col = data.col(j);
        let mean = col.mean();
        let std = col.std();
        for i in 0..t {
            let val = if std > 0.0 {
                (data.at2(i, j) - mean) / std
            } else {
                0.0
            };
            out.set2(i, j, val);
        }
    }
    out
}

/// Per-column means of a `[T, V]` matrix.
#[must_use]
pub fn column_means(data: &Tensor) -> Tensor {
    data.mean_axis(0)
}

/// Per-column population standard deviations of a `[T, V]` matrix.
#[must_use]
pub fn column_stds(data: &Tensor) -> Tensor {
    let (t, v) = (data.dims()[0], data.dims()[1]);
    let means = column_means(data);
    let mut out = vec![0.0; v];
    for (j, slot) in out.iter_mut().enumerate() {
        let m = means.data()[j];
        let var: f64 = (0..t)
            .map(|i| {
                let d = data.at2(i, j) - m;
                d * d
            })
            .sum::<f64>()
            / t as f64;
        *slot = var.sqrt();
    }
    Tensor::from_vec1(out)
}

/// Removes participants with fewer than `min_time_points` usable rows —
/// the paper's low-compliance filter.
#[must_use]
pub fn filter_low_compliance(dataset: EmaDataset, min_time_points: usize) -> EmaDataset {
    let individuals = dataset
        .individuals
        .into_iter()
        .filter(|ind| ind.num_time_points() >= min_time_points)
        .collect();
    EmaDataset {
        individuals,
        variable_names: dataset.variable_names,
    }
}

/// Indices of variables whose *raw* standard deviation is at least
/// `min_std` for **every** participant — the paper's low-variance
/// variable filter (variables must survive across the whole panel so
/// every individual keeps the same V).
#[must_use]
pub fn high_variance_variables(dataset: &EmaDataset, min_std: f64) -> Vec<usize> {
    let v = dataset.num_variables();
    (0..v)
        .filter(|&j| {
            dataset
                .individuals
                .iter()
                .all(|ind| column_stds(&ind.raw).data()[j] >= min_std)
        })
        .collect()
}

/// Projects the dataset onto a subset of variable indices (raw and
/// normalised data, plus names and ground-truth graphs).
///
/// # Panics
/// Panics if `keep` is empty or contains out-of-range indices.
#[must_use]
pub fn select_variables(dataset: &EmaDataset, keep: &[usize]) -> EmaDataset {
    assert!(!keep.is_empty(), "cannot keep zero variables");
    let v = dataset.num_variables();
    assert!(keep.iter().all(|&j| j < v), "variable index out of range");

    let project = |m: &Tensor| -> Tensor {
        let t = m.dims()[0];
        let mut rows = Vec::with_capacity(t);
        for i in 0..t {
            rows.push(keep.iter().map(|&j| m.at2(i, j)).collect());
        }
        Tensor::from_vec2(rows).expect("projection is rectangular")
    };

    let individuals = dataset
        .individuals
        .iter()
        .map(|ind| crate::Individual {
            id: ind.id,
            data: project(&ind.data),
            raw: project(&ind.raw),
            ground_truth: ind.ground_truth.as_ref().map(|g| {
                let mut out = ema_graph::AdjacencyMatrix::empty(keep.len());
                for (a, &i) in keep.iter().enumerate() {
                    for (b, &j) in keep.iter().enumerate() {
                        if a != b {
                            out.set_weight(a, b, g.weight(i, j));
                        }
                    }
                }
                out
            }),
        })
        .collect();

    EmaDataset {
        individuals,
        variable_names: keep
            .iter()
            .map(|&j| dataset.variable_names[j].clone())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmaGenerator, GeneratorConfig, Individual};

    #[test]
    fn z_normalize_standardises() {
        let data = Tensor::from_vec2(vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
        ])
        .unwrap();
        let z = z_normalize(&data);
        for j in 0..2 {
            assert!(z.col(j).mean().abs() < 1e-12);
            assert!((z.col(j).std() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn z_normalize_constant_column_is_zero() {
        let data = Tensor::from_vec2(vec![vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let z = z_normalize(&data);
        assert_eq!(z.col(0).data(), &[0.0, 0.0]);
    }

    #[test]
    fn column_stats() {
        let data = Tensor::from_vec2(vec![vec![1.0, 0.0], vec![3.0, 0.0]]).unwrap();
        assert_eq!(column_means(&data).data(), &[2.0, 0.0]);
        assert_eq!(column_stds(&data).data(), &[1.0, 0.0]);
    }

    fn study() -> EmaDataset {
        EmaGenerator::new(GeneratorConfig::quick(5, 6, 77)).generate()
    }

    #[test]
    fn compliance_filter_drops_short_series() {
        let mut ds = study();
        // Truncate one participant to 5 rows.
        let short = Individual {
            id: 999,
            data: ds.individuals[0].data.slice_rows(0, 5),
            raw: ds.individuals[0].raw.slice_rows(0, 5),
            ground_truth: None,
        };
        ds.individuals.push(short);
        let filtered = filter_low_compliance(ds, 30);
        assert_eq!(filtered.num_individuals(), 5);
        assert!(filtered.individuals.iter().all(|i| i.id != 999));
    }

    #[test]
    fn variance_filter_flags_constant_variable() {
        let mut ds = study();
        // Make variable 2 constant for participant 0.
        let t = ds.individuals[0].raw.dims()[0];
        for i in 0..t {
            ds.individuals[0].raw.set2(i, 2, 4.0);
        }
        let keep = high_variance_variables(&ds, 0.1);
        assert!(!keep.contains(&2));
        assert!(keep.len() >= 4, "kept only {:?}", keep);
    }

    #[test]
    fn select_variables_projects_everything() {
        let ds = study();
        let sub = select_variables(&ds, &[0, 2, 4]);
        assert_eq!(sub.num_variables(), 3);
        assert_eq!(sub.variable_names.len(), 3);
        assert_eq!(
            sub.individuals[0].ground_truth.as_ref().unwrap().num_nodes(),
            3
        );
        // Projected values match originals.
        assert_eq!(
            sub.individuals[0].data.at2(0, 1),
            ds.individuals[0].data.at2(0, 2)
        );
    }

    #[test]
    #[should_panic(expected = "zero variables")]
    fn select_rejects_empty() {
        let _ = select_variables(&study(), &[]);
    }
}
