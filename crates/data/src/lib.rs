//! # ema-data
//!
//! EMA dataset handling: synthetic data generation, preprocessing,
//! train/test splitting, input windowing and CSV interchange.
//!
//! ## The dataset substitution
//!
//! The paper evaluates on proprietary pilot data from the NSMD project
//! (269 → 100 Dutch university students, 26 EMA variables on a 7-point
//! Likert scale, 8 beeps/day × 28 days ≈ 140 usable time points each).
//! That data cannot be redistributed, so [`synthetic`] provides a
//! generative stand-in with the same statistical skeleton:
//!
//! * each individual has an **idiosyncratic sparse interaction graph**
//!   driving a stable VAR(1) process with tanh nonlinearity;
//! * a circadian component models diurnal affect cycles (8 beeps/day);
//! * responses are quantised to a 7-point Likert scale and beeps are
//!   dropped at a configurable non-compliance rate;
//! * per-individual z-normalisation matches the paper's preprocessing.
//!
//! Because the generator exposes each individual's ground-truth graph,
//! integration tests can verify that similarity graphs and GNN-learned
//! graphs recover real structure — something the original study could
//! not check.

#![warn(missing_docs)]

mod dataset;
pub mod impute;
pub mod io;
pub mod preprocess;
pub mod synthetic;
pub mod variables;
pub mod window;

pub use dataset::{EmaDataset, Individual};
pub use synthetic::{EmaGenerator, GeneratorConfig};
pub use window::{make_test_windows, make_windows, split_train_test, WindowedData};
