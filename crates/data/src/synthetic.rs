//! Synthetic EMA data generation.
//!
//! Each individual is simulated as a nonlinear VAR(1) system over an
//! idiosyncratic sparse interaction graph:
//!
//! ```text
//! z_t = tanh(W z_{t−1}) + a·sin(2π·beep_t / 8 + φ_v) + ε_t
//! ```
//!
//! where `W` has diagonal autoregressive terms and sparse off-diagonal
//! couplings (the *ground-truth graph*), `a` is a circadian amplitude
//! with per-variable phase `φ_v`, and `ε` is Gaussian noise. Latent
//! trajectories are quantised to a 7-point Likert scale, rows are
//! dropped at the non-compliance rate (missed beeps shorten `T_i`, as
//! in the real study) and responses are z-normalised per individual.

use crate::dataset::{EmaDataset, Individual};
use crate::preprocess::z_normalize;
use crate::variables::variable_names;
use ema_graph::AdjacencyMatrix;
use ema_tensor::{Rng64, Tensor};

/// Beeps per day in the NSMD protocol.
pub const BEEPS_PER_DAY: usize = 8;

/// Configuration of the synthetic EMA study.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of participants `N` (paper: 100).
    pub num_individuals: usize,
    /// Number of variables `V` (paper: 26).
    pub num_variables: usize,
    /// Mean usable time points per participant (paper: ≈140).
    pub mean_time_points: usize,
    /// Standard deviation of usable time points across participants.
    pub time_points_std: f64,
    /// Probability of each off-diagonal ground-truth edge (~sparse).
    pub graph_density: f64,
    /// Magnitude of cross-variable couplings.
    pub coupling_strength: f64,
    /// Diagonal (self-persistence) coefficient.
    pub ar_coefficient: f64,
    /// Innovation noise standard deviation.
    pub noise_std: f64,
    /// Circadian sine amplitude.
    pub circadian_amplitude: f64,
    /// Probability a beep is missed (dropping that row).
    pub missing_rate: f64,
    /// Likert scale levels (paper: 7).
    pub likert_levels: u8,
    /// Master seed; every individual forks an independent stream.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    /// Paper-scale defaults (N=100, V=26, T≈140).
    fn default() -> Self {
        Self {
            num_individuals: 100,
            num_variables: 26,
            mean_time_points: 140,
            time_points_std: 15.0,
            graph_density: 0.12,
            coupling_strength: 0.35,
            ar_coefficient: 0.45,
            noise_std: 0.35,
            circadian_amplitude: 0.25,
            missing_rate: 0.10,
            likert_levels: 7,
            seed: 20240101,
        }
    }
}

impl GeneratorConfig {
    /// A reduced preset for fast tests and quick experiment runs.
    #[must_use]
    pub fn quick(num_individuals: usize, num_variables: usize, seed: u64) -> Self {
        Self {
            num_individuals,
            num_variables,
            mean_time_points: 80,
            time_points_std: 8.0,
            seed,
            ..Self::default()
        }
    }
}

/// Generates synthetic EMA studies from a [`GeneratorConfig`].
#[derive(Debug, Clone)]
pub struct EmaGenerator {
    config: GeneratorConfig,
}

impl EmaGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics on nonsensical configs (zero sizes, rates outside [0,1]).
    #[must_use]
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(config.num_individuals > 0, "need at least one individual");
        assert!(config.num_variables >= 2, "need at least two variables");
        assert!(config.mean_time_points >= 10, "series too short");
        assert!(
            (0.0..=1.0).contains(&config.graph_density),
            "invalid graph density"
        );
        assert!(
            (0.0..1.0).contains(&config.missing_rate),
            "invalid missing rate"
        );
        assert!(config.likert_levels >= 2, "need at least a binary scale");
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the full study.
    #[must_use]
    pub fn generate(&self) -> EmaDataset {
        // Each individual's stream is split off from (seed, id) — not
        // forked in draw order — so generation could itself be fanned
        // out per individual without changing a byte of the study.
        let master = Rng64::seed_from(self.config.seed);
        let individuals = (0..self.config.num_individuals)
            .map(|id| {
                let mut rng = master.split(id as u64);
                self.generate_individual(id, &mut rng)
            })
            .collect();
        EmaDataset {
            individuals,
            variable_names: variable_names(self.config.num_variables),
        }
    }

    /// Generates individuals `start..end` of the study — byte-identical
    /// to the same ids out of [`EmaGenerator::generate`], because every
    /// individual's stream is split from `(seed, id)` rather than drawn
    /// sequentially. Shard boundaries therefore never change numbers,
    /// which is what lets sharded cohort runs stream generation instead
    /// of materializing the whole study.
    ///
    /// # Panics
    /// Panics when the range is inverted or exceeds the configured
    /// study size.
    #[must_use]
    pub fn generate_range(&self, start: usize, end: usize) -> Vec<Individual> {
        assert!(start <= end, "inverted range {start}..{end}");
        assert!(
            end <= self.config.num_individuals,
            "range {start}..{end} exceeds study size {}",
            self.config.num_individuals
        );
        let master = Rng64::seed_from(self.config.seed);
        (start..end)
            .map(|id| {
                let mut rng = master.split(id as u64);
                self.generate_individual(id, &mut rng)
            })
            .collect()
    }

    /// Streams the study as shards of at most `shard_size` individuals,
    /// materializing one shard at a time (the full study never exists
    /// in memory at once). Concatenating the shards reproduces
    /// [`EmaGenerator::generate`] byte for byte at any `shard_size`.
    ///
    /// # Panics
    /// Panics when `shard_size` is zero.
    pub fn shards(&self, shard_size: usize) -> impl Iterator<Item = Vec<Individual>> + '_ {
        assert!(shard_size > 0, "shard size must be positive");
        let n = self.config.num_individuals;
        (0..n)
            .step_by(shard_size)
            .map(move |start| self.generate_range(start, (start + shard_size).min(n)))
    }

    /// Generates a single participant with an independent RNG stream.
    #[must_use]
    pub fn generate_individual(&self, id: usize, rng: &mut Rng64) -> Individual {
        let v = self.config.num_variables;
        let (w, ground_truth) = self.sample_system(rng);
        let phases: Vec<f64> = (0..v)
            .map(|_| rng.uniform_in(0.0, 2.0 * std::f64::consts::PI))
            .collect();

        // Target usable length; generate enough beeps that the expected
        // number of answered ones reaches the target.
        let t_target = (self.config.mean_time_points as f64
            + self.config.time_points_std * rng.normal())
        .round()
        .clamp(30.0, 10_000.0) as usize;
        let burn_in = 20usize;

        let mut z = Tensor::rand_normal(&[v], 0.0, 0.5, rng);
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(t_target);
        let mut beep = 0usize;
        while rows.len() < t_target {
            // Advance the latent system.
            let coupled = w.matvec(&z).tanh();
            let mut next = vec![0.0; v];
            for (j, nj) in next.iter_mut().enumerate() {
                let circadian = self.config.circadian_amplitude
                    * ((2.0 * std::f64::consts::PI * beep as f64 / BEEPS_PER_DAY as f64)
                        + phases[j])
                        .sin();
                *nj = coupled.data()[j] + circadian + self.config.noise_std * rng.normal();
            }
            z = Tensor::from_vec1(next);
            beep += 1;
            if beep <= burn_in {
                continue;
            }
            // Missed beep → row dropped (shorter T_i, like the study).
            if rng.bernoulli(self.config.missing_rate) {
                continue;
            }
            rows.push(self.quantize(&z));
        }

        let raw = Tensor::from_vec2(rows).expect("generated rows are rectangular");
        let data = z_normalize(&raw);
        Individual {
            id,
            data,
            raw,
            ground_truth: Some(ground_truth),
        }
    }

    /// Samples the VAR coefficient matrix and its ground-truth graph.
    fn sample_system(&self, rng: &mut Rng64) -> (Tensor, AdjacencyMatrix) {
        let v = self.config.num_variables;
        let mut w = Tensor::zeros(&[v, v]);
        for i in 0..v {
            for j in 0..v {
                if i == j {
                    w.set2(i, j, self.config.ar_coefficient);
                } else if rng.bernoulli(self.config.graph_density) {
                    let sign = if rng.bernoulli(0.7) { 1.0 } else { -1.0 };
                    let mag = self.config.coupling_strength * rng.uniform_in(0.5, 1.0);
                    w.set2(i, j, sign * mag);
                }
            }
        }
        // The tanh nonlinearity already bounds trajectories, but keep
        // the linearisation comfortably stable too.
        let radius = ema_graph::normalize::spectral_radius(&w, 100);
        if radius > 0.95 {
            w = w.scale(0.95 / radius);
        }
        // Ground truth edge strength = |coupling| (direction i→j means
        // variable j influences variable i in z_t = W z_{t-1}; store as
        // influence graph j→i for interpretability).
        let gt = AdjacencyMatrix::new(w.abs().transpose());
        (w, gt)
    }

    /// Maps a latent value to the Likert scale `1 ..= levels`.
    fn quantize(&self, z: &Tensor) -> Vec<f64> {
        let levels = f64::from(self.config.likert_levels);
        let mid = (levels + 1.0) / 2.0;
        let spread = (levels - 1.0) / 4.0; // ±2 latent SDs cover the scale
        z.data()
            .iter()
            .map(|&x| (mid + spread * x).round().clamp(1.0, levels))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_gen(seed: u64) -> EmaGenerator {
        EmaGenerator::new(GeneratorConfig::quick(4, 8, seed))
    }

    #[test]
    fn generates_requested_shape() {
        let ds = quick_gen(1).generate();
        assert_eq!(ds.num_individuals(), 4);
        assert_eq!(ds.num_variables(), 8);
        assert_eq!(ds.variable_names.len(), 8);
        ds.validate(30);
    }

    #[test]
    fn raw_values_are_likert() {
        let ds = quick_gen(2).generate();
        for ind in &ds.individuals {
            for &v in ind.raw.data() {
                assert!((1.0..=7.0).contains(&v), "raw value {v} outside scale");
                assert_eq!(v.fract(), 0.0, "raw value {v} not integral");
            }
        }
    }

    #[test]
    fn normalized_data_is_standardised() {
        let ds = quick_gen(3).generate();
        for ind in &ds.individuals {
            for j in 0..ind.num_variables() {
                let col = ind.data.col(j);
                assert!(col.mean().abs() < 1e-9, "column mean {}", col.mean());
                let s = col.std();
                assert!(
                    (s - 1.0).abs() < 1e-9 || s == 0.0,
                    "column std {s} not standardised"
                );
            }
        }
    }

    #[test]
    fn individuals_have_distinct_graphs_and_lengths() {
        let ds = quick_gen(4).generate();
        let g0 = ds.individuals[0].ground_truth.as_ref().unwrap();
        let g1 = ds.individuals[1].ground_truth.as_ref().unwrap();
        assert_ne!(g0.weights().data(), g1.weights().data());
        let lengths: Vec<usize> = ds
            .individuals
            .iter()
            .map(Individual::num_time_points)
            .collect();
        assert!(lengths.iter().any(|&t| t != lengths[0]));
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = quick_gen(5).generate();
        let b = quick_gen(5).generate();
        for (x, y) in a.individuals.iter().zip(b.individuals.iter()) {
            assert_eq!(x.data.data(), y.data.data());
        }
        let c = quick_gen(6).generate();
        assert_ne!(
            a.individuals[0].data.data(),
            c.individuals[0].data.data()
        );
    }

    #[test]
    fn sharded_generation_matches_full_study_at_any_shard_size() {
        let gen = quick_gen(9);
        let full = gen.generate();
        for shard_size in [1, 3, 4, 7] {
            let streamed: Vec<_> = gen.shards(shard_size).flatten().collect();
            assert_eq!(streamed.len(), full.individuals.len(), "shard size {shard_size}");
            for (a, b) in streamed.iter().zip(&full.individuals) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.data.data(), b.data.data(), "shard size {shard_size} id {}", b.id);
                assert_eq!(a.raw.data(), b.raw.data());
            }
        }
        // An explicit sub-range also matches the full study's slice.
        let mid = gen.generate_range(1, 3);
        assert_eq!(mid.len(), 2);
        assert_eq!(mid[0].data.data(), full.individuals[1].data.data());
        assert_eq!(mid[1].data.data(), full.individuals[2].data.data());
    }

    #[test]
    fn ground_truth_is_sparse() {
        let ds = quick_gen(7).generate();
        for ind in &ds.individuals {
            let gt = ind.ground_truth.as_ref().unwrap();
            // Density 0.12 nominal; allow generous slack for small V.
            assert!(gt.density() < 0.45, "ground truth too dense: {}", gt.density());
        }
    }

    #[test]
    fn trajectories_are_stationary() {
        // Mean of first and second half should be similar after z-norm;
        // the latent process must not explode.
        let ds = quick_gen(8).generate();
        for ind in &ds.individuals {
            let t = ind.num_time_points();
            let first = ind.data.slice_rows(0, t / 2);
            let second = ind.data.slice_rows(t / 2, t);
            assert!((first.mean() - second.mean()).abs() < 0.6);
            assert!(ind.raw.all_finite());
        }
    }

    #[test]
    fn coupled_variables_correlate() {
        // With strong couplings, connected pairs should correlate more
        // than unconnected ones on average.
        let cfg = GeneratorConfig {
            num_individuals: 1,
            num_variables: 10,
            mean_time_points: 800,
            coupling_strength: 0.6,
            noise_std: 0.25,
            circadian_amplitude: 0.0, // avoid shared-phase confounds
            missing_rate: 0.0,        // keep lag structure intact
            seed: 99,
            ..GeneratorConfig::default()
        };
        let ds = EmaGenerator::new(cfg).generate();
        let ind = &ds.individuals[0];
        let gt = ind.ground_truth.as_ref().unwrap();
        // VAR(1) couplings surface most strongly at lag 1, so compare
        // the max of lag-0 and lag-±1 correlation magnitudes.
        let corr = ema_lagged_corr(&ind.data);
        let mut linked = Vec::new();
        let mut unlinked = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                if i == j {
                    continue;
                }
                let c = corr[i * 10 + j];
                if gt.weight(i, j) > 0.0 || gt.weight(j, i) > 0.0 {
                    linked.push(c);
                } else {
                    unlinked.push(c);
                }
            }
        }
        if linked.is_empty() || unlinked.is_empty() {
            return; // degenerate draw; nothing to compare
        }
        let ml = linked.iter().sum::<f64>() / linked.len() as f64;
        let mu = unlinked.iter().sum::<f64>() / unlinked.len() as f64;
        assert!(
            ml > mu,
            "linked pairs correlate {ml:.3} <= unlinked {mu:.3}"
        );
    }

    /// Max of lag-0/±1 correlation magnitudes per pair. Local helper to
    /// avoid a dev-dependency cycle with ema-similarity.
    fn ema_lagged_corr(data: &Tensor) -> Vec<f64> {
        use ema_graph::stats::pearson;
        let v = data.dims()[1];
        let t = data.dims()[0];
        let mut out = vec![0.0; v * v];
        for i in 0..v {
            for j in 0..v {
                let x = data.col(i);
                let y = data.col(j);
                let r0 = pearson(x.data(), y.data()).abs();
                let r1 = pearson(&x.data()[..t - 1], &y.data()[1..]).abs();
                let r2 = pearson(&x.data()[1..], &y.data()[..t - 1]).abs();
                out[i * v + j] = r0.max(r1).max(r2);
            }
        }
        out
    }
}
