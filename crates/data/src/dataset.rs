//! Dataset containers: one individual's MTS and the study-level set.

use ema_graph::AdjacencyMatrix;
use ema_tensor::Tensor;

/// One participant's EMA recording.
#[derive(Debug, Clone)]
pub struct Individual {
    /// Participant identifier (stable across filtering).
    pub id: usize,
    /// Normalised data, `[T, V]` (per-variable z-scores).
    pub data: Tensor,
    /// Raw Likert responses before normalisation, `[T, V]`, values in
    /// `1 ..= likert_levels`.
    pub raw: Tensor,
    /// The generator's ground-truth interaction graph, when the
    /// individual is synthetic (absent for data loaded from CSV).
    pub ground_truth: Option<AdjacencyMatrix>,
}

impl Individual {
    /// Number of usable time points `T_i`.
    #[must_use]
    pub fn num_time_points(&self) -> usize {
        self.data.dims()[0]
    }

    /// Number of variables `V`.
    #[must_use]
    pub fn num_variables(&self) -> usize {
        self.data.dims()[1]
    }
}

/// A study: every participant plus shared variable names.
#[derive(Debug, Clone, Default)]
pub struct EmaDataset {
    /// All participants, in id order.
    pub individuals: Vec<Individual>,
    /// Names of the `V` variables, shared by every participant.
    pub variable_names: Vec<String>,
}

impl EmaDataset {
    /// Number of participants `N`.
    #[must_use]
    pub fn num_individuals(&self) -> usize {
        self.individuals.len()
    }

    /// Number of variables `V` (0 for an empty study).
    #[must_use]
    pub fn num_variables(&self) -> usize {
        self.individuals
            .first()
            .map_or(0, Individual::num_variables)
    }

    /// Mean number of time points across participants.
    #[must_use]
    pub fn mean_time_points(&self) -> f64 {
        if self.individuals.is_empty() {
            return 0.0;
        }
        let total: usize = self.individuals.iter().map(Individual::num_time_points).sum();
        total as f64 / self.individuals.len() as f64
    }

    /// Retains only the first `n` participants — used by the scaled-down
    /// experiment presets.
    #[must_use]
    pub fn take(mut self, n: usize) -> Self {
        self.individuals.truncate(n);
        self
    }

    /// Checks the structural invariants the pipeline relies on: every
    /// individual shares `V`, data is finite, and `T_i >= min_t`.
    ///
    /// # Panics
    /// Panics with a description of the first violation.
    pub fn validate(&self, min_t: usize) {
        let v = self.num_variables();
        assert_eq!(
            self.variable_names.len(),
            v,
            "variable name count {} != V {v}",
            self.variable_names.len()
        );
        for ind in &self.individuals {
            assert_eq!(
                ind.num_variables(),
                v,
                "individual {} has {} variables, expected {v}",
                ind.id,
                ind.num_variables()
            );
            assert!(
                ind.num_time_points() >= min_t,
                "individual {} has only {} time points (min {min_t})",
                ind.id,
                ind.num_time_points()
            );
            assert!(
                ind.data.all_finite(),
                "individual {} contains non-finite values",
                ind.id
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EmaDataset {
        EmaDataset {
            individuals: vec![
                Individual {
                    id: 0,
                    data: Tensor::zeros(&[10, 3]),
                    raw: Tensor::filled(&[10, 3], 4.0),
                    ground_truth: None,
                },
                Individual {
                    id: 1,
                    data: Tensor::zeros(&[20, 3]),
                    raw: Tensor::filled(&[20, 3], 4.0),
                    ground_truth: None,
                },
            ],
            variable_names: vec!["a".into(), "b".into(), "c".into()],
        }
    }

    #[test]
    fn counts_and_means() {
        let d = tiny();
        assert_eq!(d.num_individuals(), 2);
        assert_eq!(d.num_variables(), 3);
        assert_eq!(d.mean_time_points(), 15.0);
    }

    #[test]
    fn take_truncates() {
        let d = tiny().take(1);
        assert_eq!(d.num_individuals(), 1);
        assert_eq!(d.individuals[0].id, 0);
    }

    #[test]
    fn validate_passes_consistent_data() {
        tiny().validate(10);
    }

    #[test]
    #[should_panic(expected = "only 10 time points")]
    fn validate_catches_short_series() {
        tiny().validate(15);
    }
}
