//! CSV interchange for individual EMA recordings.
//!
//! The format is one row per beep, one column per variable, with a
//! header of variable names — the layout real EMA exports (e.g. from
//! m-Path or Ethica) reduce to after widening.

use ema_tensor::Tensor;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Serialises a `[T, V]` matrix to CSV with the given header names.
///
/// # Panics
/// Panics if `names.len()` differs from `V`.
#[must_use]
pub fn to_csv(data: &Tensor, names: &[String]) -> String {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    let (t, v) = (data.dims()[0], data.dims()[1]);
    assert_eq!(names.len(), v, "header length mismatch");
    let mut out = String::with_capacity(t * v * 8);
    out.push_str(&names.join(","));
    out.push('\n');
    for i in 0..t {
        for j in 0..v {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", data.at2(i, j));
        }
        out.push('\n');
    }
    out
}

/// Parses a CSV produced by [`to_csv`] (or any numeric CSV with a
/// header) back into `(names, data)`.
///
/// # Errors
/// Returns `io::Error` with `InvalidData` on ragged rows, non-numeric
/// cells or an empty body.
pub fn from_csv(text: &str) -> io::Result<(Vec<String>, Tensor)> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))?;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let v = names.len();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != v {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "row {} has {} cells, expected {v}",
                    lineno + 2,
                    cells.len()
                ),
            ));
        }
        let mut row = Vec::with_capacity(v);
        for cell in cells {
            let value: f64 = cell.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("row {}: bad number {cell:?}: {e}", lineno + 2),
                )
            })?;
            row.push(value);
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "CSV has a header but no data rows",
        ));
    }
    let data = Tensor::from_vec2(rows)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((names, data))
}

/// Writes an individual's matrix to a CSV file.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_csv(path: &Path, data: &Tensor, names: &[String]) -> io::Result<()> {
    std::fs::write(path, to_csv(data, names))
}

/// Reads an individual's matrix from a CSV file.
///
/// # Errors
/// Propagates filesystem and parse errors.
pub fn read_csv(path: &Path) -> io::Result<(Vec<String>, Tensor)> {
    from_csv(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: usize) -> Vec<String> {
        (0..v).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn round_trip() {
        let data = Tensor::from_vec2(vec![vec![1.0, 2.5], vec![-3.0, 4.0]]).unwrap();
        let csv = to_csv(&data, &names(2));
        let (parsed_names, parsed) = from_csv(&csv).unwrap();
        assert_eq!(parsed_names, names(2));
        ema_tensor::assert_tensors_close(&parsed, &data, 0.0);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = from_csv("a,b\n1,2\n3\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("row 3"));
    }

    #[test]
    fn rejects_non_numeric() {
        let err = from_csv("a,b\n1,oops\n").unwrap_err();
        assert!(err.to_string().contains("oops"));
    }

    #[test]
    fn rejects_empty_body() {
        assert!(from_csv("a,b\n").is_err());
        assert!(from_csv("").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ema_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ind0.csv");
        let data = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        write_csv(&path, &data, &names(2)).unwrap();
        let (_, parsed) = read_csv(&path).unwrap();
        ema_tensor::assert_tensors_close(&parsed, &data, 0.0);
        let _ = std::fs::remove_file(path);
    }
}
