//! Sequential splitting and sliding-window tensorisation.

use ema_tensor::Tensor;

/// Sliding windows over an individual's series for 1-lag forecasting:
/// input `t−s .. t−1` (shape `[s, V]`), target `t` (shape `[V]`).
#[derive(Debug, Clone)]
pub struct WindowedData {
    /// Input windows, each `[seq_len, V]`.
    pub inputs: Vec<Tensor>,
    /// Targets, each `[V]` — the variables at the next time point.
    pub targets: Vec<Tensor>,
    /// The window length used.
    pub seq_len: usize,
}

impl WindowedData {
    /// Number of (input, target) pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True when no windows fit the series.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Stacks all targets into a `[len, V]` matrix (for evaluation).
    ///
    /// # Panics
    /// Panics when empty.
    #[must_use]
    pub fn targets_matrix(&self) -> Tensor {
        assert!(!self.is_empty(), "no windows to stack");
        Tensor::stack_rows(&self.targets)
    }

    /// Stacks all input windows along the row axis into a
    /// `[len·seq_len, V]` tensor — the `[W, s, V]` batch flattened,
    /// with window `w` occupying row block `w`. Row block `w` is
    /// byte-identical to `inputs[w]`; this is the layout the batched
    /// forward path (`ema_models::WindowBatch`) consumes.
    ///
    /// # Panics
    /// Panics when empty.
    #[must_use]
    pub fn stacked_inputs(&self) -> Tensor {
        assert!(!self.is_empty(), "no windows to stack");
        let dims = self.inputs[0].dims();
        let mut data = Vec::with_capacity(self.len() * dims[0] * dims[1]);
        for win in &self.inputs {
            data.extend_from_slice(win.data());
        }
        Tensor::from_vec(&[self.len() * dims[0], dims[1]], data).expect("stack shape")
    }
}

/// Splits a `[T, V]` series sequentially: the first
/// `round(T · train_fraction)` rows are training, the rest test
/// (paper: 70% / 30%).
///
/// # Panics
/// Panics unless `0 < train_fraction < 1` leaves at least one row on
/// each side.
#[must_use]
pub fn split_train_test(data: &Tensor, train_fraction: f64) -> (Tensor, Tensor) {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train fraction must be in (0, 1), got {train_fraction}"
    );
    let t = data.dims()[0];
    let cut = ((t as f64) * train_fraction).round() as usize;
    assert!(
        cut >= 1 && cut < t,
        "split leaves an empty side: T = {t}, cut = {cut}"
    );
    (data.slice_rows(0, cut), data.slice_rows(cut, t))
}

/// Builds 1-lag forecasting windows from a `[T, V]` series: for each
/// `t in seq_len .. T`, input rows `t−seq_len .. t`, target row `t`.
///
/// # Panics
/// Panics if `seq_len == 0` or the series has `<= seq_len` rows.
#[must_use]
pub fn make_windows(data: &Tensor, seq_len: usize) -> WindowedData {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    assert!(seq_len > 0, "seq_len must be positive");
    let t = data.dims()[0];
    assert!(
        t > seq_len,
        "series of {t} rows cannot produce windows of length {seq_len}"
    );
    let mut inputs = Vec::with_capacity(t - seq_len);
    let mut targets = Vec::with_capacity(t - seq_len);
    for end in seq_len..t {
        inputs.push(data.slice_rows(end - seq_len, end));
        targets.push(data.row(end));
    }
    WindowedData {
        inputs,
        targets,
        seq_len,
    }
}

/// Windows for the *test* portion that may look back into the training
/// tail: the first test target still gets a full `seq_len` history by
/// borrowing the last training rows. Mirrors how sequential forecasting
/// is evaluated in the paper (every test time point is predicted).
///
/// # Panics
/// Panics if the combined history is too short.
#[must_use]
pub fn make_test_windows(train: &Tensor, test: &Tensor, seq_len: usize) -> WindowedData {
    assert_eq!(train.dims()[1], test.dims()[1], "variable count mismatch");
    let joined = train.vcat(test);
    let t_train = train.dims()[0];
    let t_total = joined.dims()[0];
    assert!(
        t_train >= seq_len,
        "training tail shorter than the window: {t_train} < {seq_len}"
    );
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    for end in t_train..t_total {
        inputs.push(joined.slice_rows(end - seq_len, end));
        targets.push(joined.row(end));
    }
    WindowedData {
        inputs,
        targets,
        seq_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(t: usize, v: usize) -> Tensor {
        Tensor::from_vec(&[t, v], (0..t * v).map(|x| x as f64).collect()).unwrap()
    }

    #[test]
    fn split_respects_fraction() {
        let s = series(10, 2);
        let (train, test) = split_train_test(&s, 0.7);
        assert_eq!(train.dims(), &[7, 2]);
        assert_eq!(test.dims(), &[3, 2]);
        // Sequential: first test row follows last train row.
        assert_eq!(test.at2(0, 0), 14.0);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn split_rejects_bad_fraction() {
        let _ = split_train_test(&series(10, 2), 1.5);
    }

    #[test]
    fn windows_count_and_alignment() {
        let s = series(6, 2);
        let w = make_windows(&s, 2);
        assert_eq!(w.len(), 4);
        // First window = rows 0..2; target = row 2.
        assert_eq!(w.inputs[0].dims(), &[2, 2]);
        assert_eq!(w.inputs[0].at2(0, 0), 0.0);
        assert_eq!(w.targets[0].data(), s.row(2).data());
        // Last target is the final row.
        assert_eq!(w.targets[3].data(), s.row(5).data());
    }

    #[test]
    fn seq1_windows_are_single_rows() {
        let s = series(5, 3);
        let w = make_windows(&s, 1);
        assert_eq!(w.len(), 4);
        assert_eq!(w.inputs[0].dims(), &[1, 3]);
    }

    #[test]
    fn test_windows_cover_every_test_point() {
        let s = series(20, 2);
        let (train, test) = split_train_test(&s, 0.7);
        let w = make_test_windows(&train, &test, 5);
        assert_eq!(w.len(), test.dims()[0]);
        // First test window borrows training rows.
        assert_eq!(w.inputs[0].at2(0, 0), train.at2(train.dims()[0] - 5, 0));
        assert_eq!(w.targets[0].data(), test.row(0).data());
    }

    #[test]
    fn targets_matrix_stacks() {
        let s = series(6, 2);
        let w = make_windows(&s, 3);
        let m = w.targets_matrix();
        assert_eq!(m.dims(), &[3, 2]);
        assert_eq!(m.row(0).data(), s.row(3).data());
    }

    #[test]
    #[should_panic(expected = "cannot produce windows")]
    fn windows_reject_short_series() {
        let _ = make_windows(&series(3, 2), 3);
    }
}
