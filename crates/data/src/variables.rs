//! The canonical EMA variable set.

/// The 26 EMA item names used for synthetic studies, mirroring the kind
/// of transdiagnostic items collected by the NSMD protocol (positive and
/// negative affect, stress, cognition, behaviour and context).
pub const EMA_VARIABLES: [&str; 26] = [
    "cheerful",
    "relaxed",
    "energetic",
    "satisfied",
    "enthusiastic",
    "insecure",
    "anxious",
    "down",
    "irritated",
    "stressed",
    "lonely",
    "guilty",
    "tired",
    "restless",
    "listless",
    "concentration",
    "self_doubt",
    "worry",
    "rumination",
    "craving",
    "impulsivity",
    "appetite",
    "physical_discomfort",
    "social_contact",
    "enjoy_company",
    "activity_pleasure",
];

/// Returns the first `v` canonical names, generating `var_{i}` past 26.
#[must_use]
pub fn variable_names(v: usize) -> Vec<String> {
    (0..v)
        .map(|i| {
            EMA_VARIABLES
                .get(i)
                .map_or_else(|| format!("var_{i}"), |s| (*s).to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_count_matches_paper() {
        assert_eq!(EMA_VARIABLES.len(), 26);
    }

    #[test]
    fn names_are_unique() {
        let mut names = EMA_VARIABLES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn overflow_generates_names() {
        let names = variable_names(28);
        assert_eq!(names.len(), 28);
        assert_eq!(names[0], "cheerful");
        assert_eq!(names[27], "var_27");
    }
}
