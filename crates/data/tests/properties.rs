//! Property-based tests of preprocessing, windowing and CSV IO.

use ema_check::{gen, prop_assert, prop_assert_eq, prop_assume, prop_tests};
use ema_data::io::{from_csv, to_csv};
use ema_data::preprocess::z_normalize;
use ema_data::{make_test_windows, make_windows, split_train_test};
use ema_tensor::{Rng64, Tensor};

fn mts(rng: &mut Rng64) -> Tensor {
    let t = gen::usize_in(rng, 8, 40);
    let v = gen::usize_in(rng, 2, 6);
    Tensor::from_vec(&[t, v], gen::vec_f64_len(rng, -100.0, 100.0, t * v)).unwrap()
}

prop_tests! {
    fn z_normalize_is_idempotent(data in mts) {
        let z1 = z_normalize(&data);
        let z2 = z_normalize(&z1);
        ema_tensor::assert_tensors_close(&z1, &z2, 1e-9);
    }

    fn z_normalize_is_shift_scale_invariant(data in mts) {
        let shifted = data.map(|v| 4.0 * v - 11.0);
        ema_tensor::assert_tensors_close(
            &z_normalize(&data),
            &z_normalize(&shifted),
            1e-9,
        );
    }

    fn split_preserves_rows_in_order(
        (data, frac) in |rng: &mut Rng64| (mts(rng), gen::f64_in(rng, 0.2, 0.8)),
    ) {
        let t = data.dims()[0];
        let (train, test) = split_train_test(&data, frac);
        prop_assert_eq!(train.dims()[0] + test.dims()[0], t);
        // Concatenation reproduces the original exactly.
        ema_tensor::assert_tensors_close(&train.vcat(&test), &data, 0.0);
    }

    fn window_count_and_targets(
        (data, seq) in |rng: &mut Rng64| (mts(rng), gen::usize_in(rng, 1, 5)),
    ) {
        let t = data.dims()[0];
        prop_assume!(t > seq);
        let w = make_windows(&data, seq);
        prop_assert_eq!(w.len(), t - seq);
        // Each target is the row right after its window.
        for (i, (input, target)) in w.inputs.iter().zip(w.targets.iter()).enumerate() {
            prop_assert_eq!(input.dims(), &[seq, data.dims()[1]]);
            let expected_target = data.row(i + seq);
            prop_assert_eq!(target.data(), expected_target.data());
            // Last input row immediately precedes the target.
            let last_in = input.row(seq - 1);
            let prev_row = data.row(i + seq - 1);
            prop_assert_eq!(last_in.data(), prev_row.data());
        }
    }

    fn test_windows_cover_all_test_rows(
        (data, seq) in |rng: &mut Rng64| (mts(rng), gen::usize_in(rng, 1, 4)),
    ) {
        let (train, test) = split_train_test(&data, 0.7);
        prop_assume!(train.dims()[0] >= seq);
        let w = make_test_windows(&train, &test, seq);
        prop_assert_eq!(w.len(), test.dims()[0]);
        for (i, target) in w.targets.iter().enumerate() {
            let expected = test.row(i);
            prop_assert_eq!(target.data(), expected.data());
        }
    }

    fn csv_round_trip_is_lossless(data in mts) {
        let names: Vec<String> = (0..data.dims()[1]).map(|i| format!("v{i}")).collect();
        let csv = to_csv(&data, &names);
        let (parsed_names, parsed) = from_csv(&csv).unwrap();
        prop_assert_eq!(parsed_names, names);
        ema_tensor::assert_tensors_close(&parsed, &data, 0.0);
    }

    fn csv_parser_rejects_corruption(
        (data, row, col) in |rng: &mut Rng64| {
            (mts(rng), gen::usize_in(rng, 0, 5), gen::usize_in(rng, 0, 3))
        },
    ) {
        let names: Vec<String> = (0..data.dims()[1]).map(|i| format!("v{i}")).collect();
        let csv = to_csv(&data, &names);
        // Corrupt one numeric cell with garbage.
        let mut lines: Vec<String> = csv.lines().map(String::from).collect();
        let target_row = 1 + row % (lines.len() - 1);
        let cells: Vec<String> = lines[target_row].split(',').map(String::from).collect();
        let target_col = col % cells.len();
        let mut new_cells = cells.clone();
        new_cells[target_col] = "not-a-number".into();
        lines[target_row] = new_cells.join(",");
        let corrupted = lines.join("\n");
        prop_assert!(from_csv(&corrupted).is_err());
    }
}
