//! Dilated temporal convolution over step-indexed feature matrices.
//!
//! The models represent a sequence as a `Vec<Var>` of `[n, channels]`
//! matrices (one per time step). A dilated convolution with kernel `k`
//! and dilation `d` maps step `t` to
//! `b + Σ_{j=0..k-1} X_{t − j·d} · W_jᵀ`, shrinking the sequence by
//! `(k − 1) · d` steps (a "valid" causal convolution, as in MTGNN/TCN).

use crate::{Binding, Initializer, ParamId, ParamStore};
use ema_autodiff::{Tape, Var};
use ema_tensor::Rng64;

/// A causal dilated 1-D convolution along the time axis.
#[derive(Debug, Clone)]
pub struct DilatedTemporalConv {
    taps: Vec<ParamId>, // k matrices of shape [out_c, in_c]
    bias: ParamId,      // [out_c]
    kernel: usize,
    dilation: usize,
    in_channels: usize,
    out_channels: usize,
}

impl DilatedTemporalConv {
    /// Registers a convolution with `kernel` taps and the given dilation.
    ///
    /// # Panics
    /// Panics if `kernel == 0` or `dilation == 0`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        dilation: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(dilation > 0, "dilation must be positive");
        let init = Initializer::XavierUniform;
        let taps = (0..kernel)
            .map(|j| {
                store.register(
                    format!("{name}.tap{j}"),
                    init.init(&[out_channels, in_channels], rng),
                )
            })
            .collect();
        let bias = store.register(
            format!("{name}.bias"),
            Initializer::Zeros.init(&[out_channels], rng),
        );
        Self {
            taps,
            bias,
            kernel,
            dilation,
            in_channels,
            out_channels,
        }
    }

    /// Number of steps consumed by the receptive field minus one:
    /// the output is shorter than the input by this amount.
    #[must_use]
    pub fn shrinkage(&self) -> usize {
        (self.kernel - 1) * self.dilation
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Applies the convolution to a sequence of `[n, in_c]` matrices,
    /// producing `seq.len() − shrinkage()` matrices of `[n, out_c]`.
    ///
    /// # Panics
    /// Panics if the sequence is shorter than the receptive field.
    pub fn forward(&self, tape: &Tape, binding: &Binding, seq: &[Var]) -> Vec<Var> {
        let span = self.shrinkage();
        assert!(
            seq.len() > span,
            "sequence of {} steps is shorter than receptive field {}",
            seq.len(),
            span + 1
        );
        let bias = binding.var(self.bias);
        let mut out = Vec::with_capacity(seq.len() - span);
        for t in span..seq.len() {
            // Tap 0 applies to the newest step; older steps use later
            // taps. X·Wᵀ runs on the transpose-aware kernel so the tap
            // matrix is never materialized transposed.
            let mut acc: Option<Var> = None;
            for (j, &tap) in self.taps.iter().enumerate() {
                let x = seq[t - j * self.dilation];
                let term = tape.matmul_nt(x, binding.var(tap));
                acc = Some(match acc {
                    Some(a) => tape.add(a, term),
                    None => term,
                });
            }
            let summed = acc.expect("kernel > 0");
            out.push(tape.add_row_broadcast(summed, bias));
        }
        out
    }

    /// Batched [`DilatedTemporalConv::forward`]: every step is a
    /// `[W·n, in_c]` stack of window row-blocks sharing the tap
    /// parameters. Row-block `w` of each output step is bit-identical
    /// to the per-window forward on window `w` alone.
    pub fn forward_batched(
        &self,
        tape: &Tape,
        binding: &Binding,
        seq: &[Var],
        wins: usize,
    ) -> Vec<Var> {
        let span = self.shrinkage();
        assert!(
            seq.len() > span,
            "sequence of {} steps is shorter than receptive field {}",
            seq.len(),
            span + 1
        );
        let bias = binding.var(self.bias);
        let mut out = Vec::with_capacity(seq.len() - span);
        for t in span..seq.len() {
            let mut acc: Option<Var> = None;
            for (j, &tap) in self.taps.iter().enumerate() {
                let x = seq[t - j * self.dilation];
                let term = tape.batched_matmul_nt(x, binding.var(tap), wins);
                acc = Some(match acc {
                    Some(a) => tape.add(a, term),
                    None => term,
                });
            }
            let summed = acc.expect("kernel > 0");
            out.push(tape.batched_add_row_broadcast(summed, bias, wins));
        }
        out
    }

    /// Grouped [`DilatedTemporalConv::forward_batched`] over a cohort
    /// stack: each step is a `[Σ W_b·rows, in_c]` individual-major
    /// stack, and group `b`'s rows convolve with its *own* taps/bias —
    /// bit-identical per row block to the per-individual batched
    /// forward. All modules must share kernel, dilation, and widths.
    ///
    /// # Panics
    /// Panics if lengths/shapes mismatch or the sequence is shorter
    /// than the receptive field.
    pub fn forward_grouped(
        convs: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        seq: &[Var],
        group_wins: &[usize],
        block_rows: usize,
    ) -> Vec<Var> {
        assert_eq!(convs.len(), bindings.len(), "one binding per module");
        assert_eq!(convs.len(), group_wins.len(), "one window count per module");
        let first = convs.first().expect("at least one conv module");
        for c in convs {
            assert_eq!(
                (c.kernel, c.dilation, c.in_channels, c.out_channels),
                (
                    first.kernel,
                    first.dilation,
                    first.in_channels,
                    first.out_channels
                ),
                "grouped conv modules must share kernel/dilation/widths"
            );
        }
        let span = first.shrinkage();
        assert!(
            seq.len() > span,
            "sequence of {} steps is shorter than receptive field {}",
            seq.len(),
            span + 1
        );
        let biases: Vec<Var> = convs
            .iter()
            .zip(bindings)
            .map(|(c, bind)| bind.var(c.bias))
            .collect();
        let mut out = Vec::with_capacity(seq.len() - span);
        for t in span..seq.len() {
            let mut acc: Option<Var> = None;
            for j in 0..first.kernel {
                let x = seq[t - j * first.dilation];
                let taps_j: Vec<Var> = convs
                    .iter()
                    .zip(bindings)
                    .map(|(c, bind)| bind.var(c.taps[j]))
                    .collect();
                let term = tape.group_matmul_nt(x, &taps_j, group_wins, block_rows);
                acc = Some(match acc {
                    Some(a) => tape.add(a, term),
                    None => term,
                });
            }
            let summed = acc.expect("kernel > 0");
            out.push(tape.group_add_row_broadcast(summed, &biases, group_wins, block_rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Tensor;

    fn seq_of(tape: &Tape, values: &[f64]) -> Vec<Var> {
        values
            .iter()
            .map(|&v| tape.leaf(Tensor::filled(&[1, 1], v)))
            .collect()
    }

    #[test]
    fn output_length_shrinks_by_receptive_field() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(0);
        let conv = DilatedTemporalConv::new(&mut store, "c", 3, 5, 3, 2, &mut rng);
        assert_eq!(conv.shrinkage(), 4);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let seq: Vec<Var> = (0..10)
            .map(|_| tape.leaf(Tensor::rand_normal(&[2, 3], 0.0, 1.0, &mut rng)))
            .collect();
        let out = conv.forward(&tape, &binding, &seq);
        assert_eq!(out.len(), 6);
        assert_eq!(tape.dims(out[0]), vec![2, 5]);
    }

    #[test]
    fn identity_kernel_computes_moving_sum() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(1);
        let conv = DilatedTemporalConv::new(&mut store, "c", 1, 1, 2, 1, &mut rng);
        // Force taps to 1 and bias to 0 so out_t = x_t + x_{t-1}.
        for id in store.ids() {
            let dims = store.value(id).dims().to_vec();
            store.load(id, Tensor::ones(&dims));
        }
        store.load(conv.bias, Tensor::zeros(&[1]));
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let seq = seq_of(&tape, &[1.0, 2.0, 3.0, 4.0]);
        let out = conv.forward(&tape, &binding, &seq);
        let vals: Vec<f64> = out.iter().map(|&v| tape.value(v).data()[0]).collect();
        assert_eq!(vals, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn dilation_skips_steps() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(2);
        let conv = DilatedTemporalConv::new(&mut store, "c", 1, 1, 2, 2, &mut rng);
        for id in store.ids() {
            let dims = store.value(id).dims().to_vec();
            store.load(id, Tensor::ones(&dims));
        }
        store.load(conv.bias, Tensor::zeros(&[1]));
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let seq = seq_of(&tape, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let out = conv.forward(&tape, &binding, &seq);
        // out_t = x_t + x_{t-2}: [3+1, 4+2, 5+3]
        let vals: Vec<f64> = out.iter().map(|&v| tape.value(v).data()[0]).collect();
        assert_eq!(vals, vec![4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "shorter than receptive field")]
    fn rejects_too_short_sequences() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(3);
        let conv = DilatedTemporalConv::new(&mut store, "c", 1, 1, 3, 3, &mut rng);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let seq = seq_of(&tape, &[1.0, 2.0]);
        let _ = conv.forward(&tape, &binding, &seq);
    }

    #[test]
    fn gradients_reach_every_tap() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(4);
        let conv = DilatedTemporalConv::new(&mut store, "c", 2, 3, 3, 1, &mut rng);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let seq: Vec<Var> = (0..5)
            .map(|_| tape.leaf(Tensor::rand_normal(&[2, 2], 0.0, 1.0, &mut rng)))
            .collect();
        let out = conv.forward(&tape, &binding, &seq);
        let mut acc = out[0];
        for &o in &out[1..] {
            acc = tape.add(acc, o);
        }
        let sq = tape.square(acc);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        for (_, var) in binding.iter() {
            assert!(grads.get(var).is_some());
        }
    }
}
