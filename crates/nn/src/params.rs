//! Parameter storage shared by all layers of a model.

use ema_autodiff::{Tape, Var};
use ema_tensor::Tensor;

/// Identifies a parameter within a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(usize);

impl ParamId {
    /// The raw index into the store.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Crate-internal constructor used by optimizers to index their state.
pub(crate) fn param_id_from_index(index: usize) -> ParamId {
    ParamId(index)
}

struct ParamSlot {
    name: String,
    value: Tensor,
}

/// Owns every trainable tensor of a model, independent of any tape.
///
/// Layers register parameters at construction time and hold the returned
/// [`ParamId`]s; each training step binds the current values onto a fresh
/// tape via [`ParamStore::bind`].
#[derive(Default)]
pub struct ParamStore {
    slots: Vec<ParamSlot>,
}

impl ParamStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with a diagnostic name, returning its id.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.slots.push(ParamSlot {
            name: name.into(),
            value,
        });
        ParamId(self.slots.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no parameters are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    #[must_use]
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// The current value of a parameter.
    ///
    /// # Panics
    /// Panics if `id` is not from this store.
    #[must_use]
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].value
    }

    /// Mutable access to a parameter's value (used by optimizers).
    ///
    /// # Panics
    /// Panics if `id` is not from this store.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].value
    }

    /// The diagnostic name of a parameter.
    ///
    /// # Panics
    /// Panics if `id` is not from this store.
    #[must_use]
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// All parameter ids, in registration order.
    #[must_use]
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.slots.len()).map(ParamId).collect()
    }

    /// Inserts every parameter as a leaf on `tape`, returning the
    /// id → var mapping used during the forward pass.
    #[must_use]
    pub fn bind(&self, tape: &Tape) -> Binding {
        let vars = self
            .slots
            .iter()
            .map(|s| tape.leaf(s.value.clone()))
            .collect();
        Binding { vars }
    }

    /// Overwrites a parameter (e.g. when loading a checkpoint).
    ///
    /// # Panics
    /// Panics if the replacement shape differs from the original.
    pub fn load(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            self.slots[id.0].value.dims(),
            value.dims(),
            "cannot load parameter {}: shape {:?} != {:?}",
            self.slots[id.0].name,
            value.dims(),
            self.slots[id.0].value.dims()
        );
        self.slots[id.0].value = value;
    }
}

/// Maps [`ParamId`]s to the [`Var`]s of one particular tape binding.
pub struct Binding {
    vars: Vec<Var>,
}

impl Binding {
    /// The tape variable bound to `id` for this step.
    ///
    /// # Panics
    /// Panics if `id` was registered after this binding was created.
    #[must_use]
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.index()]
    }

    /// Iterates over `(ParamId, Var)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, Var)> + '_ {
        self.vars.iter().enumerate().map(|(i, &v)| (ParamId(i), v))
    }

    /// Number of bound parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when nothing is bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_read_back() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::ones(&[2, 3]));
        assert_eq!(store.value(id).dims(), &[2, 3]);
        assert_eq!(store.name(id), "w");
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 6);
    }

    #[test]
    fn bind_exposes_current_values() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::filled(&[2], 5.0));
        let tape = Tape::new();
        let binding = store.bind(&tape);
        assert_eq!(tape.value(binding.var(id)).data(), &[5.0, 5.0]);
        // Mutate after binding: the bound leaf keeps the old value.
        store.value_mut(id).data_mut()[0] = 9.0;
        assert_eq!(tape.value(binding.var(id)).data(), &[5.0, 5.0]);
    }

    #[test]
    fn load_checks_shape() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::zeros(&[2, 2]));
        store.load(id, Tensor::ones(&[2, 2]));
        assert_eq!(store.value(id).data(), &[1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "cannot load parameter")]
    fn load_rejects_wrong_shape() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::zeros(&[2, 2]));
        store.load(id, Tensor::ones(&[3]));
    }

    #[test]
    fn ids_cover_all_params() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::zeros(&[1]));
        let b = store.register("b", Tensor::zeros(&[1]));
        assert_eq!(store.ids(), vec![a, b]);
    }
}
