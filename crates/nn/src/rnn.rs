//! Recurrent cells: GRU and LSTM.
//!
//! Cells operate on `[n, features]` matrices so the same code serves both
//! plain sequence models (`n = 1`) and per-node recurrent graph models
//! (`n = V` variables), mirroring how PyTorch cells treat the leading
//! batch dimension.

use crate::{Binding, Initializer, ParamId, ParamStore};
use ema_autodiff::{Tape, Var};
use ema_tensor::Rng64;

/// A gated recurrent unit cell (PyTorch gate conventions).
///
/// Gates: `r = σ(W_r x + U_r h + b_r)`, `z = σ(W_z x + U_z h + b_z)`,
/// `n = tanh(W_n x + r ⊙ (U_n h) + b_n)`, `h' = (1 - z) ⊙ n + z ⊙ h`.
#[derive(Debug, Clone)]
pub struct GruCell {
    w_ih: ParamId, // [3H, X]
    w_hh: ParamId, // [3H, H]
    b_ih: ParamId, // [3H]
    b_hh: ParamId, // [3H]
    input_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Registers a new GRU cell.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut Rng64,
    ) -> Self {
        let init = Initializer::XavierUniform;
        let w_ih = store.register(
            format!("{name}.w_ih"),
            init.init(&[3 * hidden_dim, input_dim], rng),
        );
        let w_hh = store.register(
            format!("{name}.w_hh"),
            init.init(&[3 * hidden_dim, hidden_dim], rng),
        );
        let b_ih = store.register(
            format!("{name}.b_ih"),
            Initializer::Zeros.init(&[3 * hidden_dim], rng),
        );
        let b_hh = store.register(
            format!("{name}.b_hh"),
            Initializer::Zeros.init(&[3 * hidden_dim], rng),
        );
        Self {
            w_ih,
            w_hh,
            b_ih,
            b_hh,
            input_dim,
            hidden_dim,
        }
    }

    /// Hidden state width.
    #[must_use]
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input feature width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// One step: `x: [n, X]`, `h: [n, H]` → new hidden `[n, H]`.
    ///
    /// The gate math runs through the tape's fused
    /// [`Tape::gru_cell`] op: one node instead of the ~14-node
    /// slice/activate/combine graph per timestep.
    pub fn forward(&self, tape: &Tape, binding: &Binding, x: Var, h: Var) -> Var {
        let gi = tape.linear(x, binding.var(self.w_ih), binding.var(self.b_ih)); // [n, 3H]
        let gh = tape.linear(h, binding.var(self.w_hh), binding.var(self.b_hh)); // [n, 3H]
        tape.gru_cell(gi, gh, h)
    }

    /// Runs the cell over a sequence of inputs starting from `h0`,
    /// returning every hidden state (length == `xs.len()`).
    pub fn run_sequence(
        &self,
        tape: &Tape,
        binding: &Binding,
        xs: &[Var],
        h0: Var,
    ) -> Vec<Var> {
        let mut h = h0;
        let mut states = Vec::with_capacity(xs.len());
        for &x in xs {
            h = self.forward(tape, binding, x, h);
            states.push(h);
        }
        states
    }

    /// One step over `wins` window row-blocks sharing the cell params:
    /// `x: [W·n, X]`, `h: [W·n, H]` → `[W·n, H]`. Row-block `w` is
    /// bit-identical to [`GruCell::forward`] on window `w` alone; the
    /// shared weight gradients replay per window (see
    /// `Tape::batched_linear`).
    pub fn forward_batched(
        &self,
        tape: &Tape,
        binding: &Binding,
        x: Var,
        h: Var,
        wins: usize,
    ) -> Var {
        let gi = tape.batched_linear(x, binding.var(self.w_ih), binding.var(self.b_ih), wins);
        let gh = tape.batched_linear(h, binding.var(self.w_hh), binding.var(self.b_hh), wins);
        tape.gru_cell(gi, gh, h)
    }
}

/// The `(hidden, cell)` pair carried across LSTM steps.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden state `[n, H]`.
    pub h: Var,
    /// Cell state `[n, H]`.
    pub c: Var,
}

/// A long short-term memory cell (PyTorch gate conventions).
#[derive(Debug, Clone)]
pub struct LstmCell {
    w_ih: ParamId, // [4H, X]
    w_hh: ParamId, // [4H, H]
    b_ih: ParamId, // [4H]
    b_hh: ParamId, // [4H]
    input_dim: usize,
    hidden_dim: usize,
}

impl LstmCell {
    /// Registers a new LSTM cell.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut Rng64,
    ) -> Self {
        let init = Initializer::XavierUniform;
        let w_ih = store.register(
            format!("{name}.w_ih"),
            init.init(&[4 * hidden_dim, input_dim], rng),
        );
        let w_hh = store.register(
            format!("{name}.w_hh"),
            init.init(&[4 * hidden_dim, hidden_dim], rng),
        );
        let b_ih = store.register(
            format!("{name}.b_ih"),
            Initializer::Zeros.init(&[4 * hidden_dim], rng),
        );
        let b_hh = store.register(
            format!("{name}.b_hh"),
            Initializer::Zeros.init(&[4 * hidden_dim], rng),
        );
        Self {
            w_ih,
            w_hh,
            b_ih,
            b_hh,
            input_dim,
            hidden_dim,
        }
    }

    /// Hidden state width.
    #[must_use]
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input feature width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Zero-initialised state for `n` rows.
    pub fn zero_state(&self, tape: &Tape, n: usize) -> LstmState {
        let h = tape.leaf(ema_tensor::Tensor::zeros(&[n, self.hidden_dim]));
        let c = tape.leaf(ema_tensor::Tensor::zeros(&[n, self.hidden_dim]));
        LstmState { h, c }
    }

    /// One step: `x: [n, X]` with carried state → new state.
    ///
    /// The gate math runs through the tape's fused
    /// [`Tape::lstm_cell`] op, whose `[n, 2H]` output packs `[h' | c']`;
    /// the two state halves are sliced back out for the next step.
    pub fn forward(&self, tape: &Tape, binding: &Binding, x: Var, state: LstmState) -> LstmState {
        let hd = self.hidden_dim;
        let gi = tape.linear(x, binding.var(self.w_ih), binding.var(self.b_ih)); // [n, 4H]
        let gh = tape.linear(state.h, binding.var(self.w_hh), binding.var(self.b_hh));
        let gates_pre = tape.add(gi, gh);
        let hc = tape.lstm_cell(gates_pre, state.c);
        let h = tape.slice_cols(hc, 0, hd);
        let c = tape.slice_cols(hc, hd, 2 * hd);
        LstmState { h, c }
    }

    /// Runs the cell over a sequence, returning every hidden state.
    pub fn run_sequence(
        &self,
        tape: &Tape,
        binding: &Binding,
        xs: &[Var],
        mut state: LstmState,
    ) -> Vec<Var> {
        let mut states = Vec::with_capacity(xs.len());
        for &x in xs {
            state = self.forward(tape, binding, x, state);
            states.push(state.h);
        }
        states
    }

    /// One step over `wins` window row-blocks sharing the cell params:
    /// `x: [W·n, X]` with carried `[W·n, H]` state. Row-block `w` is
    /// bit-identical to [`LstmCell::forward`] on window `w` alone.
    pub fn forward_batched(
        &self,
        tape: &Tape,
        binding: &Binding,
        x: Var,
        state: LstmState,
        wins: usize,
    ) -> LstmState {
        let hd = self.hidden_dim;
        let gi = tape.batched_linear(x, binding.var(self.w_ih), binding.var(self.b_ih), wins);
        let gh = tape.batched_linear(state.h, binding.var(self.w_hh), binding.var(self.b_hh), wins);
        let gates_pre = tape.add(gi, gh);
        let hc = tape.lstm_cell(gates_pre, state.c);
        let h = tape.slice_cols(hc, 0, hd);
        let c = tape.slice_cols(hc, hd, 2 * hd);
        LstmState { h, c }
    }

    /// Batched [`LstmCell::run_sequence`]: every `x` is `[W·n, X]`.
    pub fn run_sequence_batched(
        &self,
        tape: &Tape,
        binding: &Binding,
        xs: &[Var],
        mut state: LstmState,
        wins: usize,
    ) -> Vec<Var> {
        let mut states = Vec::with_capacity(xs.len());
        for &x in xs {
            state = self.forward_batched(tape, binding, x, state, wins);
            states.push(state.h);
        }
        states
    }

    /// Zero-initialised state for a cohort stack of `total_rows` rows
    /// shared by `cells` (all cells must agree on the hidden width).
    ///
    /// # Panics
    /// Panics if `cells` is empty or hidden widths differ.
    pub fn zero_state_grouped(cells: &[&Self], tape: &Tape, total_rows: usize) -> LstmState {
        let hd = Self::shared_hidden_dim(cells);
        let h = tape.leaf(ema_tensor::Tensor::zeros(&[total_rows, hd]));
        let c = tape.leaf(ema_tensor::Tensor::zeros(&[total_rows, hd]));
        LstmState { h, c }
    }

    /// One step over a cohort row stack: group `b`'s `group_rows[b]`
    /// contiguous rows of `x: [Σ rows, X]` go through `cells[b]`'s own
    /// parameters bound via `bindings[b]`. Row-block `b` is
    /// bit-identical to [`LstmCell::forward_batched`] on that
    /// individual alone: the grouped linears match per block (see
    /// `Tape::group_linear`) and the add/cell/slice chain is rowwise.
    ///
    /// # Panics
    /// Panics when slice lengths disagree or cell widths differ.
    pub fn forward_grouped(
        cells: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        x: Var,
        state: LstmState,
        group_rows: &[usize],
    ) -> LstmState {
        assert_eq!(cells.len(), bindings.len(), "one binding per cell");
        let hd = Self::shared_hidden_dim(cells);
        let pairs = |pick: fn(&Self) -> (ParamId, ParamId)| -> Vec<(Var, Var)> {
            cells
                .iter()
                .zip(bindings)
                .map(|(c, bind)| {
                    let (w, b) = pick(c);
                    (bind.var(w), bind.var(b))
                })
                .collect()
        };
        let gi = tape.group_linear(x, &pairs(|c| (c.w_ih, c.b_ih)), group_rows);
        let gh = tape.group_linear(state.h, &pairs(|c| (c.w_hh, c.b_hh)), group_rows);
        let gates_pre = tape.add(gi, gh);
        let hc = tape.lstm_cell(gates_pre, state.c);
        let h = tape.slice_cols(hc, 0, hd);
        let c = tape.slice_cols(hc, hd, 2 * hd);
        LstmState { h, c }
    }

    /// Grouped [`LstmCell::run_sequence_batched`] over a cohort stack,
    /// returning every hidden state.
    pub fn run_sequence_grouped(
        cells: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        xs: &[Var],
        mut state: LstmState,
        group_rows: &[usize],
    ) -> Vec<Var> {
        let mut states = Vec::with_capacity(xs.len());
        for &x in xs {
            state = Self::forward_grouped(cells, tape, bindings, x, state, group_rows);
            states.push(state.h);
        }
        states
    }

    fn shared_hidden_dim(cells: &[&Self]) -> usize {
        let hd = cells
            .first()
            .expect("grouped LSTM needs at least one cell")
            .hidden_dim;
        assert!(
            cells.iter().all(|c| c.hidden_dim == hd),
            "grouped LSTM cells must share the hidden width"
        );
        hd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Tensor;

    fn setup() -> (ParamStore, Rng64) {
        (ParamStore::new(), Rng64::seed_from(42))
    }

    #[test]
    fn gru_step_shape_and_bounds() {
        let (mut store, mut rng) = setup();
        let cell = GruCell::new(&mut store, "gru", 5, 8, &mut rng);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let x = tape.leaf(Tensor::rand_normal(&[3, 5], 0.0, 1.0, &mut rng));
        let h0 = tape.leaf(Tensor::zeros(&[3, 8]));
        let h1 = cell.forward(&tape, &binding, x, h0);
        assert_eq!(tape.dims(h1), vec![3, 8]);
        // GRU hidden from zero state is a convex mix of tanh values: |h| <= 1.
        assert!(tape.value(h1).data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn gru_sequence_length() {
        let (mut store, mut rng) = setup();
        let cell = GruCell::new(&mut store, "gru", 4, 6, &mut rng);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let xs: Vec<Var> = (0..5)
            .map(|_| tape.leaf(Tensor::rand_normal(&[2, 4], 0.0, 1.0, &mut rng)))
            .collect();
        let h0 = tape.leaf(Tensor::zeros(&[2, 6]));
        let states = cell.run_sequence(&tape, &binding, &xs, h0);
        assert_eq!(states.len(), 5);
        assert_eq!(tape.dims(states[4]), vec![2, 6]);
    }

    #[test]
    fn gru_zero_input_zero_state_stays_bounded() {
        let (mut store, mut rng) = setup();
        let cell = GruCell::new(&mut store, "gru", 3, 4, &mut rng);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let x = tape.leaf(Tensor::zeros(&[1, 3]));
        let mut h = tape.leaf(Tensor::zeros(&[1, 4]));
        for _ in 0..50 {
            h = cell.forward(&tape, &binding, x, h);
        }
        assert!(tape.value(h).all_finite());
        assert!(tape.value(h).data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_step_shapes() {
        let (mut store, mut rng) = setup();
        let cell = LstmCell::new(&mut store, "lstm", 5, 8, &mut rng);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let x = tape.leaf(Tensor::rand_normal(&[3, 5], 0.0, 1.0, &mut rng));
        let s0 = cell.zero_state(&tape, 3);
        let s1 = cell.forward(&tape, &binding, x, s0);
        assert_eq!(tape.dims(s1.h), vec![3, 8]);
        assert_eq!(tape.dims(s1.c), vec![3, 8]);
        // |h| = |o ⊙ tanh(c)| <= 1.
        assert!(tape.value(s1.h).data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_sequence_is_stateful() {
        let (mut store, mut rng) = setup();
        let cell = LstmCell::new(&mut store, "lstm", 2, 4, &mut rng);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let x = tape.leaf(Tensor::ones(&[1, 2]));
        let s0 = cell.zero_state(&tape, 1);
        let states = cell.run_sequence(&tape, &binding, &[x, x, x], s0);
        // Same input at every step but evolving state ⇒ different outputs.
        let h1 = tape.value(states[0]);
        let h2 = tape.value(states[1]);
        assert_ne!(h1.data(), h2.data());
    }

    #[test]
    fn lstm_gradients_flow_to_all_params() {
        let (mut store, mut rng) = setup();
        let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let x = tape.leaf(Tensor::ones(&[1, 2]));
        let s0 = cell.zero_state(&tape, 1);
        let s1 = cell.forward(&tape, &binding, x, s0);
        let loss = {
            let sq = tape.square(s1.h);
            tape.sum_all(sq)
        };
        let grads = tape.backward(loss);
        for (id, var) in binding.iter() {
            assert!(
                grads.get(var).is_some(),
                "no gradient for parameter {}",
                store.name(id)
            );
        }
    }
}
