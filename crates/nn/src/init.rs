//! Weight initialisation strategies.

use ema_tensor::{Rng64, Tensor};

/// How a weight tensor is initialised at layer construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// All zeros — the default for biases.
    Zeros,
    /// Xavier/Glorot uniform: `U(±sqrt(6 / (fan_in + fan_out)))`.
    /// The default for weight matrices.
    XavierUniform,
    /// Uniform in a fixed symmetric range.
    Uniform(f64),
    /// Normal with the given standard deviation.
    Normal(f64),
}

impl Initializer {
    /// Materialises a tensor of the given dims.
    ///
    /// # Panics
    /// Panics if `XavierUniform` is used with a non-rank-2 shape.
    #[must_use]
    pub fn init(self, dims: &[usize], rng: &mut Rng64) -> Tensor {
        match self {
            Initializer::Zeros => Tensor::zeros(dims),
            Initializer::XavierUniform => Tensor::xavier_uniform(dims, rng),
            Initializer::Uniform(bound) => Tensor::rand_uniform(dims, -bound, bound, rng),
            Initializer::Normal(std) => Tensor::rand_normal(dims, 0.0, std, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let mut rng = Rng64::seed_from(0);
        let t = Initializer::Zeros.init(&[3, 3], &mut rng);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = Rng64::seed_from(1);
        let t = Initializer::Uniform(0.5).init(&[100], &mut rng);
        assert!(t.data().iter().all(|&v| v.abs() <= 0.5));
        assert!(t.std() > 0.1);
    }

    #[test]
    fn normal_std_is_sane() {
        let mut rng = Rng64::seed_from(2);
        let t = Initializer::Normal(2.0).init(&[10_000], &mut rng);
        assert!((t.std() - 2.0).abs() < 0.1);
    }
}
