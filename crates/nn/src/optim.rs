//! Optimizers: Adam and SGD with learning-rate schedules, weight decay
//! and global-norm gradient clipping.

use crate::{Binding, ParamStore};
use ema_autodiff::Grads;
use ema_tensor::Tensor;

/// Learning-rate schedule applied on top of the base rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiplies the rate by `factor` every `every` steps.
    StepDecay {
        /// Steps between decays.
        every: usize,
        /// Multiplicative decay factor in `(0, 1]`.
        factor: f64,
    },
}

impl LrSchedule {
    /// The effective learning rate at `step` (0-based) given `base`.
    #[must_use]
    pub fn rate_at(self, base: f64, step: usize) -> f64 {
        match self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, factor } => {
                let decays = step / every.max(1);
                base * factor.powi(decays as i32)
            }
        }
    }
}

/// Shared optimizer hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    /// Base learning rate (the paper uses `0.01`).
    pub learning_rate: f64,
    /// L2 weight-decay coefficient (0 disables).
    pub weight_decay: f64,
    /// Global-norm gradient clip (0 disables).
    pub grad_clip: f64,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            weight_decay: 0.0,
            grad_clip: 5.0,
            schedule: LrSchedule::Constant,
        }
    }
}

impl OptimizerConfig {
    /// A default config with the given learning rate.
    #[must_use]
    pub fn with_learning_rate(lr: f64) -> Self {
        Self {
            learning_rate: lr,
            ..Self::default()
        }
    }
}

/// Common interface for gradient-descent optimizers.
pub trait Optimizer {
    /// Applies one update to every parameter in `store` using the
    /// gradients from the latest backward pass.
    fn step(&mut self, store: &mut ParamStore, binding: &Binding, grads: &Grads);

    /// Number of steps taken so far.
    fn steps(&self) -> usize;
}

/// Global L2 norm over every bound parameter's gradient — the quantity
/// global-norm clipping compares against, exposed so the training loop
/// can report it per epoch (obs telemetry, divergence diagnosis).
/// Absent gradients contribute zero without materializing zero tensors.
#[must_use]
pub fn global_grad_norm(_store: &ParamStore, binding: &Binding, grads: &Grads) -> f64 {
    let mut sq = 0.0;
    for (_, var) in binding.iter() {
        sq += grads.get(var).map_or(0.0, Tensor::sq_sum);
    }
    sq.sqrt()
}

/// Computes the global clip factor (`<= 1`) for a gradient set.
fn clip_factor(store: &ParamStore, binding: &Binding, grads: &Grads, clip: f64) -> f64 {
    if clip <= 0.0 {
        return 1.0;
    }
    let norm = global_grad_norm(store, binding, grads);
    if norm > clip {
        clip / norm
    } else {
        1.0
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
pub struct Adam {
    config: OptimizerConfig,
    beta1: f64,
    beta2: f64,
    eps: f64,
    step: usize,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    #[must_use]
    pub fn new(config: OptimizerConfig) -> Self {
        Self {
            config,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        while self.m.len() < store.len() {
            let i = self.m.len();
            let dims = store.value(crate::params::param_id_from_index(i)).dims().to_vec();
            self.m.push(Tensor::zeros(&dims));
            self.v.push(Tensor::zeros(&dims));
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, binding: &Binding, grads: &Grads) {
        self.ensure_state(store);
        self.step += 1;
        let lr = self
            .config
            .schedule
            .rate_at(self.config.learning_rate, self.step - 1);
        let factor = clip_factor(store, binding, grads, self.config.grad_clip);
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);

        let wd = self.config.weight_decay;
        for (id, var) in binding.iter() {
            // Clip factor and weight decay fold into the per-element
            // gradient read: no scaled/decayed gradient tensor is ever
            // materialized. The `factor < 1.0` / `wd > 0.0` guards keep
            // the arithmetic (and signed zeros) bit-identical to the
            // unclipped path.
            let grad = grads.get(var);
            let i = id.index();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let param = store.value_mut(id);
            for j in 0..param.len() {
                let mut gj = grad.map_or(0.0, |g| g.data()[j]);
                if factor < 1.0 {
                    gj *= factor;
                }
                if wd > 0.0 {
                    gj += param.data()[j] * wd;
                }
                m.data_mut()[j] = self.beta1 * m.data()[j] + (1.0 - self.beta1) * gj;
                v.data_mut()[j] = self.beta2 * v.data()[j] + (1.0 - self.beta2) * gj * gj;
                let mhat = m.data()[j] / bc1;
                let vhat = v.data()[j] / bc2;
                param.data_mut()[j] -= lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn steps(&self) -> usize {
        self.step
    }
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    config: OptimizerConfig,
    momentum: f64,
    step: usize,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer without momentum.
    #[must_use]
    pub fn new(config: OptimizerConfig) -> Self {
        Self::with_momentum(config, 0.0)
    }

    /// Creates an SGD optimizer with the given momentum coefficient.
    #[must_use]
    pub fn with_momentum(config: OptimizerConfig, momentum: f64) -> Self {
        Self {
            config,
            momentum,
            step: 0,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, binding: &Binding, grads: &Grads) {
        while self.velocity.len() < store.len() {
            let i = self.velocity.len();
            let dims = store.value(crate::params::param_id_from_index(i)).dims().to_vec();
            self.velocity.push(Tensor::zeros(&dims));
        }
        self.step += 1;
        let lr = self
            .config
            .schedule
            .rate_at(self.config.learning_rate, self.step - 1);
        let factor = clip_factor(store, binding, grads, self.config.grad_clip);

        let wd = self.config.weight_decay;
        for (id, var) in binding.iter() {
            // Same inline clip/decay fold as Adam: allocation-free with
            // bit-identical arithmetic.
            let grad = grads.get(var);
            let i = id.index();
            let vel = &mut self.velocity[i];
            let param = store.value_mut(id);
            for j in 0..param.len() {
                let mut gj = grad.map_or(0.0, |g| g.data()[j]);
                if factor < 1.0 {
                    gj *= factor;
                }
                if wd > 0.0 {
                    gj += param.data()[j] * wd;
                }
                let v = self.momentum * vel.data()[j] + gj;
                vel.data_mut()[j] = v;
                param.data_mut()[j] -= lr * v;
            }
        }
    }

    fn steps(&self) -> usize {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_autodiff::Tape;
    use ema_tensor::Rng64;

    /// Minimises `(w - 3)²` and checks convergence.
    fn optimise(opt: &mut dyn Optimizer, iters: usize) -> f64 {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec1(vec![0.0]));
        for _ in 0..iters {
            let tape = Tape::new();
            let binding = store.bind(&tape);
            let target = tape.leaf(Tensor::from_vec1(vec![3.0]));
            let diff = tape.sub(binding.var(w), target);
            let loss = {
                let sq = tape.square(diff);
                tape.sum_all(sq)
            };
            let grads = tape.backward(loss);
            opt.step(&mut store, &binding, &grads);
        }
        store.value(w).data()[0]
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.1));
        let w = optimise(&mut adam, 300);
        assert!((w - 3.0).abs() < 0.01, "Adam ended at {w}");
        assert_eq!(adam.steps(), 300);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(OptimizerConfig::with_learning_rate(0.1));
        let w = optimise(&mut sgd, 200);
        assert!((w - 3.0).abs() < 0.01, "SGD ended at {w}");
    }

    #[test]
    fn momentum_sgd_converges() {
        let mut sgd = Sgd::with_momentum(OptimizerConfig::with_learning_rate(0.05), 0.9);
        let w = optimise(&mut sgd, 200);
        assert!((w - 3.0).abs() < 0.05, "momentum SGD ended at {w}");
    }

    #[test]
    fn step_decay_reduces_rate() {
        let s = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.rate_at(1.0, 0), 1.0);
        assert_eq!(s.rate_at(1.0, 9), 1.0);
        assert_eq!(s.rate_at(1.0, 10), 0.5);
        assert_eq!(s.rate_at(1.0, 25), 0.25);
    }

    #[test]
    fn grad_clip_bounds_update() {
        // One step with a huge gradient: the clipped update magnitude
        // must respect lr * clip for SGD.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec1(vec![0.0]));
        let mut cfg = OptimizerConfig::with_learning_rate(1.0);
        cfg.grad_clip = 1.0;
        let mut sgd = Sgd::new(cfg);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let big = tape.scale(binding.var(w), 1.0);
        let shifted = tape.add_scalar(big, -1000.0);
        let loss = {
            let sq = tape.square(shifted);
            tape.sum_all(sq)
        }; // grad = 2(w - 1000) = -2000
        let grads = tape.backward(loss);
        sgd.step(&mut store, &binding, &grads);
        let delta = store.value(w).data()[0].abs();
        assert!(delta <= 1.0 + 1e-9, "update {delta} exceeded clip");
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec1(vec![10.0]));
        let mut cfg = OptimizerConfig::with_learning_rate(0.1);
        cfg.weight_decay = 1.0;
        cfg.grad_clip = 0.0;
        let mut sgd = Sgd::new(cfg);
        // Loss independent of w: only decay acts.
        let mut rng = Rng64::seed_from(0);
        let _ = &mut rng;
        for _ in 0..10 {
            let tape = Tape::new();
            let binding = store.bind(&tape);
            let c = tape.leaf(Tensor::from_vec1(vec![1.0]));
            let loss = tape.sum_all(c);
            let grads = tape.backward(loss);
            sgd.step(&mut store, &binding, &grads);
        }
        assert!(store.value(w).data()[0] < 10.0);
    }
}
