//! # ema-nn
//!
//! Neural-network building blocks on top of [`ema_autodiff`]: a parameter
//! store, layers (linear, GRU/LSTM cells, temporal attention, dilated
//! temporal convolution) and optimizers (Adam, SGD) with learning-rate
//! schedules and gradient clipping.
//!
//! ## Training protocol
//!
//! Parameters live *outside* any tape in a [`ParamStore`]. Each training
//! step:
//!
//! 1. create a fresh [`ema_autodiff::Tape`] and call
//!    [`ParamStore::bind`] to insert every parameter as a leaf;
//! 2. run the model forward using the returned [`Binding`];
//! 3. call [`ema_autodiff::Tape::backward`] on the scalar loss;
//! 4. call an optimizer's `step` with the store, binding and gradients.
//!
//! ```
//! use ema_autodiff::Tape;
//! use ema_nn::{Adam, Linear, Optimizer, OptimizerConfig, ParamStore};
//! use ema_tensor::{Rng64, Tensor};
//!
//! let mut store = ParamStore::new();
//! let mut rng = Rng64::seed_from(0);
//! let layer = Linear::new(&mut store, "demo", 3, 1, &mut rng);
//! let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.01));
//!
//! for _ in 0..50 {
//!     let tape = Tape::new();
//!     let binding = store.bind(&tape);
//!     let x = tape.leaf(Tensor::ones(&[4, 3]));
//!     let target = tape.leaf(Tensor::zeros(&[4, 1]));
//!     let y = layer.forward(&tape, &binding, x);
//!     let loss = tape.mse(y, target);
//!     let grads = tape.backward(loss);
//!     adam.step(&mut store, &binding, &grads);
//! }
//! ```

#![warn(missing_docs)]

mod attention;
mod conv;
mod init;
mod linear;
mod optim;
mod params;
mod rnn;

pub use attention::TemporalAttention;
pub use conv::DilatedTemporalConv;
pub use init::Initializer;
pub use linear::Linear;
pub use optim::{global_grad_norm, Adam, LrSchedule, Optimizer, OptimizerConfig, Sgd};
pub use params::{Binding, ParamId, ParamStore};
pub use rnn::{GruCell, LstmCell, LstmState};
