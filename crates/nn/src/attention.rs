//! Temporal attention over a sequence of hidden states.
//!
//! This is the attention mechanism used by A3TGCN: each time step's
//! hidden state is scored by a small MLP, scores are softmax-normalised
//! over time, and the context is the attention-weighted sum of states.

use crate::{Binding, Initializer, ParamId, ParamStore};
use ema_autodiff::{Tape, Var};
use ema_tensor::{Rng64, Tensor};

/// Additive temporal attention: `score_t = vᵀ tanh(W h̄_t + b)` where
/// `h̄_t` is the node-averaged hidden state at step `t`; the output is
/// `Σ_t softmax(score)_t · H_t`.
#[derive(Debug, Clone)]
pub struct TemporalAttention {
    w: ParamId, // [A, H]
    b: ParamId, // [A]
    v: ParamId, // [1, A]
    hidden_dim: usize,
    attn_dim: usize,
}

impl TemporalAttention {
    /// Registers a new attention module scoring `[n, hidden]` states.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        hidden_dim: usize,
        attn_dim: usize,
        rng: &mut Rng64,
    ) -> Self {
        let init = Initializer::XavierUniform;
        let w = store.register(format!("{name}.w"), init.init(&[attn_dim, hidden_dim], rng));
        let b = store.register(
            format!("{name}.b"),
            Initializer::Zeros.init(&[attn_dim], rng),
        );
        let v = store.register(format!("{name}.v"), init.init(&[1, attn_dim], rng));
        Self {
            w,
            b,
            v,
            hidden_dim,
            attn_dim,
        }
    }

    /// Attention score width.
    #[must_use]
    pub fn attn_dim(&self) -> usize {
        self.attn_dim
    }

    /// Computes the softmax attention weights over `states`
    /// (each `[n, hidden]`), returned as a rank-1 `[T]` var.
    ///
    /// # Panics
    /// Panics if `states` is empty or widths mismatch.
    pub fn weights(&self, tape: &Tape, binding: &Binding, states: &[Var]) -> Var {
        assert!(!states.is_empty(), "attention over an empty sequence");
        let n = tape.dims(states[0])[0];
        // Row-averaging matrix [1, n] as a constant.
        let avg = tape.leaf(Tensor::filled(&[1, n], 1.0 / n as f64));
        let vt = tape.transpose(binding.var(self.v)); // [A, 1], shared by every step
        let mut scores = Vec::with_capacity(states.len());
        for &h in states {
            assert_eq!(
                tape.dims(h)[1],
                self.hidden_dim,
                "hidden width mismatch in attention"
            );
            let mean_h = tape.matmul(avg, h); // [1, H]
            let proj = tape.linear(mean_h, binding.var(self.w), binding.var(self.b)); // [1, A]
            let act = tape.tanh(proj);
            let score = tape.matmul(act, vt); // [1, 1]
            scores.push(tape.flatten(score)); // [1]
        }
        let stacked = tape.stack_rows(&scores); // [T, 1]
        let logits = tape.reshape(stacked, &[states.len()]);
        tape.softmax_last(logits) // [T]
    }

    /// Attention-weighted context `Σ_t α_t H_t`, shape `[n, hidden]`.
    ///
    /// # Panics
    /// Panics if `states` is empty or widths mismatch.
    pub fn forward(&self, tape: &Tape, binding: &Binding, states: &[Var]) -> Var {
        let alpha = self.weights(tape, binding, states); // [T]
        let n = tape.dims(states[0])[0];
        let h = self.hidden_dim;
        // Flatten each state to a row and take the alpha-weighted sum
        // via a [1, T] x [T, n*H] product.
        let rows: Vec<Var> = states.iter().map(|&s| tape.flatten(s)).collect();
        let stacked = tape.stack_rows(&rows); // [T, n*H]
        let alpha_row = tape.reshape(alpha, &[1, states.len()]);
        let ctx = tape.matmul(alpha_row, stacked); // [1, n*H]
        tape.reshape(ctx, &[n, h])
    }

    /// Batched [`TemporalAttention::weights`]: each state is a
    /// `[W·n, hidden]` stack of window row-blocks; returns the softmax
    /// weights as a `[W, T]` matrix whose row `w` is bit-identical to
    /// the per-window weights of window `w` alone.
    ///
    /// # Panics
    /// Panics if `states` is empty or widths mismatch.
    pub fn weights_batched(
        &self,
        tape: &Tape,
        binding: &Binding,
        states: &[Var],
        wins: usize,
    ) -> Var {
        assert!(!states.is_empty(), "attention over an empty sequence");
        let n = tape.dims(states[0])[0] / wins;
        // Row-averaging matrix [1, n]; shared across windows (its own
        // gradient is never read).
        let avg = tape.leaf(Tensor::filled(&[1, n], 1.0 / n as f64));
        let vt = tape.transpose(binding.var(self.v)); // [A, 1], shared by every step
        let mut scores = Vec::with_capacity(states.len());
        for &h in states {
            assert_eq!(
                tape.dims(h)[1],
                self.hidden_dim,
                "hidden width mismatch in attention"
            );
            let mean_h = tape.block_lhs_matmul(avg, h, wins); // [W, H]
            let proj =
                tape.batched_linear(mean_h, binding.var(self.w), binding.var(self.b), wins); // [W, A]
            let act = tape.tanh(proj);
            // Grouped replay: the per-window reference folds each
            // window's score gradient into its own vt node before
            // accumulating, so v's gradient association matches.
            scores.push(tape.batched_matmul_grouped(act, vt, wins)); // [W, 1]
        }
        let mut logits = scores[0];
        for &s in &scores[1..] {
            logits = tape.hcat(logits, s); // [W, T]
        }
        tape.softmax_last(logits) // [W, T], row-wise softmax
    }

    /// Batched [`TemporalAttention::forward`]: the attention-weighted
    /// context for every window at once, shape `[W·n, hidden]`.
    ///
    /// # Panics
    /// Panics if `states` is empty or widths mismatch.
    pub fn forward_batched(
        &self,
        tape: &Tape,
        binding: &Binding,
        states: &[Var],
        wins: usize,
    ) -> Var {
        let alpha = self.weights_batched(tape, binding, states, wins); // [W, T]
        let n = tape.dims(states[0])[0] / wins;
        let h = self.hidden_dim;
        // Window block w of the stack holds the T flattened states of
        // window w; a blockwise [1, T] x [T, n*H] product then forms
        // every window's context in one node.
        let stacked = tape.stack_window_blocks(states, wins); // [W·T, n*H]
        let ctx = tape.block_matmul(alpha, stacked, wins); // [W, n*H]
        tape.reshape(ctx, &[wins * n, h])
    }

    /// Grouped [`TemporalAttention::weights_batched`] over a cohort
    /// stack: each state is a `[Σ W_b·n, hidden]` individual-major
    /// stack, and group `b`'s window rows are scored by its *own*
    /// `(w, b, v)` parameters — bit-identical per row block to the
    /// per-individual batched weights. All modules must share the
    /// hidden and attention widths.
    ///
    /// # Panics
    /// Panics if `states` is empty or lengths/widths mismatch.
    pub fn weights_grouped(
        attns: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        states: &[Var],
        group_wins: &[usize],
    ) -> Var {
        assert!(!states.is_empty(), "attention over an empty sequence");
        assert_eq!(attns.len(), bindings.len(), "one binding per module");
        assert_eq!(attns.len(), group_wins.len(), "one window count per module");
        let (hidden, _) = shared_dims(attns);
        let total_wins: usize = group_wins.iter().sum();
        let n = tape.dims(states[0])[0] / total_wins;
        // Row-averaging matrix [1, n]; shared across windows and
        // individuals (its own gradient is never read), so the shared
        // block-lhs op applies with wins = Σ W_b.
        let avg = tape.leaf(Tensor::filled(&[1, n], 1.0 / n as f64));
        let params: Vec<(Var, Var)> = attns
            .iter()
            .zip(bindings)
            .map(|(a, bind)| (bind.var(a.w), bind.var(a.b)))
            .collect();
        let vts: Vec<Var> = attns
            .iter()
            .zip(bindings)
            .map(|(a, bind)| tape.transpose(bind.var(a.v))) // [A, 1]
            .collect();
        let mut scores = Vec::with_capacity(states.len());
        for &h in states {
            assert_eq!(tape.dims(h)[1], hidden, "hidden width mismatch in attention");
            let mean_h = tape.block_lhs_matmul(avg, h, total_wins); // [Σ W_b, H]
            let proj = tape.group_linear(mean_h, &params, group_wins); // [Σ W_b, A]
            let act = tape.tanh(proj);
            // Grouped replay per individual: each group's score pieces
            // fold into its own vt node per window, as in the batched
            // reference.
            scores.push(tape.group_matmul_grouped(act, &vts, group_wins, 1)); // [Σ W_b, 1]
        }
        let mut logits = scores[0];
        for &s in &scores[1..] {
            logits = tape.hcat(logits, s); // [Σ W_b, T]
        }
        tape.softmax_last(logits) // [Σ W_b, T], row-wise softmax
    }

    /// Grouped [`TemporalAttention::forward_batched`]: the
    /// attention-weighted context for every window of every individual
    /// at once, shape `[Σ W_b·n, hidden]`.
    ///
    /// # Panics
    /// Panics if `states` is empty or lengths/widths mismatch.
    pub fn forward_grouped(
        attns: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        states: &[Var],
        group_wins: &[usize],
    ) -> Var {
        let alpha = Self::weights_grouped(attns, tape, bindings, states, group_wins); // [Σ W_b, T]
        let total_wins: usize = group_wins.iter().sum();
        let n = tape.dims(states[0])[0] / total_wins;
        let h = attns[0].hidden_dim;
        // The pooling stays a shared-structure op: window blocks divide
        // the cohort stack uniformly, so the batched stack/block-matmul
        // with wins = Σ W_b is bit-identical per window block.
        let stacked = tape.stack_window_blocks(states, total_wins); // [Σ W_b·T, n*H]
        let ctx = tape.block_matmul(alpha, stacked, total_wins); // [Σ W_b, n*H]
        tape.reshape(ctx, &[total_wins * n, h])
    }
}

/// Asserts every module shares the hidden/attention widths and returns
/// them.
fn shared_dims(attns: &[&TemporalAttention]) -> (usize, usize) {
    let first = attns.first().expect("at least one attention module");
    for a in attns {
        assert_eq!(
            a.hidden_dim, first.hidden_dim,
            "grouped attention modules must share the hidden width"
        );
        assert_eq!(
            a.attn_dim, first.attn_dim,
            "grouped attention modules must share the attention width"
        );
    }
    (first.hidden_dim, first.attn_dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(hidden: usize) -> (ParamStore, TemporalAttention, Rng64) {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(7);
        let attn = TemporalAttention::new(&mut store, "attn", hidden, 4, &mut rng);
        (store, attn, rng)
    }

    #[test]
    fn weights_form_a_distribution() {
        let (store, attn, mut rng) = setup(6);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let states: Vec<Var> = (0..5)
            .map(|_| tape.leaf(Tensor::rand_normal(&[3, 6], 0.0, 1.0, &mut rng)))
            .collect();
        let w = attn.weights(&tape, &binding, &states);
        let wv = tape.value(w);
        assert_eq!(wv.dims(), &[5]);
        assert!((wv.sum() - 1.0).abs() < 1e-9);
        assert!(wv.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn context_shape_matches_state() {
        let (store, attn, mut rng) = setup(6);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let states: Vec<Var> = (0..4)
            .map(|_| tape.leaf(Tensor::rand_normal(&[3, 6], 0.0, 1.0, &mut rng)))
            .collect();
        let ctx = attn.forward(&tape, &binding, &states);
        assert_eq!(tape.dims(ctx), vec![3, 6]);
    }

    #[test]
    fn identical_states_give_uniform_weights() {
        let (store, attn, mut rng) = setup(5);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let s = tape.leaf(Tensor::rand_normal(&[2, 5], 0.0, 1.0, &mut rng));
        let w = attn.weights(&tape, &binding, &[s, s, s, s]);
        let wv = tape.value(w);
        for &v in wv.data() {
            assert!((v - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn context_of_identical_states_is_the_state() {
        let (store, attn, mut rng) = setup(5);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let s = tape.leaf(Tensor::rand_normal(&[2, 5], 0.0, 1.0, &mut rng));
        let ctx = attn.forward(&tape, &binding, &[s, s, s]);
        ema_tensor::assert_tensors_close(&tape.value(ctx), &tape.value(s), 1e-9);
    }

    #[test]
    fn gradients_reach_attention_params() {
        let (store, attn, mut rng) = setup(4);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let states: Vec<Var> = (0..3)
            .map(|_| tape.leaf(Tensor::rand_normal(&[2, 4], 0.0, 1.0, &mut rng)))
            .collect();
        let ctx = attn.forward(&tape, &binding, &states);
        let sq = tape.square(ctx);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        for (_, var) in binding.iter() {
            assert!(grads.get(var).is_some());
        }
    }
}
