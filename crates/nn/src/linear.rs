//! Fully-connected (affine) layer.

use crate::{Binding, Initializer, ParamId, ParamStore};
use ema_autodiff::{Tape, Var};
use ema_tensor::Rng64;

/// An affine layer `y = x · Wᵀ + b` mapping `[n, in] -> [n, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix id, shape `[out, in]`.
    pub w: ParamId,
    /// Bias vector id, shape `[out]`.
    pub b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new layer with Xavier weights and zero bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng64,
    ) -> Self {
        Self::with_init(
            store,
            name,
            in_dim,
            out_dim,
            Initializer::XavierUniform,
            rng,
        )
    }

    /// Registers a new layer with a custom weight initializer.
    pub fn with_init(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Initializer,
        rng: &mut Rng64,
    ) -> Self {
        let w = store.register(format!("{name}.w"), init.init(&[out_dim, in_dim], rng));
        let b = store.register(format!("{name}.b"), Initializer::Zeros.init(&[out_dim], rng));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to `x: [n, in]`, producing `[n, out]`.
    pub fn forward(&self, tape: &Tape, binding: &Binding, x: Var) -> Var {
        tape.linear(x, binding.var(self.w), binding.var(self.b))
    }

    /// Batched [`Linear::forward`] over `wins` window row-blocks
    /// sharing the layer parameters: `x: [W·n, in]` → `[W·n, out]`.
    pub fn forward_batched(&self, tape: &Tape, binding: &Binding, x: Var, wins: usize) -> Var {
        tape.batched_linear(x, binding.var(self.w), binding.var(self.b), wins)
    }

    /// Grouped forward over a cohort row stack: group `b`'s
    /// `group_rows[b]` contiguous rows of `x` go through `layers[b]`
    /// bound via `bindings[b]` (each individual keeps its own
    /// parameters on the shared tape). Row-block `b` is bit-identical
    /// to [`Linear::forward_batched`] on that individual alone (see
    /// `Tape::group_linear`).
    ///
    /// # Panics
    /// Panics when the slice lengths disagree or layer widths differ.
    pub fn forward_grouped(
        layers: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        x: Var,
        group_rows: &[usize],
    ) -> Var {
        assert_eq!(layers.len(), bindings.len(), "one binding per layer");
        let params: Vec<(Var, Var)> = layers
            .iter()
            .zip(bindings)
            .map(|(l, bind)| (bind.var(l.w), bind.var(l.b)))
            .collect();
        tape.group_linear(x, &params, group_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Tensor;

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(0);
        let layer = Linear::new(&mut store, "l", 4, 7, &mut rng);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 7);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let x = tape.leaf(Tensor::ones(&[3, 4]));
        let y = layer.forward(&tape, &binding, x);
        assert_eq!(tape.dims(y), vec![3, 7]);
    }

    #[test]
    fn zero_weights_give_zero_bias_output() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(0);
        let layer = Linear::with_init(&mut store, "l", 2, 2, Initializer::Zeros, &mut rng);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let x = tape.leaf(Tensor::ones(&[1, 2]));
        let y = layer.forward(&tape, &binding, x);
        assert_eq!(tape.value(y).data(), &[0.0, 0.0]);
    }

    #[test]
    fn params_are_named() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(0);
        let layer = Linear::new(&mut store, "head", 2, 2, &mut rng);
        assert_eq!(store.name(layer.w), "head.w");
        assert_eq!(store.name(layer.b), "head.b");
    }
}
