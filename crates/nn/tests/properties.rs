//! Property-based tests of layers and optimizers.

use ema_autodiff::Tape;
use ema_check::{gen, prop_assert, prop_assert_eq, prop_tests};
use ema_nn::{Adam, GruCell, Linear, LstmCell, Optimizer, OptimizerConfig, ParamStore, Sgd};
use ema_tensor::{Rng64, Tensor};

prop_tests! {
    /// Adam drives a random convex quadratic `‖w − target‖²` to its
    /// minimum from any start.
    fn adam_minimises_random_quadratics(
        (target, seed) in |rng: &mut Rng64| {
            (gen::vec_f64(rng, -5.0, 5.0, 1, 6), gen::u64_below(500)(rng))
        },
    ) {
        let n = target.len();
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(seed);
        let w = store.register("w", Tensor::rand_normal(&[n], 0.0, 2.0, &mut rng));
        let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.1));
        for _ in 0..400 {
            let tape = Tape::new();
            let binding = store.bind(&tape);
            let t = tape.leaf(Tensor::from_vec1(target.clone()));
            let loss = tape.mse(binding.var(w), t);
            let grads = tape.backward(loss);
            adam.step(&mut store, &binding, &grads);
        }
        for (wi, ti) in store.value(w).data().iter().zip(target.iter()) {
            prop_assert!((wi - ti).abs() < 0.05, "w {wi} vs target {ti}");
        }
    }

    /// SGD update magnitude is bounded by lr · clip regardless of the
    /// gradient scale.
    fn sgd_clipping_bounds_updates(
        (scale, seed) in |rng: &mut Rng64| {
            (gen::f64_in(rng, 1.0, 1e6), gen::u64_below(100)(rng))
        },
    ) {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(seed);
        let w = store.register("w", Tensor::rand_normal(&[3], 0.0, 1.0, &mut rng));
        let before = store.value(w).clone();
        let mut cfg = OptimizerConfig::with_learning_rate(0.1);
        cfg.grad_clip = 1.0;
        let mut sgd = Sgd::new(cfg);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let huge = tape.scale(binding.var(w), scale);
        let sq = tape.square(huge);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        sgd.step(&mut store, &binding, &grads);
        let delta = store.value(w).sub(&before).norm();
        prop_assert!(delta <= 0.1 + 1e-9, "update norm {delta} exceeds lr·clip");
    }

    /// GRU and LSTM hidden states stay in [−1, 1] for any input and any
    /// number of steps when starting from zero state.
    fn recurrent_states_stay_bounded(
        (seed, steps, input_scale) in |rng: &mut Rng64| {
            (
                gen::u64_below(200)(rng),
                gen::usize_in(rng, 1, 12),
                gen::f64_in(rng, 0.1, 10.0),
            )
        },
    ) {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(seed);
        let gru = GruCell::new(&mut store, "g", 4, 6, &mut rng);
        let lstm = LstmCell::new(&mut store, "l", 4, 6, &mut rng);
        let tape = Tape::new();
        let binding = store.bind(&tape);
        let xs: Vec<_> = (0..steps)
            .map(|_| tape.leaf(Tensor::rand_normal(&[2, 4], 0.0, input_scale, &mut rng)))
            .collect();
        let h0 = tape.leaf(Tensor::zeros(&[2, 6]));
        let g_states = gru.run_sequence(&tape, &binding, &xs, h0);
        let s0 = lstm.zero_state(&tape, 2);
        let l_states = lstm.run_sequence(&tape, &binding, &xs, s0);
        for &s in g_states.iter().chain(l_states.iter()) {
            let v = tape.value(s);
            prop_assert!(v.all_finite());
            prop_assert!(v.data().iter().all(|&x| x.abs() <= 1.0 + 1e-9));
        }
    }

    /// A linear layer is, in fact, linear: f(αx + βy) = αf(x) + βf(y)
    /// once the bias is removed.
    fn linear_layer_is_linear(
        (seed, alpha, beta) in |rng: &mut Rng64| {
            (
                gen::u64_below(200)(rng),
                gen::f64_in(rng, -2.0, 2.0),
                gen::f64_in(rng, -2.0, 2.0),
            )
        },
    ) {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(seed);
        let layer = Linear::new(&mut store, "l", 3, 4, &mut rng);
        store.load(layer.b, Tensor::zeros(&[4]));
        let x = Tensor::rand_normal(&[2, 3], 0.0, 1.0, &mut rng);
        let y = Tensor::rand_normal(&[2, 3], 0.0, 1.0, &mut rng);

        let apply = |input: &Tensor| {
            let tape = Tape::new();
            let binding = store.bind(&tape);
            let v = tape.leaf(input.clone());
            let out = layer.forward(&tape, &binding, v);
            tape.value(out)
        };
        let combined = apply(&x.scale(alpha).add(&y.scale(beta)));
        let separate = apply(&x).scale(alpha).add(&apply(&y).scale(beta));
        for (a, b) in combined.data().iter().zip(separate.data().iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Optimizer steps are deterministic: two identical runs stay
    /// bit-identical.
    fn optimisation_is_deterministic(seed in gen::u64_below(100)) {
        let run = || {
            let mut store = ParamStore::new();
            let mut rng = Rng64::seed_from(seed);
            let w = store.register("w", Tensor::rand_normal(&[4], 0.0, 1.0, &mut rng));
            let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.05));
            for _ in 0..20 {
                let tape = Tape::new();
                let binding = store.bind(&tape);
                let sq = tape.square(binding.var(w));
                let loss = tape.sum_all(sq);
                let grads = tape.backward(loss);
                adam.step(&mut store, &binding, &grads);
            }
            store.value(w).data().to_vec()
        };
        prop_assert_eq!(run(), run());
    }
}
