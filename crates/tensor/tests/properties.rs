//! Property-based tests for tensor algebra laws.

use ema_tensor::{assert_tensors_close, Rng64, Tensor};
use proptest::prelude::*;

/// Strategy: a rank-1 tensor with 1..=32 finite elements.
fn vec_tensor() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-1e3f64..1e3, 1..32).prop_map(Tensor::from_vec1)
}

/// Strategy: two same-length rank-1 tensors.
fn vec_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..32).prop_flat_map(|n| {
        (
            prop::collection::vec(-1e3f64..1e3, n).prop_map(Tensor::from_vec1),
            prop::collection::vec(-1e3f64..1e3, n).prop_map(Tensor::from_vec1),
        )
    })
}

/// Strategy: matrix dims plus flat data.
fn matrix(max: usize) -> impl Strategy<Value = Tensor> {
    (1usize..max, 1usize..max).prop_flat_map(|(m, n)| {
        prop::collection::vec(-1e2f64..1e2, m * n)
            .prop_map(move |d| Tensor::from_vec(&[m, n], d).unwrap())
    })
}

proptest! {
    #[test]
    fn add_commutes((a, b) in vec_pair()) {
        assert_tensors_close(&a.add(&b), &b.add(&a), 1e-9);
    }

    #[test]
    fn mul_commutes((a, b) in vec_pair()) {
        assert_tensors_close(&a.mul(&b), &b.mul(&a), 1e-9);
    }

    #[test]
    fn add_identity(a in vec_tensor()) {
        let z = Tensor::zeros(a.dims());
        assert_tensors_close(&a.add(&z), &a, 0.0);
    }

    #[test]
    fn sub_self_is_zero(a in vec_tensor()) {
        let z = Tensor::zeros(a.dims());
        assert_tensors_close(&a.sub(&a), &z, 0.0);
    }

    #[test]
    fn scale_distributes((a, b) in vec_pair()) {
        let s = 3.5;
        assert_tensors_close(&a.add(&b).scale(s), &a.scale(s).add(&b.scale(s)), 1e-6);
    }

    #[test]
    fn double_negation(a in vec_tensor()) {
        assert_tensors_close(&a.neg().neg(), &a, 0.0);
    }

    #[test]
    fn transpose_involution(m in matrix(12)) {
        assert_tensors_close(&m.transpose().transpose(), &m, 0.0);
    }

    #[test]
    fn matmul_identity(m in matrix(12)) {
        let n = m.dims()[1];
        assert_tensors_close(&m.matmul(&Tensor::eye(n)), &m, 1e-9);
    }

    #[test]
    fn matmul_transpose_rule(m in matrix(8)) {
        // (A Aᵀ)ᵀ == A Aᵀ  (product with own transpose is symmetric)
        let p = m.matmul(&m.transpose());
        assert_tensors_close(&p.transpose(), &p, 1e-6);
    }

    #[test]
    fn dot_cauchy_schwarz((a, b) in vec_pair()) {
        let lhs = a.dot(&b).abs();
        let rhs = a.norm() * b.norm();
        prop_assert!(lhs <= rhs + 1e-6 * rhs.max(1.0));
    }

    #[test]
    fn sum_axis_total_matches(m in matrix(10)) {
        let total = m.sum();
        prop_assert!((m.sum_axis(0).sum() - total).abs() < 1e-6);
        prop_assert!((m.sum_axis(1).sum() - total).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_normalised(m in matrix(10)) {
        let s = m.softmax_last();
        for r in 0..s.dims()[0] {
            let row_sum: f64 = s.row(r).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-9);
        }
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn mse_nonnegative_and_symmetric((a, b) in vec_pair()) {
        let ab = a.mse(&b);
        let ba = b.mse(&a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9 * ab.max(1.0));
    }

    #[test]
    fn reshape_preserves_sum(m in matrix(10)) {
        let flat = m.flatten();
        prop_assert!((flat.sum() - m.sum()).abs() < 1e-9);
    }

    #[test]
    fn hcat_slice_round_trip(m in matrix(8)) {
        let n = m.dims()[1];
        if n >= 2 {
            let split = n / 2; // 1 <= split < n
            let left = m.slice_cols(0, split.max(1));
            let right = m.slice_cols(split.max(1), n);
            assert_tensors_close(&left.hcat(&right), &m, 0.0);
        }
    }

    #[test]
    fn clamp_is_bounded(a in vec_tensor()) {
        let c = a.clamp(-1.0, 1.0);
        prop_assert!(c.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn rand_uniform_within_bounds(seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let t = Tensor::rand_uniform(&[4, 4], -2.0, 3.0, &mut rng);
        prop_assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }
}
