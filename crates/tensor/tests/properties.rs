//! Property-based tests for tensor algebra laws, on the in-house
//! `ema-check` harness (seeded, deterministic, 256 cases per property).

use ema_check::{gen, prop_assert, prop_tests};
use ema_tensor::{assert_tensors_close, Rng64, Tensor};

/// Generator: a rank-1 tensor with 1..=31 finite elements.
fn vec_tensor(rng: &mut Rng64) -> Tensor {
    Tensor::from_vec1(gen::vec_f64(rng, -1e3, 1e3, 1, 32))
}

/// Generator: two same-length rank-1 tensors.
fn vec_pair(rng: &mut Rng64) -> (Tensor, Tensor) {
    let n = gen::usize_in(rng, 1, 32);
    (
        Tensor::from_vec1(gen::vec_f64_len(rng, -1e3, 1e3, n)),
        Tensor::from_vec1(gen::vec_f64_len(rng, -1e3, 1e3, n)),
    )
}

/// Generator: a matrix with dims in `[1, max)`.
fn matrix(max: usize) -> impl Fn(&mut Rng64) -> Tensor {
    move |rng| {
        let m = gen::usize_in(rng, 1, max);
        let n = gen::usize_in(rng, 1, max);
        Tensor::from_vec(&[m, n], gen::vec_f64_len(rng, -1e2, 1e2, m * n)).unwrap()
    }
}

prop_tests! {
    fn add_commutes((a, b) in vec_pair) {
        assert_tensors_close(&a.add(&b), &b.add(&a), 1e-9);
    }

    fn mul_commutes((a, b) in vec_pair) {
        assert_tensors_close(&a.mul(&b), &b.mul(&a), 1e-9);
    }

    fn add_identity(a in vec_tensor) {
        let z = Tensor::zeros(a.dims());
        assert_tensors_close(&a.add(&z), &a, 0.0);
    }

    fn sub_self_is_zero(a in vec_tensor) {
        let z = Tensor::zeros(a.dims());
        assert_tensors_close(&a.sub(&a), &z, 0.0);
    }

    fn scale_distributes((a, b) in vec_pair) {
        let s = 3.5;
        assert_tensors_close(&a.add(&b).scale(s), &a.scale(s).add(&b.scale(s)), 1e-6);
    }

    fn double_negation(a in vec_tensor) {
        assert_tensors_close(&a.neg().neg(), &a, 0.0);
    }

    fn transpose_involution(m in matrix(12)) {
        assert_tensors_close(&m.transpose().transpose(), &m, 0.0);
    }

    fn matmul_identity(m in matrix(12)) {
        let n = m.dims()[1];
        assert_tensors_close(&m.matmul(&Tensor::eye(n)), &m, 1e-9);
    }

    fn matmul_transpose_rule(m in matrix(8)) {
        // (A Aᵀ)ᵀ == A Aᵀ  (product with own transpose is symmetric)
        let p = m.matmul(&m.transpose());
        assert_tensors_close(&p.transpose(), &p, 1e-6);
    }

    fn dot_cauchy_schwarz((a, b) in vec_pair) {
        let lhs = a.dot(&b).abs();
        let rhs = a.norm() * b.norm();
        prop_assert!(lhs <= rhs + 1e-6 * rhs.max(1.0));
    }

    fn sum_axis_total_matches(m in matrix(10)) {
        let total = m.sum();
        prop_assert!((m.sum_axis(0).sum() - total).abs() < 1e-6);
        prop_assert!((m.sum_axis(1).sum() - total).abs() < 1e-6);
    }

    fn softmax_rows_normalised(m in matrix(10)) {
        let s = m.softmax_last();
        for r in 0..s.dims()[0] {
            let row_sum: f64 = s.row(r).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-9);
        }
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    fn mse_nonnegative_and_symmetric((a, b) in vec_pair) {
        let ab = a.mse(&b);
        let ba = b.mse(&a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9 * ab.max(1.0));
    }

    fn reshape_preserves_sum(m in matrix(10)) {
        let flat = m.flatten();
        prop_assert!((flat.sum() - m.sum()).abs() < 1e-9);
    }

    fn hcat_slice_round_trip(m in matrix(8)) {
        let n = m.dims()[1];
        if n >= 2 {
            let split = n / 2; // 1 <= split < n
            let left = m.slice_cols(0, split.max(1));
            let right = m.slice_cols(split.max(1), n);
            assert_tensors_close(&left.hcat(&right), &m, 0.0);
        }
    }

    fn clamp_is_bounded(a in vec_tensor) {
        let c = a.clamp(-1.0, 1.0);
        prop_assert!(c.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    fn rand_uniform_within_bounds(seed in gen::u64_below(1000)) {
        let mut rng = Rng64::seed_from(seed);
        let t = Tensor::rand_uniform(&[4, 4], -2.0, 3.0, &mut rng);
        prop_assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    fn add_assign_matches_add((a, b) in vec_pair) {
        let functional = a.add(&b);
        let mut in_place = a.clone();
        in_place.add_assign(&b);
        assert_tensors_close(&in_place, &functional, 0.0);
    }

    // Parallel-cohort seeding contract: sibling streams must never
    // share output prefixes. 10^4 draws per stream keeps the whole
    // 256-case suite fast while making any overlap overwhelmingly
    // visible (xoshiro256++ streams that touch stay in lockstep).
    @cases(8)
    fn split_streams_pairwise_non_overlapping(seed in gen::u64_below(1_000_000)) {
        const DRAWS: usize = 10_000;
        let parent = Rng64::seed_from(seed);
        let streams: Vec<Vec<u64>> = (0..4)
            .map(|id| {
                let mut child = parent.split(id);
                (0..DRAWS).map(|_| child.next_u64()).collect()
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        for (id, draws) in streams.iter().enumerate() {
            for &v in draws {
                prop_assert!(seen.insert(v), "stream {id} overlaps a sibling on {v:#x}");
            }
        }
    }

    @cases(32)
    fn split_is_independent_of_split_order(seed in gen::u64_below(1_000_000)) {
        let mut noisy = Rng64::seed_from(seed);
        let clean = Rng64::seed_from(seed);
        // Interleave draws and splits in one order...
        let _ = noisy.next_u64();
        let _ = noisy.split(9);
        let mut a = noisy.split(2);
        // ...and take the same stream id fresh in another.
        let mut b = clean.split(2);
        for _ in 0..64 {
            prop_assert!(a.next_u64() == b.next_u64());
        }
    }
}
