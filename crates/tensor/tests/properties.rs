//! Property-based tests for tensor algebra laws, on the in-house
//! `ema-check` harness (seeded, deterministic, 256 cases per property).

use ema_check::{gen, prop_assert, prop_tests};
use ema_tensor::{assert_tensors_close, KernelBackend, Rng64, Tensor};

/// Both kernel backends. `Simd` silently runs the scalar kernel on
/// machines without AVX2+FMA (`KernelBackend::active` normalizes), so
/// iterating this list is portable.
const BACKENDS: [KernelBackend; 2] = [KernelBackend::Scalar, KernelBackend::Simd];

/// Generator: a rank-1 tensor with 1..=31 finite elements.
fn vec_tensor(rng: &mut Rng64) -> Tensor {
    Tensor::from_vec1(gen::vec_f64(rng, -1e3, 1e3, 1, 32))
}

/// Generator: two same-length rank-1 tensors.
fn vec_pair(rng: &mut Rng64) -> (Tensor, Tensor) {
    let n = gen::usize_in(rng, 1, 32);
    (
        Tensor::from_vec1(gen::vec_f64_len(rng, -1e3, 1e3, n)),
        Tensor::from_vec1(gen::vec_f64_len(rng, -1e3, 1e3, n)),
    )
}

/// Generator: a matrix with dims in `[1, max)`.
fn matrix(max: usize) -> impl Fn(&mut Rng64) -> Tensor {
    move |rng| {
        let m = gen::usize_in(rng, 1, max);
        let n = gen::usize_in(rng, 1, max);
        Tensor::from_vec(&[m, n], gen::vec_f64_len(rng, -1e2, 1e2, m * n)).unwrap()
    }
}

/// An `[r, c]` matrix with roughly a quarter of its entries exactly
/// `0.0`, so matmul's zero-skip branch is exercised on both sides.
fn sparse_matrix(rng: &mut Rng64, r: usize, c: usize) -> Tensor {
    let mut v = gen::vec_f64_len(rng, -1e2, 1e2, r * c);
    for x in &mut v {
        if gen::usize_in(rng, 0, 4) == 0 {
            *x = 0.0;
        }
    }
    Tensor::from_vec(&[r, c], v).unwrap()
}

/// Generator: a matmul-compatible sparse pair `a [m, k]`, `b [k, n]`.
fn matmul_pair(rng: &mut Rng64) -> (Tensor, Tensor) {
    let m = gen::usize_in(rng, 1, 10);
    let k = gen::usize_in(rng, 1, 10);
    let n = gen::usize_in(rng, 1, 10);
    (sparse_matrix(rng, m, k), sparse_matrix(rng, k, n))
}

/// Generator: a `matmul_tn`-compatible pair `a [k, m]`, `b [k, n]`.
fn tn_pair(rng: &mut Rng64) -> (Tensor, Tensor) {
    let k = gen::usize_in(rng, 1, 10);
    let m = gen::usize_in(rng, 1, 10);
    let n = gen::usize_in(rng, 1, 10);
    (sparse_matrix(rng, k, m), sparse_matrix(rng, k, n))
}

/// Generator: a `matmul_nt`-compatible pair `a [m, k]`, `b [n, k]`.
fn nt_pair(rng: &mut Rng64) -> (Tensor, Tensor) {
    let m = gen::usize_in(rng, 1, 10);
    let k = gen::usize_in(rng, 1, 10);
    let n = gen::usize_in(rng, 1, 10);
    (sparse_matrix(rng, m, k), sparse_matrix(rng, n, k))
}

/// Generator: an addmm triple `x [m, k]`, `w [n, k]`, `bias [n]`.
fn addmm_triple(rng: &mut Rng64) -> (Tensor, Tensor, Tensor) {
    let m = gen::usize_in(rng, 1, 10);
    let k = gen::usize_in(rng, 1, 10);
    let n = gen::usize_in(rng, 1, 10);
    (
        sparse_matrix(rng, m, k),
        sparse_matrix(rng, n, k),
        Tensor::from_vec1(gen::vec_f64_len(rng, -1e2, 1e2, n)),
    )
}

/// Reference matmul: the naive i-j-p triple loop implementing the
/// kernel contract from `linalg.rs` verbatim — each output accumulates
/// its k products in ascending-p order from `0.0`, skipping
/// `lhs[i, p] == 0.0` — so every optimized kernel (plain ikj, tiled,
/// `matmul_tn`, `matmul_nt`, `addmm`) must match it *bit for bit*.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    assert_eq!(k, b.dims()[0]);
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                let aip = a.data()[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                acc += aip * b.data()[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(&[m, n], out).unwrap()
}

/// Exact equality: same dims, same f64 bit patterns (data is finite, so
/// `==` on the slices is the bit comparison we want).
fn assert_bit_identical(x: &Tensor, y: &Tensor) {
    assert_eq!(x.dims(), y.dims(), "shape mismatch");
    assert!(
        x.data() == y.data(),
        "kernel results differ bit-wise:\n  lhs: {:?}\n  rhs: {:?}",
        x.data(),
        y.data()
    );
}

prop_tests! {
    fn add_commutes((a, b) in vec_pair) {
        assert_tensors_close(&a.add(&b), &b.add(&a), 1e-9);
    }

    fn mul_commutes((a, b) in vec_pair) {
        assert_tensors_close(&a.mul(&b), &b.mul(&a), 1e-9);
    }

    fn add_identity(a in vec_tensor) {
        let z = Tensor::zeros(a.dims());
        assert_tensors_close(&a.add(&z), &a, 0.0);
    }

    fn sub_self_is_zero(a in vec_tensor) {
        let z = Tensor::zeros(a.dims());
        assert_tensors_close(&a.sub(&a), &z, 0.0);
    }

    fn scale_distributes((a, b) in vec_pair) {
        let s = 3.5;
        assert_tensors_close(&a.add(&b).scale(s), &a.scale(s).add(&b.scale(s)), 1e-6);
    }

    fn double_negation(a in vec_tensor) {
        assert_tensors_close(&a.neg().neg(), &a, 0.0);
    }

    fn transpose_involution(m in matrix(12)) {
        assert_tensors_close(&m.transpose().transpose(), &m, 0.0);
    }

    fn matmul_identity(m in matrix(12)) {
        let n = m.dims()[1];
        assert_tensors_close(&m.matmul(&Tensor::eye(n)), &m, 1e-9);
    }

    fn matmul_transpose_rule(m in matrix(8)) {
        // (A Aᵀ)ᵀ == A Aᵀ  (product with own transpose is symmetric)
        let p = m.matmul(&m.transpose());
        assert_tensors_close(&p.transpose(), &p, 1e-6);
    }

    fn dot_cauchy_schwarz((a, b) in vec_pair) {
        let lhs = a.dot(&b).abs();
        let rhs = a.norm() * b.norm();
        prop_assert!(lhs <= rhs + 1e-6 * rhs.max(1.0));
    }

    fn sum_axis_total_matches(m in matrix(10)) {
        let total = m.sum();
        prop_assert!((m.sum_axis(0).sum() - total).abs() < 1e-6);
        prop_assert!((m.sum_axis(1).sum() - total).abs() < 1e-6);
    }

    fn softmax_rows_normalised(m in matrix(10)) {
        let s = m.softmax_last();
        for r in 0..s.dims()[0] {
            let row_sum: f64 = s.row(r).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-9);
        }
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    fn mse_nonnegative_and_symmetric((a, b) in vec_pair) {
        let ab = a.mse(&b);
        let ba = b.mse(&a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9 * ab.max(1.0));
    }

    fn reshape_preserves_sum(m in matrix(10)) {
        let flat = m.flatten();
        prop_assert!((flat.sum() - m.sum()).abs() < 1e-9);
    }

    fn hcat_slice_round_trip(m in matrix(8)) {
        let n = m.dims()[1];
        if n >= 2 {
            let split = n / 2; // 1 <= split < n
            let left = m.slice_cols(0, split.max(1));
            let right = m.slice_cols(split.max(1), n);
            assert_tensors_close(&left.hcat(&right), &m, 0.0);
        }
    }

    fn clamp_is_bounded(a in vec_tensor) {
        let c = a.clamp(-1.0, 1.0);
        prop_assert!(c.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    fn rand_uniform_within_bounds(seed in gen::u64_below(1000)) {
        let mut rng = Rng64::seed_from(seed);
        let t = Tensor::rand_uniform(&[4, 4], -2.0, 3.0, &mut rng);
        prop_assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    fn add_assign_matches_add((a, b) in vec_pair) {
        let functional = a.add(&b);
        let mut in_place = a.clone();
        in_place.add_assign(&b);
        assert_tensors_close(&in_place, &functional, 0.0);
    }

    // Parallel-cohort seeding contract: sibling streams must never
    // share output prefixes. 10^4 draws per stream keeps the whole
    // 256-case suite fast while making any overlap overwhelmingly
    // visible (xoshiro256++ streams that touch stay in lockstep).
    @cases(8)
    fn split_streams_pairwise_non_overlapping(seed in gen::u64_below(1_000_000)) {
        const DRAWS: usize = 10_000;
        let parent = Rng64::seed_from(seed);
        let streams: Vec<Vec<u64>> = (0..4)
            .map(|id| {
                let mut child = parent.split(id);
                (0..DRAWS).map(|_| child.next_u64()).collect()
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        for (id, draws) in streams.iter().enumerate() {
            for &v in draws {
                prop_assert!(seen.insert(v), "stream {id} overlaps a sibling on {v:#x}");
            }
        }
    }

    @cases(32)
    fn split_is_independent_of_split_order(seed in gen::u64_below(1_000_000)) {
        let mut noisy = Rng64::seed_from(seed);
        let clean = Rng64::seed_from(seed);
        // Interleave draws and splits in one order...
        let _ = noisy.next_u64();
        let _ = noisy.split(9);
        let mut a = noisy.split(2);
        // ...and take the same stream id fresh in another.
        let mut b = clean.split(2);
        for _ in 0..64 {
            prop_assert!(a.next_u64() == b.next_u64());
        }
    }

    // ---- kernel bit-identity contract (see linalg.rs header) -------
    // The transpose-aware and fused kernels exist so the autodiff
    // backward pass stops materializing transposes; determinism
    // requires they produce *bit-identical* results to the composed
    // forms they replace, across random shapes and sparsity. The naive
    // reference implements the *scalar* oracle's rounding, so these
    // properties pin `KernelBackend::Scalar` — they are what keeps the
    // oracle unchanged while the SIMD backend evolves (cross-backend
    // agreement lives in `backend_equivalence.rs`).

    fn matmul_matches_naive_reference((a, b) in matmul_pair) {
        let _scalar = KernelBackend::Scalar.scoped();
        assert_bit_identical(&a.matmul(&b), &naive_matmul(&a, &b));
    }

    fn matmul_tn_matches_transpose_then_matmul((a, b) in tn_pair) {
        // The fused-equals-composed half of the contract holds within
        // *either* backend (the repack preserves each element's
        // accumulation sequence); the naive half is scalar-only.
        for backend in BACKENDS {
            let _scope = backend.scoped();
            assert_bit_identical(&a.matmul_tn(&b), &a.transpose().matmul(&b));
        }
        let _scalar = KernelBackend::Scalar.scoped();
        assert_bit_identical(&a.matmul_tn(&b), &naive_matmul(&a.transpose(), &b));
    }

    fn matmul_nt_matches_matmul_of_transpose((a, b) in nt_pair) {
        for backend in BACKENDS {
            let _scope = backend.scoped();
            assert_bit_identical(&a.matmul_nt(&b), &a.matmul(&b.transpose()));
        }
        let _scalar = KernelBackend::Scalar.scoped();
        assert_bit_identical(&a.matmul_nt(&b), &naive_matmul(&a, &b.transpose()));
    }

    fn addmm_matches_composed_pipeline((x, w, bias) in addmm_triple) {
        for backend in BACKENDS {
            let _scope = backend.scoped();
            let fused = x.addmm(&w, &bias);
            let composed = x.matmul(&w.transpose()).add_row_broadcast(&bias);
            assert_bit_identical(&fused, &composed);
        }
        let _scalar = KernelBackend::Scalar.scoped();
        assert_bit_identical(
            &x.addmm(&w, &bias),
            &naive_matmul(&x, &w.transpose()).add_row_broadcast(&bias),
        );
    }

    // 64·65·64 multiply-adds with n = 65 > 64 forces the cache-blocked
    // tile path; tiling i/j only must leave every accumulation order
    // untouched. Few cases — each one is a quarter-million flops.
    @cases(4)
    fn blocked_matmul_matches_naive_reference(seed in gen::u64_below(1_000_000)) {
        let _scalar = KernelBackend::Scalar.scoped();
        let mut rng = Rng64::seed_from(seed);
        let a = sparse_matrix(&mut rng, 64, 64);
        let b = sparse_matrix(&mut rng, 64, 65);
        assert_bit_identical(&a.matmul(&b), &naive_matmul(&a, &b));
    }

    // Widths that decompose into every register-tile size of the inner
    // kernel (32/16/8/4 + scalar tail); the random-dims generators top
    // out at 10 columns and would never reach the wide tiles.
    @cases(8)
    fn wide_matmul_matches_naive_reference(seed in gen::u64_below(1_000_000)) {
        let _scalar = KernelBackend::Scalar.scoped();
        let mut rng = Rng64::seed_from(seed);
        for n in [13usize, 28, 52] {
            let a = sparse_matrix(&mut rng, 5, 9);
            let b = sparse_matrix(&mut rng, 9, n);
            assert_bit_identical(&a.matmul(&b), &naive_matmul(&a, &b));
        }
    }

    // ---- pooled `_into` twins match their allocating forms ---------
    // Run under BOTH backends: the `_into` contract ("bit-identical to
    // the allocating twin, whatever the stale pooled contents") must
    // hold per backend, not just for the oracle.

    fn matmul_into_matches_allocating((a, b) in matmul_pair) {
        for backend in BACKENDS {
            let _scope = backend.scoped();
            let expected = a.matmul(&b);
            // Start from garbage so a stale buffer can't fake a pass.
            let mut out = Tensor::from_vec(
                expected.dims(),
                vec![f64::NAN; expected.len()],
            ).unwrap();
            a.matmul_into(&b, &mut out);
            assert_bit_identical(&out, &expected);
        }
    }

    // Slice-level pooled twins (`ema_tensor::kernels`) under both
    // backends: the batched autodiff backward pass replays gradient
    // pieces through these, so their twin-equality is what lets the
    // SIMD backend reach the whole batched path unchanged.
    fn kernel_slice_twins_match_tensor_ops((a, b) in tn_pair) {
        let (k, m) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        for backend in BACKENDS {
            let _scope = backend.scoped();
            let mut out = vec![f64::NAN; m * n];
            ema_tensor::kernels::matmul_tn_into(a.data(), b.data(), &mut out, k, m, n);
            prop_assert!(
                out == a.matmul_tn(&b).data(),
                "matmul_tn_into diverged from Tensor twin on {:?}",
                backend
            );
            let at = a.transpose();
            let mut out2 = vec![f64::NAN; m * n];
            ema_tensor::kernels::matmul_into(at.data(), b.data(), &mut out2, m, k, n);
            prop_assert!(
                out2 == at.matmul(&b).data(),
                "matmul_into diverged from Tensor twin on {:?}",
                backend
            );
            let bt = b.transpose();
            let mut out3 = vec![f64::NAN; m * n];
            ema_tensor::kernels::matmul_nt_into(at.data(), bt.data(), &mut out3, m, k, n);
            prop_assert!(
                out3 == at.matmul_nt(&bt).data(),
                "matmul_nt_into diverged from Tensor twin on {:?}",
                backend
            );
        }
    }

    // Forced-blocked-path `_into` twin under both backends, on pooled
    // stale buffers: 64·65·64 crosses MM_BLOCK_THRESHOLD with n > 64.
    @cases(4)
    fn blocked_matmul_into_matches_allocating_on_both_backends(seed in gen::u64_below(1_000_000)) {
        let mut rng = Rng64::seed_from(seed);
        let a = sparse_matrix(&mut rng, 64, 64);
        let b = sparse_matrix(&mut rng, 64, 65);
        for backend in BACKENDS {
            let _scope = backend.scoped();
            let expected = a.matmul(&b);
            let mut out = Tensor::filled(&[64, 65], f64::NAN);
            a.matmul_into(&b, &mut out);
            assert_bit_identical(&out, &expected);
        }
    }

    fn add_into_matches_allocating((a, b) in vec_pair) {
        let mut out = Tensor::from_vec1(vec![f64::NAN; a.len()]);
        a.add_into(&b, &mut out);
        assert_bit_identical(&out, &a.add(&b));
    }

    fn map_into_matches_allocating(a in vec_tensor) {
        let mut out = Tensor::from_vec1(vec![f64::NAN; a.len()]);
        a.map_into(f64::tanh, &mut out);
        assert_bit_identical(&out, &a.map(f64::tanh));
    }
}
