//! Kernel-backend equivalence suite: the SIMD (AVX2+FMA) kernel vs the
//! scalar bit-identity oracle.
//!
//! Three layers of guarantee, matching the two-contract story in the
//! `linalg.rs` header:
//!
//! 1. **SIMD is bit-exactly the lane-ordered FMA recurrence** — every
//!    element is `acc = fma(a[i,p], b[p,j], acc)` ascending in `p`,
//!    skipping `a[i,p] == 0.0` — across every register-tile width
//!    (32/16/8/4 + scalar tail) and the cache-blocked i/j path.
//! 2. **SIMD agrees with the scalar oracle to strict tolerance**: each
//!    FMA replaces a separately rounded multiply+add, so element-wise
//!    `|simd − scalar| ≤ (k + 1)·ε·Σₚ|a[i,p]·b[p,j]|`.
//! 3. **SIMD is self-deterministic**: byte-identical across repeated
//!    runs and across threads.
//!
//! Every property degrades to a scalar-vs-scalar tautology on machines
//! without AVX2+FMA (`active()` normalizes `Simd` → `Scalar`), so the
//! suite is portable; the interesting assertions fire wherever the
//! SIMD kernel can actually run.

use ema_check::{gen, prop_assert, prop_tests};
use ema_tensor::{with_kernel_backend, KernelBackend, Rng64, Tensor};

/// Column counts that force every span decomposition of the vector
/// kernel: 32-tiles, 16, 8, 4, scalar tails, and mixes thereof.
const FORCED_WIDTHS: [usize; 13] = [1, 3, 4, 5, 8, 12, 16, 20, 32, 36, 52, 61, 69];

/// Random matrix with ~25% exact zeros so the `lhs == 0.0` skip is
/// exercised on both backends.
fn sparse(rng: &mut Rng64, rows: usize, cols: usize) -> Tensor {
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            if rng.uniform() < 0.25 {
                0.0
            } else {
                gen::f64_in(rng, -3.0, 3.0)
            }
        })
        .collect();
    Tensor::from_vec(&[rows, cols], data).unwrap()
}

/// The SIMD contract's reference recurrence, verbatim: ascending-`p`
/// fused multiply-add from `0.0`, skipping `lhs == 0.0`. Scalar code —
/// shares nothing with the vector kernel but the specification.
fn naive_fma_matmul(a: &Tensor, b: &Tensor) -> Vec<f64> {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                let aip = a.data()[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                acc = aip.mul_add(b.data()[p * n + j], acc);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Element-wise bound on |simd − scalar|: `(k + 1)·ε·Σₚ|a[i,p]·b[p,j]|`
/// (k roundings on each side plus one for the final difference).
fn agreement_bound(a: &Tensor, b: &Tensor) -> Vec<f64> {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let scale = (k as f64 + 1.0) * f64::EPSILON;
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut mag = 0.0f64;
            for p in 0..k {
                mag += (a.data()[i * k + p] * b.data()[p * n + j]).abs();
            }
            out[i * n + j] = scale * mag;
        }
    }
    out
}

fn assert_backends_agree(a: &Tensor, b: &Tensor, context: &str) {
    let scalar = with_kernel_backend(KernelBackend::Scalar, || a.matmul(b));
    let simd = with_kernel_backend(KernelBackend::Simd, || a.matmul(b));
    let bound = agreement_bound(a, b);
    for (i, ((&s, &v), &tol)) in scalar
        .data()
        .iter()
        .zip(simd.data().iter())
        .zip(bound.iter())
        .enumerate()
    {
        assert!(
            (s - v).abs() <= tol,
            "{context}: backends disagree at flat index {i}: scalar {s} vs simd {v} \
             (bound {tol}, diff {})",
            (s - v).abs()
        );
    }
}

fn assert_simd_matches_fma_reference(a: &Tensor, b: &Tensor, context: &str) {
    let simd = with_kernel_backend(KernelBackend::Simd, || a.matmul(b));
    let reference = naive_fma_matmul(a, b);
    if KernelBackend::simd_available() {
        assert!(
            simd.data() == reference.as_slice(),
            "{context}: SIMD kernel diverged bitwise from the lane-ordered FMA reference"
        );
    }
}

/// Generator: shapes that sweep every register-tile width, with enough
/// `k` to accumulate rounding differences worth bounding.
fn tile_sweep_pair(rng: &mut Rng64) -> (Tensor, Tensor) {
    let m = gen::usize_in(rng, 1, 9);
    let k = gen::usize_in(rng, 1, 24);
    let n = FORCED_WIDTHS[gen::usize_in(rng, 0, FORCED_WIDTHS.len() - 1)];
    let a = sparse(rng, m, k);
    let b = sparse(rng, k, n);
    (a, b)
}

prop_tests! {
    // ---- contract layer 1: SIMD == lane-ordered FMA recurrence -----

    fn simd_matches_fma_reference_across_tile_widths((a, b) in tile_sweep_pair) {
        assert_simd_matches_fma_reference(&a, &b, "tile sweep");
    }

    // Blocked path: volume ≥ MM_BLOCK_THRESHOLD with n > MM_BLOCK.
    // Heavy — a few cases cover both block-boundary layouts.
    @cases(4)
    fn simd_matches_fma_reference_on_blocked_path(seed in gen::u64_below(1_000_000)) {
        let mut rng = Rng64::seed_from(seed);
        for (m, k, n) in [(64usize, 64usize, 65usize), (40, 80, 100)] {
            let a = sparse(&mut rng, m, k);
            let b = sparse(&mut rng, k, n);
            assert_simd_matches_fma_reference(&a, &b, "blocked path");
        }
    }

    // ---- contract layer 2: cross-backend agreement bound -----------

    fn simd_within_bound_of_scalar_across_tile_widths((a, b) in tile_sweep_pair) {
        assert_backends_agree(&a, &b, "tile sweep");
    }

    @cases(4)
    fn simd_within_bound_of_scalar_on_blocked_path(seed in gen::u64_below(1_000_000)) {
        let mut rng = Rng64::seed_from(seed);
        for (m, k, n) in [(64usize, 64usize, 65usize), (40, 80, 100)] {
            let a = sparse(&mut rng, m, k);
            let b = sparse(&mut rng, k, n);
            assert_backends_agree(&a, &b, "blocked path");
        }
    }

    // Fused kernels repack operands but keep per-element accumulation
    // sequences, so fused == composed holds *bitwise within* the SIMD
    // backend too (the cross-backend diff is the only tolerance seam).
    fn simd_fused_kernels_match_composed_bitwise((a, b) in tile_sweep_pair) {
        let _simd = KernelBackend::Simd.scoped();
        let tn = a.transpose();
        prop_assert!(
            tn.matmul_tn(&b).data() == tn.transpose().matmul(&b).data(),
            "matmul_tn diverged from composed form under SIMD"
        );
        let bt = b.transpose();
        prop_assert!(
            a.matmul_nt(&bt).data() == a.matmul(&bt.transpose()).data(),
            "matmul_nt diverged from composed form under SIMD"
        );
    }

    // ---- contract layer 3: SIMD self-determinism -------------------

    fn simd_is_deterministic_across_runs((a, b) in tile_sweep_pair) {
        let _simd = KernelBackend::Simd.scoped();
        let first = a.matmul(&b);
        for _ in 0..3 {
            let again = a.matmul(&b);
            prop_assert!(
                bits(first.data()) == bits(again.data()),
                "SIMD matmul not byte-identical across repeated runs"
            );
        }
    }

    @cases(16)
    fn simd_is_deterministic_across_threads(seed in gen::u64_below(1_000_000)) {
        let mut rng = Rng64::seed_from(seed);
        let (a, b) = tile_sweep_pair(&mut rng);
        let main_thread = with_kernel_backend(KernelBackend::Simd, || a.matmul(&b));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (a, b) = (a.clone(), b.clone());
                std::thread::spawn(move || {
                    with_kernel_backend(KernelBackend::Simd, || a.matmul(&b))
                })
            })
            .collect();
        for worker in workers {
            let got = worker.join().expect("worker thread panicked");
            prop_assert!(
                bits(main_thread.data()) == bits(got.data()),
                "SIMD matmul not byte-identical across threads"
            );
        }
    }
}

fn bits(data: &[f64]) -> Vec<u64> {
    data.iter().map(|v| v.to_bits()).collect()
}
