//! Error types for fallible tensor construction and conversion.

use std::fmt;

/// Errors produced by fallible `ema-tensor` operations.
///
/// Only operations that consume *external* data (e.g. building a tensor
/// from user-provided vectors, or reshaping to a runtime-computed shape)
/// return this error; internal shape violations panic instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the product of the
    /// requested dimensions.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A nested vector (rows of a matrix) had inconsistent lengths.
    RaggedRows {
        /// Length of the first row.
        first: usize,
        /// Index of the first offending row.
        row: usize,
        /// Length of the offending row.
        len: usize,
    },
    /// A reshape was requested whose element count differs from the
    /// tensor's element count.
    IncompatibleReshape {
        /// Source shape.
        from: Vec<usize>,
        /// Requested target shape.
        to: Vec<usize>,
    },
    /// An empty shape or a zero-sized dimension was supplied where a
    /// non-empty tensor is required.
    EmptyShape,
    /// An axis index was out of bounds for the tensor's rank.
    AxisOutOfBounds {
        /// Offending axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            Self::RaggedRows { first, row, len } => write!(
                f,
                "row {row} has length {len} but the first row has length {first}"
            ),
            Self::IncompatibleReshape { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}")
            }
            Self::EmptyShape => write!(f, "empty shapes are not supported"),
            Self::AxisOutOfBounds { axis, rank } => {
                write!(f, "axis {axis} out of bounds for rank {rank}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains("5"));
        assert!(e.to_string().contains("6"));

        let e = TensorError::IncompatibleReshape {
            from: vec![2, 3],
            to: vec![4, 2],
        };
        assert!(e.to_string().contains("[2, 3]"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TensorError::EmptyShape, TensorError::EmptyShape);
        assert_ne!(
            TensorError::EmptyShape,
            TensorError::AxisOutOfBounds { axis: 1, rank: 1 }
        );
    }
}
