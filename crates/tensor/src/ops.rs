//! Elementwise arithmetic, mapping and broadcast helpers.

use crate::{pool, Tensor};

impl Tensor {
    /// Applies `f` to every element, producing a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        let mut data = pool::take_uninit(self.len());
        for (o, &v) in data.iter_mut().zip(self.data()) {
            *o = f(v);
        }
        Tensor::from_shape_pooled(*self.shape(), data)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// [`Tensor::map`] writing into a caller-provided tensor of the
    /// same shape as `self`, with no allocation.
    ///
    /// # Panics
    /// Panics if `out`'s shape differs from `self`'s.
    pub fn map_into(&self, f: impl Fn(f64) -> f64, out: &mut Tensor) {
        assert_eq!(
            self.shape(),
            out.shape(),
            "elementwise op requires matching shapes: {:?} vs {:?}",
            self.dims(),
            out.dims()
        );
        for (o, &v) in out.data_mut().iter_mut().zip(self.data()) {
            *o = f(v);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    #[must_use]
    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op requires matching shapes: {:?} vs {:?}",
            self.dims(),
            other.dims()
        );
        let mut data = pool::take_uninit(self.len());
        for ((o, &a), &b) in data.iter_mut().zip(self.data()).zip(other.data()) {
            *o = f(a, b);
        }
        Tensor::from_shape_pooled(*self.shape(), data)
    }

    /// Elementwise sum.
    ///
    /// # Panics
    /// Panics if shapes differ.
    #[must_use]
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise sum in place (`self += other`), with no allocation —
    /// the gradient-accumulation hot path of the backward pass.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op requires matching shapes: {:?} vs {:?}",
            self.dims(),
            other.dims()
        );
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += b;
        }
    }

    /// Elementwise sum written into a caller-provided tensor
    /// (`out = self + other`), with no allocation.
    ///
    /// # Panics
    /// Panics if any of the three shapes differ.
    pub fn add_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op requires matching shapes: {:?} vs {:?}",
            self.dims(),
            other.dims()
        );
        assert_eq!(
            self.shape(),
            out.shape(),
            "elementwise op requires matching shapes: {:?} vs {:?}",
            self.dims(),
            out.dims()
        );
        for ((o, &a), &b) in out.data_mut().iter_mut().zip(self.data()).zip(other.data()) {
            *o = a + b;
        }
    }

    /// Elementwise difference.
    ///
    /// # Panics
    /// Panics if shapes differ.
    #[must_use]
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    /// Panics if shapes differ.
    #[must_use]
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise quotient.
    ///
    /// # Panics
    /// Panics if shapes differ.
    #[must_use]
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a / b)
    }

    /// Adds a scalar to every element.
    #[must_use]
    pub fn add_scalar(&self, s: f64) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    #[must_use]
    pub fn scale(&self, s: f64) -> Tensor {
        self.map(|v| v * s)
    }

    /// Elementwise negation.
    #[must_use]
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Elementwise absolute value.
    #[must_use]
    pub fn abs(&self) -> Tensor {
        self.map(f64::abs)
    }

    /// Elementwise square.
    #[must_use]
    pub fn square(&self) -> Tensor {
        self.map(|v| v * v)
    }

    /// Elementwise square root.
    #[must_use]
    pub fn sqrt(&self) -> Tensor {
        self.map(f64::sqrt)
    }

    /// Elementwise natural exponent.
    #[must_use]
    pub fn exp(&self) -> Tensor {
        self.map(f64::exp)
    }

    /// Elementwise natural logarithm.
    #[must_use]
    pub fn ln(&self) -> Tensor {
        self.map(f64::ln)
    }

    /// Elementwise hyperbolic tangent.
    #[must_use]
    pub fn tanh(&self) -> Tensor {
        self.map(f64::tanh)
    }

    /// Elementwise logistic sigmoid `1 / (1 + e^{-x})`.
    #[must_use]
    pub fn sigmoid(&self) -> Tensor {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Elementwise rectified linear unit `max(0, x)`.
    #[must_use]
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(&self, lo: f64, hi: f64) -> Tensor {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        self.map(|v| v.clamp(lo, hi))
    }

    /// Adds `row` (shape `[C]`) to every row of a `[R, C]` matrix —
    /// the bias-broadcast used throughout the NN layers.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2 and `row` is rank 1 with matching
    /// column count.
    #[must_use]
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "add_row_broadcast requires a matrix");
        assert_eq!(row.rank(), 1, "broadcast operand must be rank 1");
        let (r, c) = (self.dims()[0], self.dims()[1]);
        assert_eq!(
            row.len(),
            c,
            "row length {} does not match column count {c}",
            row.len()
        );
        let mut out = self.clone();
        for i in 0..r {
            for j in 0..c {
                out.data_mut()[i * c + j] += row.data()[j];
            }
        }
        out
    }

    /// Multiplies every row of a `[R, C]` matrix elementwise by `row`.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2 and `row` is rank 1 with matching
    /// column count.
    #[must_use]
    pub fn mul_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "mul_row_broadcast requires a matrix");
        assert_eq!(row.rank(), 1, "broadcast operand must be rank 1");
        let (r, c) = (self.dims()[0], self.dims()[1]);
        assert_eq!(row.len(), c, "row length mismatch");
        let mut out = self.clone();
        for i in 0..r {
            for j in 0..c {
                out.data_mut()[i * c + j] *= row.data()[j];
            }
        }
        out
    }

    /// Elementwise maximum with a scalar.
    #[must_use]
    pub fn max_scalar(&self, s: f64) -> Tensor {
        self.map(|v| v.max(s))
    }

    /// Linear interpolation `self * (1 - t) + other * t`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    #[must_use]
    pub fn lerp(&self, other: &Tensor, t: f64) -> Tensor {
        self.zip(other, |a, b| a * (1.0 - t) + b * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensors_close;

    fn t(v: Vec<f64>) -> Tensor {
        Tensor::from_vec1(v)
    }

    #[test]
    fn arithmetic_basics() {
        let a = t(vec![1.0, 2.0, 3.0]);
        let b = t(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.neg().data(), &[-1.0, -2.0, -3.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "matching shapes")]
    fn add_rejects_shape_mismatch() {
        let _ = t(vec![1.0]).add(&t(vec![1.0, 2.0]));
    }

    #[test]
    fn activations() {
        let x = t(vec![-1.0, 0.0, 1.0]);
        assert_eq!(x.relu().data(), &[0.0, 0.0, 1.0]);
        let s = x.sigmoid();
        assert!((s.data()[1] - 0.5).abs() < 1e-12);
        assert!(s.data()[0] < 0.5 && s.data()[2] > 0.5);
        let th = x.tanh();
        assert!((th.data()[1]).abs() < 1e-12);
        assert!((th.data()[0] + th.data()[2]).abs() < 1e-12); // odd function
    }

    #[test]
    fn clamp_bounds() {
        let x = t(vec![-2.0, 0.5, 3.0]);
        assert_eq!(x.clamp(-1.0, 1.0).data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn row_broadcasts() {
        let m = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let r = t(vec![10.0, 20.0]);
        assert_eq!(m.add_row_broadcast(&r).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.mul_row_broadcast(&r).data(), &[10.0, 40.0, 30.0, 80.0]);
    }

    #[test]
    fn lerp_midpoint() {
        let a = t(vec![0.0, 0.0]);
        let b = t(vec![2.0, 4.0]);
        assert_tensors_close(&a.lerp(&b, 0.5), &t(vec![1.0, 2.0]), 1e-12);
    }

    #[test]
    fn square_and_sqrt_inverse() {
        let a = t(vec![1.0, 4.0, 9.0]);
        assert_tensors_close(&a.sqrt().square(), &a, 1e-12);
    }

    #[test]
    fn exp_ln_inverse() {
        let a = t(vec![0.5, 1.0, 2.0]);
        assert_tensors_close(&a.ln().exp(), &a, 1e-12);
    }
}
