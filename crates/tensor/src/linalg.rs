//! Linear algebra: matrix products, transposition, stacking.

use crate::Tensor;

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Uses an ikj loop order so the inner loop walks both operands
    /// contiguously (cache-friendly without BLAS).
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 with compatible inner dims.
    #[must_use]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k, k2,
            "matmul inner dimension mismatch: [{m}, {k}] x [{k2}, {n}]"
        );
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += aip * brow[j];
                }
            }
        }
        Tensor::from_vec(&[m, n], out).expect("matmul output shape")
    }

    /// Matrix–vector product: `[m, k] x [k] -> [m]`.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2, `v` rank 1, with matching inner dim.
    #[must_use]
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank 2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank 1");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        assert_eq!(k, v.len(), "matvec inner dimension mismatch");
        let a = self.data();
        let x = v.data();
        let mut out = vec![0.0; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x.iter()).map(|(&p, &q)| p * q).sum();
        }
        Tensor::from_vec1(out)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2.
    #[must_use]
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let a = self.data();
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out).expect("transpose output shape")
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Panics
    /// Panics unless both are rank 1 of equal length.
    #[must_use]
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.rank(), 1, "dot lhs must be rank 1");
        assert_eq!(other.rank(), 1, "dot rhs must be rank 1");
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Outer product of two rank-1 tensors: `[m] x [n] -> [m, n]`.
    ///
    /// # Panics
    /// Panics unless both are rank 1.
    #[must_use]
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer lhs must be rank 1");
        assert_eq!(other.rank(), 1, "outer rhs must be rank 1");
        let (m, n) = (self.len(), other.len());
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = self.data()[i] * other.data()[j];
            }
        }
        Tensor::from_vec(&[m, n], out).expect("outer output shape")
    }

    /// Frobenius / L2 norm over all elements.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.data().iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Trace of a square rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is a square matrix.
    #[must_use]
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rank(), 2, "trace requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert_eq!(m, n, "trace requires a square matrix");
        (0..n).map(|i| self.data()[i * n + i]).sum()
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2 and `i` in bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "row requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert!(i < m, "row index {i} out of bounds for {m} rows");
        Tensor::from_vec1(self.data()[i * n..(i + 1) * n].to_vec())
    }

    /// Extracts column `j` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2 and `j` in bounds.
    #[must_use]
    pub fn col(&self, j: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "col requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert!(j < n, "column index {j} out of bounds for {n} columns");
        Tensor::from_vec1((0..m).map(|i| self.data()[i * n + j]).collect())
    }

    /// Stacks rank-1 tensors of equal length into a `[rows.len(), len]`
    /// matrix.
    ///
    /// # Panics
    /// Panics if `rows` is empty or lengths differ.
    #[must_use]
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let n = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * n);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.rank(), 1, "stack_rows expects rank-1 tensors");
            assert_eq!(r.len(), n, "row {i} has mismatched length");
            data.extend_from_slice(r.data());
        }
        Tensor::from_vec(&[rows.len(), n], data).expect("stack output shape")
    }

    /// Concatenates two matrices horizontally: `[m, a]` ++ `[m, b]` →
    /// `[m, a + b]`.
    ///
    /// # Panics
    /// Panics unless both are rank 2 with equal row counts.
    #[must_use]
    pub fn hcat(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "hcat lhs must be rank 2");
        assert_eq!(other.rank(), 2, "hcat rhs must be rank 2");
        let (m, a) = (self.dims()[0], self.dims()[1]);
        let (m2, b) = (other.dims()[0], other.dims()[1]);
        assert_eq!(m, m2, "hcat row count mismatch");
        let mut data = Vec::with_capacity(m * (a + b));
        for i in 0..m {
            data.extend_from_slice(&self.data()[i * a..(i + 1) * a]);
            data.extend_from_slice(&other.data()[i * b..(i + 1) * b]);
        }
        Tensor::from_vec(&[m, a + b], data).expect("hcat output shape")
    }

    /// Concatenates two matrices vertically: `[a, n]` ++ `[b, n]` →
    /// `[a + b, n]`.
    ///
    /// # Panics
    /// Panics unless both are rank 2 with equal column counts.
    #[must_use]
    pub fn vcat(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "vcat lhs must be rank 2");
        assert_eq!(other.rank(), 2, "vcat rhs must be rank 2");
        let (a, n) = (self.dims()[0], self.dims()[1]);
        let (b, n2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(n, n2, "vcat column count mismatch");
        let mut data = Vec::with_capacity((a + b) * n);
        data.extend_from_slice(self.data());
        data.extend_from_slice(other.data());
        Tensor::from_vec(&[a + b, n], data).expect("vcat output shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensors_close;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Tensor::from_vec2(vec![vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(&[3, 3], (0..9).map(f64::from).collect()).unwrap();
        assert_tensors_close(&a.matmul(&Tensor::eye(3)), &a, 1e-12);
        assert_tensors_close(&Tensor::eye(3).matmul(&a), &a, 1e-12);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0; 6]).unwrap();
        let b = Tensor::from_vec(&[3, 4], vec![2.0; 12]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 4]);
        assert!(c.data().iter().all(|&v| v == 6.0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_checks_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = Tensor::from_vec1(vec![5.0, 6.0]);
        let mv = a.matvec(&v);
        let mm = a.matmul(&v.reshaped(&[2, 1]));
        assert_eq!(mv.data(), mm.data());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(f64::from).collect()).unwrap();
        assert_tensors_close(&a.transpose().transpose(), &a, 0.0);
        assert_eq!(a.transpose().dims(), &[3, 2]);
        assert_eq!(a.transpose().at2(2, 1), a.at2(1, 2));
    }

    #[test]
    fn dot_and_outer() {
        let u = Tensor::from_vec1(vec![1.0, 2.0]);
        let v = Tensor::from_vec1(vec![3.0, 4.0]);
        assert_eq!(u.dot(&v), 11.0);
        let o = u.outer(&v);
        assert_eq!(o.dims(), &[2, 2]);
        assert_eq!(o.data(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn trace_and_norm() {
        let a = Tensor::from_vec2(vec![vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert_eq!(a.trace(), 7.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn rows_cols_and_stack() {
        let a = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1).data(), &[3.0, 4.0]);
        assert_eq!(a.col(0).data(), &[1.0, 3.0]);
        let restacked = Tensor::stack_rows(&[a.row(0), a.row(1)]);
        assert_tensors_close(&restacked, &a, 0.0);
    }

    #[test]
    fn hcat_vcat() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 1]);
        let h = a.hcat(&b);
        assert_eq!(h.dims(), &[2, 3]);
        assert_eq!(h.at2(0, 2), 0.0);
        let c = Tensor::zeros(&[1, 2]);
        let v = a.vcat(&c);
        assert_eq!(v.dims(), &[3, 2]);
        assert_eq!(v.at2(2, 0), 0.0);
    }
}
