//! Linear algebra: matrix products, transposition, stacking.
//!
//! ## The two kernel contracts
//!
//! Every matmul-family kernel ([`Tensor::matmul`], [`Tensor::matmul_tn`],
//! [`Tensor::matmul_nt`], [`Tensor::addmm`], the cache-blocked path,
//! the `_into` twins in [`crate::kernels`], and through them every
//! batched autodiff op) funnels into one accumulation kernel,
//! [`matmul_accumulate`], which dispatches on the active
//! [`crate::KernelBackend`]. Both backends share the *structural*
//! invariants — each output element accumulates its `k` products in
//! ascending-`p` order starting from `+0.0`, the `lhs == 0.0` skip
//! always tests the same logical element, and cache blocking tiles
//! i/j only — and differ in exactly one rounding rule:
//!
//! 1. **Scalar — the bit-identity oracle.** Multiply and add round
//!    separately, matching the reference `transpose()` +
//!    naive-triple-loop composition *bit for bit*. Every committed
//!    experiment record was produced under this contract
//!    (property-tested in `crates/tensor/tests/properties.rs`).
//! 2. **SIMD (AVX2+FMA, x86_64, runtime-detected) — the hot path.**
//!    Every multiply-add is fused (one rounding). Vector lanes carry
//!    independent output columns, so no sum is split across lanes; the
//!    backend is *self-deterministic* (byte-identical across runs,
//!    span widths, blocking and thread counts, pinned to a scalar
//!    `mul_add` reference in `crates/tensor/tests/backend_equivalence.rs`)
//!    and agrees with the scalar oracle element-wise to
//!    `(k + 1)·ε·Σₚ|a[i,p]·b[p,j]|` — see `simd.rs`.
//!
//! Because the repack-and-share idiom (`matmul_tn`/`matmul_nt`/`addmm`
//! run the same kernel on transposed copies) preserves each element's
//! accumulation sequence, the fused kernels stay bit-identical to
//! their composed forms **within whichever backend is active**; only
//! cross-backend comparisons are tolerance-based. Backend selection:
//! `EMA_KERNEL` env knob / [`crate::backend::set_kernel_backend`] /
//! [`KernelBackend::scoped`] — see `backend.rs`.

use crate::backend::KernelBackend;
use crate::{pool, Shape, Tensor};

/// Tile edge for the cache-blocked matmul path: output/operand row
/// chunks of 64 f64 (512 B) stay resident in L1 across the `p` loop.
pub(crate) const MM_BLOCK: usize = 64;

/// Products with at least this many multiply-adds take the blocked
/// path; below it the plain ikj loop wins on loop overhead.
pub(crate) const MM_BLOCK_THRESHOLD: usize = 1 << 18;

/// Register-tiled inner kernel: accumulates
/// `out[i, j..j + W] += Σ_p a[i, p] · b[p, j..j + W]` for one output
/// row span of compile-time width `W`. The fixed width lets the
/// accumulator live in vector registers across the whole `p` loop; a
/// dynamic-width span re-reads the output row from memory on every `p`
/// step, chaining each iteration on a store-to-load roundtrip.
///
/// `b_span` must be `b` offset by the span's starting column. The `p`
/// loop still runs 0..k in one ascending pass with the `== 0.0` skip,
/// so the bit-identity contract is untouched.
#[inline]
fn accum_tile<const W: usize>(a_row: &[f64], b_span: &[f64], out_tile: &mut [f64; W], n: usize) {
    let mut acc = *out_tile;
    for (p, &aip) in a_row.iter().enumerate() {
        if aip == 0.0 {
            continue;
        }
        let brow: &[f64; W] = b_span[p * n..p * n + W].try_into().expect("span width");
        for l in 0..W {
            acc[l] += aip * brow[l];
        }
    }
    *out_tile = acc;
}

/// Accumulates one output row span `out_row[jb..j_end]` by decomposing
/// it into fixed-width register tiles (32/16/8/4) plus a scalar tail.
fn accum_row_span(a_row: &[f64], b: &[f64], out_row: &mut [f64], n: usize, jb: usize, j_end: usize) {
    let mut j = jb;
    while j + 32 <= j_end {
        let tile: &mut [f64; 32] = (&mut out_row[j..j + 32]).try_into().expect("tile width");
        accum_tile::<32>(a_row, &b[j..], tile, n);
        j += 32;
    }
    if j + 16 <= j_end {
        let tile: &mut [f64; 16] = (&mut out_row[j..j + 16]).try_into().expect("tile width");
        accum_tile::<16>(a_row, &b[j..], tile, n);
        j += 16;
    }
    if j + 8 <= j_end {
        let tile: &mut [f64; 8] = (&mut out_row[j..j + 8]).try_into().expect("tile width");
        accum_tile::<8>(a_row, &b[j..], tile, n);
        j += 8;
    }
    if j + 4 <= j_end {
        let tile: &mut [f64; 4] = (&mut out_row[j..j + 4]).try_into().expect("tile width");
        accum_tile::<4>(a_row, &b[j..], tile, n);
        j += 4;
    }
    if j < j_end {
        for (p, &aip) in a_row.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n + j..p * n + j_end];
            let orow = &mut out_row[j..j_end];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    }
}

/// The accumulation kernel every matmul-family op runs: `out += a · b`
/// for row-major `a` `[m, k]` and `b` `[k, n]`; `out` must be zeroed by
/// the caller. Dispatches on the thread's active [`KernelBackend`] —
/// the scalar ikj oracle below or the AVX2+FMA twin in `simd.rs` (see
/// the two-contract story in this file's header).
pub(crate) fn matmul_accumulate(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    let backend = KernelBackend::active();
    // Work accounting for the obs layer: a relaxed-flag check plus a
    // thread-local add, keyed by the backend that will actually run.
    // Never touches the operands, so it cannot perturb numerics.
    crate::backend::record_matmul(backend, m, k, n);
    #[cfg(target_arch = "x86_64")]
    if backend == KernelBackend::Simd {
        // SAFETY: `active()` returns `Simd` only when AVX2+FMA were
        // detected on the running CPU (`KernelBackend::simd_available`).
        unsafe { crate::simd::matmul_accumulate_simd(a, b, out, m, k, n) };
        return;
    }
    matmul_accumulate_scalar(a, b, out, m, k, n);
}

/// Scalar ikj kernel accumulating `out += a · b` — the bit-identity
/// oracle. Skips `a[i, p] == 0.0` (exact zeros are common after ReLU);
/// the skip is also what fixes the accumulation sequence the
/// bit-identity contract promises.
pub(crate) fn matmul_accumulate_scalar(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    if m * n * k >= MM_BLOCK_THRESHOLD && n > MM_BLOCK {
        // Tile i and j only: for each output element the p loop still
        // runs 0..k in one ascending pass, so blocking never reorders
        // an accumulation (tiling p would).
        for ib in (0..m).step_by(MM_BLOCK) {
            let i_end = (ib + MM_BLOCK).min(m);
            for jb in (0..n).step_by(MM_BLOCK) {
                let j_end = (jb + MM_BLOCK).min(n);
                for i in ib..i_end {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * n..(i + 1) * n];
                    accum_row_span(a_row, b, out_row, n, jb, j_end);
                }
            }
        }
        return;
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        accum_row_span(a_row, b, out_row, n, 0, n);
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Uses an ikj loop order so the inner loop walks both operands
    /// contiguously (cache-friendly without BLAS); large products
    /// switch to a tiled path with identical accumulation order.
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 with compatible inner dims.
    #[must_use]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k, k2,
            "matmul inner dimension mismatch: [{m}, {k}] x [{k2}, {n}]"
        );
        let mut out = pool::take_zeroed(m * n);
        matmul_accumulate(self.data(), other.data(), &mut out, m, k, n);
        Tensor::from_shape_pooled(Shape::of(&[m, n]), out)
    }

    /// [`Tensor::matmul`] writing into a caller-provided `[m, n]`
    /// tensor, with no allocation.
    ///
    /// # Panics
    /// Panics on rank/shape mismatches between the operands and `out`.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k, k2,
            "matmul inner dimension mismatch: [{m}, {k}] x [{k2}, {n}]"
        );
        assert_eq!(
            out.dims(),
            &[m, n],
            "matmul_into output shape mismatch: expected [{m}, {n}]"
        );
        let buf = out.data_mut();
        buf.fill(0.0);
        matmul_accumulate(self.data(), other.data(), buf, m, k, n);
    }

    /// Transpose-aware product `selfᵀ · other`: `[k, m] x [k, n] ->
    /// [m, n]` without materializing the transpose. Bit-identical to
    /// `self.transpose().matmul(other)` — this is the `aᵀ·g` shape of
    /// the autodiff backward pass.
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 sharing their first dim.
    #[must_use]
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k, k2,
            "matmul_tn leading dimension mismatch: [{k}, {m}]ᵀ x [{k2}, {n}]"
        );
        let a = self.data();
        let b = other.data();
        // Repack selfᵀ into a pooled scratch buffer and run the shared
        // ikj kernel: reading `a[p * m + i]` in place would walk the
        // lhs column-wise (stride-m loads, one cache line per element),
        // and the O(k·m) repack is noise next to the O(m·k·n) product.
        // The repacked element is the same logical value the reference
        // kernel tests after an explicit transpose, so accumulation
        // order and the zero skip stay bit-identical.
        let mut at = pool::take_uninit(m * k);
        for (p, arow) in a.chunks_exact(m).enumerate() {
            for (i, &av) in arow.iter().enumerate() {
                at[i * k + p] = av;
            }
        }
        let mut out = pool::take_zeroed(m * n);
        matmul_accumulate(&at, b, &mut out, m, k, n);
        pool::recycle(at);
        Tensor::from_shape_pooled(Shape::of(&[m, n]), out)
    }

    /// Transpose-aware product `self · otherᵀ`: `[m, k] x [n, k] ->
    /// [m, n]` without materializing the transpose. Bit-identical to
    /// `self.matmul(&other.transpose())` — the `g·bᵀ` shape of the
    /// autodiff backward pass.
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 sharing their second dim.
    #[must_use]
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k, k2,
            "matmul_nt trailing dimension mismatch: [{m}, {k}] x [{n}, {k2}]ᵀ"
        );
        let a = self.data();
        let b = other.data();
        // Repack otherᵀ into a pooled scratch buffer (no heap traffic
        // after warm-up) so the product runs on the shared ikj kernel:
        // a row-dot-row loop here would be a serial dependency chain
        // per output element, which cannot vectorize — the O(k·n)
        // repack is noise next to the O(m·k·n) vectorized product.
        // Accumulation order and the lhs zero skip are exactly those of
        // `matmul`, so results stay bit-identical to the composed form.
        let mut bt = pool::take_uninit(k * n);
        for (j, brow) in b.chunks_exact(k).enumerate() {
            for (p, &bv) in brow.iter().enumerate() {
                bt[p * n + j] = bv;
            }
        }
        let mut out = pool::take_zeroed(m * n);
        matmul_accumulate(a, &bt, &mut out, m, k, n);
        pool::recycle(bt);
        Tensor::from_shape_pooled(Shape::of(&[m, n]), out)
    }

    /// Fused linear-layer kernel `self · wᵀ + bias`:
    /// `[n, k] x [out, k]ᵀ + [out] -> [n, out]` in one pass, with no
    /// transpose and no intermediate product tensor. Bit-identical to
    /// `self.matmul(&w.transpose()).add_row_broadcast(bias)` — the dot
    /// product accumulates exactly like [`Tensor::matmul_nt`] and the
    /// bias is added after the full accumulation, matching the
    /// composed ordering.
    ///
    /// # Panics
    /// Panics on rank or dimension mismatches.
    #[must_use]
    pub fn addmm(&self, w: &Tensor, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "addmm input must be rank 2");
        assert_eq!(w.rank(), 2, "addmm weight must be rank 2");
        assert_eq!(bias.rank(), 1, "addmm bias must be rank 1");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (w.dims()[0], w.dims()[1]);
        assert_eq!(
            k, k2,
            "addmm trailing dimension mismatch: [{m}, {k}] x [{n}, {k2}]ᵀ"
        );
        assert_eq!(
            bias.len(),
            n,
            "addmm bias length {} does not match output width {n}",
            bias.len()
        );
        let a = self.data();
        let b = w.data();
        let bd = bias.data();
        // Same pooled-repack strategy as `matmul_nt` (see there): run
        // the vectorizable ikj kernel over wᵀ, then add the bias after
        // each output's accumulation completes — the composed ordering.
        let mut wt = pool::take_uninit(k * n);
        for (j, wrow) in b.chunks_exact(k).enumerate() {
            for (p, &wv) in wrow.iter().enumerate() {
                wt[p * n + j] = wv;
            }
        }
        let mut out = pool::take_zeroed(m * n);
        matmul_accumulate(a, &wt, &mut out, m, k, n);
        pool::recycle(wt);
        for orow in out.chunks_exact_mut(n) {
            for (o, &bv) in orow.iter_mut().zip(bd) {
                *o += bv;
            }
        }
        Tensor::from_shape_pooled(Shape::of(&[m, n]), out)
    }

    /// Matrix–vector product: `[m, k] x [k] -> [m]`.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2, `v` rank 1, with matching inner dim.
    #[must_use]
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank 2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank 1");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        assert_eq!(k, v.len(), "matvec inner dimension mismatch");
        let a = self.data();
        let x = v.data();
        let mut out = pool::take_uninit(m);
        for (i, o) in out.iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            *o = row.iter().zip(x.iter()).map(|(&p, &q)| p * q).sum();
        }
        Tensor::from_shape_pooled(Shape::of(&[m]), out)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2.
    #[must_use]
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let a = self.data();
        let mut out = pool::take_uninit(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_shape_pooled(Shape::of(&[n, m]), out)
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Panics
    /// Panics unless both are rank 1 of equal length.
    #[must_use]
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.rank(), 1, "dot lhs must be rank 1");
        assert_eq!(other.rank(), 1, "dot rhs must be rank 1");
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Outer product of two rank-1 tensors: `[m] x [n] -> [m, n]`.
    ///
    /// # Panics
    /// Panics unless both are rank 1.
    #[must_use]
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer lhs must be rank 1");
        assert_eq!(other.rank(), 1, "outer rhs must be rank 1");
        let (m, n) = (self.len(), other.len());
        let mut out = pool::take_uninit(m * n);
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = self.data()[i] * other.data()[j];
            }
        }
        Tensor::from_shape_pooled(Shape::of(&[m, n]), out)
    }

    /// Frobenius / L2 norm over all elements.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.data().iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Trace of a square rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is a square matrix.
    #[must_use]
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rank(), 2, "trace requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert_eq!(m, n, "trace requires a square matrix");
        (0..n).map(|i| self.data()[i * n + i]).sum()
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2 and `i` in bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "row requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert!(i < m, "row index {i} out of bounds for {m} rows");
        Tensor::pooled_copy(Shape::of(&[n]), &self.data()[i * n..(i + 1) * n])
    }

    /// Extracts column `j` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2 and `j` in bounds.
    #[must_use]
    pub fn col(&self, j: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "col requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert!(j < n, "column index {j} out of bounds for {n} columns");
        let mut out = pool::take_uninit(m);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data()[i * n + j];
        }
        Tensor::from_shape_pooled(Shape::of(&[m]), out)
    }

    /// Stacks rank-1 tensors of equal length into a `[rows.len(), len]`
    /// matrix.
    ///
    /// # Panics
    /// Panics if `rows` is empty or lengths differ.
    #[must_use]
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let n = rows[0].len();
        let mut data = pool::take_uninit(rows.len() * n);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.rank(), 1, "stack_rows expects rank-1 tensors");
            assert_eq!(r.len(), n, "row {i} has mismatched length");
            data[i * n..(i + 1) * n].copy_from_slice(r.data());
        }
        Tensor::from_shape_pooled(Shape::of(&[rows.len(), n]), data)
    }

    /// Concatenates two matrices horizontally: `[m, a]` ++ `[m, b]` →
    /// `[m, a + b]`.
    ///
    /// # Panics
    /// Panics unless both are rank 2 with equal row counts.
    #[must_use]
    pub fn hcat(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "hcat lhs must be rank 2");
        assert_eq!(other.rank(), 2, "hcat rhs must be rank 2");
        let (m, a) = (self.dims()[0], self.dims()[1]);
        let (m2, b) = (other.dims()[0], other.dims()[1]);
        assert_eq!(m, m2, "hcat row count mismatch");
        let w = a + b;
        let mut data = pool::take_uninit(m * w);
        for i in 0..m {
            data[i * w..i * w + a].copy_from_slice(&self.data()[i * a..(i + 1) * a]);
            data[i * w + a..(i + 1) * w].copy_from_slice(&other.data()[i * b..(i + 1) * b]);
        }
        Tensor::from_shape_pooled(Shape::of(&[m, w]), data)
    }

    /// Concatenates two matrices vertically: `[a, n]` ++ `[b, n]` →
    /// `[a + b, n]`.
    ///
    /// # Panics
    /// Panics unless both are rank 2 with equal column counts.
    #[must_use]
    pub fn vcat(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "vcat lhs must be rank 2");
        assert_eq!(other.rank(), 2, "vcat rhs must be rank 2");
        let (a, n) = (self.dims()[0], self.dims()[1]);
        let (b, n2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(n, n2, "vcat column count mismatch");
        let mut data = pool::take_uninit((a + b) * n);
        data[..a * n].copy_from_slice(self.data());
        data[a * n..].copy_from_slice(other.data());
        Tensor::from_shape_pooled(Shape::of(&[a + b, n]), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensors_close;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Tensor::from_vec2(vec![vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(&[3, 3], (0..9).map(f64::from).collect()).unwrap();
        assert_tensors_close(&a.matmul(&Tensor::eye(3)), &a, 1e-12);
        assert_tensors_close(&Tensor::eye(3).matmul(&a), &a, 1e-12);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0; 6]).unwrap();
        let b = Tensor::from_vec(&[3, 4], vec![2.0; 12]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 4]);
        assert!(c.data().iter().all(|&v| v == 6.0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_checks_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec(&[3, 2], (0..6).map(f64::from).collect()).unwrap();
        let b = Tensor::from_vec(&[3, 4], (0..12).map(|v| f64::from(v) * 0.5).collect()).unwrap();
        let fused = a.matmul_tn(&b);
        let reference = a.transpose().matmul(&b);
        assert_eq!(fused.dims(), &[2, 4]);
        assert_eq!(fused.data(), reference.data());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(f64::from).collect()).unwrap();
        let b = Tensor::from_vec(&[4, 3], (0..12).map(|v| f64::from(v) * 0.5).collect()).unwrap();
        let fused = a.matmul_nt(&b);
        let reference = a.matmul(&b.transpose());
        assert_eq!(fused.dims(), &[2, 4]);
        assert_eq!(fused.data(), reference.data());
    }

    #[test]
    #[should_panic(expected = "leading dimension mismatch")]
    fn matmul_tn_checks_dims() {
        let _ = Tensor::zeros(&[2, 3]).matmul_tn(&Tensor::zeros(&[3, 2]));
    }

    #[test]
    #[should_panic(expected = "trailing dimension mismatch")]
    fn matmul_nt_checks_dims() {
        let _ = Tensor::zeros(&[2, 3]).matmul_nt(&Tensor::zeros(&[3, 2]));
    }

    #[test]
    fn matmul_into_matches_allocating_twin() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(f64::from).collect()).unwrap();
        let b = Tensor::from_vec(&[3, 4], (0..12).map(|v| f64::from(v) - 3.0).collect()).unwrap();
        let mut out = Tensor::filled(&[2, 4], 99.0); // stale contents must vanish
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), a.matmul(&b).data());
    }

    #[test]
    fn blocked_path_matches_naive() {
        // Large enough to cross MM_BLOCK_THRESHOLD with n > MM_BLOCK.
        // The naive reference below implements the *scalar* contract,
        // so pin the oracle backend regardless of `EMA_KERNEL`.
        let _scalar = KernelBackend::Scalar.scoped();
        let m = 72;
        let k = 72;
        let n = 72;
        let mut rng = crate::Rng64::seed_from(5);
        let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
        let blocked = a.matmul(&b);
        // Naive reference: ascending-p accumulation per element.
        let (ad, bd) = (a.data(), b.data());
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    let aip = ad[i * k + p];
                    if aip == 0.0 {
                        continue;
                    }
                    acc += aip * bd[p * n + j];
                }
                assert_eq!(blocked.data()[i * n + j], acc, "({i}, {j})");
            }
        }
    }

    #[test]
    fn addmm_matches_composed_ops() {
        let mut rng = crate::Rng64::seed_from(7);
        let x = Tensor::rand_normal(&[5, 3], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut rng);
        let bias = Tensor::rand_normal(&[4], 0.0, 1.0, &mut rng);
        let fused = x.addmm(&w, &bias);
        let reference = x.matmul(&w.transpose()).add_row_broadcast(&bias);
        assert_eq!(fused.dims(), &[5, 4]);
        assert_eq!(fused.data(), reference.data());
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn addmm_checks_bias_length() {
        let _ = Tensor::zeros(&[2, 3]).addmm(&Tensor::zeros(&[4, 3]), &Tensor::zeros(&[3]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = Tensor::from_vec1(vec![5.0, 6.0]);
        let mv = a.matvec(&v);
        let mm = a.matmul(&v.reshaped(&[2, 1]));
        assert_eq!(mv.data(), mm.data());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(f64::from).collect()).unwrap();
        assert_tensors_close(&a.transpose().transpose(), &a, 0.0);
        assert_eq!(a.transpose().dims(), &[3, 2]);
        assert_eq!(a.transpose().at2(2, 1), a.at2(1, 2));
    }

    #[test]
    fn dot_and_outer() {
        let u = Tensor::from_vec1(vec![1.0, 2.0]);
        let v = Tensor::from_vec1(vec![3.0, 4.0]);
        assert_eq!(u.dot(&v), 11.0);
        let o = u.outer(&v);
        assert_eq!(o.dims(), &[2, 2]);
        assert_eq!(o.data(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn trace_and_norm() {
        let a = Tensor::from_vec2(vec![vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert_eq!(a.trace(), 7.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn rows_cols_and_stack() {
        let a = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1).data(), &[3.0, 4.0]);
        assert_eq!(a.col(0).data(), &[1.0, 3.0]);
        let restacked = Tensor::stack_rows(&[a.row(0), a.row(1)]);
        assert_tensors_close(&restacked, &a, 0.0);
    }

    #[test]
    fn hcat_vcat() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 1]);
        let h = a.hcat(&b);
        assert_eq!(h.dims(), &[2, 3]);
        assert_eq!(h.at2(0, 2), 0.0);
        let c = Tensor::zeros(&[1, 2]);
        let v = a.vcat(&c);
        assert_eq!(v.dims(), &[3, 2]);
        assert_eq!(v.at2(2, 0), 0.0);
    }
}
