//! Dense linear solves and inversion (Gaussian elimination with partial
//! pivoting). Used by the VAR baseline (ridge least squares) and the
//! partial-correlation graph metric (precision matrix).

use crate::Tensor;

impl Tensor {
    /// Solves `A · X = B` for `X` where `self` is a square `[n, n]`
    /// matrix and `b` is `[n, m]`, via Gaussian elimination with
    /// partial pivoting.
    ///
    /// Returns `None` when `A` is (numerically) singular.
    ///
    /// # Panics
    /// Panics unless `self` is square rank 2 and `b` has matching rows.
    #[must_use]
    pub fn solve(&self, b: &Tensor) -> Option<Tensor> {
        assert_eq!(self.rank(), 2, "solve requires a matrix");
        let n = self.dims()[0];
        assert_eq!(n, self.dims()[1], "solve requires a square matrix");
        assert_eq!(b.rank(), 2, "rhs must be rank 2");
        assert_eq!(b.dims()[0], n, "rhs row count mismatch");
        let m = b.dims()[1];

        // Augmented working copies.
        let mut a = self.data().to_vec();
        let mut x = b.data().to_vec();

        for col in 0..n {
            // Partial pivot: largest |a[row][col]| for row >= col.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > best {
                    best = v;
                    pivot = row;
                }
            }
            if best < 1e-12 {
                return None; // singular
            }
            if pivot != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot * n + k);
                }
                for k in 0..m {
                    x.swap(col * m + k, pivot * m + k);
                }
            }
            // Eliminate below.
            let diag = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                for k in 0..m {
                    x[row * m + k] -= factor * x[col * m + k];
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let diag = a[col * n + col];
            for k in 0..m {
                let mut acc = x[col * m + k];
                for j in (col + 1)..n {
                    acc -= a[col * n + j] * x[j * m + k];
                }
                x[col * m + k] = acc / diag;
            }
        }
        Some(Tensor::from_vec(&[n, m], x).expect("solve output shape"))
    }

    /// Matrix inverse via [`Tensor::solve`] against the identity.
    /// Returns `None` for singular matrices.
    ///
    /// # Panics
    /// Panics unless `self` is square rank 2.
    #[must_use]
    pub fn inverse(&self) -> Option<Tensor> {
        let n = self.dims()[0];
        self.solve(&Tensor::eye(n))
    }

    /// Ridge-regularised least squares: solves
    /// `argmin_W ‖X·W − Y‖² + λ‖W‖²` via the normal equations
    /// `(XᵀX + λI) W = Xᵀ Y`, for `X: [n, p]`, `Y: [n, q]` → `W: [p, q]`.
    ///
    /// Returns `None` only if the regularised Gram matrix is singular
    /// (impossible for `lambda > 0` in exact arithmetic).
    ///
    /// # Panics
    /// Panics on shape mismatch or negative `lambda`.
    #[must_use]
    pub fn ridge_least_squares(&self, y: &Tensor, lambda: f64) -> Option<Tensor> {
        assert_eq!(self.rank(), 2, "design matrix must be rank 2");
        assert_eq!(y.rank(), 2, "targets must be rank 2");
        assert_eq!(self.dims()[0], y.dims()[0], "row count mismatch");
        assert!(lambda >= 0.0, "negative ridge penalty {lambda}");
        let p = self.dims()[1];
        let xt = self.transpose();
        let mut gram = xt.matmul(self);
        for i in 0..p {
            let v = gram.at2(i, i) + lambda;
            gram.set2(i, i, v);
        }
        let xty = xt.matmul(y);
        gram.solve(&xty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_tensors_close, Rng64};

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let a = Tensor::from_vec2(vec![vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let b = Tensor::from_vec2(vec![vec![3.0], vec![5.0]]).unwrap();
        let x = a.solve(&b).unwrap();
        assert_tensors_close(
            &x,
            &Tensor::from_vec2(vec![vec![0.8], vec![1.4]]).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero leading diagonal forces a row swap.
        let a = Tensor::from_vec2(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let b = Tensor::from_vec2(vec![vec![7.0], vec![9.0]]).unwrap();
        let x = a.solve(&b).unwrap();
        assert_eq!(x.data(), &[9.0, 7.0]);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(a.inverse().is_none());
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let mut rng = Rng64::seed_from(5);
        for n in [1usize, 2, 5, 8] {
            // Diagonally-dominant matrices are well conditioned.
            let mut a = Tensor::rand_normal(&[n, n], 0.0, 1.0, &mut rng);
            for i in 0..n {
                let v = a.at2(i, i) + 3.0 * n as f64;
                a.set2(i, i, v);
            }
            let inv = a.inverse().expect("well-conditioned");
            assert_tensors_close(&a.matmul(&inv), &Tensor::eye(n), 1e-8);
            assert_tensors_close(&inv.matmul(&a), &Tensor::eye(n), 1e-8);
        }
    }

    #[test]
    fn solve_matches_inverse_multiplication() {
        let mut rng = Rng64::seed_from(6);
        let mut a = Tensor::rand_normal(&[4, 4], 0.0, 1.0, &mut rng);
        for i in 0..4 {
            let v = a.at2(i, i) + 10.0;
            a.set2(i, i, v);
        }
        let b = Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut rng);
        let x1 = a.solve(&b).unwrap();
        let x2 = a.inverse().unwrap().matmul(&b);
        assert_tensors_close(&x1, &x2, 1e-8);
    }

    #[test]
    fn ridge_recovers_linear_map() {
        // Y = X·W with noiseless data and tiny ridge -> W recovered.
        let mut rng = Rng64::seed_from(7);
        let x = Tensor::rand_normal(&[50, 3], 0.0, 1.0, &mut rng);
        let w_true = Tensor::from_vec2(vec![
            vec![1.0, -2.0],
            vec![0.5, 0.0],
            vec![-1.5, 3.0],
        ])
        .unwrap();
        let y = x.matmul(&w_true);
        let w = x.ridge_least_squares(&y, 1e-9).unwrap();
        assert_tensors_close(&w, &w_true, 1e-6);
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let mut rng = Rng64::seed_from(8);
        let x = Tensor::rand_normal(&[30, 2], 0.0, 1.0, &mut rng);
        let y = Tensor::rand_normal(&[30, 1], 0.0, 1.0, &mut rng);
        let w_small = x.ridge_least_squares(&y, 1e-6).unwrap();
        let w_large = x.ridge_least_squares(&y, 1e6).unwrap();
        assert!(w_large.norm() < w_small.norm() * 0.01);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn solve_rejects_non_square() {
        let a = Tensor::zeros(&[2, 3]);
        let _ = a.solve(&Tensor::zeros(&[2, 1]));
    }
}
