//! Shape arithmetic: dimension bookkeeping and row-major index math.

use crate::TensorError;

/// Maximum tensor rank supported by the inline shape representation.
pub const MAX_RANK: usize = 4;

/// The dimensions of a tensor, stored outermost-first (row-major).
///
/// Dimensions live in a fixed inline array (rank ≤ [`MAX_RANK`]), so a
/// `Shape` never touches the heap — constructing, cloning and comparing
/// shapes is allocation-free, which matters because every tensor op on
/// the training hot path builds one. Unused slots are kept at zero so
/// the derived `PartialEq`/`Hash` agree with logical equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from a dimension slice.
    ///
    /// # Errors
    /// Returns [`TensorError::EmptyShape`] if `dims` is empty, any
    /// dimension is zero, or the rank exceeds [`MAX_RANK`].
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        if dims.is_empty() || dims.len() > MAX_RANK || dims.contains(&0) {
            return Err(TensorError::EmptyShape);
        }
        let mut inline = [0; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Ok(Self {
            dims: inline,
            rank: dims.len() as u8,
        })
    }

    /// Creates a shape without validation. Panics on invalid input.
    ///
    /// # Panics
    /// Panics if `dims` is empty, contains a zero dimension, or exceeds
    /// rank [`MAX_RANK`].
    #[must_use]
    pub fn of(dims: &[usize]) -> Self {
        Self::new(dims).expect("invalid shape: empty, zero-sized or over-rank dimension list")
    }

    /// The dimensions as a slice, outermost-first.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// The number of axes.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// The total number of elements (product of dimensions).
    #[must_use]
    pub fn volume(&self) -> usize {
        self.dims().iter().product()
    }

    /// Size along `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    #[must_use]
    pub fn dim(&self, axis: usize) -> usize {
        assert!(
            axis < self.rank(),
            "axis {axis} out of bounds for rank {}",
            self.rank()
        );
        self.dims[axis]
    }

    /// Row-major strides: the flat-index step for a unit move along each
    /// axis. The last axis always has stride 1.
    #[must_use]
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat offset.
    ///
    /// # Panics
    /// Panics if the index rank differs from the shape rank or any
    /// coordinate is out of bounds.
    #[must_use]
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank()
        );
        let mut flat = 0;
        let mut stride = 1;
        for axis in (0..self.rank()).rev() {
            let i = index[axis];
            assert!(
                i < self.dims[axis],
                "index {i} out of bounds for axis {axis} with size {}",
                self.dims[axis]
            );
            flat += i * stride;
            stride *= self.dims[axis];
        }
        flat
    }

    /// Converts a flat offset back into a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if `flat >= volume()`.
    #[must_use]
    pub fn unflatten(&self, mut flat: usize) -> Vec<usize> {
        assert!(
            flat < self.volume(),
            "flat index {flat} out of bounds for volume {}",
            self.volume()
        );
        let strides = self.strides();
        let mut index = vec![0; self.rank()];
        for (axis, &stride) in strides.iter().enumerate() {
            index[axis] = flat / stride;
            flat %= stride;
        }
        index
    }

    /// Returns the shape with `axis` removed (used by axis reductions).
    /// A rank-1 shape reduces to `[1]`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    #[must_use]
    pub fn without_axis(&self, axis: usize) -> Shape {
        assert!(axis < self.rank(), "axis {axis} out of bounds");
        if self.rank() == 1 {
            return Shape::of(&[1]);
        }
        let mut dims = [0; MAX_RANK];
        let mut out = 0;
        for (a, &d) in self.dims().iter().enumerate() {
            if a != axis {
                dims[out] = d;
                out += 1;
            }
        }
        Shape {
            dims,
            rank: out as u8,
        }
    }

    /// True when the two shapes are element-wise compatible (identical).
    #[must_use]
    pub fn same_as(&self, other: &Shape) -> bool {
        self == other
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shape({:?})", self.dims())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::of(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::of(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::of(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn rejects_empty_zero_and_over_rank() {
        assert_eq!(Shape::new(&[]), Err(TensorError::EmptyShape));
        assert_eq!(Shape::new(&[3, 0]), Err(TensorError::EmptyShape));
        assert_eq!(Shape::new(&[1; MAX_RANK + 1]), Err(TensorError::EmptyShape));
        assert!(Shape::new(&[1; MAX_RANK]).is_ok());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::of(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::of(&[5]).strides(), vec![1]);
    }

    #[test]
    fn flat_index_round_trips() {
        let s = Shape::of(&[3, 4, 5]);
        for flat in 0..s.volume() {
            let idx = s.unflatten(flat);
            assert_eq!(s.flat_index(&idx), flat);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_checks_bounds() {
        let _ = Shape::of(&[2, 2]).flat_index(&[2, 0]);
    }

    #[test]
    fn without_axis_reduces_rank() {
        let s = Shape::of(&[2, 3, 4]);
        assert_eq!(s.without_axis(1).dims(), &[2, 4]);
        assert_eq!(Shape::of(&[7]).without_axis(0).dims(), &[1]);
    }

    #[test]
    fn from_array_works() {
        let s: Shape = [2, 2].into();
        assert_eq!(s.volume(), 4);
    }

    #[test]
    fn equality_ignores_unused_slots() {
        // Shapes of different ranks never compare equal, and identical
        // dims always do — the invariant the zeroed tail maintains.
        assert_eq!(Shape::of(&[2, 3]), Shape::of(&[2, 3]));
        assert_ne!(Shape::of(&[2, 3]), Shape::of(&[2, 3, 1]));
        assert_ne!(Shape::of(&[6]), Shape::of(&[6, 1]));
    }
}
