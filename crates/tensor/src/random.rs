//! Deterministic random tensor initialisation.
//!
//! A fully in-house seeded PRNG (xoshiro256++ with splitmix64 seeding)
//! plus Box–Muller normal sampling, so the workspace needs no external
//! randomness crate at all. Every experiment in the paper reproduction
//! is seeded, which makes tables exactly reproducible.
//!
//! # Seeding scheme
//!
//! The cohort execution engine runs individuals concurrently, so
//! per-individual randomness must never depend on *draw order* — the
//! stream an individual sees has to be a pure function of
//! `(run seed, stream id)`, not of how many draws other individuals
//! made first. The workspace therefore derives streams in two ways:
//!
//! * [`derive_stream_seed`]`(seed, stream)` — a SplitMix64 chain over
//!   the `(seed, stream)` pair, producing a well-mixed 64-bit child
//!   seed. This is the scheme for "individual `i` of run `s`":
//!   `derive_stream_seed(run_seed, individual_id)`. Adjacent stream ids
//!   give uncorrelated children, and the map is injective enough in
//!   practice that streams never collide (property-tested for pairwise
//!   non-overlap in `crates/tensor/tests/properties.rs`).
//! * [`Rng64::split`]`(stream)` — the same derivation anchored at a
//!   generator's *construction-time* seed material (its root), so
//!   splitting is independent of both draw order and split order:
//!   `rng.split(7)` yields the same stream whether called before or
//!   after any number of draws or other splits.
//!
//! [`Rng64::fork`] remains for call sites that *want* sequential
//! dependence (a one-off child whose identity doesn't matter); anything
//! iterated per individual/condition must use `split` or
//! `derive_stream_seed` so results are identical at every thread count.

use crate::Tensor;

/// Expands a 64-bit seed into well-mixed state words (splitmix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed of child stream `stream` from `seed` — a pure
/// function of the pair, independent of any generator state. Two
/// SplitMix64 rounds fold the stream id into the seed so that adjacent
/// `(seed, stream)` pairs land far apart in seed space.
#[must_use]
pub fn derive_stream_seed(seed: u64, stream: u64) -> u64 {
    let mut sm = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let a = splitmix64(&mut sm);
    // A second round keyed on the raw stream id breaks the (unlikely)
    // case where two (seed, stream) pairs collide after one round.
    let mut sm2 = a.wrapping_add(stream);
    splitmix64(&mut sm2)
}

/// A seeded random source for tensor initialisation and data generation.
///
/// The core generator is xoshiro256++ — 256 bits of state, period
/// 2^256 − 1, no external dependencies — seeded through splitmix64 so
/// that even adjacent integer seeds give uncorrelated streams. Normal
/// sampling uses the Box–Muller transform.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: [u64; 4],
    /// The seed this generator was constructed from; anchor for
    /// [`Rng64::split`] so stream derivation ignores draw order.
    root: u64,
    /// Cached second normal sample from the last Box–Muller pair.
    spare: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            root: seed,
            spare: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with full 53-bit mantissa resolution.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_in bounds inverted: {lo} >= {hi}");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        // Lemire's widening-multiply trick with a rejection loop to
        // remove the (already tiny) modulo bias entirely.
        let n = n as u64;
        let threshold = n.wrapping_neg() % n;
        loop {
            let wide = u128::from(self.next_u64()) * u128::from(n);
            if (wide as u64) >= threshold {
                return (wide >> 64) as usize;
            }
        }
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std < 0`.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std >= 0.0, "negative standard deviation {std}");
        mean + std * self.normal()
    }

    /// Bernoulli sample with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        self.uniform() < p
    }

    /// A random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            p.swap(i, j);
        }
        p
    }

    /// Splits off an independent generator seeded from this one, so
    /// per-individual streams do not interact. The child depends on how
    /// many draws preceded the call — for order-independent streams use
    /// [`Rng64::split`] instead (see the module docs).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from(self.next_u64())
    }

    /// Derives the independent child stream `stream` of this generator.
    ///
    /// The child is a pure function of `(construction seed, stream)`:
    /// splitting is unaffected by draws on `self`, by other splits, and
    /// by the order splits happen in. This is what makes per-individual
    /// seeding safe under the parallel cohort executor — individual `i`
    /// sees the same stream at any thread count and schedule.
    #[must_use]
    pub fn split(&self, stream: u64) -> Rng64 {
        Rng64::seed_from(derive_stream_seed(self.root, stream))
    }

    /// The seed this generator was constructed from (the anchor of
    /// [`Rng64::split`]).
    #[must_use]
    pub fn root_seed(&self) -> u64 {
        self.root
    }
}

impl Tensor {
    /// Tensor with i.i.d. uniform entries in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics on an invalid shape or inverted bounds.
    #[must_use]
    pub fn rand_uniform(dims: &[usize], lo: f64, hi: f64, rng: &mut Rng64) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            *v = rng.uniform_in(lo, hi);
        }
        t
    }

    /// Tensor with i.i.d. normal entries.
    ///
    /// # Panics
    /// Panics on an invalid shape or negative std.
    #[must_use]
    pub fn rand_normal(dims: &[usize], mean: f64, std: f64, rng: &mut Rng64) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            *v = rng.normal_with(mean, std);
        }
        t
    }

    /// Xavier/Glorot uniform initialisation for a `[fan_out, fan_in]`
    /// weight matrix: uniform in `±sqrt(6 / (fan_in + fan_out))`.
    ///
    /// # Panics
    /// Panics unless `dims` has rank 2.
    #[must_use]
    pub fn xavier_uniform(dims: &[usize], rng: &mut Rng64) -> Tensor {
        assert_eq!(dims.len(), 2, "xavier init expects a weight matrix");
        let bound = (6.0 / (dims[0] + dims[1]) as f64).sqrt();
        Tensor::rand_uniform(dims, -bound, bound, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_stream_is_pinned() {
        // Golden values: the exact xoshiro256++ stream for seed 42. If
        // this test fails, every seeded experiment in the workspace has
        // silently changed — treat as a breaking change.
        let mut rng = Rng64::seed_from(42);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xd076_4d4f_4476_689f,
                0x519e_4174_576f_3791,
                0xfbe0_7cfb_0c24_ed8c,
                0xb37d_9f60_0cd8_35b8,
            ]
        );
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Rng64::seed_from(42);
        let mut b = Rng64::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.normal(), b.normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from(1);
        let mut b = Rng64::seed_from(2);
        let same = (0..16).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 16);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng64::seed_from(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn bernoulli_rate_is_sane() {
        let mut rng = Rng64::seed_from(3);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = Rng64::seed_from(9);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Rng64::seed_from(11);
        let w = Tensor::xavier_uniform(&[32, 64], &mut rng);
        let bound = (6.0 / 96.0f64).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        // Should not be degenerate.
        assert!(w.std() > bound / 4.0);
    }

    #[test]
    fn split_ignores_draw_and_split_order() {
        let mut a = Rng64::seed_from(5);
        let b = Rng64::seed_from(5);
        // Disturb `a` with draws and unrelated splits.
        for _ in 0..100 {
            let _ = a.next_u64();
        }
        let _ = a.split(3);
        let got: Vec<u64> = {
            let mut s = a.split(7);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let want: Vec<u64> = {
            let mut s = b.split(7);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(got, want);
    }

    #[test]
    fn split_streams_differ_from_parent_and_each_other() {
        let parent = Rng64::seed_from(5);
        let mut p = parent.clone();
        let mut c1 = parent.split(0);
        let mut c2 = parent.split(1);
        let a: Vec<u64> = (0..8).map(|_| p.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_stream_seed_is_stable_and_spreads() {
        assert_eq!(derive_stream_seed(42, 0), derive_stream_seed(42, 0));
        // Adjacent ids must not collide or come out sequential.
        let s0 = derive_stream_seed(42, 0);
        let s1 = derive_stream_seed(42, 1);
        assert_ne!(s0, s1);
        assert!(s0.abs_diff(s1) > 1 << 20, "adjacent streams too close");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng64::seed_from(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let a: Vec<f64> = (0..8).map(|_| c1.uniform()).collect();
        let b: Vec<f64> = (0..8).map(|_| c2.uniform()).collect();
        assert_ne!(a, b);
    }
}
