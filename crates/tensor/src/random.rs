//! Deterministic random tensor initialisation.
//!
//! A thin wrapper over a seeded PRNG plus Box–Muller normal sampling so
//! the workspace does not need `rand_distr`. Every experiment in the
//! paper reproduction is seeded, which makes tables exactly reproducible.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source for tensor initialisation and data generation.
///
/// Wraps [`rand::rngs::StdRng`] and adds normal sampling via the
/// Box–Muller transform.
#[derive(Debug, Clone)]
pub struct Rng64 {
    inner: StdRng,
    /// Cached second normal sample from the last Box–Muller pair.
    spare: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_in bounds inverted: {lo} >= {hi}");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std < 0`.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std >= 0.0, "negative standard deviation {std}");
        mean + std * self.normal()
    }

    /// Bernoulli sample with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        self.uniform() < p
    }

    /// A random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            p.swap(i, j);
        }
        p
    }

    /// Splits off an independent generator seeded from this one, so
    /// per-individual streams do not interact.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from(self.inner.gen::<u64>())
    }
}

impl Tensor {
    /// Tensor with i.i.d. uniform entries in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics on an invalid shape or inverted bounds.
    #[must_use]
    pub fn rand_uniform(dims: &[usize], lo: f64, hi: f64, rng: &mut Rng64) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            *v = rng.uniform_in(lo, hi);
        }
        t
    }

    /// Tensor with i.i.d. normal entries.
    ///
    /// # Panics
    /// Panics on an invalid shape or negative std.
    #[must_use]
    pub fn rand_normal(dims: &[usize], mean: f64, std: f64, rng: &mut Rng64) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            *v = rng.normal_with(mean, std);
        }
        t
    }

    /// Xavier/Glorot uniform initialisation for a `[fan_out, fan_in]`
    /// weight matrix: uniform in `±sqrt(6 / (fan_in + fan_out))`.
    ///
    /// # Panics
    /// Panics unless `dims` has rank 2.
    #[must_use]
    pub fn xavier_uniform(dims: &[usize], rng: &mut Rng64) -> Tensor {
        assert_eq!(dims.len(), 2, "xavier init expects a weight matrix");
        let bound = (6.0 / (dims[0] + dims[1]) as f64).sqrt();
        Tensor::rand_uniform(dims, -bound, bound, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Rng64::seed_from(42);
        let mut b = Rng64::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.normal(), b.normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from(1);
        let mut b = Rng64::seed_from(2);
        let same = (0..16).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 16);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng64::seed_from(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn bernoulli_rate_is_sane() {
        let mut rng = Rng64::seed_from(3);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = Rng64::seed_from(9);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Rng64::seed_from(11);
        let w = Tensor::xavier_uniform(&[32, 64], &mut rng);
        let bound = (6.0 / 96.0f64).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        // Should not be degenerate.
        assert!(w.std() > bound / 4.0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng64::seed_from(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let a: Vec<f64> = (0..8).map(|_| c1.uniform()).collect();
        let b: Vec<f64> = (0..8).map(|_| c2.uniform()).collect();
        assert_ne!(a, b);
    }
}
