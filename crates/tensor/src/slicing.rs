//! Sub-tensor extraction: row ranges, windows and axis selection.

use crate::{pool, Shape, Tensor};

impl Tensor {
    /// Extracts rows `[start, end)` of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2 and `start < end <= rows`.
    #[must_use]
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "slice_rows requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert!(
            start < end && end <= m,
            "invalid row range {start}..{end} for {m} rows"
        );
        Tensor::pooled_copy(
            Shape::of(&[end - start, n]),
            &self.data()[start * n..end * n],
        )
    }

    /// Extracts columns `[start, end)` of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2 and `start < end <= cols`.
    #[must_use]
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "slice_cols requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert!(
            start < end && end <= n,
            "invalid column range {start}..{end} for {n} columns"
        );
        let w = end - start;
        let mut data = pool::take_uninit(m * w);
        for i in 0..m {
            data[i * w..(i + 1) * w].copy_from_slice(&self.data()[i * n + start..i * n + end]);
        }
        Tensor::from_shape_pooled(Shape::of(&[m, w]), data)
    }

    /// Extracts the `i`-th slab along axis 0 of a rank-3 tensor,
    /// producing a rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is rank 3 and `i` in bounds.
    #[must_use]
    pub fn slab(&self, i: usize) -> Tensor {
        assert_eq!(self.rank(), 3, "slab requires rank 3");
        let (d0, d1, d2) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        assert!(i < d0, "slab index {i} out of bounds for {d0}");
        let size = d1 * d2;
        Tensor::pooled_copy(Shape::of(&[d1, d2]), &self.data()[i * size..(i + 1) * size])
    }

    /// Stacks rank-2 tensors of identical shape into a rank-3 tensor
    /// along a new leading axis.
    ///
    /// # Panics
    /// Panics if `slabs` is empty or shapes differ.
    #[must_use]
    pub fn stack_slabs(slabs: &[Tensor]) -> Tensor {
        assert!(!slabs.is_empty(), "cannot stack zero slabs");
        let dims = slabs[0].dims().to_vec();
        assert_eq!(dims.len(), 2, "stack_slabs expects rank-2 tensors");
        let size = slabs[0].len();
        let mut data = pool::take_uninit(slabs.len() * size);
        for (i, s) in slabs.iter().enumerate() {
            assert_eq!(s.dims(), &dims[..], "slab {i} has mismatched shape");
            data[i * size..(i + 1) * size].copy_from_slice(s.data());
        }
        Tensor::from_shape_pooled(Shape::of(&[slabs.len(), dims[0], dims[1]]), data)
    }

    /// Pads a rank-2 tensor with `before` zero-rows at the top.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2.
    #[must_use]
    pub fn pad_rows_front(&self, before: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "pad_rows_front requires rank 2");
        if before == 0 {
            return self.clone();
        }
        let n = self.dims()[1];
        Tensor::zeros(&[before, n]).vcat(self)
    }

    /// Returns the last `k` rows of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2 and `0 < k <= rows`.
    #[must_use]
    pub fn last_rows(&self, k: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "last_rows requires rank 2");
        let m = self.dims()[0];
        assert!(k > 0 && k <= m, "invalid last_rows count {k} for {m} rows");
        self.slice_rows(m - k, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensors_close;

    fn grid() -> Tensor {
        // [[0,1,2],[3,4,5],[6,7,8],[9,10,11]]
        Tensor::from_vec(&[4, 3], (0..12).map(f64::from).collect()).unwrap()
    }

    #[test]
    fn slice_rows_extracts_range() {
        let g = grid();
        let s = g.slice_rows(1, 3);
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn slice_cols_extracts_range() {
        let g = grid();
        let s = g.slice_cols(1, 3);
        assert_eq!(s.dims(), &[4, 2]);
        assert_eq!(s.row(0).data(), &[1.0, 2.0]);
        assert_eq!(s.row(3).data(), &[10.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "invalid row range")]
    fn slice_rows_checks_bounds() {
        let _ = grid().slice_rows(2, 5);
    }

    #[test]
    fn slab_round_trip() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let s = Tensor::stack_slabs(&[a.clone(), b.clone()]);
        assert_eq!(s.dims(), &[2, 2, 3]);
        assert_tensors_close(&s.slab(0), &a, 0.0);
        assert_tensors_close(&s.slab(1), &b, 0.0);
    }

    #[test]
    fn pad_rows_front_prepends_zeros() {
        let g = grid();
        let p = g.pad_rows_front(2);
        assert_eq!(p.dims(), &[6, 3]);
        assert_eq!(p.row(0).data(), &[0.0, 0.0, 0.0]);
        assert_tensors_close(&p.slice_rows(2, 6), &g, 0.0);
    }

    #[test]
    fn last_rows_takes_tail() {
        let g = grid();
        let t = g.last_rows(1);
        assert_eq!(t.data(), &[9.0, 10.0, 11.0]);
    }
}
