//! # ema-tensor
//!
//! Dense, row-major `f64` tensor primitives for the `ema-gnn` workspace.
//!
//! The EMA forecasting problem operates at a small scale (26 variables,
//! ~140 time points, hidden sizes of 32), so this crate favours a simple,
//! exactly-reproducible CPU implementation over BLAS bindings: a tensor is
//! a contiguous `Vec<f64>` plus a [`Shape`]. All higher layers
//! (`ema-autodiff`, `ema-nn`, the models) build on the operations here.
//!
//! ## Conventions
//!
//! * Storage is **row-major** (C order, last axis fastest).
//! * Binary elementwise operations require *identical* shapes, except for
//!   the documented broadcast helpers ([`Tensor::add_row_broadcast`] and
//!   friends).
//! * Operations that can only fail through programmer error (shape
//!   mismatch) **panic** with a descriptive message, mirroring `ndarray`;
//!   fallible construction from external data returns [`TensorError`].
//!
//! ## Quick example
//!
//! ```
//! use ema_tensor::Tensor;
//!
//! let a = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![warn(missing_docs)]

pub mod backend;
mod display;
mod error;
pub mod kernels;
mod linalg;
mod ops;
pub mod pool;
mod random;
mod reduce;
mod shape;
#[cfg(target_arch = "x86_64")]
mod simd;
mod slicing;
mod solve;
mod tensor;

pub use backend::{
    kernel_counters, kernel_counting_enabled, set_kernel_backend, set_kernel_counting,
    take_kernel_counters, with_kernel_backend, KernelBackend, KernelCounters,
    KernelCountersSnapshot, KernelScope,
};
pub use error::TensorError;
pub use pool::{PoolStats, PooledBuf};
pub use random::{derive_stream_seed, Rng64};
pub use shape::Shape;
pub use tensor::Tensor;

/// Absolute tolerance used by the crate's approximate comparisons.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Returns `true` when `a` and `b` are within `tol` of each other,
/// treating any pair of NaNs as equal (useful in tests).
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= tol
}

/// Asserts that two tensors have the same shape and element-wise match
/// within `tol`. Intended for tests across the workspace.
///
/// # Panics
/// Panics with a detailed message on the first mismatching element.
pub fn assert_tensors_close(a: &Tensor, b: &Tensor, tol: f64) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "shape mismatch: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    for (i, (&x, &y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert!(
            approx_eq(x, y, tol),
            "tensors differ at flat index {i}: {x} vs {y} (tol {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_handles_nan_pairs() {
        assert!(approx_eq(f64::NAN, f64::NAN, 0.0));
        assert!(!approx_eq(f64::NAN, 1.0, 1.0));
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn assert_tensors_close_accepts_equal() {
        let a = Tensor::filled(&[2, 2], 1.5);
        let b = Tensor::filled(&[2, 2], 1.5);
        assert_tensors_close(&a, &b, 0.0);
    }
}
