//! Per-thread buffer pool for tensor storage.
//!
//! Full-batch EMA training re-presents the *same* tensor shapes every
//! epoch (300 times per individual), so recycling `Vec<f64>` buffers by
//! exact length turns nearly every hot-path allocation into a pop from
//! a thread-local free list. The pool is deliberately simple:
//!
//! * **Length-keyed, exact match.** Buffers are binned by element
//!   count; a request only ever reuses a buffer of identical length, so
//!   pooled tensors are indistinguishable from freshly allocated ones.
//! * **Thread-local, no locks on the hot path.** Each worker owns its
//!   pool; the cohort executor hands pools across runs via
//!   [`stash_local`] / [`adopt_stashed`] because its scoped worker
//!   threads die at the end of every run.
//! * **Determinism-safe.** A buffer from [`take_uninit`] carries stale
//!   `f64` values (always valid bit patterns — no `unsafe`), and every
//!   caller must overwrite all of it; [`take_zeroed`] / [`take_filled`]
//!   reset contents for accumulate-style kernels. Whether a request
//!   hits or misses the pool can never change numerical results.
//!
//! [`Tensor`](crate::Tensor) integrates automatically: its `Drop`
//! recycles the storage and its constructors draw from the pool, so
//! plain tensor code is pooled without any API change. [`PooledBuf`] is
//! the RAII handle for raw scratch buffers outside tensors.

use std::cell::RefCell;
use std::sync::Mutex;

/// Maximum number of distinct buffer lengths tracked per thread.
const MAX_CLASSES: usize = 64;
/// Maximum free buffers kept per length class.
const MAX_PER_CLASS: usize = 16;
/// Buffers above this element count are never pooled (8 MiB of f64).
const MAX_POOLED_LEN: usize = 1 << 20;
/// Maximum worker pools parked on the cross-run shelf.
const MAX_STASHED: usize = 8;

/// Cumulative counters for one thread's pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from the free list.
    pub hits: u64,
    /// Requests that fell back to a fresh heap allocation.
    pub misses: u64,
    /// Buffers accepted back into the free list.
    pub recycled: u64,
    /// Buffers rejected (class/size caps) and freed normally.
    pub dropped: u64,
}

#[derive(Debug, Default)]
struct Pool {
    /// `(len, free buffers)` bins; linear scan — the working set of a
    /// training loop is a few dozen distinct lengths at most.
    classes: Vec<(usize, Vec<Vec<f64>>)>,
    stats: PoolStats,
}

impl Pool {
    fn take(&mut self, len: usize) -> Option<Vec<f64>> {
        for (l, bufs) in &mut self.classes {
            if *l == len {
                if let Some(buf) = bufs.pop() {
                    self.stats.hits += 1;
                    return Some(buf);
                }
                break;
            }
        }
        self.stats.misses += 1;
        None
    }

    fn put(&mut self, buf: Vec<f64>) {
        let len = buf.len();
        if len == 0 || len > MAX_POOLED_LEN {
            self.stats.dropped += 1;
            return;
        }
        for (l, bufs) in &mut self.classes {
            if *l == len {
                if bufs.len() < MAX_PER_CLASS {
                    bufs.push(buf);
                    self.stats.recycled += 1;
                } else {
                    self.stats.dropped += 1;
                }
                return;
            }
        }
        if self.classes.len() < MAX_CLASSES {
            self.classes.push((len, vec![buf]));
            self.stats.recycled += 1;
        } else {
            self.stats.dropped += 1;
        }
    }

    /// Merges another pool's free buffers in (stats untouched — the
    /// buffers were already accounted for by the thread that freed
    /// them).
    fn absorb(&mut self, other: Pool) {
        for (len, bufs) in other.classes {
            for buf in bufs {
                if let Some((_, bin)) = self.classes.iter_mut().find(|(l, _)| *l == len) {
                    if bin.len() < MAX_PER_CLASS {
                        bin.push(buf);
                    }
                } else if self.classes.len() < MAX_CLASSES {
                    self.classes.push((len, vec![buf]));
                }
            }
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Parked worker pools, handed across executor runs (whose scoped
/// threads do not outlive a run).
static SHELF: Mutex<Vec<Pool>> = Mutex::new(Vec::new());

/// Takes a recycled buffer of exactly `len` elements, or allocates one.
///
/// The contents are **stale** on a pool hit (valid `f64`s from a
/// previous tensor): the caller must overwrite every element before the
/// buffer becomes observable, or determinism breaks. Use
/// [`take_zeroed`] when the op accumulates instead of overwriting.
#[must_use]
pub fn take_uninit(len: usize) -> Vec<f64> {
    POOL.try_with(|p| p.borrow_mut().take(len))
        .ok()
        .flatten()
        .unwrap_or_else(|| vec![0.0; len])
}

/// Takes a buffer of `len` zeros.
#[must_use]
pub fn take_zeroed(len: usize) -> Vec<f64> {
    take_filled(len, 0.0)
}

/// Takes a buffer of `len` copies of `value`.
#[must_use]
pub fn take_filled(len: usize, value: f64) -> Vec<f64> {
    match POOL.try_with(|p| p.borrow_mut().take(len)).ok().flatten() {
        Some(mut buf) => {
            buf.fill(value);
            buf
        }
        None => vec![value; len],
    }
}

/// Returns a buffer to the current thread's pool (or frees it when the
/// pool is at capacity). Empty buffers are ignored.
pub fn recycle(buf: Vec<f64>) {
    if buf.is_empty() {
        return;
    }
    // During thread-local teardown the pool may already be gone; the
    // buffer then just drops normally.
    let _ = POOL.try_with(|p| p.borrow_mut().put(buf));
}

/// Snapshot of the current thread's pool counters.
#[must_use]
pub fn stats() -> PoolStats {
    POOL.try_with(|p| p.borrow().stats).unwrap_or_default()
}

/// Parks the current thread's free buffers on the process-wide shelf so
/// a future worker thread can [`adopt_stashed`] them. Stats stay with
/// the thread; only the buffers move. No-op when the shelf is full.
pub fn stash_local() {
    let pool = match POOL.try_with(|p| {
        let inner = &mut *p.borrow_mut();
        Pool {
            classes: std::mem::take(&mut inner.classes),
            stats: PoolStats::default(),
        }
    }) {
        Ok(pool) if !pool.classes.is_empty() => pool,
        _ => return,
    };
    if let Ok(mut shelf) = SHELF.lock() {
        if shelf.len() < MAX_STASHED {
            shelf.push(pool);
        }
    }
}

/// Adopts one parked pool from the shelf into the current thread, if
/// any. Called by executor workers at startup so buffer reuse survives
/// the death of the previous run's threads.
pub fn adopt_stashed() {
    let Some(parked) = SHELF.lock().ok().and_then(|mut s| s.pop()) else {
        return;
    };
    let _ = POOL.try_with(|p| p.borrow_mut().absorb(parked));
}

/// RAII handle over a pooled scratch buffer: derefs to `[f64]` and
/// recycles on drop. For raw workspaces outside [`crate::Tensor`].
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<f64>,
}

impl PooledBuf {
    /// A pooled buffer of `len` stale-but-valid elements; the caller
    /// must overwrite all of them (see [`take_uninit`]).
    #[must_use]
    pub fn uninit(len: usize) -> Self {
        Self {
            buf: take_uninit(len),
        }
    }

    /// A pooled buffer of `len` zeros.
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        Self {
            buf: take_zeroed(len),
        }
    }

    /// Releases the buffer without recycling it.
    #[must_use]
    pub fn into_inner(mut self) -> Vec<f64> {
        std::mem::take(&mut self.buf)
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffer_is_reused_by_length() {
        let before = stats();
        let buf = take_uninit(4099); // length no other test uses
        recycle(buf);
        let buf = take_uninit(4099);
        let after = stats();
        assert_eq!(buf.len(), 4099);
        assert!(after.hits > before.hits, "second take must hit the pool");
        assert!(after.recycled > before.recycled);
        recycle(buf);
    }

    #[test]
    fn take_filled_resets_stale_contents() {
        let mut buf = take_uninit(523);
        buf.iter_mut().for_each(|v| *v = 9.9);
        recycle(buf);
        let buf = take_filled(523, 1.5);
        assert!(buf.iter().all(|&v| v == 1.5));
        let buf2 = take_zeroed(523);
        assert!(buf2.iter().all(|&v| v == 0.0));
        recycle(buf);
        recycle(buf2);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let before = stats();
        recycle(vec![0.0; MAX_POOLED_LEN + 1]);
        let after = stats();
        assert_eq!(after.recycled, before.recycled);
        assert!(after.dropped > before.dropped);
    }

    #[test]
    fn pooled_buf_raii_recycles() {
        let before = stats();
        {
            let mut b = PooledBuf::zeroed(777);
            b[0] = 1.0;
            assert_eq!(b.len(), 777);
        }
        let after = stats();
        assert!(after.recycled > before.recycled, "drop must recycle");
        let reused = take_uninit(777);
        assert!(stats().hits > after.hits);
        recycle(reused);
    }

    #[test]
    fn shelf_hands_buffers_across_threads() {
        // Seed a recognisable class, park it, and adopt it elsewhere.
        std::thread::spawn(|| {
            recycle(vec![0.0; 6007]);
            stash_local();
        })
        .join()
        .unwrap();
        std::thread::spawn(|| {
            adopt_stashed();
            let before = stats();
            let buf = take_uninit(6007);
            assert_eq!(buf.len(), 6007);
            assert!(stats().hits > before.hits, "adopted buffer must hit");
        })
        .join()
        .unwrap();
    }
}
