//! Raw slice-level matmul kernels: the `_into` batched twins of the
//! `Tensor` methods in `linalg.rs`.
//!
//! The batched autodiff backward pass replays per-window gradient
//! pieces on contiguous row-block *slices* of larger tensors; going
//! through `Tensor` would force a copy per block. These free functions
//! run the exact same kernels on `&[f64]` operands with explicit
//! dimensions. Each one is **bit-identical** to its `Tensor` twin — it
//! shares the private accumulation kernel and the pooled-repack idiom,
//! so the bit-identity contract documented in `linalg.rs` carries over
//! unchanged (property-tested in `crates/tensor/tests/properties.rs`).
//!
//! All kernels fully overwrite `out` (callers may pass stale pooled
//! buffers from [`pool::take_uninit`]).

use crate::linalg::matmul_accumulate;
use crate::pool;

/// `out = a · b` for row-major `a: [m,k]`, `b: [k,n]`, `out: [m,n]`.
/// Bit-identical to [`crate::Tensor::matmul`].
///
/// # Panics
/// Panics when a slice length disagrees with its dimensions.
pub fn matmul_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_into lhs length");
    assert_eq!(b.len(), k * n, "matmul_into rhs length");
    assert_eq!(out.len(), m * n, "matmul_into out length");
    out.fill(0.0);
    matmul_accumulate(a, b, out, m, k, n);
}

/// `out = aᵀ · b` for `a: [k,m]`, `b: [k,n]`, `out: [m,n]`.
/// Bit-identical to [`crate::Tensor::matmul_tn`].
///
/// # Panics
/// Panics when a slice length disagrees with its dimensions.
pub fn matmul_tn_into(a: &[f64], b: &[f64], out: &mut [f64], k: usize, m: usize, n: usize) {
    assert_eq!(a.len(), k * m, "matmul_tn_into lhs length");
    assert_eq!(b.len(), k * n, "matmul_tn_into rhs length");
    assert_eq!(out.len(), m * n, "matmul_tn_into out length");
    // Same pooled repack as `Tensor::matmul_tn`: the repacked element is
    // the value the reference kernel reads after an explicit transpose,
    // so accumulation order and the zero skip stay bit-identical.
    let mut at = pool::take_uninit(m * k);
    for (p, arow) in a.chunks_exact(m).enumerate() {
        for (i, &av) in arow.iter().enumerate() {
            at[i * k + p] = av;
        }
    }
    out.fill(0.0);
    matmul_accumulate(&at, b, out, m, k, n);
    pool::recycle(at);
}

/// `out = a · bᵀ` for `a: [m,k]`, `b: [n,k]`, `out: [m,n]`.
/// Bit-identical to [`crate::Tensor::matmul_nt`].
///
/// # Panics
/// Panics when a slice length disagrees with its dimensions.
pub fn matmul_nt_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_nt_into lhs length");
    assert_eq!(b.len(), n * k, "matmul_nt_into rhs length");
    assert_eq!(out.len(), m * n, "matmul_nt_into out length");
    let mut bt = pool::take_uninit(k * n);
    for (j, brow) in b.chunks_exact(k).enumerate() {
        for (p, &bv) in brow.iter().enumerate() {
            bt[p * n + j] = bv;
        }
    }
    out.fill(0.0);
    matmul_accumulate(a, &bt, out, m, k, n);
    pool::recycle(bt);
}

/// `out = a · wᵀ + bias` for `a: [m,k]`, `w: [n,k]`, `bias: [n]`,
/// `out: [m,n]`. Bit-identical to [`crate::Tensor::addmm`]: same
/// pooled wᵀ repack, same zeroed accumulation, and the bias is added
/// *after* each output's accumulation completes (the composed
/// ordering).
///
/// # Panics
/// Panics when a slice length disagrees with its dimensions.
pub fn addmm_into(
    a: &[f64],
    w: &[f64],
    bias: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "addmm_into lhs length");
    assert_eq!(w.len(), n * k, "addmm_into weight length");
    assert_eq!(bias.len(), n, "addmm_into bias length");
    assert_eq!(out.len(), m * n, "addmm_into out length");
    let mut wt = pool::take_uninit(k * n);
    for (j, wrow) in w.chunks_exact(k).enumerate() {
        for (p, &wv) in wrow.iter().enumerate() {
            wt[p * n + j] = wv;
        }
    }
    out.fill(0.0);
    matmul_accumulate(a, &wt, out, m, k, n);
    pool::recycle(wt);
    for orow in out.chunks_exact_mut(n) {
        for (o, &bv) in orow.iter_mut().zip(bias) {
            *o += bv;
        }
    }
}

/// `out[j] = Σ_i a[i,j]` for `a: [m,n]`, `out: [n]` — ascending-row
/// accumulation from `0.0` per column, bit-identical to
/// [`crate::Tensor::col_sums`].
///
/// # Panics
/// Panics when a slice length disagrees with its dimensions.
pub fn col_sums_into(a: &[f64], out: &mut [f64], m: usize, n: usize) {
    assert_eq!(a.len(), m * n, "col_sums_into input length");
    assert_eq!(out.len(), n, "col_sums_into out length");
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..m {
            acc += a[i * n + j];
        }
        *o = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rng64, Tensor};

    fn rand(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        Tensor::rand_normal(dims, 0.0, 1.0, &mut rng)
    }

    #[test]
    fn matmul_into_matches_tensor_twin() {
        let a = rand(&[4, 3], 1);
        let b = rand(&[3, 5], 2);
        let mut out = vec![9.9; 20];
        matmul_into(a.data(), b.data(), &mut out, 4, 3, 5);
        assert_eq!(out, a.matmul(&b).data());
    }

    #[test]
    fn matmul_tn_into_matches_tensor_twin() {
        let a = rand(&[4, 3], 3);
        let b = rand(&[4, 5], 4);
        let mut out = vec![9.9; 15];
        matmul_tn_into(a.data(), b.data(), &mut out, 4, 3, 5);
        assert_eq!(out, a.matmul_tn(&b).data());
    }

    #[test]
    fn matmul_nt_into_matches_tensor_twin() {
        let a = rand(&[4, 3], 5);
        let b = rand(&[5, 3], 6);
        let mut out = vec![9.9; 20];
        matmul_nt_into(a.data(), b.data(), &mut out, 4, 3, 5);
        assert_eq!(out, a.matmul_nt(&b).data());
    }

    #[test]
    fn addmm_into_matches_tensor_twin() {
        let x = rand(&[4, 3], 10);
        let w = rand(&[5, 3], 11);
        let bias = rand(&[5], 12);
        let mut out = vec![9.9; 20];
        addmm_into(x.data(), w.data(), bias.data(), &mut out, 4, 3, 5);
        assert_eq!(out, x.addmm(&w, &bias).data());
    }

    #[test]
    fn addmm_into_row_block_matches_sliced_tensor() {
        // Per-group use: one contiguous row block of a cohort stack
        // must produce the same bits as the per-individual addmm.
        let stacked = rand(&[6, 3], 13); // three [2, 3] blocks
        let w = rand(&[4, 3], 14);
        let bias = rand(&[4], 15);
        for g in 0..3 {
            let block = &stacked.data()[g * 6..(g + 1) * 6];
            let mut out = vec![0.0; 8];
            addmm_into(block, w.data(), bias.data(), &mut out, 2, 3, 4);
            let reference = stacked.slice_rows(g * 2, (g + 1) * 2).addmm(&w, &bias);
            assert_eq!(out, reference.data());
        }
    }

    #[test]
    fn col_sums_into_matches_tensor_twin() {
        let a = rand(&[6, 4], 7);
        let mut out = vec![9.9; 4];
        col_sums_into(a.data(), &mut out, 6, 4);
        assert_eq!(out, a.col_sums().data());
    }

    #[test]
    fn row_block_slice_matches_sliced_tensor() {
        // The intended use: operate on one contiguous row block of a
        // stacked tensor without copying it out first.
        let stacked = rand(&[6, 3], 8); // three [2, 3] blocks
        let rhs = rand(&[3, 4], 9);
        for w in 0..3 {
            let block = &stacked.data()[w * 6..(w + 1) * 6];
            let mut out = vec![0.0; 8];
            matmul_into(block, rhs.data(), &mut out, 2, 3, 4);
            let reference = stacked.slice_rows(w * 2, (w + 1) * 2).matmul(&rhs);
            assert_eq!(out, reference.data());
        }
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn matmul_into_checks_lengths() {
        let mut out = vec![0.0; 4];
        matmul_into(&[1.0; 5], &[1.0; 4], &mut out, 2, 2, 2);
    }
}
