//! AVX2+FMA twin of the scalar matmul accumulation kernel
//! (`linalg::matmul_accumulate_scalar`), x86_64 only.
//!
//! ## Lane-ordered accumulation contract
//!
//! The vector kernel keeps the *structure* of the scalar oracle
//! exactly — the same i/j-only cache blocking, the same 32/16/8/4-wide
//! span decomposition, one ascending-`k` pass per output element, and
//! the same `lhs == 0.0` skip — and changes exactly one thing: every
//! multiply-add is **fused** (`vfmaddpd` / `f64::mul_add`, one rounding
//! instead of two). Vector lanes hold *independent output columns*, so
//! no element's sum is ever split or reordered across lanes; each
//! output element is the plain recurrence
//!
//! ```text
//! acc := fma(a[i, p], b[p, j], acc)   for p = 0, 1, …, k-1 (skipping 0s)
//! ```
//!
//! which makes the kernel's results
//!
//! * **self-deterministic** — byte-identical across runs, span widths,
//!   blocked/unblocked paths and thread counts (property-tested in
//!   `crates/tensor/tests/backend_equivalence.rs` against a scalar
//!   `mul_add` reference implementing the recurrence verbatim), and
//! * within strict relative tolerance of the scalar oracle — each FMA
//!   commits at most one half-ulp less rounding error than the
//!   separately rounded multiply+add, so element-wise
//!   `|simd − scalar| ≤ (k + 1)·ε·Σₚ|a[i,p]·b[p,j]|`.

use crate::linalg::{MM_BLOCK, MM_BLOCK_THRESHOLD};
use core::arch::x86_64::{
    __m256d, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd, _mm256_storeu_pd,
};

/// Accumulates `out[i, j..j+4·L] += Σ_p a[i, p] · b[p, j..j+4·L]` with
/// `L` 4-lane vector accumulators living in registers across the whole
/// `p` loop (L = 8/4/2/1 for the 32/16/8/4-wide spans).
///
/// # Safety
/// Caller must ensure AVX2+FMA are available, `b.len() ≥ (k-1)·n + j +
/// 4·L` for `k = a_row.len()`, and `out_row.len() ≥ j + 4·L`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn accum_tile<const L: usize>(
    a_row: &[f64],
    b: &[f64],
    out_row: &mut [f64],
    n: usize,
    j: usize,
) {
    debug_assert!(out_row.len() >= j + 4 * L);
    debug_assert!(b.len() + n >= a_row.len() * n + j + 4 * L);
    let out_ptr = out_row.as_mut_ptr().add(j);
    // SAFETY (closure): `out_ptr + 4·l + 3` stays within `out_row` by
    // the length precondition above.
    let mut acc: [__m256d; L] =
        core::array::from_fn(|l| unsafe { _mm256_loadu_pd(out_ptr.add(4 * l)) });
    let b_ptr = b.as_ptr().add(j);
    for (p, &aip) in a_row.iter().enumerate() {
        if aip == 0.0 {
            continue;
        }
        let av = _mm256_set1_pd(aip);
        let brow = b_ptr.add(p * n);
        for (l, acc_l) in acc.iter_mut().enumerate() {
            *acc_l = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow.add(4 * l)), *acc_l);
        }
    }
    for (l, acc_l) in acc.iter().enumerate() {
        _mm256_storeu_pd(out_ptr.add(4 * l), *acc_l);
    }
}

/// Vector twin of `linalg::accum_row_span`: decomposes one output row
/// span into 32/16/8/4-wide register tiles plus a fused-multiply-add
/// scalar tail, so every element of the span follows the lane-ordered
/// contract above.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available and the slice geometry of
/// [`matmul_accumulate_simd`] holds with `jb ≤ j_end ≤ n`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn accum_row_span(
    a_row: &[f64],
    b: &[f64],
    out_row: &mut [f64],
    n: usize,
    jb: usize,
    j_end: usize,
) {
    let mut j = jb;
    while j + 32 <= j_end {
        accum_tile::<8>(a_row, b, out_row, n, j);
        j += 32;
    }
    if j + 16 <= j_end {
        accum_tile::<4>(a_row, b, out_row, n, j);
        j += 16;
    }
    if j + 8 <= j_end {
        accum_tile::<2>(a_row, b, out_row, n, j);
        j += 8;
    }
    if j + 4 <= j_end {
        accum_tile::<1>(a_row, b, out_row, n, j);
        j += 4;
    }
    if j < j_end {
        // Scalar tail: `mul_add` compiles to the scalar FMA instruction
        // inside this `target_feature(fma)` context, so tail elements
        // round exactly like lane elements.
        for (p, &aip) in a_row.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n + j..p * n + j_end];
            let orow = &mut out_row[j..j_end];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = aip.mul_add(bv, *o);
            }
        }
    }
}

/// The whole accumulation — blocking decision, i/j tiles, span
/// decomposition — inside one `target_feature` unit so the span and
/// tile helpers inline into fully vectorized loops.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available and the slice lengths
/// match the dimensions (`a: m·k`, `b: k·n`, `out: m·n`).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matmul_accumulate_avx2(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    if m * n * k >= MM_BLOCK_THRESHOLD && n > MM_BLOCK {
        // Same i/j-only tiling as the scalar kernel: each element's p
        // loop still runs 0..k in one ascending pass.
        for ib in (0..m).step_by(MM_BLOCK) {
            let i_end = (ib + MM_BLOCK).min(m);
            for jb in (0..n).step_by(MM_BLOCK) {
                let j_end = (jb + MM_BLOCK).min(n);
                for i in ib..i_end {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * n..(i + 1) * n];
                    accum_row_span(a_row, b, out_row, n, jb, j_end);
                }
            }
        }
        return;
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        accum_row_span(a_row, b, out_row, n, 0, n);
    }
}

/// AVX2+FMA twin of `linalg::matmul_accumulate_scalar`: accumulates
/// `out += a · b` for row-major `a [m, k]`, `b [k, n]` under the
/// lane-ordered contract documented in this module's header.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available on the running CPU
/// (`KernelBackend::active() == Simd` guarantees this); slice-length
/// mismatches panic like the scalar twin.
pub(crate) unsafe fn matmul_accumulate_simd(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "matmul lhs length");
    assert_eq!(b.len(), k * n, "matmul rhs length");
    assert_eq!(out.len(), m * n, "matmul out length");
    matmul_accumulate_avx2(a, b, out, m, k, n)
}

#[cfg(test)]
mod tests {
    use crate::{KernelBackend, Rng64, Tensor};

    /// The SIMD contract's reference recurrence, verbatim: ascending-p
    /// fused multiply-add from `0.0`, skipping `lhs == 0.0`.
    fn naive_fma_matmul(a: &Tensor, b: &Tensor) -> Vec<f64> {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    let aip = a.data()[i * k + p];
                    if aip == 0.0 {
                        continue;
                    }
                    acc = aip.mul_add(b.data()[p * n + j], acc);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn simd_matmul_matches_fma_reference_bitwise() {
        if !KernelBackend::simd_available() {
            return;
        }
        let mut rng = Rng64::seed_from(11);
        // 37 columns = 32-tile + 4-tile + 1 tail; 9 rows, k = 13.
        let a = Tensor::rand_normal(&[9, 13], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[13, 37], 0.0, 1.0, &mut rng);
        let got = crate::backend::with_kernel_backend(KernelBackend::Simd, || a.matmul(&b));
        assert_eq!(got.data(), naive_fma_matmul(&a, &b).as_slice());
    }

    #[test]
    fn simd_blocked_path_matches_fma_reference_bitwise() {
        if !KernelBackend::simd_available() {
            return;
        }
        let mut rng = Rng64::seed_from(12);
        // 64·65·64 ≥ MM_BLOCK_THRESHOLD with n = 65 > MM_BLOCK forces
        // the blocked path; its j spans are 64 (32+32) and 1 (tail).
        let a = Tensor::rand_normal(&[64, 64], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[64, 65], 0.0, 1.0, &mut rng);
        let got = crate::backend::with_kernel_backend(KernelBackend::Simd, || a.matmul(&b));
        assert_eq!(got.data(), naive_fma_matmul(&a, &b).as_slice());
    }
}
