//! Reductions: global and per-axis sums, means, extrema and statistics.

use crate::{pool, Tensor};

impl Tensor {
    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data().iter().sum()
    }

    /// Mean of all elements.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sum() / self.len() as f64
    }

    /// Sum of squared elements (the squared Frobenius/L2 norm).
    #[must_use]
    pub fn sq_sum(&self) -> f64 {
        self.data().iter().map(|&v| v * v).sum()
    }

    /// Frobenius/L2 norm of all elements.
    #[must_use]
    pub fn l2_norm(&self) -> f64 {
        self.sq_sum().sqrt()
    }

    /// Population variance of all elements.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.data().iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / self.len() as f64
    }

    /// Population standard deviation of all elements.
    #[must_use]
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Maximum element (NaNs are ignored unless all elements are NaN).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.data().iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element (NaNs are ignored unless all elements are NaN).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.data().iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Index of the maximum element in the flat buffer (first on ties).
    #[must_use]
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data().iter().enumerate() {
            if v > self.data()[best] {
                best = i;
            }
        }
        best
    }

    /// Sums along `axis`, removing it from the shape.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    #[must_use]
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        let out_shape = self.shape().without_axis(axis);
        let mut out = pool::take_uninit(out_shape.volume());
        let dims = self.dims();
        let axis_len = dims[axis];
        // Iterate over all elements of the output; for each, sum the
        // input values along the reduced axis. The row-major stride of
        // `axis` equals the product of the dimensions after it.
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        for o in 0..outer {
            for i in 0..inner {
                let base = o * axis_len * inner + i;
                let mut acc = 0.0;
                for a in 0..axis_len {
                    acc += self.data()[base + a * inner];
                }
                out[o * inner + i] = acc;
            }
        }
        Tensor::from_shape_pooled(out_shape, out)
    }

    /// Means along `axis`, removing it from the shape.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    #[must_use]
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.dims()[axis] as f64;
        self.sum_axis(axis).scale(1.0 / n)
    }

    /// Row sums of a rank-2 tensor, as `[rows]`.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2.
    #[must_use]
    pub fn row_sums(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "row_sums requires rank 2");
        self.sum_axis(1)
    }

    /// Column sums of a rank-2 tensor, as `[cols]`.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2.
    #[must_use]
    pub fn col_sums(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "col_sums requires rank 2");
        self.sum_axis(0)
    }

    /// Mean squared difference to another tensor of the same shape —
    /// the paper's Eq. (1) applied to a single individual.
    ///
    /// # Panics
    /// Panics if shapes differ.
    #[must_use]
    pub fn mse(&self, other: &Tensor) -> f64 {
        self.sub(other).square().mean()
    }

    /// Softmax over the last axis of a rank-1 or rank-2 tensor, computed
    /// with the max-subtraction trick for numerical stability.
    ///
    /// # Panics
    /// Panics if rank exceeds 2.
    #[must_use]
    pub fn softmax_last(&self) -> Tensor {
        assert!(self.rank() <= 2, "softmax_last supports rank 1 or 2");
        let (rows, cols) = if self.rank() == 1 {
            (1, self.len())
        } else {
            (self.dims()[0], self.dims()[1])
        };
        let mut out = self.clone();
        for r in 0..rows {
            let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensors_close;

    #[test]
    fn global_reductions() {
        let t = Tensor::from_vec1(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.argmax(), 3);
        assert!((t.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn sum_axis_matrix() {
        let m = Tensor::from_vec2(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.sum_axis(0).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(m.sum_axis(1).data(), &[6.0, 15.0]);
        assert_eq!(m.row_sums().data(), &[6.0, 15.0]);
        assert_eq!(m.col_sums().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn sum_axis_rank3_middle() {
        // shape [2, 3, 2]; summing axis 1 collapses the middle.
        let t = Tensor::from_vec(&[2, 3, 2], (0..12).map(f64::from).collect()).unwrap();
        let s = t.sum_axis(1);
        assert_eq!(s.dims(), &[2, 2]);
        // first block rows: [0,1],[2,3],[4,5] -> col sums [6, 9]
        assert_eq!(s.data(), &[6.0, 9.0, 24.0, 27.0]);
    }

    #[test]
    fn mean_axis_consistency() {
        let m = Tensor::from_vec2(vec![vec![2.0, 4.0], vec![6.0, 8.0]]).unwrap();
        assert_tensors_close(
            &m.mean_axis(0),
            &Tensor::from_vec1(vec![4.0, 6.0]),
            1e-12,
        );
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let a = Tensor::linspace(0.0, 1.0, 10);
        assert_eq!(a.mse(&a), 0.0);
        let b = a.add_scalar(2.0);
        assert!((a.mse(&b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Tensor::from_vec2(vec![vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]).unwrap();
        let s = m.softmax_last();
        for r in 0..2 {
            let total: f64 = (0..3).map(|c| s.at2(r, c)).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
        // monotone: larger logits -> larger probabilities
        assert!(s.at2(0, 2) > s.at2(0, 1) && s.at2(0, 1) > s.at2(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec1(vec![1.0, 2.0, 3.0]);
        let b = a.add_scalar(100.0);
        assert_tensors_close(&a.softmax_last(), &b.softmax_last(), 1e-12);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let a = Tensor::from_vec1(vec![1000.0, 1000.0]);
        let s = a.softmax_last();
        assert!((s.data()[0] - 0.5).abs() < 1e-12);
        assert!(s.all_finite());
    }
}
