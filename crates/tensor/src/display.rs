//! Human-readable formatting for tensors.

use crate::Tensor;
use std::fmt;

impl fmt::Display for Tensor {
    /// Formats small tensors fully and large ones as a shape summary.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_FULL: usize = 64;
        write!(f, "Tensor{:?}", self.dims())?;
        if self.len() > MAX_FULL {
            return write!(
                f,
                " {{ mean: {:.4}, std: {:.4}, min: {:.4}, max: {:.4} }}",
                self.mean(),
                self.std(),
                self.min(),
                self.max()
            );
        }
        match self.rank() {
            1 => {
                write!(f, " [")?;
                for (i, v) in self.data().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:.4}")?;
                }
                write!(f, "]")
            }
            2 => {
                let (m, n) = (self.dims()[0], self.dims()[1]);
                writeln!(f, " [")?;
                for i in 0..m {
                    write!(f, "  [")?;
                    for j in 0..n {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{:.4}", self.data()[i * n + j])?;
                    }
                    writeln!(f, "]")?;
                }
                write!(f, "]")
            }
            _ => write!(f, " {{ {} elements }}", self.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_display_lists_values() {
        let t = Tensor::from_vec1(vec![1.0, 2.5]);
        let s = t.to_string();
        assert!(s.contains("1.0000"));
        assert!(s.contains("2.5000"));
    }

    #[test]
    fn matrix_display_has_rows() {
        let t = Tensor::eye(2);
        let s = t.to_string();
        assert!(s.contains("[1.0000, 0.0000]"));
    }

    #[test]
    fn large_tensor_summarised() {
        let t = Tensor::zeros(&[100, 100]);
        let s = t.to_string();
        assert!(s.contains("mean"));
        assert!(!s.contains("[0.0000, 0.0000"));
    }
}
