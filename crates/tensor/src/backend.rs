//! Kernel backend selection: the vectorized SIMD hot path vs the
//! scalar bit-identity oracle.
//!
//! Every matmul-family kernel funnels through
//! `linalg::matmul_accumulate`, which dispatches on the **active**
//! [`KernelBackend`]:
//!
//! * [`KernelBackend::Scalar`] — the reference kernel. Ascending-`k`
//!   accumulation with separately rounded multiply and add; the
//!   bit-identity oracle every experiment record was built on.
//! * [`KernelBackend::Simd`] — the AVX2+FMA kernel (x86_64 only,
//!   runtime-detected). Same per-element accumulation order, but every
//!   multiply-add is *fused* (one rounding), so results agree with the
//!   scalar oracle only to tolerance. See the two-contract story in the
//!   `linalg.rs` header.
//!
//! Resolution order for [`KernelBackend::active`]:
//!
//! 1. a thread-local scope installed by [`KernelBackend::scoped`] /
//!    [`with_kernel_backend`] (how `TrainConfig::kernel_backend` pins a
//!    training run, and how equivalence tests compare backends without
//!    racing each other);
//! 2. the process-wide default: [`set_kernel_backend`] if called, else
//!    the `EMA_KERNEL` environment knob (`scalar` | `simd` | `auto`,
//!    resolved once);
//! 3. `auto` (also the fallback for unset/unknown values): `Simd` where
//!    AVX2+FMA are available, `Scalar` otherwise.
//!
//! Requesting `Simd` on a machine without AVX2+FMA is not an error —
//! `active()` normalizes it to `Scalar`, so `EMA_KERNEL=simd` is safe
//! in portable scripts. Whichever backend is active, results are fully
//! deterministic: same inputs, same backend → byte-identical outputs at
//! every thread count.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which matmul accumulation kernel the tensor crate runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Separately rounded multiply-then-add, ascending-`k` — the
    /// bit-identity oracle (see `linalg.rs`).
    Scalar,
    /// AVX2+FMA vectorized spans, ascending-`k` with fused
    /// multiply-add — the hot path where the hardware supports it.
    Simd,
}

/// Process-default encoding: 0 = unresolved (read `EMA_KERNEL` on
/// first use), 1 = scalar, 2 = simd.
static GLOBAL: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Innermost thread-local scope, if any (see [`KernelBackend::scoped`]).
    static SCOPE: Cell<Option<KernelBackend>> = const { Cell::new(None) };
}

impl KernelBackend {
    /// True when the running CPU supports the SIMD kernel (AVX2 and
    /// FMA, detected once at runtime). Always false off x86_64.
    #[must_use]
    pub fn simd_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            static AVAILABLE: OnceLock<bool> = OnceLock::new();
            *AVAILABLE.get_or_init(|| {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// The backend the current thread's kernels will actually run:
    /// thread-local scope, else process default, normalized so `Simd`
    /// is only ever returned when [`Self::simd_available`].
    #[must_use]
    pub fn active() -> Self {
        let chosen = SCOPE.with(Cell::get).unwrap_or_else(global_default);
        match chosen {
            Self::Simd if Self::simd_available() => Self::Simd,
            _ => Self::Scalar,
        }
    }

    /// Resolves the `EMA_KERNEL` environment knob: `scalar`, `simd`,
    /// or `auto` (the default for unset or unrecognized values) —
    /// `auto` picks `Simd` where available, `Scalar` otherwise.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("EMA_KERNEL").as_deref() {
            Ok("scalar") => Self::Scalar,
            Ok("simd") => Self::Simd,
            _ => {
                if Self::simd_available() {
                    Self::Simd
                } else {
                    Self::Scalar
                }
            }
        }
    }

    /// Installs `self` as the current thread's backend until the
    /// returned guard drops (scopes nest; the previous scope is
    /// restored). This is how a training run pins its backend without
    /// perturbing other threads — the cohort executor runs each job on
    /// one worker thread, so a scope opened at the top of the job body
    /// covers everything the job computes.
    #[must_use = "the scope ends when the guard drops"]
    pub fn scoped(self) -> KernelScope {
        let previous = SCOPE.with(|s| s.replace(Some(self)));
        KernelScope { previous }
    }

    /// Short lower-case name, stable across versions (used in bench
    /// records and manifests).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Simd => "simd",
        }
    }
}

/// The default backend is the thread's active one — so values plumbed
/// through configs (e.g. `TrainConfig::kernel_backend`) inherit the
/// `EMA_KERNEL` / [`set_kernel_backend`] resolution at construction.
impl Default for KernelBackend {
    fn default() -> Self {
        Self::active()
    }
}

fn global_default() -> KernelBackend {
    match GLOBAL.load(Ordering::Relaxed) {
        1 => KernelBackend::Scalar,
        2 => KernelBackend::Simd,
        _ => {
            let resolved = KernelBackend::from_env();
            // Racing first uses resolve the same env value; last store
            // wins with an identical byte.
            set_kernel_backend(resolved);
            resolved
        }
    }
}

/// Sets the process-wide default backend (overriding `EMA_KERNEL`).
/// Thread-local scopes still win. Prefer [`KernelBackend::scoped`] in
/// tests — a global flip mid-run changes other threads' kernels.
pub fn set_kernel_backend(backend: KernelBackend) {
    let code = match backend {
        KernelBackend::Scalar => 1,
        KernelBackend::Simd => 2,
    };
    GLOBAL.store(code, Ordering::Relaxed);
}

/// Runs `f` with `backend` active on the current thread (see
/// [`KernelBackend::scoped`]).
pub fn with_kernel_backend<R>(backend: KernelBackend, f: impl FnOnce() -> R) -> R {
    let _scope = backend.scoped();
    f()
}

/// RAII guard restoring the previous thread-local backend scope on
/// drop (including on unwind, so a panicking test cannot leak its
/// backend into the next test on the same thread).
#[derive(Debug)]
pub struct KernelScope {
    previous: Option<KernelBackend>,
}

impl Drop for KernelScope {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        let base = KernelBackend::active();
        {
            let _outer = KernelBackend::Scalar.scoped();
            assert_eq!(KernelBackend::active(), KernelBackend::Scalar);
            {
                let _inner = KernelBackend::Simd.scoped();
                let expect = if KernelBackend::simd_available() {
                    KernelBackend::Simd
                } else {
                    KernelBackend::Scalar
                };
                assert_eq!(KernelBackend::active(), expect);
            }
            assert_eq!(KernelBackend::active(), KernelBackend::Scalar);
        }
        assert_eq!(KernelBackend::active(), base);
    }

    #[test]
    fn with_kernel_backend_restores_on_unwind() {
        let base = KernelBackend::active();
        let result = std::panic::catch_unwind(|| {
            with_kernel_backend(KernelBackend::Scalar, || panic!("boom"))
        });
        assert!(result.is_err());
        assert_eq!(KernelBackend::active(), base);
    }

    #[test]
    fn simd_never_active_without_hardware_support() {
        let _scope = KernelBackend::Simd.scoped();
        if !KernelBackend::simd_available() {
            assert_eq!(KernelBackend::active(), KernelBackend::Scalar);
        } else {
            assert_eq!(KernelBackend::active(), KernelBackend::Simd);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KernelBackend::Scalar.label(), "scalar");
        assert_eq!(KernelBackend::Simd.label(), "simd");
    }

    #[test]
    fn scope_is_thread_local() {
        let _scope = KernelBackend::Scalar.scoped();
        let other = std::thread::spawn(|| {
            // A fresh thread sees the process default, not this scope.
            SCOPE.with(Cell::get).is_none()
        })
        .join()
        .unwrap();
        assert!(other);
    }
}
