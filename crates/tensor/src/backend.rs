//! Kernel backend selection: the vectorized SIMD hot path vs the
//! scalar bit-identity oracle.
//!
//! Every matmul-family kernel funnels through
//! `linalg::matmul_accumulate`, which dispatches on the **active**
//! [`KernelBackend`]:
//!
//! * [`KernelBackend::Scalar`] — the reference kernel. Ascending-`k`
//!   accumulation with separately rounded multiply and add; the
//!   bit-identity oracle every experiment record was built on.
//! * [`KernelBackend::Simd`] — the AVX2+FMA kernel (x86_64 only,
//!   runtime-detected). Same per-element accumulation order, but every
//!   multiply-add is *fused* (one rounding), so results agree with the
//!   scalar oracle only to tolerance. See the two-contract story in the
//!   `linalg.rs` header.
//!
//! Resolution order for [`KernelBackend::active`]:
//!
//! 1. a thread-local scope installed by [`KernelBackend::scoped`] /
//!    [`with_kernel_backend`] (how `TrainConfig::kernel_backend` pins a
//!    training run, and how equivalence tests compare backends without
//!    racing each other);
//! 2. the process-wide default: [`set_kernel_backend`] if called, else
//!    the `EMA_KERNEL` environment knob (`scalar` | `simd` | `auto`,
//!    resolved once);
//! 3. `auto` (also the fallback for unset/unknown values): `Simd` where
//!    AVX2+FMA are available, `Scalar` otherwise.
//!
//! Requesting `Simd` on a machine without AVX2+FMA is not an error —
//! `active()` normalizes it to `Scalar`, so `EMA_KERNEL=simd` is safe
//! in portable scripts. Whichever backend is active, results are fully
//! deterministic: same inputs, same backend → byte-identical outputs at
//! every thread count.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Which matmul accumulation kernel the tensor crate runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Separately rounded multiply-then-add, ascending-`k` — the
    /// bit-identity oracle (see `linalg.rs`).
    Scalar,
    /// AVX2+FMA vectorized spans, ascending-`k` with fused
    /// multiply-add — the hot path where the hardware supports it.
    Simd,
}

/// Process-default encoding: 0 = unresolved (read `EMA_KERNEL` on
/// first use), 1 = scalar, 2 = simd.
static GLOBAL: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Innermost thread-local scope, if any (see [`KernelBackend::scoped`]).
    static SCOPE: Cell<Option<KernelBackend>> = const { Cell::new(None) };
}

impl KernelBackend {
    /// True when the running CPU supports the SIMD kernel (AVX2 and
    /// FMA, detected once at runtime). Always false off x86_64.
    #[must_use]
    pub fn simd_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            static AVAILABLE: OnceLock<bool> = OnceLock::new();
            *AVAILABLE.get_or_init(|| {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// The backend the current thread's kernels will actually run:
    /// thread-local scope, else process default, normalized so `Simd`
    /// is only ever returned when [`Self::simd_available`].
    #[must_use]
    pub fn active() -> Self {
        let chosen = SCOPE.with(Cell::get).unwrap_or_else(global_default);
        match chosen {
            Self::Simd if Self::simd_available() => Self::Simd,
            _ => Self::Scalar,
        }
    }

    /// Resolves the `EMA_KERNEL` environment knob: `scalar`, `simd`,
    /// or `auto` (the default for unset or unrecognized values) —
    /// `auto` picks `Simd` where available, `Scalar` otherwise.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("EMA_KERNEL").as_deref() {
            Ok("scalar") => Self::Scalar,
            Ok("simd") => Self::Simd,
            _ => {
                if Self::simd_available() {
                    Self::Simd
                } else {
                    Self::Scalar
                }
            }
        }
    }

    /// Installs `self` as the current thread's backend until the
    /// returned guard drops (scopes nest; the previous scope is
    /// restored). This is how a training run pins its backend without
    /// perturbing other threads — the cohort executor runs each job on
    /// one worker thread, so a scope opened at the top of the job body
    /// covers everything the job computes.
    #[must_use = "the scope ends when the guard drops"]
    pub fn scoped(self) -> KernelScope {
        let previous = SCOPE.with(|s| s.replace(Some(self)));
        KernelScope { previous }
    }

    /// Short lower-case name, stable across versions (used in bench
    /// records and manifests).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Simd => "simd",
        }
    }
}

/// The default backend is the thread's active one — so values plumbed
/// through configs (e.g. `TrainConfig::kernel_backend`) inherit the
/// `EMA_KERNEL` / [`set_kernel_backend`] resolution at construction.
impl Default for KernelBackend {
    fn default() -> Self {
        Self::active()
    }
}

fn global_default() -> KernelBackend {
    match GLOBAL.load(Ordering::Relaxed) {
        1 => KernelBackend::Scalar,
        2 => KernelBackend::Simd,
        _ => {
            let resolved = KernelBackend::from_env();
            // Racing first uses resolve the same env value; last store
            // wins with an identical byte.
            set_kernel_backend(resolved);
            resolved
        }
    }
}

/// Sets the process-wide default backend (overriding `EMA_KERNEL`).
/// Thread-local scopes still win. Prefer [`KernelBackend::scoped`] in
/// tests — a global flip mid-run changes other threads' kernels.
pub fn set_kernel_backend(backend: KernelBackend) {
    let code = match backend {
        KernelBackend::Scalar => 1,
        KernelBackend::Simd => 2,
    };
    GLOBAL.store(code, Ordering::Relaxed);
}

/// Runs `f` with `backend` active on the current thread (see
/// [`KernelBackend::scoped`]).
pub fn with_kernel_backend<R>(backend: KernelBackend, f: impl FnOnce() -> R) -> R {
    let _scope = backend.scoped();
    f()
}

/// RAII guard restoring the previous thread-local backend scope on
/// drop (including on unwind, so a panicking test cannot leak its
/// backend into the next test on the same thread).
#[derive(Debug)]
pub struct KernelScope {
    previous: Option<KernelBackend>,
}

impl Drop for KernelScope {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.previous));
    }
}

// ---------------------------------------------------------------------------
// Kernel work accounting
// ---------------------------------------------------------------------------

/// Cumulative work counters for one kernel backend on one thread:
/// matmul-family calls through the `matmul_accumulate` funnel, their
/// nominal FLOPs (`2·m·k·n` per call: one multiply + one add per
/// accumulation) and nominal memory traffic (`8·(m·k + k·n + 2·m·n)`
/// bytes per call: read both operands, read+write the output). The
/// figures are *work* counts, not measurements — cache reuse makes real
/// traffic lower — which is exactly what an achieved-GFLOP/s report
/// needs as numerator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Calls into the `matmul_accumulate` funnel.
    pub calls: u64,
    /// Nominal floating-point operations (`2·m·k·n` per call).
    pub flops: u64,
    /// Nominal bytes moved (`8·(m·k + k·n + 2·m·n)` per call).
    pub bytes: u64,
}

impl KernelCounters {
    fn add_matmul(&mut self, m: usize, k: usize, n: usize) {
        self.calls += 1;
        self.flops += 2 * (m as u64) * (k as u64) * (n as u64);
        self.bytes += 8 * ((m * k) as u64 + (k * n) as u64 + 2 * (m * n) as u64);
    }
}

/// One thread's kernel counters, split by backend. Taken (and reset)
/// via [`take_kernel_counters`] at drain points — the executor after
/// each job, the training loop at run end — which makes multiple drain
/// sites compose without double counting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCountersSnapshot {
    /// Work executed by the scalar oracle kernel.
    pub scalar: KernelCounters,
    /// Work executed by the AVX2+FMA kernel.
    pub simd: KernelCounters,
}

impl KernelCountersSnapshot {
    /// True when no kernel work was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scalar.calls == 0 && self.simd.calls == 0
    }
}

/// Process-wide switch for kernel accounting. The obs layer keeps it in
/// sync with the `EMA_OBS` mode: `off` ⇒ counting disabled, so the only
/// cost the hot path ever pays with telemetry off is one relaxed atomic
/// load per funnel call. Counting never touches kernel numerics.
static COUNTING: AtomicBool = AtomicBool::new(false);

thread_local! {
    static KERNEL_COUNTERS: Cell<KernelCountersSnapshot> =
        const { Cell::new(KernelCountersSnapshot { scalar: KernelCounters { calls: 0, flops: 0, bytes: 0 }, simd: KernelCounters { calls: 0, flops: 0, bytes: 0 } }) };
}

/// Enables or disables kernel work accounting process-wide. Called by
/// the obs layer whenever the obs mode changes; library code should not
/// need to touch it directly (tests pinning specific expectations do).
pub fn set_kernel_counting(enabled: bool) {
    COUNTING.store(enabled, Ordering::Relaxed);
}

/// Whether kernel work accounting is currently enabled (one relaxed
/// atomic load — safe on hot paths).
#[inline]
#[must_use]
pub fn kernel_counting_enabled() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

/// Records one funnel call on the current thread (no-op unless counting
/// is enabled; see [`set_kernel_counting`]).
#[inline]
pub(crate) fn record_matmul(backend: KernelBackend, m: usize, k: usize, n: usize) {
    if !kernel_counting_enabled() {
        return;
    }
    KERNEL_COUNTERS.with(|c| {
        let mut snap = c.get();
        match backend {
            KernelBackend::Scalar => snap.scalar.add_matmul(m, k, n),
            KernelBackend::Simd => snap.simd.add_matmul(m, k, n),
        }
        c.set(snap);
    });
}

/// Takes the current thread's kernel counters, resetting them to zero —
/// so successive drains each see only the work since the previous one.
#[must_use]
pub fn take_kernel_counters() -> KernelCountersSnapshot {
    KERNEL_COUNTERS.with(|c| c.replace(KernelCountersSnapshot::default()))
}

/// Reads the current thread's kernel counters without resetting them.
#[must_use]
pub fn kernel_counters() -> KernelCountersSnapshot {
    KERNEL_COUNTERS.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        let base = KernelBackend::active();
        {
            let _outer = KernelBackend::Scalar.scoped();
            assert_eq!(KernelBackend::active(), KernelBackend::Scalar);
            {
                let _inner = KernelBackend::Simd.scoped();
                let expect = if KernelBackend::simd_available() {
                    KernelBackend::Simd
                } else {
                    KernelBackend::Scalar
                };
                assert_eq!(KernelBackend::active(), expect);
            }
            assert_eq!(KernelBackend::active(), KernelBackend::Scalar);
        }
        assert_eq!(KernelBackend::active(), base);
    }

    #[test]
    fn with_kernel_backend_restores_on_unwind() {
        let base = KernelBackend::active();
        let result = std::panic::catch_unwind(|| {
            with_kernel_backend(KernelBackend::Scalar, || panic!("boom"))
        });
        assert!(result.is_err());
        assert_eq!(KernelBackend::active(), base);
    }

    #[test]
    fn simd_never_active_without_hardware_support() {
        let _scope = KernelBackend::Simd.scoped();
        if !KernelBackend::simd_available() {
            assert_eq!(KernelBackend::active(), KernelBackend::Scalar);
        } else {
            assert_eq!(KernelBackend::active(), KernelBackend::Simd);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KernelBackend::Scalar.label(), "scalar");
        assert_eq!(KernelBackend::Simd.label(), "simd");
    }

    #[test]
    fn kernel_counters_accumulate_only_while_enabled() {
        // This test owns the process-wide COUNTING flag within the
        // ema-tensor test binary (no other test here flips it), and the
        // counters themselves are thread-local to this test's thread.
        let _scope = KernelBackend::Scalar.scoped();
        let _ = take_kernel_counters();

        // Disabled (the default): the funnel records nothing.
        set_kernel_counting(false);
        crate::linalg::matmul_accumulate(&[1.0; 6], &[1.0; 12], &mut [0.0; 8], 2, 3, 4);
        assert!(take_kernel_counters().is_empty());

        // Enabled: one call, 2·m·k·n flops, 8·(mk + kn + 2mn) bytes,
        // attributed to the active (scalar) backend.
        set_kernel_counting(true);
        crate::linalg::matmul_accumulate(&[1.0; 6], &[1.0; 12], &mut [0.0; 8], 2, 3, 4);
        let snap = take_kernel_counters();
        set_kernel_counting(false);
        assert_eq!(snap.simd, KernelCounters::default());
        assert_eq!(snap.scalar.calls, 1);
        assert_eq!(snap.scalar.flops, 2 * 2 * 3 * 4);
        assert_eq!(snap.scalar.bytes, 8 * (6 + 12 + 2 * 8));
        // The take reset the thread-local counters.
        assert!(kernel_counters().is_empty());
    }

    #[test]
    fn scope_is_thread_local() {
        let _scope = KernelBackend::Scalar.scoped();
        let other = std::thread::spawn(|| {
            // A fresh thread sees the process default, not this scope.
            SCOPE.with(Cell::get).is_none()
        })
        .join()
        .unwrap();
        assert!(other);
    }
}
