//! The core [`Tensor`] type: construction, accessors and reshaping.

use crate::{pool, Shape, TensorError};

/// A dense, row-major tensor of `f64` values.
///
/// The workhorse value type of the workspace. Cloning copies the buffer;
/// at EMA scale (tens of KiB) this is deliberate and keeps ownership
/// simple for the autodiff tape built on top. Storage is drawn from the
/// per-thread [`pool`] and recycled on drop, so the clone-heavy training
/// loop reuses the same buffers epoch after epoch instead of touching
/// the allocator.
#[derive(Debug, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f64>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = pool::take_uninit(self.data.len());
        data.copy_from_slice(&self.data);
        Self {
            shape: self.shape,
            data,
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        pool::recycle(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Builds a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume, or [`TensorError::EmptyShape`] for invalid dims.
    pub fn from_vec(dims: &[usize], data: Vec<f64>) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Builds a tensor directly from a pooled buffer whose length is
    /// already known to match the shape volume. Crate-internal fast
    /// path for kernels that fully wrote `data`.
    #[inline]
    pub(crate) fn from_shape_pooled(shape: Shape, data: Vec<f64>) -> Self {
        debug_assert_eq!(data.len(), shape.volume(), "pooled buffer length mismatch");
        Self { shape, data }
    }

    /// Clones `src` into a pooled tensor of the given shape.
    pub(crate) fn pooled_copy(shape: Shape, src: &[f64]) -> Self {
        let mut data = pool::take_uninit(src.len());
        data.copy_from_slice(src);
        Self::from_shape_pooled(shape, data)
    }

    /// Builds a rank-1 tensor from a vector.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    #[must_use]
    pub fn from_vec1(data: Vec<f64>) -> Self {
        assert!(!data.is_empty(), "cannot build a tensor from an empty vec");
        let shape = Shape::of(&[data.len()]);
        Self { shape, data }
    }

    /// Builds a rank-2 tensor from nested row vectors.
    ///
    /// # Errors
    /// Returns [`TensorError::RaggedRows`] if rows have differing lengths
    /// and [`TensorError::EmptyShape`] if `rows` is empty.
    pub fn from_vec2(rows: Vec<Vec<f64>>) -> Result<Self, TensorError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(TensorError::EmptyShape);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(TensorError::RaggedRows {
                    first: cols,
                    row: i,
                    len: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        let shape = Shape::of(&[rows.len(), cols]);
        Ok(Self { shape, data })
    }

    /// A tensor of zeros with the given dimensions.
    ///
    /// # Panics
    /// Panics on an invalid shape.
    #[must_use]
    pub fn zeros(dims: &[usize]) -> Self {
        Self::filled(dims, 0.0)
    }

    /// A tensor of ones with the given dimensions.
    ///
    /// # Panics
    /// Panics on an invalid shape.
    #[must_use]
    pub fn ones(dims: &[usize]) -> Self {
        Self::filled(dims, 1.0)
    }

    /// A tensor where every element equals `value`.
    ///
    /// # Panics
    /// Panics on an invalid shape.
    #[must_use]
    pub fn filled(dims: &[usize], value: f64) -> Self {
        let shape = Shape::of(dims);
        let data = pool::take_filled(shape.volume(), value);
        Self { shape, data }
    }

    /// The `n × n` identity matrix.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A rank-1 tensor containing `n` evenly spaced values from `start`
    /// to `end` inclusive.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    #[must_use]
    pub fn linspace(start: f64, end: f64, n: usize) -> Self {
        assert!(n >= 2, "linspace needs at least two points");
        let step = (end - start) / (n - 1) as f64;
        let data = (0..n).map(|i| start + step * i as f64).collect();
        Self {
            shape: Shape::of(&[n]),
            data,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions as a slice.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of axes.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: zero-sized tensors cannot be constructed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Immutable view of the flat buffer (row-major).
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer (which leaves the
    /// pool's custody — `Drop` only recycles tensor-owned storage).
    #[must_use]
    pub fn into_vec(mut self) -> Vec<f64> {
        std::mem::take(&mut self.data)
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics on rank mismatch or out-of-bounds coordinates.
    #[must_use]
    pub fn at(&self, index: &[usize]) -> f64 {
        self.data[self.shape.flat_index(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn set(&mut self, index: &[usize], value: f64) {
        let flat = self.shape.flat_index(index);
        self.data[flat] = value;
    }

    /// Convenience 2-D accessor: element at `(row, col)`.
    ///
    /// # Panics
    /// Panics unless the tensor is rank 2 and indices are in bounds.
    #[must_use]
    pub fn at2(&self, row: usize, col: usize) -> f64 {
        assert_eq!(self.rank(), 2, "at2 requires a rank-2 tensor");
        self.at(&[row, col])
    }

    /// Convenience 2-D setter.
    ///
    /// # Panics
    /// Panics unless the tensor is rank 2 and indices are in bounds.
    pub fn set2(&mut self, row: usize, col: usize, value: f64) {
        assert_eq!(self.rank(), 2, "set2 requires a rank-2 tensor");
        self.set(&[row, col], value);
    }

    // ------------------------------------------------------------------
    // Reshaping
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Errors
    /// Returns [`TensorError::IncompatibleReshape`] if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if shape.volume() != self.len() {
            return Err(TensorError::IncompatibleReshape {
                from: self.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(Self::pooled_copy(shape, &self.data))
    }

    /// Infallible reshape for shapes known to be compatible.
    ///
    /// # Panics
    /// Panics if the volumes differ.
    #[must_use]
    pub fn reshaped(&self, dims: &[usize]) -> Self {
        self.reshape(dims).expect("incompatible reshape")
    }

    /// Flattens to rank 1 without copying semantics changes.
    #[must_use]
    pub fn flatten(&self) -> Self {
        self.reshaped(&[self.len()])
    }

    /// True if all elements are finite (no NaN/inf).
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(&[2, 3], vec![0.0; 6]).is_ok());
        assert_eq!(
            Tensor::from_vec(&[2, 3], vec![0.0; 5]),
            Err(TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            })
        );
    }

    #[test]
    fn from_vec2_rejects_ragged() {
        let err = Tensor::from_vec2(vec![vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, TensorError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at2(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.data(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.at(&[1, 2, 3]), 7.5);
        assert_eq!(t.data()[23], 7.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::linspace(0.0, 5.0, 6);
        let m = t.reshape(&[2, 3]).unwrap();
        assert_eq!(m.at2(1, 0), 3.0);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[2, 2]);
        assert!(t.all_finite());
        t.set2(0, 1, f64::NAN);
        assert!(!t.all_finite());
    }
}
