//! Run manifests: one JSONL event log plus one summary JSON per
//! experiment run.
//!
//! A *run* brackets one experiment invocation (a bench binary, an
//! example, a CI smoke test). While a run is active in `full` mode the
//! recorder streams every event to `<dir>/<name>.jsonl`; at
//! [`Recorder::finish_run`] a `<name>.summary.json` manifest is written
//! capturing the run config, per-phase wall-times, event counts and the
//! metrics snapshot (loss/grad-norm/epoch histograms, early-stop
//! counters). File names carry no timestamps, so re-running a named
//! experiment overwrites its previous manifest deterministically — all
//! nondeterministic timing lives *inside* the obs files, never in
//! `results/*.json`.

use crate::json::Json;
use crate::trace::{ObsMode, Recorder, Sink};
use std::fs;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

/// One named phase of a run (e.g. `dataset`, `experiment`, `report`).
pub(crate) struct Phase {
    title: String,
    start_ns: u64,
    end_ns: Option<u64>,
}

/// The active run tracked inside the recorder.
pub(crate) struct RunState {
    name: String,
    /// File stem for this run's outputs: the name itself, or
    /// `<name>.<n>` when the same recorder has begun `n` ≥ 2 runs with
    /// that name — a deterministic, clock-free collision guard so a
    /// process that runs the same experiment twice keeps both
    /// manifests.
    stem: String,
    dir: PathBuf,
    config: Json,
    mode: ObsMode,
    started_ns: u64,
    phases: Vec<Phase>,
    annotations: Vec<(String, Json)>,
}

impl RunState {
    /// Title of the currently open phase, when any.
    pub(crate) fn current_phase_title(&self) -> Option<&str> {
        self.phases
            .last()
            .filter(|p| p.end_ns.is_none())
            .map(|p| p.title.as_str())
    }
}

/// The workspace-anchored obs output directory, `results/obs/` at the
/// repository root. Anchored via the crate's manifest dir (not the
/// CWD) because `cargo run`, `cargo bench` and `cargo test` start
/// binaries in different directories — the same fix the bench harness
/// uses for `results/`.
#[must_use]
pub fn default_obs_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels below the workspace root")
        .join("results")
        .join("obs")
}

impl Recorder {
    /// Starts a run manifest under [`default_obs_dir`]. Returns `false`
    /// (and touches nothing on disk) in `Off` mode.
    pub fn begin_run(&self, name: &str, config: Json) -> bool {
        self.begin_run_in(name, config, &default_obs_dir())
    }

    /// Starts a run manifest under an explicit directory (tests point
    /// this at a scratch dir). An already-active run is finished first.
    /// In `full` mode this creates `<dir>/<name>.jsonl` and streams
    /// events to it; in `summary` mode only the final summary JSON will
    /// be written. Returns `false` in `Off` mode.
    pub fn begin_run_in(&self, name: &str, config: Json, dir: &Path) -> bool {
        let mode = self.mode();
        if mode == ObsMode::Off {
            return false;
        }
        let started_ns = self.elapsed_ns();
        let mut inner = self.lock();
        if inner.run.is_some() {
            let _ = finish_locked(&mut inner, self.elapsed_ns());
        }
        // Each manifest summarises only its own run. The calling
        // thread's kernel counters are discarded too, so pre-run work
        // never leaks into the first drain inside the run.
        inner.metrics.reset();
        inner.event_counts.clear();
        inner.profile = crate::profile::Profile::new();
        let _ = ema_tensor::take_kernel_counters();
        // Collision-free file stem: the n-th run named `name` on this
        // recorder writes `<name>.<n>.*` for n ≥ 2 (first run keeps the
        // plain name, so existing single-run paths are unchanged).
        let uses = inner.used_run_names.entry(name.to_string()).or_insert(0);
        *uses += 1;
        let stem = if *uses == 1 { name.to_string() } else { format!("{name}.{uses}") };
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}; obs run disabled", dir.display());
            return false;
        }
        if mode == ObsMode::Full && !matches!(inner.sink, Sink::Memory(_)) {
            let path = dir.join(format!("{stem}.jsonl"));
            match fs::File::create(&path) {
                Ok(f) => inner.sink = Sink::File(BufWriter::new(f)),
                Err(e) => {
                    eprintln!("warning: cannot create {}: {e}; events not logged", path.display());
                }
            }
        }
        inner.run = Some(RunState {
            name: name.to_string(),
            stem,
            dir: dir.to_path_buf(),
            config,
            mode,
            started_ns,
            phases: Vec::new(),
            annotations: Vec::new(),
        });
        drop(inner);
        self.point("run_start", vec![("run", Json::from(name))]);
        true
    }

    /// Opens a named phase, closing the previous one. Phase wall-times
    /// land in the run summary; a `phase` point event marks the
    /// boundary in the JSONL log. No-op without an active run.
    pub fn phase(&self, title: &str) {
        let now = self.elapsed_ns();
        {
            let mut inner = self.lock();
            let Some(run) = inner.run.as_mut() else { return };
            if let Some(open) = run.phases.last_mut() {
                open.end_ns.get_or_insert(now);
            }
            run.phases.push(Phase { title: title.to_string(), start_ns: now, end_ns: None });
        }
        self.point("phase", vec![("title", Json::from(title))]);
    }

    /// Attaches an extra key/value to the run summary (e.g. a result
    /// file path, a table checksum). No-op without an active run.
    pub fn annotate(&self, key: &str, value: Json) {
        let mut inner = self.lock();
        if let Some(run) = inner.run.as_mut() {
            run.annotations.push((key.to_string(), value));
        }
    }

    /// Closes the active run: flushes the JSONL log and writes
    /// `<name>.summary.json` (plus `<name>.folded` when the span
    /// profile is non-empty), returning the summary path. `None` when
    /// no run is active or the summary could not be written.
    pub fn finish_run(&self) -> Option<PathBuf> {
        let now = self.elapsed_ns();
        let mut inner = self.lock();
        finish_locked(&mut inner, now)
    }

    /// Title of the active run's open phase, when a run with at least
    /// one phase is in progress.
    #[must_use]
    pub fn current_phase(&self) -> Option<String> {
        self.lock()
            .run
            .as_ref()
            .and_then(RunState::current_phase_title)
            .map(str::to_string)
    }
}

fn finish_locked(inner: &mut crate::trace::Inner, now: u64) -> Option<PathBuf> {
    let mut run = inner.run.take()?;
    if let Some(open) = run.phases.last_mut() {
        open.end_ns.get_or_insert(now);
    }
    // Stop streaming before summarising; flush happens on drop.
    if matches!(inner.sink, Sink::File(_)) {
        inner.sink = Sink::Null;
    }

    let phases: Vec<Json> = run
        .phases
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("title", Json::from(p.title.as_str())),
                ("start_ns", Json::from(p.start_ns)),
                ("wall_ns", Json::from(p.end_ns.unwrap_or(now).saturating_sub(p.start_ns))),
            ])
        })
        .collect();
    let events = Json::Obj(
        inner
            .event_counts
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect(),
    );

    let profile = std::mem::take(&mut inner.profile);
    let mut pairs = vec![
        ("run", Json::from(run.name.as_str())),
        ("mode", Json::from(run.mode.label())),
        ("config", std::mem::replace(&mut run.config, Json::Null)),
        ("wall_ns", Json::from(now.saturating_sub(run.started_ns))),
        ("phases", Json::Arr(phases)),
        ("events", events),
        ("metrics", inner.metrics.snapshot()),
        ("profile", profile.to_json()),
    ];
    for (k, v) in &run.annotations {
        pairs.push((k.as_str(), v.clone()));
    }
    let summary = Json::obj(pairs);

    // Folded stacks ride along as `<stem>.folded` (flamegraph.pl /
    // speedscope input); skipped when no span closed during the run.
    if !profile.is_empty() {
        let folded_path = run.dir.join(format!("{}.folded", run.stem));
        if let Err(e) = fs::write(&folded_path, profile.folded()) {
            eprintln!("warning: cannot write {}: {e}", folded_path.display());
        }
    }

    let path = run.dir.join(format!("{}.summary.json", run.stem));
    match fs::write(&path, summary.pretty()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Recorder;

    fn scratch(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .join("target")
            .join("obs-scratch")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn off_mode_creates_no_files() {
        let dir = scratch("off");
        let rec = Recorder::with_mode(ObsMode::Off);
        assert!(!rec.begin_run_in("probe", Json::Null, &dir));
        assert!(rec.finish_run().is_none());
        assert!(!dir.exists(), "off mode must not touch the filesystem");
    }

    #[test]
    fn full_mode_streams_jsonl_and_writes_summary() {
        let dir = scratch("full");
        let rec = Recorder::with_mode(ObsMode::Full);
        assert!(rec.begin_run_in("probe", Json::obj(vec![("n", Json::from(2usize))]), &dir));
        rec.phase("work");
        {
            let _s = rec.span("step", vec![("i", Json::from(0usize))]);
            rec.point("train_epoch", vec![("loss", Json::Num(0.5))]);
        }
        rec.observe("train_loss", &crate::metrics::LOSS_BUCKETS, 0.5);
        rec.phase("report");
        let summary_path = rec.finish_run().expect("summary written");

        // Every JSONL line parses; the epoch event is present.
        let log = fs::read_to_string(dir.join("probe.jsonl")).unwrap();
        let mut saw_epoch = false;
        for line in log.lines() {
            let ev = Json::parse(line).expect("line parses");
            if ev.get("name").and_then(Json::as_str) == Some("train_epoch") {
                saw_epoch = true;
                assert!(ev.require("t_ns").unwrap().to_f64().unwrap() >= 0.0);
            }
        }
        assert!(saw_epoch);

        // The summary captures phases, events and metrics.
        let summary = Json::parse(&fs::read_to_string(&summary_path).unwrap()).unwrap();
        assert_eq!(summary.require("run").unwrap().to_str().unwrap(), "probe");
        assert_eq!(summary.require("mode").unwrap().to_str().unwrap(), "full");
        let phases = summary.require("phases").unwrap().to_arr().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].require("title").unwrap().to_str().unwrap(), "work");
        assert!(summary.require("events").unwrap().require("train_epoch").is_ok());
        let hist = summary
            .require("metrics")
            .unwrap()
            .require("histograms")
            .unwrap()
            .require("train_loss")
            .unwrap();
        assert_eq!(hist.require("total").unwrap().to_usize().unwrap(), 1);
    }

    #[test]
    fn summary_mode_writes_summary_but_no_jsonl() {
        let dir = scratch("summary");
        let rec = Recorder::with_mode(ObsMode::Summary);
        assert!(rec.begin_run_in("probe", Json::Null, &dir));
        rec.point("train_epoch", vec![("loss", Json::Num(0.5))]);
        let path = rec.finish_run().expect("summary written");
        assert!(path.exists());
        assert!(!dir.join("probe.jsonl").exists(), "summary mode streams no JSONL");
        let summary = Json::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            summary.require("events").unwrap().require("train_epoch").unwrap().to_usize().unwrap(),
            1
        );
    }

    #[test]
    fn summary_carries_the_profile_and_folded_stacks_land_on_disk() {
        let dir = scratch("profile");
        let rec = Recorder::with_mode(ObsMode::Summary);
        assert!(rec.begin_run_in("probe", Json::Null, &dir));
        rec.phase("work");
        {
            let _outer = rec.span("main", vec![]);
            let _inner = rec.span("step", vec![]);
        }
        let path = rec.finish_run().expect("summary written");
        let summary = Json::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        let profile =
            crate::profile::Profile::from_json(summary.require("profile").unwrap()).unwrap();
        let (name, main) = profile.roots().next().expect("profiled root");
        assert_eq!(name, "main");
        assert_eq!(main.children().next().unwrap().0, "step");
        let folded = fs::read_to_string(dir.join("probe.folded")).unwrap();
        assert!(folded.lines().any(|l| l.starts_with("main;step ")));
        // The next run starts from an empty profile.
        assert!(rec.begin_run_in("again", Json::Null, &dir));
        let again = rec.finish_run().unwrap();
        let summary = Json::parse(&fs::read_to_string(&again).unwrap()).unwrap();
        assert_eq!(summary.require("profile").unwrap().to_arr().unwrap().len(), 0);
        assert!(!dir.join("again.folded").exists(), "empty profiles write no folded file");
    }

    #[test]
    fn repeated_run_names_get_distinct_file_stems() {
        let dir = scratch("collide");
        let rec = Recorder::with_mode(ObsMode::Summary);
        for i in 0..3usize {
            assert!(rec.begin_run_in("probe", Json::obj(vec![("i", Json::from(i))]), &dir));
            rec.finish_run().expect("summary written");
        }
        for stem in ["probe", "probe.2", "probe.3"] {
            let path = dir.join(format!("{stem}.summary.json"));
            assert!(path.exists(), "missing {}", path.display());
            let summary = Json::parse(&fs::read_to_string(&path).unwrap()).unwrap();
            // The run *name* stays the plain name; only files get stems.
            assert_eq!(summary.require("run").unwrap().to_str().unwrap(), "probe");
        }
        // All three configs survived — nothing was overwritten.
        let i_of = |stem: &str| {
            let path = dir.join(format!("{stem}.summary.json"));
            let s = Json::parse(&fs::read_to_string(&path).unwrap()).unwrap();
            s.require("config").unwrap().require("i").unwrap().to_usize().unwrap()
        };
        assert_eq!((i_of("probe"), i_of("probe.2"), i_of("probe.3")), (0, 1, 2));
    }

    #[test]
    fn current_phase_tracks_the_open_phase() {
        let dir = scratch("phase");
        let rec = Recorder::with_mode(ObsMode::Summary);
        assert_eq!(rec.current_phase(), None);
        assert!(rec.begin_run_in("probe", Json::Null, &dir));
        assert_eq!(rec.current_phase(), None, "no phase opened yet");
        rec.phase("train");
        assert_eq!(rec.current_phase().as_deref(), Some("train"));
        rec.phase("report");
        assert_eq!(rec.current_phase().as_deref(), Some("report"));
        rec.finish_run();
        assert_eq!(rec.current_phase(), None);
    }

    #[test]
    fn beginning_a_run_finishes_the_previous_one() {
        let dir = scratch("restart");
        let rec = Recorder::with_mode(ObsMode::Summary);
        assert!(rec.begin_run_in("first", Json::Null, &dir));
        rec.annotate("note", Json::from("hello"));
        assert!(rec.begin_run_in("second", Json::Null, &dir));
        assert!(dir.join("first.summary.json").exists());
        let first = Json::parse(&fs::read_to_string(dir.join("first.summary.json")).unwrap()).unwrap();
        assert_eq!(first.require("note").unwrap().to_str().unwrap(), "hello");
        rec.finish_run();
        assert!(dir.join("second.summary.json").exists());
    }
}
