//! # ema-obs
//!
//! Zero-dependency observability for the ema-gnn workspace: structured
//! span/event tracing, a metrics registry (counters, gauges,
//! fixed-bucket histograms) and per-experiment run manifests, all
//! emitted through the in-house JSON model (which lives here so lower
//! layers can log without depending on `ema-core`; `ema_core::Json` is
//! a re-export of [`json::Json`]).
//!
//! ## Quick tour
//!
//! ```
//! use ema_obs::{recorder, span, point, Json, ObsMode};
//!
//! // Library code instruments itself through the global recorder:
//! {
//!     let _epoch = span!("train_epoch", individual = 3usize, epoch = 0usize);
//!     point!("early_stop", epoch = 0usize, best = 0.25);
//!     recorder().inc_counter("early_stops", 1);
//! }
//!
//! // Experiment binaries bracket their work in a run manifest:
//! // recorder().begin_run("table2", config);
//! // recorder().phase("experiment"); ... recorder().finish_run();
//! # let _ = ObsMode::Summary;
//! ```
//!
//! ## Verbosity knob
//!
//! `EMA_OBS=off|summary|full` (default `summary`); see [`trace`] for
//! the exact semantics. The contract that makes telemetry safe to
//! leave on: **timing only ever appears in obs output** — results and
//! checkpoint JSON stay byte-identical across same-seed runs whatever
//! the mode (guarded by `tests/determinism.rs` at the workspace root).

#![warn(missing_docs)]

pub mod json;
pub mod manifest;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use json::{write_f64, Json, JsonError};
pub use manifest::default_obs_dir;
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{Profile, ProfileNode};
pub use trace::{
    drain_kernel_counters, mode, recorder, set_mode, ObsMode, Recorder, SpanGuard, WorkerScope,
};
