//! A hand-rolled JSON value model, writer and parser.
//!
//! Replaces `serde`/`serde_json` for the exact shapes this workspace
//! emits (result tables, boxplot stats, checkpoints, bench records).
//! Design points:
//!
//! - **f64 round-trip safety**: numbers are written with Rust's
//!   shortest-round-trip `Display` formatting and parsed with
//!   `str::parse::<f64>`, which is correctly rounded — so
//!   `parse(write(x)) == x` bit-for-bit for every finite `f64`,
//!   including `-0.0` and subnormals.
//! - **Stable output**: objects keep insertion order, pretty output
//!   uses two-space indentation (the same layout `serde_json` produced
//!   for the committed `results/*.json` records), so byte-identical
//!   output is a meaningful determinism guarantee.
//! - **Descriptive errors**: the parser reports line and column.
//!
//! Writing non-finite numbers panics (JSON cannot represent them, and
//! every metric in this workspace is expected to be finite — a NaN
//! reaching serialization is a bug upstream).

use std::fmt;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the failure.
    pub line: usize,
    /// 1-based column of the failure.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Formats a finite `f64` as a JSON number that parses back to the
/// identical bit pattern (`-0.0` keeps its sign; subnormals survive).
///
/// # Panics
/// Panics on NaN or infinity.
#[must_use]
pub fn write_f64(v: f64) -> String {
    assert!(v.is_finite(), "cannot serialise non-finite number {v} as JSON");
    // Rust's `Display` for f64 is the shortest string that round-trips.
    let s = v.to_string();
    debug_assert_eq!(s.parse::<f64>().map(f64::to_bits), Ok(v.to_bits()));
    s
}

impl Json {
    /// Convenience constructor for an object literal.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A member that must exist, as a typed error instead of `None`.
    ///
    /// # Errors
    /// Returns a [`JsonError`] naming the missing key.
    pub fn require(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            line: 0,
            col: 0,
            msg: format!("missing object member {key:?}"),
        })
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a usize, if this is a non-negative integer.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Typed accessor errors for the decode paths.
    fn type_err(&self, wanted: &str) -> JsonError {
        JsonError {
            line: 0,
            col: 0,
            msg: format!("expected {wanted}, found {}", self.kind()),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// `as_f64` with a typed error.
    ///
    /// # Errors
    /// Returns a [`JsonError`] when the value is not a number.
    pub fn to_f64(&self) -> Result<f64, JsonError> {
        self.as_f64().ok_or_else(|| self.type_err("number"))
    }

    /// `as_usize` with a typed error.
    ///
    /// # Errors
    /// Returns a [`JsonError`] when the value is not a small
    /// non-negative integer.
    pub fn to_usize(&self) -> Result<usize, JsonError> {
        self.as_usize()
            .ok_or_else(|| self.type_err("non-negative integer"))
    }

    /// `as_str` with a typed error.
    ///
    /// # Errors
    /// Returns a [`JsonError`] when the value is not a string.
    pub fn to_str(&self) -> Result<&str, JsonError> {
        self.as_str().ok_or_else(|| self.type_err("string"))
    }

    /// `as_arr` with a typed error.
    ///
    /// # Errors
    /// Returns a [`JsonError`] when the value is not an array.
    pub fn to_arr(&self) -> Result<&[Json], JsonError> {
        self.as_arr().ok_or_else(|| self.type_err("array"))
    }

    /// Serialises compactly (no whitespace).
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with two-space indentation, `serde_json`-pretty style.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&write_f64(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (a single value with optional surrounding
    /// whitespace).
    ///
    /// # Errors
    /// Returns a [`JsonError`] with line/column on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Infallible conversions used by the tracing field macros
/// (`span!` / `point!`): every field value becomes a [`Json`] leaf.
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {:?}, found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(self.error(format!(
                "expected a JSON value, found {:?}",
                other.map(|c| c as char)
            ))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(self.error(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => {
                    return Err(self.error(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Handle surrogate pairs for completeness.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(
                                self.error(format!("invalid escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                Some(_) => return Err(self.error("control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape digits"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone '0', or a nonzero digit then more digits
        // (JSON forbids leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                self.digits();
            }
            _ => return Err(self.error("number has no integer digits")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("number has a leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.error("number has no fraction digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.error("number has no exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.error(format!("invalid number {text:?}: {e}")))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        assert_eq!(&Json::parse(&v.pretty()).unwrap(), v);
        assert_eq!(&Json::parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn scalar_round_trips() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::Num(0.0));
        roundtrip(&Json::Str("hello \"world\"\n\t\\ λ∂".into()));
    }

    #[test]
    fn f64_edge_cases_round_trip_bit_exactly() {
        for v in [
            -0.0,
            0.0,
            1.0,
            -1.0,
            0.1,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,          // smallest normal
            f64::MIN_POSITIVE / 1e10,   // subnormal
            5e-324,                     // smallest subnormal
            f64::MAX,
            f64::MIN,
            1e308,
            -1e-308,
            1.797_693_134_862_315_7e308,
            2f64.powi(53) - 1.0,
            1.000_000_000_000_000_2,
        ] {
            let written = write_f64(v);
            let parsed = Json::parse(&written).unwrap().as_f64().unwrap();
            assert_eq!(
                parsed.to_bits(),
                v.to_bits(),
                "{v:e} -> {written} -> {parsed:e} lost bits"
            );
        }
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        assert_eq!(write_f64(-0.0), "-0");
        let parsed = Json::parse("-0").unwrap().as_f64().unwrap();
        assert!(parsed == 0.0 && parsed.is_sign_negative());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn writer_rejects_nan() {
        let _ = write_f64(f64::NAN);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj(vec![
            ("title", Json::Str("Table II".into())),
            (
                "rows",
                Json::Arr(vec![
                    Json::Arr(vec![
                        Json::Str("LSTM".into()),
                        Json::Num(1.022),
                        Json::Null,
                    ]),
                    Json::Obj(vec![]),
                    Json::Arr(vec![]),
                ]),
            ),
            ("ok", Json::Bool(true)),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn pretty_layout_matches_serde_json_style() {
        let v = Json::obj(vec![
            ("mean", Json::Num(0.85)),
            ("std", Json::Num(0.43)),
        ]);
        assert_eq!(v.pretty(), "{\n  \"mean\": 0.85,\n  \"std\": 0.43\n}");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn parser_accepts_standard_json() {
        let parsed = Json::parse(
            r#" { "a": [1, -2.5, 3e2, 4E-2, true, false, null],
                  "b": "u\u0041\u00e9\ud83d\ude00", "c": {} } "#,
        )
        .unwrap();
        let a = parsed.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(300.0));
        assert_eq!(a[3].as_f64(), Some(0.04));
        assert_eq!(parsed.get("b").unwrap().as_str(), Some("uAé😀"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nulla",
            "1 2",
            "[1",
            "\"abc",
            "{\"a\": 01}",
            "+1",
            "1.",
            ".5",
            "1e",
            "tru",
            "\"\\x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn parser_reports_line_and_column() {
        let err = Json::parse("{\n  \"a\": oops\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 1);
        assert!(err.to_string().contains("JSON error at 2:"));
    }

    #[test]
    fn accessors_are_typed() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "a": [1], "f": 1.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().to_usize().unwrap(), 3);
        assert!(v.get("f").unwrap().to_usize().is_err());
        assert_eq!(v.get("s").unwrap().to_str().unwrap(), "x");
        assert!(v.get("s").unwrap().to_f64().is_err());
        assert_eq!(v.get("a").unwrap().to_arr().unwrap().len(), 1);
        assert!(v.require("missing").is_err());
    }
}
