//! Hierarchical span profiles: where did the wall time go?
//!
//! A [`Profile`] aggregates span enter/exit pairs into a tree keyed by
//! **call path** (the stack of enclosing span names on one thread).
//! Each node records how often that path ran, its total inclusive
//! nanoseconds, and min/max per call; *self* time — total minus the
//! children's totals — is derived, never stored, so the invariant
//! `self = total − Σ(children)` holds by construction.
//!
//! Profiles are built two ways, and the two must agree (property-tested
//! in `tests/properties.rs`):
//!
//! 1. **Live**, by the per-thread aggregators in [`crate::trace`]: every
//!    span exit records `(path, dur_ns)` into a thread-local tree, and
//!    when a thread's root span closes the whole subtree merges into the
//!    recorder under one lock — the same batching discipline
//!    [`crate::trace::WorkerScope`] uses for events, so profiling stays
//!    cheap under the executor. The run summary's `profile` section and
//!    the `<run>.folded` flamegraph file come from this path.
//! 2. **Offline**, by [`Profile::from_events`] replaying a recorded
//!    event stream (the JSONL manifest) — what `obs_report` falls back
//!    to, and what pins the live path in tests.
//!
//! Node durations come from the recorder's monotonic clock, so child
//! intervals nest inside their parent's interval on the same thread and
//! `Σ(children total) ≤ parent total` holds per node (saturating
//! arithmetic guards the degenerate clock cases).

use crate::json::Json;
use std::collections::BTreeMap;

/// One call-path node of a [`Profile`]; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileNode {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    children: BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    fn record(&mut self, dur_ns: u64) {
        if self.count == 0 {
            self.min_ns = dur_ns;
            self.max_ns = dur_ns;
        } else {
            self.min_ns = self.min_ns.min(dur_ns);
            self.max_ns = self.max_ns.max(dur_ns);
        }
        self.count += 1;
        self.total_ns += dur_ns;
    }

    fn merge(&mut self, other: &ProfileNode) {
        if other.count > 0 {
            if self.count == 0 {
                self.min_ns = other.min_ns;
                self.max_ns = other.max_ns;
            } else {
                self.min_ns = self.min_ns.min(other.min_ns);
                self.max_ns = self.max_ns.max(other.max_ns);
            }
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        for (name, child) in &other.children {
            self.children.entry(name.clone()).or_default().merge(child);
        }
    }

    /// Completed calls of this call path.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total inclusive nanoseconds across all calls.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Fastest single call, ns (0 before the first call).
    #[must_use]
    pub fn min_ns(&self) -> u64 {
        self.min_ns
    }

    /// Slowest single call, ns.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Sum of the direct children's inclusive totals.
    #[must_use]
    pub fn children_total_ns(&self) -> u64 {
        self.children.values().map(|c| c.total_ns).sum()
    }

    /// Self time: total minus the children's totals (saturating — a
    /// child that outlives its parent's clock reading clamps to 0).
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.children_total_ns())
    }

    /// Child nodes in name order.
    pub fn children(&self) -> impl Iterator<Item = (&str, &ProfileNode)> {
        self.children.iter().map(|(k, v)| (k.as_str(), v))
    }

    fn to_json(&self, name: &str) -> Json {
        Json::obj(vec![
            ("name", Json::from(name)),
            ("count", Json::from(self.count)),
            ("total_ns", Json::from(self.total_ns)),
            ("self_ns", Json::from(self.self_ns())),
            ("min_ns", Json::from(self.min_ns)),
            ("max_ns", Json::from(self.max_ns)),
            (
                "children",
                Json::Arr(self.children.iter().map(|(n, c)| c.to_json(n)).collect()),
            ),
        ])
    }

    fn from_json(j: &Json) -> Option<(String, ProfileNode)> {
        let name = j.get("name")?.as_str()?.to_string();
        let count = j.get("count")?.as_usize()? as u64;
        let total_ns = j.get("total_ns")?.as_usize()? as u64;
        let min_ns = j.get("min_ns")?.as_usize()? as u64;
        let max_ns = j.get("max_ns")?.as_usize()? as u64;
        let mut children = BTreeMap::new();
        for c in j.get("children")?.as_arr()? {
            let (child_name, child) = ProfileNode::from_json(c)?;
            children.insert(child_name, child);
        }
        Some((name, ProfileNode { count, total_ns, min_ns, max_ns, children }))
    }
}

/// A hierarchical span profile; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    roots: BTreeMap<String, ProfileNode>,
}

impl Profile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no span has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Records one completed call of the call path `path` (outermost
    /// first, innermost last — the span that just closed). Intermediate
    /// nodes are created as needed; only the leaf's stats are touched.
    ///
    /// # Panics
    /// Panics on an empty path.
    pub fn record(&mut self, path: &[String], dur_ns: u64) {
        let (first, rest) = path.split_first().expect("a call path names at least one span");
        let mut node = self.roots.entry(first.clone()).or_default();
        for name in rest {
            node = node.children.entry(name.clone()).or_default();
        }
        node.record(dur_ns);
    }

    /// Merges another profile into this one (summing counts and totals,
    /// combining min/max), node by node.
    pub fn merge(&mut self, other: &Profile) {
        for (name, root) in &other.roots {
            self.roots.entry(name.clone()).or_default().merge(root);
        }
    }

    /// Root nodes in name order.
    pub fn roots(&self) -> impl Iterator<Item = (&str, &ProfileNode)> {
        self.roots.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum of the roots' inclusive totals — the profile's coverage of
    /// the run's wall time (per thread trees overlap in wall time under
    /// the executor, so this can legitimately exceed the run wall).
    #[must_use]
    pub fn total_root_ns(&self) -> u64 {
        self.roots.values().map(|r| r.total_ns).sum()
    }

    /// Rebuilds a profile by replaying recorded span events (the JSONL
    /// stream): per-thread stacks grow on `enter` and record on `exit`
    /// using the event's `dur_ns`. Spans left open (no exit in the
    /// stream) are dropped, mirroring the live aggregator, so replaying
    /// a recorder's drained events reproduces its live profile exactly.
    #[must_use]
    pub fn from_events(events: &[Json]) -> Profile {
        let mut profile = Profile::new();
        let mut stacks: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for ev in events {
            let Some(kind) = ev.get("ev").and_then(Json::as_str) else { continue };
            let Some(span) = ev.get("span").and_then(Json::as_str) else { continue };
            let thread = ev.get("thread").and_then(Json::as_usize).unwrap_or(0);
            let stack = stacks.entry(thread).or_default();
            match kind {
                "enter" => stack.push(span.to_string()),
                "exit" if stack.last().map(String::as_str) == Some(span) => {
                    let dur = ev.get("dur_ns").and_then(Json::as_usize).unwrap_or(0) as u64;
                    profile.record(stack, dur);
                    stack.pop();
                }
                _ => {}
            }
        }
        profile
    }

    /// The summary-JSON form: an array of root nodes, each carrying
    /// `name`/`count`/`total_ns`/`self_ns`/`min_ns`/`max_ns` and a
    /// `children` array, names sorted for a stable structure.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(self.roots.iter().map(|(n, r)| r.to_json(n)).collect())
    }

    /// Parses the [`Profile::to_json`] form back (`None` on any shape
    /// mismatch) — how `obs_report` reads a summary's profile section.
    #[must_use]
    pub fn from_json(j: &Json) -> Option<Profile> {
        let mut roots = BTreeMap::new();
        for r in j.as_arr()? {
            let (name, node) = ProfileNode::from_json(r)?;
            roots.insert(name, node);
        }
        Some(Profile { roots })
    }

    /// Folded-stacks text (`root;child;leaf <self_ns>`, one line per
    /// node): the format `flamegraph.pl` and speedscope ingest directly.
    /// Values are **self** nanoseconds, so a flamegraph's widths sum
    /// correctly; zero-self nodes are skipped.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, node) in self.flatten() {
            if node.self_ns() > 0 {
                out.push_str(&format!("{path} {}\n", node.self_ns()));
            }
        }
        out
    }

    /// Every node with its `;`-joined call path, in depth-first name
    /// order.
    #[must_use]
    pub fn flatten(&self) -> Vec<(String, &ProfileNode)> {
        fn walk<'a>(prefix: &str, name: &str, node: &'a ProfileNode, out: &mut Vec<(String, &'a ProfileNode)>) {
            let path = if prefix.is_empty() { name.to_string() } else { format!("{prefix};{name}") };
            for (child_name, child) in &node.children {
                walk(&path, child_name, child, out);
            }
            out.push((path, node));
        }
        let mut out = Vec::new();
        for (name, root) in &self.roots {
            walk("", name, root, &mut out);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn record_builds_the_tree_and_self_time_subtracts_children() {
        let mut p = Profile::new();
        p.record(&path(&["run", "train"]), 70);
        p.record(&path(&["run", "eval"]), 20);
        p.record(&path(&["run"]), 100);
        let (name, run) = p.roots().next().unwrap();
        assert_eq!(name, "run");
        assert_eq!(run.count(), 1);
        assert_eq!(run.total_ns(), 100);
        assert_eq!(run.children_total_ns(), 90);
        assert_eq!(run.self_ns(), 10);
        let children: Vec<_> = run.children().collect();
        assert_eq!(children[0].0, "eval");
        assert_eq!(children[1].0, "train");
        assert_eq!(children[1].1.self_ns(), 70);
    }

    #[test]
    fn min_max_track_per_call_durations() {
        let mut p = Profile::new();
        for dur in [30, 10, 20] {
            p.record(&path(&["epoch"]), dur);
        }
        let (_, epoch) = p.roots().next().unwrap();
        assert_eq!(epoch.count(), 3);
        assert_eq!(epoch.total_ns(), 60);
        assert_eq!(epoch.min_ns(), 10);
        assert_eq!(epoch.max_ns(), 30);
    }

    #[test]
    fn merge_sums_counts_and_combines_extremes() {
        let mut a = Profile::new();
        a.record(&path(&["job", "train"]), 50);
        a.record(&path(&["job"]), 60);
        let mut b = Profile::new();
        b.record(&path(&["job"]), 200);
        b.record(&path(&["other"]), 5);
        a.merge(&b);
        let job = a.roots().find(|(n, _)| *n == "job").unwrap().1;
        assert_eq!(job.count(), 2);
        assert_eq!(job.total_ns(), 260);
        assert_eq!(job.min_ns(), 60);
        assert_eq!(job.max_ns(), 200);
        assert_eq!(a.total_root_ns(), 265);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut p = Profile::new();
        p.record(&path(&["run", "train", "epoch"]), 7);
        p.record(&path(&["run", "train"]), 11);
        p.record(&path(&["run"]), 20);
        let j = p.to_json();
        let back = Profile::from_json(&j).expect("parses");
        assert_eq!(back, p);
        // And the serialized form survives the JSON writer/parser too.
        let reparsed = Json::parse(&j.pretty()).unwrap();
        assert_eq!(Profile::from_json(&reparsed).unwrap(), p);
    }

    #[test]
    fn folded_lines_carry_self_ns_per_path() {
        let mut p = Profile::new();
        p.record(&path(&["run", "train"]), 70);
        p.record(&path(&["run"]), 100);
        let folded = p.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["run 30", "run;train 70"]);
    }

    #[test]
    fn from_events_replays_interleaved_threads() {
        let enter = |span: &str, thread: usize| {
            Json::obj(vec![
                ("ev", Json::from("enter")),
                ("span", Json::from(span)),
                ("thread", Json::from(thread)),
            ])
        };
        let exit = |span: &str, thread: usize, dur: u64| {
            Json::obj(vec![
                ("ev", Json::from("exit")),
                ("span", Json::from(span)),
                ("thread", Json::from(thread)),
                ("dur_ns", Json::from(dur)),
            ])
        };
        let events = vec![
            enter("job", 1),
            enter("job", 2),
            enter("train", 2),
            exit("train", 2, 40),
            exit("job", 1, 10),
            exit("job", 2, 50),
            enter("dangling", 1), // no exit: dropped
        ];
        let p = Profile::from_events(&events);
        let job = p.roots().find(|(n, _)| *n == "job").unwrap().1;
        assert_eq!(job.count(), 2);
        assert_eq!(job.total_ns(), 60);
        assert_eq!(job.self_ns(), 20);
        assert_eq!(job.children().next().unwrap().1.total_ns(), 40);
        assert!(p.roots().all(|(n, _)| n != "dangling"));
    }
}
