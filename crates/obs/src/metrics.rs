//! Named counters, gauges and fixed-bucket histograms with a JSON
//! snapshot export.
//!
//! The registry is plain data behind the recorder's lock (see
//! [`crate::trace`]); everything here is deterministic given the same
//! sequence of observations, so snapshots of value-derived metrics
//! (losses, gradient norms, epoch counts) are reproducible across
//! same-seed runs. Timing-derived metrics must only ever land in obs
//! output, never in results JSON.

use crate::json::Json;
use std::collections::BTreeMap;

/// Histogram bucket bounds for training-loss observations
/// (z-normalised data: 1.0 ≈ predicting the mean).
pub const LOSS_BUCKETS: [f64; 9] = [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 2.0, 5.0];

/// Histogram bucket bounds for gradient-norm observations (the
/// default global clip is 5.0, so the tail marks clipped epochs).
pub const GRAD_NORM_BUCKETS: [f64; 8] = [0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0];

/// Histogram bucket bounds for epochs-run observations (paper
/// schedule: 300 epochs, early stopping may truncate).
pub const EPOCH_BUCKETS: [f64; 7] = [10.0, 25.0, 50.0, 100.0, 200.0, 300.0, 1000.0];

/// Histogram bucket bounds for wall-clock durations in nanoseconds
/// (1µs … 100s).
pub const TIME_NS_BUCKETS: [f64; 9] = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11];

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of
/// the first `bounds.len()` buckets; one overflow bucket catches
/// everything above the last bound, so `counts.len() == bounds.len() + 1`
/// and every observation lands in exactly one bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    nonfinite: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram over the given bucket bounds.
    ///
    /// # Panics
    /// Panics when `bounds` is empty, non-finite, or not strictly
    /// increasing.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bound");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly increasing: {} !< {}",
                pair[0],
                pair[1]
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            nonfinite: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Non-finite values count towards the
    /// overflow bucket (they are a signal worth surfacing, not a panic:
    /// obs must never take down a training run).
    pub fn observe(&mut self, v: f64) {
        let idx = if v.is_finite() {
            self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len())
        } else {
            self.bounds.len()
        };
        self.counts[idx] += 1;
        self.total += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        } else {
            self.nonfinite += 1;
        }
    }

    /// Bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last = overflow).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the finite observations, or `None` before the first.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let finite = self.total - self.nonfinite;
        (finite > 0).then(|| self.sum / finite as f64)
    }

    /// Estimates the `p`-quantile (`p` clamped to `[0, 1]`) by linear
    /// interpolation inside the bucket holding the target rank —
    /// the standard fixed-bucket estimate, exact only at bucket edges.
    /// The first bucket interpolates up from the observed minimum and
    /// the overflow bucket up to the observed maximum, so estimates are
    /// always bracketed by the enclosing bucket's edges (and the
    /// estimate is monotone in `p` — both property-tested). Non-finite
    /// observations sit in the overflow bucket and can drag high
    /// quantiles toward the recorded finite maximum. `None` before the
    /// first observation.
    #[must_use]
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = p.clamp(0.0, 1.0) * self.total as f64;
        let last_bound = *self.bounds.last().expect("bounds are never empty");
        let mut cum = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if (cum + count) as f64 >= target {
                let lo = if i == 0 {
                    if self.min.is_finite() { self.min } else { self.bounds[0] }
                } else {
                    self.bounds[i - 1]
                };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else if self.max.is_finite() {
                    self.max.max(last_bound)
                } else {
                    last_bound
                };
                let frac = ((target - cum as f64) / count as f64).clamp(0.0, 1.0);
                // Clamp away interpolation rounding so the estimate
                // never escapes its bucket.
                return Some((lo + (hi - lo) * frac).clamp(lo, hi));
            }
            cum += count;
        }
        // Unreachable for a consistent histogram (cum reaches total),
        // but obs never panics: fall back to the largest known value.
        Some(if self.max.is_finite() { self.max.max(last_bound) } else { last_bound })
    }

    fn to_json(&self) -> Json {
        let finite = self.total - self.nonfinite;
        let mut pairs = vec![
            ("bounds", Json::Arr(self.bounds.iter().map(|&b| Json::Num(b)).collect())),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::from(c)).collect()),
            ),
            ("total", Json::from(self.total)),
        ];
        if self.nonfinite > 0 {
            pairs.push(("nonfinite", Json::from(self.nonfinite)));
        }
        if finite > 0 {
            pairs.push(("sum", Json::Num(self.sum)));
            pairs.push(("min", Json::Num(self.min)));
            pairs.push(("max", Json::Num(self.max)));
        }
        Json::obj(pairs)
    }

    /// Parses the snapshot form written by
    /// [`MetricsRegistry::snapshot`] back into a histogram (`None` on
    /// any shape mismatch) — how `obs_report` re-derives quantiles from
    /// a run summary.
    #[must_use]
    pub fn from_json(j: &Json) -> Option<Histogram> {
        let bounds: Vec<f64> =
            j.get("bounds")?.as_arr()?.iter().map(Json::as_f64).collect::<Option<_>>()?;
        let counts: Vec<u64> = j
            .get("counts")?
            .as_arr()?
            .iter()
            .map(|c| c.as_usize().map(|v| v as u64))
            .collect::<Option<_>>()?;
        if bounds.is_empty() || counts.len() != bounds.len() + 1 {
            return None;
        }
        for pair in bounds.windows(2) {
            if pair[0].partial_cmp(&pair[1]) != Some(std::cmp::Ordering::Less) {
                return None;
            }
        }
        let total = j.get("total")?.as_usize()? as u64;
        let nonfinite = j.get("nonfinite").and_then(Json::as_usize).unwrap_or(0) as u64;
        Some(Histogram {
            bounds,
            counts,
            total,
            nonfinite,
            sum: j.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
            min: j.get("min").and_then(Json::as_f64).unwrap_or(f64::INFINITY),
            max: j.get("max").and_then(Json::as_f64).unwrap_or(f64::NEG_INFINITY),
        })
    }
}

/// The registry itself: three metric families, keyed by name. Keys are
/// stored sorted so snapshots serialise in a stable order.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (created at zero on first use).
    pub fn inc_counter(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records an observation into the named histogram, creating it
    /// with `bounds` on first use (later calls keep the original
    /// bounds).
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current value of a counter (zero when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, when set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, when any observation created it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Drops every recorded metric (run boundaries call this so each
    /// run manifest summarises only its own metrics).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Exports the whole registry as one JSON object with `counters`,
    /// `gauges` and `histograms` members, keys sorted.
    #[must_use]
    pub fn snapshot(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::from(v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 99.0, f64::NAN] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.mean(), Some((0.5 + 1.0 + 1.5 + 2.0 + 99.0) / 5.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn registry_families_are_independent() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("early_stops", 2);
        m.inc_counter("early_stops", 1);
        m.set_gauge("final_loss", 0.5);
        m.set_gauge("final_loss", 0.25);
        m.observe("loss", &LOSS_BUCKETS, 0.3);
        assert_eq!(m.counter("early_stops"), 3);
        assert_eq!(m.gauge("final_loss"), Some(0.25));
        assert_eq!(m.histogram("loss").unwrap().total(), 1);
        m.reset();
        assert!(m.is_empty());
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[10.0, 20.0]);
        assert_eq!(h.quantile(0.5), None);
        // Four observations in (10, 20]: ranks interpolate linearly
        // across that bucket.
        for v in [12.0, 14.0, 16.0, 18.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(10.0));
        assert_eq!(h.quantile(0.5), Some(15.0));
        assert_eq!(h.quantile(1.0), Some(20.0));
        // p is clamped.
        assert_eq!(h.quantile(-1.0), Some(10.0));
        assert_eq!(h.quantile(2.0), Some(20.0));
    }

    #[test]
    fn quantile_uses_min_and_max_for_the_edge_buckets() {
        let mut h = Histogram::new(&[10.0]);
        h.observe(4.0); // first bucket: lo = observed min
        h.observe(30.0); // overflow: hi = observed max
        assert_eq!(h.quantile(0.0), Some(4.0));
        assert_eq!(h.quantile(0.5), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(30.0));
    }

    #[test]
    fn quantile_survives_nonfinite_observations() {
        let mut h = Histogram::new(&[10.0]);
        h.observe(f64::NAN);
        // Only the overflow bucket is populated and no finite max was
        // seen: the estimate falls back to the last bound.
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn histogram_json_round_trip_preserves_quantiles() {
        let mut h = Histogram::new(&TIME_NS_BUCKETS);
        for v in [5e3, 2e4, 3.5e5, 1e7, 2e12, f64::INFINITY] {
            h.observe(v);
        }
        let back = Histogram::from_json(&h.to_json()).expect("parses");
        assert_eq!(back, h);
        assert_eq!(back.quantile(0.5), h.quantile(0.5));
        assert_eq!(back.quantile(0.99), h.quantile(0.99));
        // Shape mismatches are rejected, not mis-parsed.
        assert!(Histogram::from_json(&Json::Null).is_none());
        assert!(Histogram::from_json(&Json::obj(vec![("bounds", Json::Arr(vec![]))])).is_none());
    }

    #[test]
    fn snapshot_round_trips_and_sorts_keys() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("zeta", 1.0);
        m.set_gauge("alpha", 2.0);
        m.observe("loss", &[1.0], 0.5);
        let snap = m.snapshot();
        let parsed = Json::parse(&snap.pretty()).unwrap();
        assert_eq!(parsed, snap);
        let gauges = parsed.require("gauges").unwrap();
        match gauges {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "alpha");
                assert_eq!(pairs[1].0, "zeta");
            }
            other => panic!("expected object, got {other:?}"),
        }
        let h = parsed.require("histograms").unwrap().require("loss").unwrap();
        assert_eq!(h.require("total").unwrap().to_usize().unwrap(), 1);
    }
}
