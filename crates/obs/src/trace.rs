//! Structured span/event tracing with monotonic nanosecond timing.
//!
//! A [`Recorder`] owns the event sink behind one mutex, a
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry), and the active
//! run manifest (see [`crate::manifest`]). Instrumented code normally
//! talks to the process-wide recorder through [`recorder`] and the
//! [`span!`](crate::span!) / [`point!`](crate::point!) macros; tests
//! build private recorders ([`Recorder::in_memory`]) so they never race
//! the global one.
//!
//! Verbosity is a three-level knob, `EMA_OBS=off|summary|full`
//! (default `summary`):
//!
//! - `off` — every obs call is a cheap no-op; no files are created;
//! - `summary` — events are *counted* and metrics accumulate, but no
//!   per-event JSONL is written; a run manifest still gets its summary
//!   JSON;
//! - `full` — additionally streams every span/point event as one JSON
//!   line to `results/obs/<run>.jsonl`.
//!
//! Timing fields (`t_ns`, `dur_ns`) are offsets from the recorder's
//! creation on the monotonic clock. They appear **only** in obs output;
//! results and checkpoint JSON never contain wall-clock data, which is
//! what keeps same-seed runs byte-identical under every mode.

use crate::json::Json;
use crate::manifest::RunState;
use crate::metrics::MetricsRegistry;
use crate::profile::Profile;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Obs verbosity, resolved from `EMA_OBS` (default [`ObsMode::Summary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// No telemetry at all; no obs files are ever created.
    Off,
    /// Metrics + event counts + run summaries, no per-event JSONL.
    Summary,
    /// Everything, including the streamed JSONL event log.
    Full,
}

impl ObsMode {
    /// Reads the mode from the `EMA_OBS` environment variable.
    /// Unrecognised values fall back to `Summary` with a warning —
    /// observability must never abort a run.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("EMA_OBS").as_deref() {
            Ok("off") | Ok("0") => ObsMode::Off,
            Ok("full") => ObsMode::Full,
            Ok("summary") | Err(_) => ObsMode::Summary,
            Ok(other) => {
                eprintln!("warning: unknown EMA_OBS={other:?}; using \"summary\"");
                ObsMode::Summary
            }
        }
    }

    /// Stable label used in run summaries.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Summary => "summary",
            ObsMode::Full => "full",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            ObsMode::Off => 0,
            ObsMode::Summary => 1,
            ObsMode::Full => 2,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => ObsMode::Off,
            2 => ObsMode::Full,
            _ => ObsMode::Summary,
        }
    }
}

/// Where emitted events go.
pub(crate) enum Sink {
    /// Events are counted but not persisted (`off`/`summary`).
    Null,
    /// Events accumulate in memory — test recorders only.
    Memory(Vec<Json>),
    /// Events stream to a JSONL file (`full` mode with an active run).
    File(BufWriter<File>),
}

impl Sink {
    fn write(&mut self, event: &Json) {
        match self {
            Sink::Null => {}
            Sink::Memory(buf) => buf.push(event.clone()),
            Sink::File(w) => {
                // Obs is best-effort: a full disk must not kill training.
                let _ = writeln!(w, "{}", event.compact());
            }
        }
    }
}

pub(crate) struct Inner {
    pub(crate) sink: Sink,
    pub(crate) event_counts: BTreeMap<String, u64>,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) run: Option<RunState>,
    /// Aggregated span profile (see [`crate::profile`]); thread-local
    /// aggregators merge into it when their root span closes, and run
    /// boundaries reset it alongside the metrics.
    pub(crate) profile: Profile,
    /// Run names already used by this recorder, for collision-free file
    /// stems; deliberately *not* reset at run boundaries.
    pub(crate) used_run_names: BTreeMap<String, u64>,
}

/// A thread-safe telemetry recorder; see the module docs for the
/// mode semantics.
pub struct Recorder {
    start: Instant,
    mode: AtomicU8,
    pub(crate) inner: Mutex<Inner>,
}

// Per-thread span depth and a small stable-ish thread id for event
// attribution; both are obs-output-only.
thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static THREAD_ID: Cell<Option<usize>> = const { Cell::new(None) };
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
    static WORKER_BUF: std::cell::RefCell<Option<WorkerBuffer>> =
        const { std::cell::RefCell::new(None) };
    static PROFILER: std::cell::RefCell<Option<ThreadProfiler>> =
        const { std::cell::RefCell::new(None) };
}

/// Per-thread span profile under construction: the live call stack plus
/// the durations recorded so far. Like [`WorkerBuffer`] it is keyed to
/// one recorder, and it merges into that recorder's shared
/// [`Profile`] in a single locked section when the thread's *root* span
/// closes — so profiling adds no lock traffic inside the span tree,
/// matching the worker-scope batching discipline.
struct ThreadProfiler {
    rec: *const Recorder,
    stack: Vec<String>,
    profile: Profile,
}

/// Events buffered on a worker thread while a [`WorkerScope`] is open.
/// Keyed to one recorder so a private test recorder on the same thread
/// never gets its events rerouted into the scope's recorder.
struct WorkerBuffer {
    rec: *const Recorder,
    events: Vec<(String, Json)>,
}

static NEXT_THREAD_ID: AtomicUsize = AtomicUsize::new(0);

fn thread_id() -> usize {
    THREAD_ID.with(|cell| match cell.get() {
        Some(id) => id,
        None => {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(id));
            id
        }
    })
}

impl Recorder {
    /// A recorder with the given mode and a null sink.
    #[must_use]
    pub fn with_mode(mode: ObsMode) -> Self {
        Self {
            start: Instant::now(),
            mode: AtomicU8::new(mode.to_u8()),
            inner: Mutex::new(Inner {
                sink: Sink::Null,
                event_counts: BTreeMap::new(),
                metrics: MetricsRegistry::new(),
                run: None,
                profile: Profile::new(),
                used_run_names: BTreeMap::new(),
            }),
        }
    }

    /// A recorder resolved from `EMA_OBS` — the global default.
    #[must_use]
    pub fn from_env() -> Self {
        Self::with_mode(ObsMode::from_env())
    }

    /// A recorder whose events accumulate in memory, for tests; read
    /// them back with [`Recorder::drain_events`].
    #[must_use]
    pub fn in_memory(mode: ObsMode) -> Self {
        let rec = Self::with_mode(mode);
        rec.inner.lock().expect("fresh lock").sink = Sink::Memory(Vec::new());
        rec
    }

    /// The current mode (one relaxed atomic load — safe on hot paths).
    #[must_use]
    pub fn mode(&self) -> ObsMode {
        ObsMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Overrides the mode (the `--obs` bench flag and tests use this;
    /// normal runs inherit `EMA_OBS`).
    pub fn set_mode(&self, mode: ObsMode) {
        self.mode.store(mode.to_u8(), Ordering::Relaxed);
    }

    /// Nanoseconds since this recorder was created (monotonic clock).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic while holding this lock poisons it; obs keeps working
        // for the surviving threads rather than cascading the panic.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn emit(&self, name: &str, event: Json) {
        // Inside a worker scope, events park in the thread-local buffer
        // and reach the shared sink in one batch when the scope closes —
        // concurrent individuals' span trees stay contiguous in the
        // JSONL instead of interleaving line by line.
        let event = match WORKER_BUF.with(|b| {
            if let Some(buf) = b.borrow_mut().as_mut() {
                if std::ptr::eq(buf.rec, self) {
                    buf.events.push((name.to_string(), event));
                    return None;
                }
            }
            Some(event)
        }) {
            Some(event) => event,
            None => return,
        };
        let mut inner = self.lock();
        *inner.event_counts.entry(name.to_string()).or_insert(0) += 1;
        inner.sink.write(&event);
    }

    /// Opens a span: emits an `enter` event now and the matching `exit`
    /// (with `dur_ns`) when the returned guard drops. In `Off` mode the
    /// guard is inert and free.
    #[must_use]
    pub fn span(&self, name: &str, fields: Vec<(&str, Json)>) -> SpanGuard<'_> {
        if self.mode() == ObsMode::Off {
            return SpanGuard {
                rec: None,
                name: String::new(),
                start_ns: 0,
                depth: 0,
                thread: 0,
                profiled: false,
            };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        // Push onto this thread's profile stack — unless a *different*
        // recorder's profiler is mid-tree here (a private test recorder
        // nesting inside global spans, or vice versa); those spans stay
        // unprofiled rather than corrupting the other tree.
        let profiled = PROFILER.with(|p| {
            let mut slot = p.borrow_mut();
            match slot.as_mut() {
                None => {
                    *slot = Some(ThreadProfiler {
                        rec: self,
                        stack: vec![name.to_string()],
                        profile: Profile::new(),
                    });
                    true
                }
                Some(prof) if std::ptr::eq(prof.rec, self) => {
                    prof.stack.push(name.to_string());
                    true
                }
                Some(_) => false,
            }
        });
        let thread = thread_id();
        let start_ns = self.elapsed_ns();
        let mut entry = vec![
            ("ev", Json::from("enter")),
            ("span", Json::from(name)),
            ("t_ns", Json::from(start_ns)),
            ("thread", Json::from(thread)),
            ("depth", Json::from(depth)),
        ];
        if let Some(worker) = WORKER.with(Cell::get) {
            entry.push(("worker", Json::from(worker)));
        }
        entry.push(("fields", Json::obj(fields)));
        self.emit(name, Json::obj(entry));
        SpanGuard { rec: Some(self), name: name.to_string(), start_ns, depth, thread, profiled }
    }

    /// Emits one instantaneous event (no duration), e.g. a
    /// `train_epoch` sample or an `early_stop` decision.
    pub fn point(&self, name: &str, fields: Vec<(&str, Json)>) {
        if self.mode() == ObsMode::Off {
            return;
        }
        let mut entry = vec![
            ("ev", Json::from("point")),
            ("name", Json::from(name)),
            ("t_ns", Json::from(self.elapsed_ns())),
            ("thread", Json::from(thread_id())),
        ];
        if let Some(worker) = WORKER.with(Cell::get) {
            entry.push(("worker", Json::from(worker)));
        }
        entry.push(("fields", Json::obj(fields)));
        self.emit(name, Json::obj(entry));
    }

    /// Adds `by` to the named counter (no-op in `Off` mode).
    pub fn inc_counter(&self, name: &str, by: u64) {
        if self.mode() != ObsMode::Off {
            self.lock().metrics.inc_counter(name, by);
        }
    }

    /// Sets the named gauge (no-op in `Off` mode).
    pub fn set_gauge(&self, name: &str, value: f64) {
        if self.mode() != ObsMode::Off {
            self.lock().metrics.set_gauge(name, value);
        }
    }

    /// Records a histogram observation (no-op in `Off` mode); the
    /// histogram is created with `bounds` on first use.
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        if self.mode() != ObsMode::Off {
            self.lock().metrics.observe(name, bounds, value);
        }
    }

    /// A point-in-time JSON export of the metrics registry.
    #[must_use]
    pub fn metrics_snapshot(&self) -> Json {
        self.lock().metrics.snapshot()
    }

    /// How many events with this name were emitted since the last run
    /// boundary (or recorder creation).
    #[must_use]
    pub fn event_count(&self, name: &str) -> u64 {
        self.lock().event_counts.get(name).copied().unwrap_or(0)
    }

    /// Takes the buffered events out of a [`Recorder::in_memory`]
    /// recorder (empty for other sinks).
    #[must_use]
    pub fn drain_events(&self) -> Vec<Json> {
        match &mut self.lock().sink {
            Sink::Memory(buf) => std::mem::take(buf),
            _ => Vec::new(),
        }
    }

    /// A copy of the aggregated span profile so far. Only *fully closed*
    /// root spans are visible — per-thread trees still open contribute
    /// nothing until their root exits (run summaries are written after
    /// all spans close, so they always see the complete profile).
    #[must_use]
    pub fn profile_snapshot(&self) -> Profile {
        self.lock().profile.clone()
    }

    /// Drains this thread's [`ema_tensor`] kernel work counters into
    /// metrics counters named `kernel.<phase>.<backend>.{calls,flops,
    /// bytes}`, where `<phase>` is the active run phase (or `run`
    /// without one). Take-semantics: each call consumes what this
    /// thread accumulated since the previous drain, so the drain sites
    /// (executor jobs, `train_model`, the bench harness) compose
    /// without double counting. No-op in `Off` mode — but the counters
    /// only accumulate while the mode keeps [`ema_tensor::
    /// set_kernel_counting`] enabled anyway (see [`set_mode`]).
    pub fn drain_kernel_counters(&self) {
        if self.mode() == ObsMode::Off {
            // Still clear the thread's counters so work accumulated
            // around a mode flip is never misattributed later.
            let _ = ema_tensor::take_kernel_counters();
            return;
        }
        let snap = ema_tensor::take_kernel_counters();
        if snap.is_empty() {
            return;
        }
        let mut inner = self.lock();
        let phase = inner
            .run
            .as_ref()
            .and_then(RunState::current_phase_title)
            .unwrap_or("run")
            .to_string();
        for (backend, c) in [("scalar", snap.scalar), ("simd", snap.simd)] {
            if c.calls == 0 {
                continue;
            }
            inner.metrics.inc_counter(&format!("kernel.{phase}.{backend}.calls"), c.calls);
            inner.metrics.inc_counter(&format!("kernel.{phase}.{backend}.flops"), c.flops);
            inner.metrics.inc_counter(&format!("kernel.{phase}.{backend}.bytes"), c.bytes);
        }
    }
}

/// RAII guard for an open span; emits the `exit` event on drop.
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    name: String,
    start_ns: u64,
    depth: usize,
    thread: usize,
    profiled: bool,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(rec) = self.rec else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let now = rec.elapsed_ns();
        let dur_ns = now.saturating_sub(self.start_ns);
        let mut entry = vec![
            ("ev", Json::from("exit")),
            ("span", Json::from(self.name.as_str())),
            ("t_ns", Json::from(now)),
            ("thread", Json::from(self.thread)),
            ("depth", Json::from(self.depth)),
        ];
        if let Some(worker) = WORKER.with(Cell::get) {
            entry.push(("worker", Json::from(worker)));
        }
        entry.push(("dur_ns", Json::from(dur_ns)));
        rec.emit(&self.name, Json::obj(entry));
        if self.profiled {
            self.record_profile(rec, dur_ns);
        }
    }
}

impl SpanGuard<'_> {
    /// Records this span's duration under its call path and, when it
    /// was the thread's root span, merges the finished per-thread tree
    /// into the recorder. Guards held past their scope (non-LIFO drops)
    /// are discarded defensively, matching
    /// [`Profile::from_events`](crate::profile::Profile::from_events).
    fn record_profile(&self, rec: &Recorder, dur_ns: u64) {
        let finished = PROFILER.with(|p| {
            let mut slot = p.borrow_mut();
            let prof = slot.as_mut()?;
            if !std::ptr::eq(prof.rec, rec) {
                return None;
            }
            if prof.stack.last().map(String::as_str) == Some(self.name.as_str()) {
                prof.profile.record(&prof.stack, dur_ns);
                prof.stack.pop();
            }
            if prof.stack.is_empty() {
                slot.take()
            } else {
                None
            }
        });
        if let Some(prof) = finished {
            rec.lock().profile.merge(&prof.profile);
        }
    }
}

/// RAII marker for "this thread is executor worker `w`, running one
/// job". While the scope is open, every event this recorder emits on
/// the thread carries a `worker` field and is buffered thread-locally;
/// dropping the scope flushes the batch through the recorder in one
/// locked section, so a job's span tree lands contiguously (and each
/// JSONL line stays well-formed) however many workers run concurrently.
///
/// Scopes do not nest — opening a second scope on the same thread
/// flushes nothing by itself but replaces the buffer, so the executor
/// opens exactly one per job.
pub struct WorkerScope<'a> {
    rec: &'a Recorder,
    prev_worker: Option<usize>,
    active: bool,
}

impl Recorder {
    /// Opens a worker scope for `worker` on the current thread (inert
    /// in `Off` mode). See [`WorkerScope`].
    #[must_use]
    pub fn worker_scope(&self, worker: usize) -> WorkerScope<'_> {
        if self.mode() == ObsMode::Off {
            return WorkerScope { rec: self, prev_worker: None, active: false };
        }
        let prev_worker = WORKER.with(|w| w.replace(Some(worker)));
        WORKER_BUF.with(|b| {
            *b.borrow_mut() = Some(WorkerBuffer { rec: self, events: Vec::new() });
        });
        WorkerScope { rec: self, prev_worker, active: true }
    }
}

impl Drop for WorkerScope<'_> {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        WORKER.with(|w| w.set(self.prev_worker));
        let buffer = WORKER_BUF.with(|b| b.borrow_mut().take());
        let Some(buffer) = buffer else { return };
        if !std::ptr::eq(buffer.rec, self.rec) {
            return; // replaced by a newer scope; nothing of ours left
        }
        let mut inner = self.rec.lock();
        for (name, event) in buffer.events {
            *inner.event_counts.entry(name).or_insert(0) += 1;
            inner.sink.write(&event);
        }
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder, created from `EMA_OBS` on first use.
/// Instrumented library code (training loop, pipeline, bench harness)
/// reports here. Kernel work counting in `ema-tensor` follows this
/// recorder's mode: enabled unless the mode is `Off`.
pub fn recorder() -> &'static Recorder {
    GLOBAL.get_or_init(|| {
        let rec = Recorder::from_env();
        ema_tensor::set_kernel_counting(rec.mode() != ObsMode::Off);
        rec
    })
}

/// Shorthand for `recorder().mode()`.
#[must_use]
pub fn mode() -> ObsMode {
    recorder().mode()
}

/// Sets the global recorder's mode and keeps the process-wide
/// `ema-tensor` kernel counting flag in sync (off ⇔ no counting, so
/// `EMA_OBS=off` pays nothing on the matmul hot path).
pub fn set_mode(mode: ObsMode) {
    recorder().set_mode(mode);
    ema_tensor::set_kernel_counting(mode != ObsMode::Off);
}

/// Shorthand for `recorder().drain_kernel_counters()`: attribute this
/// thread's accumulated kernel work to the global recorder's metrics.
pub fn drain_kernel_counters() {
    recorder().drain_kernel_counters();
}

/// Opens a span on the global recorder:
/// `let _s = span!("train_epoch", individual = id, epoch = e);`
/// Field values can be anything with `impl Into<Json>` (numbers,
/// strings, bools). The span closes when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::recorder().span($name, ::std::vec![
            $( (stringify!($key), $crate::Json::from($val)) ),*
        ])
    };
}

/// Emits an instantaneous event on the global recorder:
/// `point!("early_stop", epoch = e, best = best);`
#[macro_export]
macro_rules! point {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::recorder().point($name, ::std::vec![
            $( (stringify!($key), $crate::Json::from($val)) ),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_emits_nothing() {
        let rec = Recorder::in_memory(ObsMode::Off);
        {
            let _s = rec.span("quiet", vec![]);
            rec.point("nope", vec![]);
            rec.inc_counter("n", 1);
        }
        assert!(rec.drain_events().is_empty());
        assert_eq!(rec.event_count("quiet"), 0);
        assert_eq!(rec.metrics_snapshot().require("counters").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn spans_emit_balanced_enter_exit_with_duration() {
        let rec = Recorder::in_memory(ObsMode::Full);
        {
            let _outer = rec.span("outer", vec![("k", Json::from(1usize))]);
            let _inner = rec.span("inner", vec![]);
        }
        let events = rec.drain_events();
        assert_eq!(events.len(), 4);
        let evs: Vec<&str> = events
            .iter()
            .map(|e| e.require("ev").unwrap().to_str().unwrap())
            .collect();
        assert_eq!(evs, ["enter", "enter", "exit", "exit"]);
        // Inner exits first (LIFO) and carries a duration.
        assert_eq!(events[2].require("span").unwrap().to_str().unwrap(), "inner");
        assert!(events[2].require("dur_ns").unwrap().to_f64().unwrap() >= 0.0);
        // Depths: outer = 0, inner = 1, matched on exit.
        assert_eq!(events[0].require("depth").unwrap().to_usize().unwrap(), 0);
        assert_eq!(events[1].require("depth").unwrap().to_usize().unwrap(), 1);
        assert_eq!(events[3].require("depth").unwrap().to_usize().unwrap(), 0);
    }

    #[test]
    fn summary_mode_counts_without_persisting() {
        let rec = Recorder::with_mode(ObsMode::Summary);
        rec.point("train_epoch", vec![("loss", Json::Num(0.5))]);
        rec.point("train_epoch", vec![("loss", Json::Num(0.4))]);
        assert_eq!(rec.event_count("train_epoch"), 2);
        assert!(rec.drain_events().is_empty());
    }

    #[test]
    fn recorder_is_thread_safe() {
        let rec = Recorder::in_memory(ObsMode::Full);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..25 {
                        let _s = rec.span("worker", vec![("i", Json::from(i as usize))]);
                        rec.inc_counter("iterations", 1);
                    }
                });
            }
        });
        assert_eq!(rec.event_count("worker"), 4 * 25 * 2); // enter + exit
        let snap = rec.metrics_snapshot();
        let counters = snap.require("counters").unwrap();
        assert_eq!(counters.require("iterations").unwrap().to_usize().unwrap(), 100);
    }

    #[test]
    fn worker_scope_tags_and_batches_events() {
        let rec = Recorder::in_memory(ObsMode::Full);
        {
            let _w = rec.worker_scope(3);
            let _s = rec.span("job", vec![]);
            rec.point("inside", vec![]);
            // Buffered: nothing reaches the sink or counts yet.
            assert_eq!(rec.event_count("job"), 0);
        }
        let events = rec.drain_events();
        assert_eq!(events.len(), 3); // enter, point, exit
        for e in &events {
            assert_eq!(e.require("worker").unwrap().to_usize().unwrap(), 3);
        }
        assert_eq!(rec.event_count("job"), 2);
        assert_eq!(rec.event_count("inside"), 1);
    }

    #[test]
    fn worker_scopes_keep_concurrent_jobs_contiguous() {
        let rec = Recorder::in_memory(ObsMode::Full);
        std::thread::scope(|scope| {
            for w in 0..3usize {
                let rec = &rec;
                scope.spawn(move || {
                    for _ in 0..5 {
                        let _ws = rec.worker_scope(w);
                        let _s = rec.span("job", vec![("w", Json::from(w))]);
                        rec.point("step", vec![]);
                    }
                });
            }
        });
        let events = rec.drain_events();
        assert_eq!(events.len(), 3 * 5 * 3);
        // Each flushed batch is contiguous: events arrive in
        // enter/point/exit triples from a single worker.
        for triple in events.chunks(3) {
            let workers: Vec<usize> = triple
                .iter()
                .map(|e| e.require("worker").unwrap().to_usize().unwrap())
                .collect();
            assert_eq!(workers[0], workers[1]);
            assert_eq!(workers[1], workers[2]);
            let evs: Vec<&str> = triple
                .iter()
                .map(|e| e.require("ev").unwrap().to_str().unwrap())
                .collect();
            assert_eq!(evs, ["enter", "point", "exit"]);
        }
    }

    #[test]
    fn worker_scope_is_inert_when_off() {
        let rec = Recorder::in_memory(ObsMode::Off);
        {
            let _w = rec.worker_scope(1);
            let _s = rec.span("quiet", vec![]);
        }
        assert!(rec.drain_events().is_empty());
    }

    #[test]
    fn events_without_scope_carry_no_worker_field() {
        let rec = Recorder::in_memory(ObsMode::Full);
        rec.point("bare", vec![]);
        let events = rec.drain_events();
        assert!(events[0].get("worker").is_none());
    }

    #[test]
    fn spans_aggregate_into_the_profile_at_root_exit() {
        let rec = Recorder::in_memory(ObsMode::Full);
        {
            let _outer = rec.span("outer", vec![]);
            {
                let _inner = rec.span("inner", vec![]);
            }
            {
                let _inner = rec.span("inner", vec![]);
            }
            // Root still open: nothing has merged yet.
            assert!(rec.profile_snapshot().is_empty());
        }
        let profile = rec.profile_snapshot();
        let (name, outer) = profile.roots().next().expect("root recorded");
        assert_eq!(name, "outer");
        assert_eq!(outer.count(), 1);
        let (child_name, inner) = outer.children().next().expect("child recorded");
        assert_eq!(child_name, "inner");
        assert_eq!(inner.count(), 2);
        assert!(outer.total_ns() >= inner.total_ns());
        assert_eq!(outer.self_ns(), outer.total_ns() - inner.total_ns());
    }

    #[test]
    fn profile_matches_event_replay() {
        let rec = Recorder::in_memory(ObsMode::Full);
        for _ in 0..3 {
            let _job = rec.span("job", vec![]);
            let _train = rec.span("train", vec![]);
        }
        let live = rec.profile_snapshot();
        let replayed = crate::profile::Profile::from_events(&rec.drain_events());
        assert_eq!(live, replayed);
    }

    #[test]
    fn off_mode_spans_do_not_profile() {
        let rec = Recorder::in_memory(ObsMode::Off);
        {
            let _s = rec.span("quiet", vec![]);
        }
        assert!(rec.profile_snapshot().is_empty());
    }

    #[test]
    fn nested_foreign_recorder_spans_stay_unprofiled() {
        let rec_a = Recorder::in_memory(ObsMode::Full);
        let rec_b = Recorder::in_memory(ObsMode::Full);
        {
            let _a = rec_a.span("a_root", vec![]);
            {
                // B's span opens inside A's tree on this thread; it must
                // not corrupt A's stack nor create a bogus B tree.
                let _b = rec_b.span("b_span", vec![]);
            }
            {
                let _a2 = rec_a.span("a_child", vec![]);
            }
        }
        assert!(rec_b.profile_snapshot().is_empty());
        let profile = rec_a.profile_snapshot();
        let (name, root) = profile.roots().next().unwrap();
        assert_eq!(name, "a_root");
        assert_eq!(root.children().next().unwrap().0, "a_child");
    }

    #[test]
    fn drain_kernel_counters_attributes_to_backend_and_phase() {
        use ema_tensor::{KernelBackend, Tensor};
        let rec = Recorder::in_memory(ObsMode::Summary);
        // The drain takes whatever this thread accumulated; clear first
        // so other tests' kernel work cannot leak in.
        let _ = ema_tensor::take_kernel_counters();
        ema_tensor::set_kernel_counting(true);
        let _scope = KernelBackend::Scalar.scoped();
        let a = Tensor::filled(&[2, 3], 1.0);
        let b = Tensor::filled(&[3, 4], 1.0);
        let _ = a.matmul(&b);
        rec.drain_kernel_counters();
        let snap = rec.metrics_snapshot();
        let counters = snap.require("counters").unwrap();
        assert_eq!(
            counters.require("kernel.run.scalar.calls").unwrap().to_usize().unwrap(),
            1
        );
        assert_eq!(
            counters.require("kernel.run.scalar.flops").unwrap().to_usize().unwrap(),
            2 * 2 * 3 * 4
        );
        // Take-semantics: a second drain adds nothing.
        rec.drain_kernel_counters();
        let snap2 = rec.metrics_snapshot();
        assert_eq!(snap, snap2);
    }

    #[test]
    fn mode_parsing_matches_knob_docs() {
        assert_eq!(ObsMode::from_u8(ObsMode::Off.to_u8()), ObsMode::Off);
        assert_eq!(ObsMode::from_u8(ObsMode::Summary.to_u8()), ObsMode::Summary);
        assert_eq!(ObsMode::from_u8(ObsMode::Full.to_u8()), ObsMode::Full);
        assert_eq!(ObsMode::Full.label(), "full");
    }
}
