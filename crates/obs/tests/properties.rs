//! Property tests for the obs layer: histogram bucket/quantile
//! invariants, span-nesting balance and span-profile invariants,
//! driven by `ema_check`.

use ema_check::{gen, prop_assert, prop_assert_eq, prop_tests};
use ema_obs::{Histogram, Json, ObsMode, Profile, Recorder};
use ema_tensor::Rng64;

/// Strictly increasing finite bucket bounds (1–8 of them).
fn bounds_gen(rng: &mut Rng64) -> Vec<f64> {
    let n = gen::usize_in(rng, 1, 8);
    let mut bounds = Vec::with_capacity(n);
    let mut edge = gen::f64_in(rng, -100.0, 100.0);
    for _ in 0..n {
        bounds.push(edge);
        edge += gen::f64_in(rng, 1e-3, 50.0);
    }
    bounds
}

/// Observations spanning well below, inside, and above typical bounds.
fn observations_gen(rng: &mut Rng64) -> Vec<f64> {
    gen::vec_f64(rng, -500.0, 500.0, 0, 64)
}

/// A random span-nesting program: at each step open a new span or close
/// the deepest one; anything still open at the end closes implicitly
/// (guards drop LIFO).
fn program_gen(rng: &mut Rng64) -> Vec<bool> {
    (0..gen::usize_in(rng, 0, 40)).map(|_| rng.uniform() < 0.55).collect()
}

/// Runs a nesting program against a fresh in-memory recorder and
/// returns the emitted events.
fn run_program(program: &[bool]) -> Vec<Json> {
    let rec = Recorder::in_memory(ObsMode::Full);
    drive_program(&rec, program);
    rec.drain_events()
}

/// Plays one nesting program's spans on `rec` from the current thread.
fn drive_program(rec: &Recorder, program: &[bool]) {
    let mut stack = Vec::new();
    for (i, &open) in program.iter().enumerate() {
        if open || stack.is_empty() {
            let name = format!("span{}", i % 5);
            stack.push(rec.span(&name, vec![("step", Json::from(i))]));
        } else {
            drop(stack.pop());
        }
    }
    while let Some(guard) = stack.pop() {
        drop(guard);
    }
}

/// 2–4 independent nesting programs, one per simulated worker.
fn jobs_gen(rng: &mut Rng64) -> Vec<Vec<bool>> {
    (0..gen::usize_in(rng, 2, 4)).map(|_| program_gen(rng)).collect()
}

prop_tests! {
    fn histogram_counts_sum_to_total(bounds in bounds_gen, obs in observations_gen) {
        let mut h = Histogram::new(&bounds);
        for &v in &obs {
            h.observe(v);
        }
        prop_assert_eq!(h.counts().iter().sum::<u64>(), h.total());
        prop_assert_eq!(h.total(), obs.len() as u64);
        prop_assert_eq!(h.counts().len(), h.bounds().len() + 1);
    }

    fn histogram_buckets_match_naive_recount(bounds in bounds_gen, obs in observations_gen) {
        let mut h = Histogram::new(&bounds);
        let mut naive = vec![0u64; bounds.len() + 1];
        for &v in &obs {
            h.observe(v);
            let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
            naive[idx] += 1;
        }
        prop_assert_eq!(h.counts(), &naive[..]);
    }

    fn histogram_bounds_stay_monotone_through_snapshot(bounds in bounds_gen, obs in observations_gen) {
        let mut h = Histogram::new(&bounds);
        for &v in &obs {
            h.observe(v);
        }
        prop_assert!(h.bounds().windows(2).all(|w| w[0] < w[1]));
        if let Some(mean) = h.mean() {
            prop_assert!(mean.is_finite());
        } else {
            prop_assert!(obs.is_empty());
        }
    }

    fn quantile_is_monotone_and_bracketed(bounds in bounds_gen, obs in observations_gen) {
        let mut h = Histogram::new(&bounds);
        for &v in &obs {
            h.observe(v);
        }
        if obs.is_empty() {
            prop_assert_eq!(h.quantile(0.5), None);
        } else {
            // The documented bracket: estimates never leave
            // [min(first bound, observed min), max(last bound, observed max)].
            let lo = obs.iter().copied().fold(bounds[0], f64::min);
            let hi = obs.iter().copied().fold(*bounds.last().unwrap(), f64::max);
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=20 {
                let p = i as f64 / 20.0;
                let q = h.quantile(p).unwrap();
                prop_assert!(q.is_finite(), "quantile({p}) not finite: {q}");
                prop_assert!(q >= prev, "quantile not monotone: q({p}) = {q} < {prev}");
                prop_assert!(q >= lo && q <= hi, "q({p}) = {q} outside [{lo}, {hi}]");
                prev = q;
            }
        }
    }

    @cases(64)
    fn profile_tree_invariants_hold_and_replay_matches(program in program_gen) {
        let rec = Recorder::in_memory(ObsMode::Full);
        drive_program(&rec, program.as_slice());
        let live = rec.profile_snapshot();
        // Live thread-local aggregation must agree exactly with an
        // offline replay of the very events those spans emitted.
        let replayed = Profile::from_events(&rec.drain_events());
        prop_assert_eq!(live.clone(), replayed);
        for (path, node) in live.flatten() {
            prop_assert!(node.count() > 0, "{path}: empty node materialised");
            prop_assert!(
                node.children_total_ns() <= node.total_ns(),
                "{path}: children total {} exceeds node total {}",
                node.children_total_ns(),
                node.total_ns()
            );
            prop_assert_eq!(
                node.self_ns(),
                node.total_ns() - node.children_total_ns(),
                "{path}: self time is not total minus children"
            );
            prop_assert!(node.min_ns() <= node.max_ns());
            prop_assert!(node.total_ns() >= node.max_ns());
        }
    }

    @cases(32)
    fn parallel_worker_profiles_equal_sequential_replay(programs in jobs_gen) {
        let rec = Recorder::in_memory(ObsMode::Full);
        std::thread::scope(|scope| {
            for (w, program) in programs.iter().enumerate() {
                let rec = &rec;
                scope.spawn(move || {
                    let _ws = rec.worker_scope(w);
                    let _job = rec.span("job", vec![("w", Json::from(w))]);
                    drive_program(rec, program.as_slice());
                });
            }
        });
        let live = rec.profile_snapshot();
        // Concurrent per-thread aggregation merges to exactly what a
        // sequential replay of the recorded events produces.
        let replayed = Profile::from_events(&rec.drain_events());
        prop_assert_eq!(live.clone(), replayed);
        // Every worker's tree hangs under one "job" root, once each.
        let job = live.roots().find(|(name, _)| *name == "job");
        prop_assert!(job.is_some(), "job root missing");
        prop_assert_eq!(job.unwrap().1.count(), programs.len() as u64);
    }

    @cases(64)
    fn span_nesting_balances(program in program_gen) {
        let events = run_program(&program);
        // Replay the event stream: enters push, exits must match the
        // deepest open span, depths mirror the stack height, time is
        // monotone.
        let mut stack: Vec<String> = Vec::new();
        let mut enters = 0usize;
        let mut exits = 0usize;
        let mut last_t = 0.0f64;
        for ev in &events {
            let t = ev.require("t_ns").unwrap().to_f64().unwrap();
            prop_assert!(t >= last_t, "event time went backwards: {t} < {last_t}");
            last_t = t;
            let span = ev.require("span").unwrap().to_str().unwrap().to_string();
            let depth = ev.require("depth").unwrap().to_usize().unwrap();
            match ev.require("ev").unwrap().to_str().unwrap() {
                "enter" => {
                    prop_assert_eq!(depth, stack.len(), "enter depth off for {span}");
                    stack.push(span);
                    enters += 1;
                }
                "exit" => {
                    let open = stack.pop();
                    prop_assert_eq!(open.as_deref(), Some(span.as_str()), "exit without matching enter");
                    prop_assert_eq!(depth, stack.len(), "exit depth off for {span}");
                    prop_assert!(ev.require("dur_ns").unwrap().to_f64().unwrap() >= 0.0);
                    exits += 1;
                }
                other => prop_assert!(false, "unexpected event kind {other}"),
            }
        }
        prop_assert!(stack.is_empty(), "spans left open: {stack:?}");
        prop_assert_eq!(enters, exits);
    }
}
