//! The baseline LSTM forecaster (paper Experiment A).

use crate::cohort::{cohort_dropout, CohortBatch, CohortCtx, CohortForecaster};
use crate::{Forecaster, ForwardCtx, ModelConfig, WindowBatch};
use ema_autodiff::{Tape, Var};
use ema_nn::{Binding, Linear, LstmCell, ParamStore};
use ema_tensor::{Rng64, Tensor};

/// A single-layer LSTM over the input window followed by an affine head:
/// the standard multivariate baseline ("widely-applied LSTM", Sec. V-A).
///
/// Each window row (all `V` variables at one time point) is one input
/// step; the final hidden state maps to the next-step prediction.
pub struct LstmForecaster {
    store: ParamStore,
    cell: LstmCell,
    head: Linear,
    dropout: f64,
    num_variables: usize,
}

impl LstmForecaster {
    /// Builds the baseline for `V` variables.
    #[must_use]
    pub fn new(num_variables: usize, config: &ModelConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(config.seed);
        let cell = LstmCell::new(&mut store, "lstm", num_variables, config.hidden, &mut rng);
        let head = Linear::new(&mut store, "head", config.hidden, num_variables, &mut rng);
        Self {
            store,
            cell,
            head,
            dropout: config.dropout,
            num_variables,
        }
    }
}

impl Forecaster for LstmForecaster {
    fn name(&self) -> &'static str {
        "LSTM"
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn num_variables(&self) -> usize {
        self.num_variables
    }

    fn predict_window(
        &self,
        tape: &Tape,
        binding: &Binding,
        window: &Tensor,
        ctx: &mut ForwardCtx,
    ) -> Var {
        assert_eq!(window.rank(), 2, "window must be [seq, V]");
        assert_eq!(
            window.dims()[1],
            self.num_variables,
            "window has {} variables, model expects {}",
            window.dims()[1],
            self.num_variables
        );
        let seq = window.dims()[0];
        // Feed each time point as a [1, V] step.
        let xs: Vec<Var> = (0..seq)
            .map(|t| tape.leaf(window.row(t).reshaped(&[1, self.num_variables])))
            .collect();
        let state = self.cell.zero_state(tape, 1);
        let states = self.cell.run_sequence(tape, binding, &xs, state);
        let last = *states.last().expect("non-empty window");
        let dropped = tape.dropout(last, self.dropout, ctx.training, ctx.rng);
        let pred = self.head.forward(tape, binding, dropped); // [1, V]
        tape.flatten(pred)
    }

    fn predict_batch(
        &self,
        tape: &Tape,
        binding: &Binding,
        batch: &WindowBatch,
        ctx: &mut ForwardCtx,
    ) -> Var {
        assert_eq!(
            batch.num_vars(),
            self.num_variables,
            "batch has {} variables, model expects {}",
            batch.num_vars(),
            self.num_variables
        );
        let wins = batch.wins();
        // Step t across all windows is one [W, V] row block; the cell
        // recurrence runs once over the stack instead of once per
        // window. The [W, H] dropout mask is drawn row-major ==
        // window-major, matching the per-window draw sequence.
        let xs: Vec<Var> = (0..batch.seq_len())
            .map(|t| tape.leaf(batch.step(t).clone()))
            .collect();
        let state = self.cell.zero_state(tape, wins);
        let states = self.cell.run_sequence_batched(tape, binding, &xs, state, wins);
        let last = *states.last().expect("non-empty window");
        let dropped = tape.dropout(last, self.dropout, ctx.training, ctx.rng);
        self.head.forward_batched(tape, binding, dropped, wins) // [W, V]
    }
}

impl CohortForecaster for LstmForecaster {
    fn predict_cohort(
        group: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        batch: &CohortBatch,
        ctx: &mut CohortCtx,
    ) -> Var {
        assert_eq!(group.len(), batch.num_groups(), "one window batch per model");
        assert_eq!(group.len(), bindings.len(), "one binding per model");
        for (b, model) in group.iter().enumerate() {
            assert_eq!(
                model.num_variables,
                batch.num_vars(),
                "individual {b}: batch has {} variables, model expects {}",
                batch.num_vars(),
                model.num_variables
            );
        }
        // Mirror of `predict_batch` with grouped ops: step t across the
        // whole cohort is one [Σ W_b, V] row block; every grouped op is
        // bit-identical per block to the per-individual batched op, and
        // dropout draws each individual's mask from its own stream.
        let xs: Vec<Var> = (0..batch.seq_len())
            .map(|t| tape.leaf(batch.step(t).clone()))
            .collect();
        let cells: Vec<&LstmCell> = group.iter().map(|m| &m.cell).collect();
        let state = LstmCell::zero_state_grouped(&cells, tape, batch.total_rows());
        let states =
            LstmCell::run_sequence_grouped(&cells, tape, bindings, &xs, state, batch.group_wins());
        let last = *states.last().expect("non-empty window");
        let rates: Vec<f64> = group.iter().map(|m| m.dropout).collect();
        let dropped = cohort_dropout(tape, last, &rates, batch.group_wins(), ctx);
        let heads: Vec<&Linear> = group.iter().map(|m| &m.head).collect();
        Linear::forward_grouped(&heads, tape, bindings, dropped, batch.group_wins()) // [Σ W_b, V]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_nn::{Adam, Optimizer, OptimizerConfig};

    #[test]
    fn prediction_shape() {
        let model = LstmForecaster::new(6, &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(1);
        let window = Tensor::rand_normal(&[5, 6], 0.0, 1.0, &mut rng);
        let pred = model.predict(&window, &mut rng);
        assert_eq!(pred.dims(), &[6]);
        assert!(pred.all_finite());
    }

    #[test]
    fn eval_predictions_are_deterministic() {
        let model = LstmForecaster::new(4, &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(2);
        let window = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let a = model.predict(&window, &mut rng);
        let b = model.predict(&window, &mut rng);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn seq1_window_works() {
        let model = LstmForecaster::new(4, &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(3);
        let window = Tensor::rand_normal(&[1, 4], 0.0, 1.0, &mut rng);
        assert_eq!(model.predict(&window, &mut rng).dims(), &[4]);
    }

    #[test]
    fn can_overfit_a_constant_target() {
        // Sanity: training on one window should drive the loss down.
        let mut model = LstmForecaster::new(3, &ModelConfig::tiny(4));
        let mut rng = Rng64::seed_from(5);
        let window = Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut rng);
        let target = Tensor::from_vec1(vec![0.5, -0.2, 0.8]);
        let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.02));
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let tape = Tape::new();
            let binding = model.params().bind(&tape);
            let mut ctx = ForwardCtx::eval(&mut rng); // no dropout for the sanity check
            let pred = model.predict_window(&tape, &binding, &window, &mut ctx);
            let tgt = tape.leaf(target.clone());
            let loss = tape.mse(pred, tgt);
            last = tape.value(loss).data()[0];
            first.get_or_insert(last);
            let grads = tape.backward(loss);
            adam.step(model.params_mut(), &binding, &grads);
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.05,
            "loss did not drop: {first} -> {last}"
        );
    }
}
