//! ASTGCN: Attention-based Spatial-Temporal Graph Convolutional Network
//! (Guo et al., 2019; Zhu et al., 2021), the paper's non-learning T-GAT
//! representative.
//!
//! One spatial-temporal block over the window:
//!
//! 1. **temporal attention** reweights time steps (`[s, s]` scores);
//! 2. **spatial attention** produces a `[V, V]` mask applied to a
//!    Chebyshev polynomial stack (K = 3) of the static graph's scaled
//!    Laplacian;
//! 3. a **temporal convolution** condenses the attended sequence;
//! 4. a per-node affine head emits the 1-lag prediction.

use crate::cohort::{cohort_dropout, CohortBatch, CohortCtx, CohortForecaster};
use crate::{Forecaster, ForwardCtx, ModelConfig, WindowBatch};
use ema_autodiff::{Tape, Var};
use ema_graph::{chebyshev, AdjacencyMatrix};
use ema_nn::{Binding, DilatedTemporalConv, Initializer, ParamId, ParamStore};
use ema_tensor::{Rng64, Tensor};

/// The ASTGCN forecaster for a fixed window length.
pub struct Astgcn {
    store: ParamStore,
    // Spatial attention: S = softmax(σ((X·W1)(X·W2)ᵀ)).
    sa_w1: ParamId, // [s, d]
    sa_w2: ParamId, // [s, d]
    // Temporal attention: E = softmax(σ((Xᵀ·P1)(Xᵀ·P2)ᵀ)).
    ta_p1: ParamId, // [V, d]
    ta_p2: ParamId, // [V, d]
    // Chebyshev convolution weights, one [F, 1] per polynomial order.
    cheb_w: Vec<ParamId>,
    cheb_b: ParamId, // [F]
    temporal: DilatedTemporalConv,
    // Residual shortcut: projects each input step [V, 1] to [V, F] and
    // adds it to the temporal-conv output (the 1×1 residual conv of the
    // original ASTGCN block).
    res_w: ParamId, // [F, 1]
    head_w: ParamId, // [1, F]
    head_b: ParamId, // [1]
    cheb: Vec<Tensor>, // T_k(L̃) constants
    seq_len: usize,
    dropout: f64,
    use_spatial_attention: bool,
    num_variables: usize,
}

impl Astgcn {
    /// Builds an ASTGCN over the given static graph for windows of
    /// exactly `seq_len` steps.
    ///
    /// # Panics
    /// Panics on a node-count mismatch or `seq_len == 0`.
    #[must_use]
    pub fn new(
        num_variables: usize,
        seq_len: usize,
        graph: &AdjacencyMatrix,
        config: &ModelConfig,
    ) -> Self {
        Self::with_options(num_variables, seq_len, graph, config, true)
    }

    /// [`Astgcn::new`] with spatial attention optionally disabled —
    /// the ablation applies the raw Chebyshev stack without the learned
    /// `[V, V]` mask.
    ///
    /// # Panics
    /// Panics on a node-count mismatch or `seq_len == 0`.
    #[must_use]
    pub fn with_options(
        num_variables: usize,
        seq_len: usize,
        graph: &AdjacencyMatrix,
        config: &ModelConfig,
        use_spatial_attention: bool,
    ) -> Self {
        assert_eq!(
            graph.num_nodes(),
            num_variables,
            "graph has {} nodes, expected {num_variables}",
            graph.num_nodes()
        );
        assert!(seq_len > 0, "seq_len must be positive");
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(config.seed);
        let d = config.attn_dim;
        let f = config.hidden;
        let init = Initializer::XavierUniform;

        let sa_w1 = store.register("sa.w1", init.init(&[seq_len, d], &mut rng));
        let sa_w2 = store.register("sa.w2", init.init(&[seq_len, d], &mut rng));
        let ta_p1 = store.register("ta.p1", init.init(&[num_variables, d], &mut rng));
        let ta_p2 = store.register("ta.p2", init.init(&[num_variables, d], &mut rng));

        let k = config.kernel.clamp(1, 3);
        let cheb_w = (0..k)
            .map(|i| store.register(format!("cheb.w{i}"), init.init(&[f, 1], &mut rng)))
            .collect();
        let cheb_b = store.register("cheb.b", Initializer::Zeros.init(&[f], &mut rng));

        let t_kernel = config.kernel.min(seq_len).max(1);
        let temporal =
            DilatedTemporalConv::new(&mut store, "tconv", f, f, t_kernel, 1, &mut rng);

        let res_w = store.register("res.w", init.init(&[f, 1], &mut rng));
        let head_w = store.register("head.w", init.init(&[1, f], &mut rng));
        let head_b = store.register("head.b", Initializer::Zeros.init(&[1], &mut rng));

        Self {
            store,
            sa_w1,
            sa_w2,
            ta_p1,
            ta_p2,
            cheb_w,
            cheb_b,
            temporal,
            res_w,
            head_w,
            head_b,
            cheb: chebyshev::chebyshev_from_adjacency(graph, k),
            seq_len,
            dropout: config.dropout,
            use_spatial_attention,
            num_variables,
        }
    }

    /// The window length this model was built for.
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }
}

impl Forecaster for Astgcn {
    fn name(&self) -> &'static str {
        "ASTGCN"
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn num_variables(&self) -> usize {
        self.num_variables
    }

    fn predict_window(
        &self,
        tape: &Tape,
        binding: &Binding,
        window: &Tensor,
        ctx: &mut ForwardCtx,
    ) -> Var {
        assert_eq!(window.dims()[1], self.num_variables, "window width");
        assert_eq!(
            window.dims()[0],
            self.seq_len,
            "ASTGCN was built for seq_len {} but got {}",
            self.seq_len,
            window.dims()[0]
        );
        let s = self.seq_len;

        // X: [V, s] — variables over time.
        let x = tape.leaf(window.transpose());
        // Temporal attention E: [s, s].
        let xt = tape.transpose(x); // [s, V]
        let u1 = tape.matmul(xt, binding.var(self.ta_p1)); // [s, d]
        let u2 = tape.matmul(xt, binding.var(self.ta_p2)); // [s, d]
        let e_pre = tape.matmul_nt(u1, u2); // [s, s]
        let e_act = tape.sigmoid(e_pre);
        let e = tape.softmax_last(e_act);
        // Reweight time steps: X̂ = X · Eᵀ.
        let x_hat = tape.matmul_nt(x, e); // [V, s]

        // Spatial attention S: [V, V].
        let e1 = tape.matmul(x, binding.var(self.sa_w1)); // [V, d]
        let e2 = tape.matmul(x, binding.var(self.sa_w2)); // [V, d]
        let s_pre = tape.matmul_nt(e1, e2); // [V, V]
        let s_act = tape.sigmoid(s_pre);
        let s_attn = tape.softmax_last(s_act);

        // Chebyshev graph convolution per time step, masked by S.
        let cheb_vars: Vec<Var> = self.cheb.iter().map(|t| tape.leaf(t.clone())).collect();
        let mut steps = Vec::with_capacity(s);
        for t in 0..s {
            let x_t = tape.slice_cols(x_hat, t, t + 1); // [V, 1]
            let mut acc: Option<Var> = None;
            for (k, &tk) in cheb_vars.iter().enumerate() {
                let masked = if self.use_spatial_attention {
                    tape.mul(tk, s_attn) // T_k ⊙ S
                } else {
                    tk
                };
                let prop = tape.matmul(masked, x_t); // [V, 1]
                let term = tape.matmul_nt(prop, binding.var(self.cheb_w[k])); // [V, F]
                acc = Some(match acc {
                    Some(a) => tape.add(a, term),
                    None => term,
                });
            }
            let summed = acc.expect("K >= 1");
            let biased = tape.add_row_broadcast(summed, binding.var(self.cheb_b));
            steps.push(tape.relu(biased));
        }

        // Temporal convolution condenses the sequence; take its last
        // step and add the residual projection of the *last input* step
        // (the block's 1×1 shortcut, which also gives the model a direct
        // persistence path).
        let conv_out = self.temporal.forward(tape, binding, &steps);
        let conv_last = *conv_out.last().expect("non-empty conv output");
        let x_last = tape.slice_cols(x, s - 1, s); // [V, 1] raw input
        let residual = tape.matmul_nt(x_last, binding.var(self.res_w)); // [V, F]
        let combined = tape.add(conv_last, residual);
        let dropped = tape.dropout(combined, self.dropout, ctx.training, ctx.rng);
        let pred = tape.linear(dropped, binding.var(self.head_w), binding.var(self.head_b));
        tape.flatten(pred) // [V]
    }

    fn predict_batch(
        &self,
        tape: &Tape,
        binding: &Binding,
        batch: &WindowBatch,
        ctx: &mut ForwardCtx,
    ) -> Var {
        assert_eq!(batch.num_vars(), self.num_variables, "batch width");
        assert_eq!(
            batch.seq_len(),
            self.seq_len,
            "ASTGCN was built for seq_len {} but got {}",
            self.seq_len,
            batch.seq_len()
        );
        let wins = batch.wins();
        let s = self.seq_len;
        let v = self.num_variables;

        // X blocks [V, s] (variables over time) and Xᵀ blocks [s, V]
        // as two constant leaves — the per-window path's Transpose node
        // only fed gradient back into the data leaf, so splitting the
        // layouts loses nothing.
        let x_all = tape.leaf(batch.stacked_transposed().clone()); // [W·V, s]
        let xt_all = tape.leaf(batch.stacked().clone()); // [W·s, V]
        // Temporal attention E per window: [s, s] blocks.
        let u1 = tape.batched_matmul(xt_all, binding.var(self.ta_p1), wins); // [W·s, d]
        let u2 = tape.batched_matmul(xt_all, binding.var(self.ta_p2), wins); // [W·s, d]
        let e_pre = tape.block_matmul_nt(u1, u2, wins); // [W·s, s]
        let e_act = tape.sigmoid(e_pre);
        let e = tape.softmax_last(e_act);
        let x_hat = tape.block_matmul_nt(x_all, e, wins); // [W·V, s]

        // Spatial attention S per window: [V, V] blocks.
        let e1 = tape.batched_matmul(x_all, binding.var(self.sa_w1), wins); // [W·V, d]
        let e2 = tape.batched_matmul(x_all, binding.var(self.sa_w2), wins); // [W·V, d]
        let s_pre = tape.block_matmul_nt(e1, e2, wins); // [W·V, V]
        let s_act = tape.sigmoid(s_pre);
        let s_attn = tape.softmax_last(s_act);

        // Chebyshev constants tiled across windows so the elementwise
        // mask and blockwise propagation line up per window.
        let cheb_vars: Vec<Var> = self
            .cheb
            .iter()
            .map(|t_k| {
                let mut tiled = Vec::with_capacity(wins * v * v);
                for _ in 0..wins {
                    tiled.extend_from_slice(t_k.data());
                }
                tape.leaf(Tensor::from_vec(&[wins * v, v], tiled).expect("cheb tile"))
            })
            .collect();
        let mut steps = Vec::with_capacity(s);
        for t in 0..s {
            let x_t = tape.slice_cols(x_hat, t, t + 1); // [W·V, 1]
            let mut acc: Option<Var> = None;
            for (k, &tk) in cheb_vars.iter().enumerate() {
                let masked = if self.use_spatial_attention {
                    tape.mul(tk, s_attn) // T_k ⊙ S per window
                } else {
                    tk
                };
                let prop = tape.block_matmul(masked, x_t, wins); // [W·V, 1]
                let term = tape.batched_matmul_nt(prop, binding.var(self.cheb_w[k]), wins); // [W·V, F]
                acc = Some(match acc {
                    Some(a) => tape.add(a, term),
                    None => term,
                });
            }
            let summed = acc.expect("K >= 1");
            let biased = tape.batched_add_row_broadcast(summed, binding.var(self.cheb_b), wins);
            steps.push(tape.relu(biased));
        }

        let conv_out = self.temporal.forward_batched(tape, binding, &steps, wins);
        let conv_last = *conv_out.last().expect("non-empty conv output");
        let x_last = tape.slice_cols(x_all, s - 1, s); // [W·V, 1]
        let residual = tape.batched_matmul_nt(x_last, binding.var(self.res_w), wins); // [W·V, F]
        let combined = tape.add(conv_last, residual);
        // [W·V, F] mask rows are drawn window-major — the per-window
        // draw sequence exactly.
        let dropped = tape.dropout(combined, self.dropout, ctx.training, ctx.rng);
        let pred = tape.batched_linear(
            dropped,
            binding.var(self.head_w),
            binding.var(self.head_b),
            wins,
        ); // [W·V, 1]
        tape.reshape(pred, &[wins, v])
    }
}

impl CohortForecaster for Astgcn {
    fn predict_cohort(
        group: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        batch: &CohortBatch,
        ctx: &mut CohortCtx,
    ) -> Var {
        assert_eq!(group.len(), batch.num_groups(), "one window batch per model");
        assert_eq!(group.len(), bindings.len(), "one binding per model");
        let first = group[0];
        for (b, model) in group.iter().enumerate() {
            assert_eq!(
                model.num_variables,
                batch.num_vars(),
                "individual {b}: batch has {} variables, model expects {}",
                batch.num_vars(),
                model.num_variables
            );
            assert_eq!(
                model.seq_len,
                batch.seq_len(),
                "individual {b}: ASTGCN was built for seq_len {} but got {}",
                model.seq_len,
                batch.seq_len()
            );
            assert_eq!(
                model.cheb.len(),
                first.cheb.len(),
                "individual {b}: cohort models must share the Chebyshev order"
            );
            assert_eq!(
                model.use_spatial_attention, first.use_spatial_attention,
                "individual {b}: cohort models must agree on spatial attention"
            );
        }
        let s = first.seq_len;
        let v = batch.num_vars();
        let group_wins = batch.group_wins();
        let total = batch.total_rows();
        // Per-individual parameter columns, in stack order.
        let vars = |f: &dyn Fn(&Self) -> ParamId| -> Vec<Var> {
            group
                .iter()
                .zip(bindings)
                .map(|(m, bind)| bind.var(f(m)))
                .collect()
        };

        let x_all = tape.leaf(batch.stacked_transposed().clone()); // [ΣW·V, s]
        let xt_all = tape.leaf(batch.stacked().clone()); // [ΣW·s, V]
        // Temporal attention E per window, each individual's own P1/P2.
        let u1 = tape.group_matmul(xt_all, &vars(&|m| m.ta_p1), group_wins, s); // [ΣW·s, d]
        let u2 = tape.group_matmul(xt_all, &vars(&|m| m.ta_p2), group_wins, s); // [ΣW·s, d]
        let e_pre = tape.block_matmul_nt(u1, u2, total); // [ΣW·s, s]
        let e_act = tape.sigmoid(e_pre);
        let e = tape.softmax_last(e_act);
        let x_hat = tape.block_matmul_nt(x_all, e, total); // [ΣW·V, s]

        // Spatial attention S per window, each individual's own W1/W2.
        let e1 = tape.group_matmul(x_all, &vars(&|m| m.sa_w1), group_wins, v); // [ΣW·V, d]
        let e2 = tape.group_matmul(x_all, &vars(&|m| m.sa_w2), group_wins, v); // [ΣW·V, d]
        let s_pre = tape.block_matmul_nt(e1, e2, total); // [ΣW·V, V]
        let s_act = tape.sigmoid(s_pre);
        let s_attn = tape.softmax_last(s_act);

        // Chebyshev constants: individual-major tiles of each model's
        // *own* T_k stack, so the elementwise mask and blockwise
        // propagation stay window-local dense ops.
        let cheb_vars: Vec<Var> = (0..first.cheb.len())
            .map(|k| {
                let mut tiled = Vec::with_capacity(total * v * v);
                for (m, &wins) in group.iter().zip(group_wins) {
                    for _ in 0..wins {
                        tiled.extend_from_slice(m.cheb[k].data());
                    }
                }
                tape.leaf(Tensor::from_vec(&[total * v, v], tiled).expect("cheb tile"))
            })
            .collect();
        let mut steps = Vec::with_capacity(s);
        for t in 0..s {
            let x_t = tape.slice_cols(x_hat, t, t + 1); // [ΣW·V, 1]
            let mut acc: Option<Var> = None;
            for (k, &tk) in cheb_vars.iter().enumerate() {
                let masked = if first.use_spatial_attention {
                    tape.mul(tk, s_attn) // T_k ⊙ S per window
                } else {
                    tk
                };
                let prop = tape.block_matmul(masked, x_t, total); // [ΣW·V, 1]
                let term =
                    tape.group_matmul_nt(prop, &vars(&|m| m.cheb_w[k]), group_wins, v); // [ΣW·V, F]
                acc = Some(match acc {
                    Some(a) => tape.add(a, term),
                    None => term,
                });
            }
            let summed = acc.expect("K >= 1");
            let biased =
                tape.group_add_row_broadcast(summed, &vars(&|m| m.cheb_b), group_wins, v);
            steps.push(tape.relu(biased));
        }

        let temporals: Vec<&DilatedTemporalConv> = group.iter().map(|m| &m.temporal).collect();
        let conv_out =
            DilatedTemporalConv::forward_grouped(&temporals, tape, bindings, &steps, group_wins, v);
        let conv_last = *conv_out.last().expect("non-empty conv output");
        let x_last = tape.slice_cols(x_all, s - 1, s); // [ΣW·V, 1]
        let residual = tape.group_matmul_nt(x_last, &vars(&|m| m.res_w), group_wins, v); // [ΣW·V, F]
        let combined = tape.add(conv_last, residual);
        // Each individual's [W_b·V, F] mask rows come from its own
        // stream in the per-window (window-major) draw order.
        let rates: Vec<f64> = group.iter().map(|m| m.dropout).collect();
        let node_rows: Vec<usize> = group_wins.iter().map(|&w| w * v).collect();
        let dropped = cohort_dropout(tape, combined, &rates, &node_rows, ctx);
        let heads: Vec<(Var, Var)> = group
            .iter()
            .zip(bindings)
            .map(|(m, bind)| (bind.var(m.head_w), bind.var(m.head_b)))
            .collect();
        let pred = tape.group_linear_blocks(dropped, &heads, group_wins, v); // [ΣW·V, 1]
        tape.reshape(pred, &[total, v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_nn::{Adam, Optimizer, OptimizerConfig};

    fn ring_graph(n: usize) -> AdjacencyMatrix {
        let mut a = AdjacencyMatrix::empty(n);
        for i in 0..n {
            let j = (i + 1) % n;
            a.set_weight(i, j, 1.0);
            a.set_weight(j, i, 1.0);
        }
        a
    }

    #[test]
    fn prediction_shape() {
        let model = Astgcn::new(6, 5, &ring_graph(6), &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(1);
        let window = Tensor::rand_normal(&[5, 6], 0.0, 1.0, &mut rng);
        let pred = model.predict(&window, &mut rng);
        assert_eq!(pred.dims(), &[6]);
        assert!(pred.all_finite());
    }

    #[test]
    fn seq1_and_seq2_work() {
        let mut rng = Rng64::seed_from(2);
        for s in [1usize, 2] {
            let model = Astgcn::new(4, s, &ring_graph(4), &ModelConfig::tiny(0));
            let window = Tensor::rand_normal(&[s, 4], 0.0, 1.0, &mut rng);
            assert_eq!(model.predict(&window, &mut rng).dims(), &[4]);
        }
    }

    #[test]
    #[should_panic(expected = "built for seq_len")]
    fn rejects_wrong_window_length() {
        let model = Astgcn::new(4, 5, &ring_graph(4), &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(3);
        let window = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let _ = model.predict(&window, &mut rng);
    }

    #[test]
    fn graph_influences_output() {
        let cfg = ModelConfig::tiny(4);
        let ring = Astgcn::new(6, 3, &ring_graph(6), &cfg);
        let full = Astgcn::new(6, 3, &AdjacencyMatrix::complete(6), &cfg);
        let mut rng = Rng64::seed_from(5);
        let window = Tensor::rand_normal(&[3, 6], 0.0, 1.0, &mut rng);
        assert_ne!(
            ring.predict(&window, &mut rng).data(),
            full.predict(&window, &mut rng).data()
        );
    }

    #[test]
    fn spatial_attention_ablation_changes_predictions() {
        let cfg = ModelConfig::tiny(9);
        let with_sa = Astgcn::new(5, 3, &ring_graph(5), &cfg);
        let without = Astgcn::with_options(5, 3, &ring_graph(5), &cfg, false);
        let mut rng = Rng64::seed_from(10);
        let window = Tensor::rand_normal(&[3, 5], 0.0, 1.0, &mut rng);
        let a = with_sa.predict(&window, &mut rng);
        let b = without.predict(&window, &mut rng);
        assert_ne!(a.data(), b.data());
        assert!(b.all_finite());
    }

    #[test]
    fn trains_to_fit_target() {
        let mut model = Astgcn::new(4, 3, &ring_graph(4), &ModelConfig::tiny(6));
        let mut rng = Rng64::seed_from(7);
        let window = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let target = Tensor::from_vec1(vec![0.2, -0.1, 0.5, -0.6]);
        let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.02));
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let tape = Tape::new();
            let binding = model.params().bind(&tape);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let pred = model.predict_window(&tape, &binding, &window, &mut ctx);
            let tgt = tape.leaf(target.clone());
            let loss = tape.mse(pred, tgt);
            last = tape.value(loss).data()[0];
            first.get_or_insert(last);
            let grads = tape.backward(loss);
            adam.step(model.params_mut(), &binding, &grads);
        }
        assert!(last < first.unwrap() * 0.2, "loss stuck at {last}");
    }
}
