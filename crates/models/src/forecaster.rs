//! The common forecasting interface and the model factory.

use crate::{A3tgcn, Astgcn, LstmForecaster, ModelConfig, Mtgnn, VarForecaster};
use ema_autodiff::{Tape, Var};
use ema_graph::AdjacencyMatrix;
use ema_nn::{Binding, ParamStore};
use ema_tensor::{Rng64, Tensor};

/// Per-forward-pass context: dropout randomness and the train/eval flag.
pub struct ForwardCtx<'a> {
    /// True during training (enables dropout).
    pub training: bool,
    /// Randomness source for dropout masks.
    pub rng: &'a mut Rng64,
    /// Per-epoch memo for subgraphs that depend only on parameters or
    /// constants (see [`ForwardCtx::memo`]).
    memo_vars: Vec<(&'static str, Var)>,
}

impl<'a> ForwardCtx<'a> {
    /// A training-mode context.
    pub fn train(rng: &'a mut Rng64) -> Self {
        Self {
            training: true,
            rng,
            memo_vars: Vec::new(),
        }
    }

    /// An evaluation-mode context (dropout disabled).
    pub fn eval(rng: &'a mut Rng64) -> Self {
        Self {
            training: false,
            rng,
            memo_vars: Vec::new(),
        }
    }

    /// Builds a tape var once per context and reuses it on every later
    /// window: full-batch training forwards dozens of windows per
    /// epoch, and subgraphs that depend only on parameters or
    /// constants (MTGNN's learned adjacency, A3TGCN's propagation
    /// matrix, initial zero states) are identical for all of them.
    /// Sharing the subgraph also accumulates its parameter gradients
    /// once instead of once per window.
    ///
    /// A context is scoped to a single tape epoch (every construction
    /// site builds `Tape`/binding and `ForwardCtx` together); a memoed
    /// var must never be used on another tape or after `Tape::reset`.
    /// Only memoize RNG-free subgraphs — anything touching dropout
    /// would change the draw sequence between first and later windows.
    pub fn memo(&mut self, key: &'static str, build: impl FnOnce() -> Var) -> Var {
        if let Some(&(_, var)) = self.memo_vars.iter().find(|(k, _)| *k == key) {
            return var;
        }
        let var = build();
        self.memo_vars.push((key, var));
        var
    }
}

/// All of a split's windows stacked along the row axis for the batched
/// forward path ([`Forecaster::predict_batch`]).
///
/// Three layouts of the same data, each precomputed once per training
/// run:
///
/// * `stacked` — `[W·s, V]`: window `w`'s `[s, V]` rows at row block
///   `w` (the `[W, s, V]` stack flattened);
/// * `stacked_transposed` — `[W·V, s]`: each window transposed
///   (variables over time), for models that consume `[V, s]` windows;
/// * `steps` — per time step `t`, a `[W, V]` matrix whose row `w` is
///   window `w`'s step `t` (the row-block leaves the recurrent models
///   feed).
#[derive(Debug, Clone)]
pub struct WindowBatch {
    wins: usize,
    seq_len: usize,
    num_vars: usize,
    stacked: Tensor,
    stacked_transposed: Tensor,
    steps: Vec<Tensor>,
}

impl WindowBatch {
    /// Stacks `[s, V]` windows into the batched layouts.
    ///
    /// # Panics
    /// Panics if `windows` is empty or shapes disagree.
    #[must_use]
    pub fn from_windows(windows: &[Tensor]) -> Self {
        assert!(!windows.is_empty(), "cannot batch zero windows");
        let wins = windows.len();
        let dims = windows[0].dims();
        assert_eq!(dims.len(), 2, "windows must be [seq, V]");
        let (seq_len, num_vars) = (dims[0], dims[1]);
        let mut stacked = Vec::with_capacity(wins * seq_len * num_vars);
        let mut transposed = Vec::with_capacity(wins * seq_len * num_vars);
        for (w, win) in windows.iter().enumerate() {
            assert_eq!(win.dims(), dims, "window {w} shape mismatch");
            stacked.extend_from_slice(win.data());
            transposed.extend_from_slice(win.transpose().data());
        }
        let steps = (0..seq_len)
            .map(|t| {
                let mut rows = Vec::with_capacity(wins * num_vars);
                for win in windows {
                    rows.extend_from_slice(win.row(t).data());
                }
                Tensor::from_vec(&[wins, num_vars], rows).expect("step shape")
            })
            .collect();
        Self {
            wins,
            seq_len,
            num_vars,
            stacked: Tensor::from_vec(&[wins * seq_len, num_vars], stacked)
                .expect("stacked shape"),
            stacked_transposed: Tensor::from_vec(&[wins * num_vars, seq_len], transposed)
                .expect("transposed shape"),
            steps,
        }
    }

    /// Number of windows `W`.
    #[must_use]
    pub fn wins(&self) -> usize {
        self.wins
    }

    /// Window length `s`.
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Variable count `V`.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The `[W·s, V]` row stack of all windows.
    #[must_use]
    pub fn stacked(&self) -> &Tensor {
        &self.stacked
    }

    /// The `[W·V, s]` stack of transposed windows.
    #[must_use]
    pub fn stacked_transposed(&self) -> &Tensor {
        &self.stacked_transposed
    }

    /// Step `t` across all windows, `[W, V]`.
    #[must_use]
    pub fn step(&self, t: usize) -> &Tensor {
        &self.steps[t]
    }

    /// Window `w` as a `[s, V]` tensor (bytes identical to the window
    /// the batch was built from).
    #[must_use]
    pub fn window(&self, w: usize) -> Tensor {
        self.stacked
            .slice_rows(w * self.seq_len, (w + 1) * self.seq_len)
    }
}

/// A personalized 1-lag forecaster over `V` EMA variables.
///
/// Implementations register their parameters in an internal
/// [`ParamStore`]; the training loop binds the store onto a fresh tape
/// each epoch and calls [`Forecaster::predict_batch`] once per epoch
/// (or [`Forecaster::predict_window`] per window on the reference
/// path).
pub trait Forecaster {
    /// Human-readable model name (paper notation, e.g. `"MTGNN"`).
    fn name(&self) -> &'static str;

    /// The model's parameters.
    fn params(&self) -> &ParamStore;

    /// Mutable access for the optimizer.
    fn params_mut(&mut self) -> &mut ParamStore;

    /// Number of variables `V` the model forecasts.
    fn num_variables(&self) -> usize;

    /// Predicts the next `[V]` values from a `[seq_len, V]` window.
    fn predict_window(
        &self,
        tape: &Tape,
        binding: &Binding,
        window: &Tensor,
        ctx: &mut ForwardCtx,
    ) -> Var;

    /// Predicts all of a batch's windows at once, returning a `[W, V]`
    /// matrix whose row `w` is the prediction for window `w`.
    ///
    /// The default implementation loops [`Forecaster::predict_window`]
    /// and stacks the rank-1 predictions — the reference (oracle)
    /// graph. The four paper models override it with a batched graph
    /// recording one tape node per op instead of one per window per
    /// op; overrides must stay **bit-identical** to this default in
    /// values, parameter gradients, and RNG draw order (dropout masks
    /// are drawn window-major).
    fn predict_batch(
        &self,
        tape: &Tape,
        binding: &Binding,
        batch: &WindowBatch,
        ctx: &mut ForwardCtx,
    ) -> Var {
        let preds: Vec<Var> = (0..batch.wins())
            .map(|w| self.predict_window(tape, binding, &batch.window(w), ctx))
            .collect();
        tape.stack_rows(&preds)
    }

    /// Downcast hook for graph extraction: MTGNN returns itself so
    /// callers can read its learned graph; every other model returns
    /// `None`.
    fn as_any_mtgnn(&self) -> Option<&Mtgnn> {
        None
    }

    /// Convenience: evaluation-mode prediction as a plain tensor.
    fn predict(&self, window: &Tensor, rng: &mut Rng64) -> Tensor {
        let tape = Tape::new();
        let binding = self.params().bind(&tape);
        let mut ctx = ForwardCtx::eval(rng);
        let out = self.predict_window(&tape, &binding, window, &mut ctx);
        tape.value(out)
    }
}

/// The model families of Table I, plus the classic VAR baseline from
/// the paper's related-work discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Baseline LSTM (no graph).
    Lstm,
    /// Attention Temporal GCN.
    A3tgcn,
    /// Attention-based Spatial-Temporal GCN.
    Astgcn,
    /// Multivariate Time-series GNN with graph learning.
    Mtgnn,
    /// Linear vector autoregression (no graph; extra baseline).
    Var,
}

impl ModelKind {
    /// Paper notation.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Lstm => "LSTM",
            ModelKind::A3tgcn => "A3TGCN",
            ModelKind::Astgcn => "ASTGCN",
            ModelKind::Mtgnn => "MTGNN",
            ModelKind::Var => "VAR",
        }
    }

    /// True for models that consume a graph.
    #[must_use]
    pub fn uses_graph(self) -> bool {
        !matches!(self, ModelKind::Lstm | ModelKind::Var)
    }

    /// The three GNNs of Table I.
    #[must_use]
    pub fn gnns() -> [ModelKind; 3] {
        [ModelKind::A3tgcn, ModelKind::Astgcn, ModelKind::Mtgnn]
    }

    /// Every model the paper evaluates (LSTM baseline + the GNNs).
    #[must_use]
    pub fn all() -> [ModelKind; 4] {
        [
            ModelKind::Lstm,
            ModelKind::A3tgcn,
            ModelKind::Astgcn,
            ModelKind::Mtgnn,
        ]
    }

    /// [`ModelKind::all`] extended with the VAR baseline.
    #[must_use]
    pub fn extended() -> [ModelKind; 5] {
        [
            ModelKind::Lstm,
            ModelKind::A3tgcn,
            ModelKind::Astgcn,
            ModelKind::Mtgnn,
            ModelKind::Var,
        ]
    }
}

/// Builds a model of the given kind for `V` variables and a fixed
/// window length.
///
/// `graph` supplies the static adjacency for the GNNs (ignored by the
/// LSTM; optional for MTGNN, which learns its own and treats a provided
/// graph as the starting structure).
///
/// # Panics
/// Panics if a graph-dependent model is requested without a graph.
#[must_use]
pub fn build_model(
    kind: ModelKind,
    num_variables: usize,
    seq_len: usize,
    config: &ModelConfig,
    graph: Option<&AdjacencyMatrix>,
) -> Box<dyn Forecaster> {
    match kind {
        ModelKind::Lstm => Box::new(LstmForecaster::new(num_variables, config)),
        ModelKind::A3tgcn => {
            let g = graph.expect("A3TGCN requires a static graph");
            Box::new(A3tgcn::new(num_variables, g, config))
        }
        ModelKind::Astgcn => {
            let g = graph.expect("ASTGCN requires a static graph");
            Box::new(Astgcn::new(num_variables, seq_len, g, config))
        }
        ModelKind::Mtgnn => Box::new(Mtgnn::new(num_variables, seq_len, graph, config)),
        ModelKind::Var => Box::new(VarForecaster::new(num_variables, seq_len, config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_graph_usage() {
        assert_eq!(ModelKind::Lstm.label(), "LSTM");
        assert!(!ModelKind::Lstm.uses_graph());
        assert!(ModelKind::Mtgnn.uses_graph());
        assert_eq!(ModelKind::all().len(), 4);
        assert_eq!(ModelKind::gnns().len(), 3);
    }

    #[test]
    fn factory_builds_every_kind() {
        let g = AdjacencyMatrix::complete(5);
        let cfg = ModelConfig::tiny(0);
        for kind in ModelKind::all() {
            let graph = if kind.uses_graph() { Some(&g) } else { None };
            let m = build_model(kind, 5, 3, &cfg, graph);
            assert_eq!(m.num_variables(), 5);
            assert_eq!(m.name(), kind.label());
            assert!(!m.params().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "requires a static graph")]
    fn factory_rejects_graphless_gnn() {
        let _ = build_model(ModelKind::Astgcn, 5, 3, &ModelConfig::tiny(0), None);
    }
}
