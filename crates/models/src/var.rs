//! VAR(p): the classic linear vector-autoregressive baseline of the
//! psychopathology-network literature (paper Sec. II-A).
//!
//! The prediction is an affine map of the flattened window:
//! `x̂_t = c + Σ_{j=1..p} W_j · x_{t−j}` — exactly a linear layer over
//! `[1, p·V]`. It can be fitted either through the shared gradient
//! pipeline (Adam minimises the same least-squares objective) or in
//! closed form with ridge least squares ([`VarForecaster::fit_closed_form`]).

use crate::{Forecaster, ForwardCtx, ModelConfig};
use ema_autodiff::{Tape, Var};
use ema_nn::{Binding, Linear, ParamStore};
use ema_tensor::{Rng64, Tensor};

/// A VAR(p) forecaster where `p` is the window length.
pub struct VarForecaster {
    store: ParamStore,
    layer: Linear,
    seq_len: usize,
    num_variables: usize,
}

impl VarForecaster {
    /// Builds a VAR with lag order `seq_len` for `V` variables.
    ///
    /// # Panics
    /// Panics if `seq_len == 0`.
    #[must_use]
    pub fn new(num_variables: usize, seq_len: usize, config: &ModelConfig) -> Self {
        assert!(seq_len > 0, "VAR needs at least one lag");
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(config.seed);
        let layer = Linear::new(
            &mut store,
            "var",
            seq_len * num_variables,
            num_variables,
            &mut rng,
        );
        Self {
            store,
            layer,
            seq_len,
            num_variables,
        }
    }

    /// The lag order `p`.
    #[must_use]
    pub fn lag_order(&self) -> usize {
        self.seq_len
    }

    /// Fits the coefficients in closed form by ridge least squares over
    /// `(window, target)` pairs, overwriting the current parameters.
    ///
    /// # Panics
    /// Panics on empty input or shape mismatches.
    pub fn fit_closed_form(&mut self, windows: &[Tensor], targets: &[Tensor], lambda: f64) {
        assert!(!windows.is_empty(), "no windows to fit");
        assert_eq!(windows.len(), targets.len(), "window/target count mismatch");
        let p = self.seq_len * self.num_variables;
        // Design matrix with an intercept column of ones.
        let n = windows.len();
        let mut x = Vec::with_capacity(n * (p + 1));
        let mut y = Vec::with_capacity(n * self.num_variables);
        for (w, t) in windows.iter().zip(targets.iter()) {
            assert_eq!(w.len(), p, "window shape mismatch");
            assert_eq!(t.len(), self.num_variables, "target shape mismatch");
            x.extend_from_slice(w.data());
            x.push(1.0);
            y.extend_from_slice(t.data());
        }
        let x = Tensor::from_vec(&[n, p + 1], x).expect("design shape");
        let y = Tensor::from_vec(&[n, self.num_variables], y).expect("target shape");
        let w = x
            .ridge_least_squares(&y, lambda)
            .expect("regularised system is nonsingular"); // [p+1, V]
        // Split into weights (transposed to [V, p]) and intercept.
        let coef = w.slice_rows(0, p).transpose();
        let intercept = w.row(p);
        self.store.load(self.layer.w, coef);
        self.store.load(self.layer.b, intercept);
    }

    /// The fitted lag-`j` coefficient matrix (`0`-based), shape `[V, V]`:
    /// entry `(i, k)` is the effect of variable `k` at lag `j+1` on
    /// variable `i` — the "network" edge weights of VAR-based
    /// psychopathology models.
    ///
    /// # Panics
    /// Panics if `j >= lag order`.
    #[must_use]
    pub fn coefficient_matrix(&self, j: usize) -> Tensor {
        assert!(j < self.seq_len, "lag {j} out of range");
        let v = self.num_variables;
        // Weights are [V, p·V]; window is flattened row-major as
        // [oldest .. newest], so lag 1 (most recent) is the last block.
        let w = self.store.value(self.layer.w);
        let block = self.seq_len - 1 - j;
        w.slice_cols(block * v, (block + 1) * v)
    }
}

impl Forecaster for VarForecaster {
    fn name(&self) -> &'static str {
        "VAR"
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn num_variables(&self) -> usize {
        self.num_variables
    }

    fn predict_window(
        &self,
        tape: &Tape,
        binding: &Binding,
        window: &Tensor,
        _ctx: &mut ForwardCtx,
    ) -> Var {
        assert_eq!(window.dims()[1], self.num_variables, "window width");
        assert_eq!(
            window.dims()[0],
            self.seq_len,
            "VAR(p = {}) got a window of {} steps",
            self.seq_len,
            window.dims()[0]
        );
        let flat = tape.leaf(window.reshaped(&[1, self.seq_len * self.num_variables]));
        let pred = self.layer.forward(tape, binding, flat); // [1, V]
        tape.flatten(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_data::make_windows;

    /// Generates a clean VAR(1) trajectory with known coefficients.
    fn var1_series(w: &Tensor, t: usize, rng: &mut Rng64) -> Tensor {
        let v = w.dims()[0];
        let mut z = Tensor::rand_normal(&[v], 0.0, 1.0, rng);
        let mut rows = Vec::with_capacity(t);
        for _ in 0..t {
            z = w.matvec(&z);
            for val in z.data_mut() {
                *val += 0.05 * rng.normal();
            }
            rows.push(z.data().to_vec());
        }
        Tensor::from_vec2(rows).unwrap()
    }

    #[test]
    fn closed_form_recovers_var1_coefficients() {
        let w_true = Tensor::from_vec2(vec![
            vec![0.5, 0.3, 0.0],
            vec![0.0, 0.4, -0.2],
            vec![0.2, 0.0, 0.6],
        ])
        .unwrap();
        let mut rng = Rng64::seed_from(1);
        let data = var1_series(&w_true, 3000, &mut rng);
        let windows = make_windows(&data, 1);
        let mut model = VarForecaster::new(3, 1, &ModelConfig::tiny(0));
        model.fit_closed_form(&windows.inputs, &windows.targets, 1e-6);
        let w_hat = model.coefficient_matrix(0);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (w_hat.at2(i, j) - w_true.at2(i, j)).abs() < 0.05,
                    "coef ({i},{j}): {} vs {}",
                    w_hat.at2(i, j),
                    w_true.at2(i, j)
                );
            }
        }
    }

    #[test]
    fn prediction_shape_and_determinism() {
        let model = VarForecaster::new(4, 3, &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(2);
        let window = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let a = model.predict(&window, &mut rng);
        let b = model.predict(&window, &mut rng);
        assert_eq!(a.dims(), &[4]);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn closed_form_beats_init_on_forecasting() {
        let w_true = Tensor::from_vec2(vec![vec![0.7, 0.2], vec![-0.3, 0.5]]).unwrap();
        let mut rng = Rng64::seed_from(3);
        let data = var1_series(&w_true, 200, &mut rng);
        let windows = make_windows(&data, 2);
        let mut model = VarForecaster::new(2, 2, &ModelConfig::tiny(1));
        let mse = |m: &VarForecaster| {
            let mut rng = Rng64::seed_from(0);
            let preds: Vec<Tensor> = windows.inputs.iter().map(|w| m.predict(w, &mut rng)).collect();
            Tensor::stack_rows(&preds).mse(&windows.targets_matrix())
        };
        let before = mse(&model);
        model.fit_closed_form(&windows.inputs, &windows.targets, 1e-4);
        let after = mse(&model);
        assert!(after < before * 0.5, "fit did not help: {before} -> {after}");
        assert!(after < 0.02, "fit residual too large: {after}");
    }

    #[test]
    fn coefficient_matrix_lag_blocks_are_ordered() {
        // VAR(2) fitted on data where only lag 1 matters: the lag-1
        // block should carry more mass than the lag-2 block.
        let w_true = Tensor::from_vec2(vec![vec![0.8, 0.0], vec![0.0, 0.8]]).unwrap();
        let mut rng = Rng64::seed_from(4);
        let data = var1_series(&w_true, 300, &mut rng);
        let windows = make_windows(&data, 2);
        let mut model = VarForecaster::new(2, 2, &ModelConfig::tiny(2));
        model.fit_closed_form(&windows.inputs, &windows.targets, 1e-4);
        let lag1 = model.coefficient_matrix(0).norm();
        let lag2 = model.coefficient_matrix(1).norm();
        assert!(lag1 > lag2, "lag-1 norm {lag1} <= lag-2 norm {lag2}");
    }

    #[test]
    #[should_panic(expected = "got a window")]
    fn rejects_wrong_window_length() {
        let model = VarForecaster::new(3, 2, &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(5);
        let window = Tensor::rand_normal(&[3, 3], 0.0, 1.0, &mut rng);
        let _ = model.predict(&window, &mut rng);
    }
}
