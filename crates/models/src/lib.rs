//! # ema-models
//!
//! The four forecasting models compared by the paper, implemented on the
//! `ema-nn`/`ema-autodiff` substrate:
//!
//! | Model | Paper category | Graph usage |
//! |-------|----------------|-------------|
//! | [`LstmForecaster`] | baseline | none |
//! | [`A3tgcn`] | Recurrent GCN | static Â (GCN-gated GRU + temporal attention) |
//! | [`Astgcn`] | Temporal GAT | static Chebyshev stack ⊙ learned spatial attention |
//! | [`Mtgnn`] | Temporal GAT + graph learning | **learned** adjacency (node embeddings), optionally primed with a static graph |
//!
//! All models implement [`Forecaster`]: given a `[seq_len, V]` window
//! they predict the `[V]` vector at the next time point (the paper's
//! 1-lag forecasting task). Model hyper-parameters follow Section V-D:
//! 32 hidden units, kernel 3, dropout 0.3.

#![warn(missing_docs)]

mod a3tgcn;
mod astgcn;
mod cohort;
mod config;
mod forecaster;
mod gcn;
mod lstm;
mod mtgnn;
mod var;

pub use a3tgcn::A3tgcn;
pub use astgcn::Astgcn;
pub use cohort::{cohort_dropout, CohortBatch, CohortCtx, CohortForecaster};
pub use config::ModelConfig;
pub use forecaster::{build_model, Forecaster, ForwardCtx, ModelKind, WindowBatch};
pub use gcn::{gcn_layer, gcn_layer_batched, mixhop_propagation, mixhop_propagation_batched};
pub use lstm::LstmForecaster;
pub use mtgnn::{GraphLearnerKind, Mtgnn};
pub use var::VarForecaster;
