//! Shared model hyper-parameters (paper Section V-D).

/// Hyper-parameters common to every model.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Hidden units in every channel/layer (paper: 32).
    pub hidden: usize,
    /// Temporal kernel size (paper: k = 3); automatically reduced when
    /// a window is shorter than the kernel.
    pub kernel: usize,
    /// Dropout rate (paper: 0.3).
    pub dropout: f64,
    /// MTGNN graph-learning embedding dimension.
    pub embed_dim: usize,
    /// MTGNN top-k neighbours kept per node in the learned graph.
    pub graph_top_k: usize,
    /// MTGNN saturation coefficient α of the graph learner.
    pub graph_alpha: f64,
    /// Mix-hop retain ratio β (fraction of the input state kept at each
    /// propagation step).
    pub mixhop_beta: f64,
    /// Mix-hop propagation depth.
    pub mixhop_depth: usize,
    /// Attention projection width for attention modules.
    pub attn_dim: usize,
    /// Parameter-initialisation seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            kernel: 3,
            dropout: 0.3,
            embed_dim: 10,
            graph_top_k: 8,
            graph_alpha: 3.0,
            mixhop_beta: 0.05,
            mixhop_depth: 2,
            attn_dim: 16,
            seed: 1,
        }
    }
}

impl ModelConfig {
    /// A smaller configuration for fast tests.
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        Self {
            hidden: 8,
            embed_dim: 4,
            graph_top_k: 3,
            attn_dim: 4,
            seed,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ModelConfig::default();
        assert_eq!(c.hidden, 32);
        assert_eq!(c.kernel, 3);
        assert!((c.dropout - 0.3).abs() < 1e-12);
    }

    #[test]
    fn tiny_is_smaller() {
        let c = ModelConfig::tiny(0);
        assert!(c.hidden < ModelConfig::default().hidden);
    }
}
