//! MTGNN: Multivariate Time-series GNN with graph learning (Wu et al.,
//! KDD 2020) — the paper's best performer.
//!
//! Components, scaled to EMA dimensions:
//!
//! * a **graph-learning layer**: node embeddings `E₁, E₂` produce
//!   `A = relu(tanh(α(tanh(αE₁M₁)·tanh(αE₂M₂)ᵀ − transpose)))`, sparsified
//!   to top-k neighbours per node. Gradients flow through the kept
//!   entries, so the graph updates with the training loss;
//! * optionally, a **static prior graph** added before sparsification —
//!   the paper's "starting from an initial graph structure" mode;
//! * two **gated dilated temporal convolution** blocks, each followed by
//!   **mix-hop graph propagation** over the learned adjacency, with
//!   residual and skip connections;
//! * an output module mapping skip features to the 1-lag prediction.

use crate::cohort::{CohortBatch, CohortCtx, CohortForecaster};
use crate::gcn::{mixhop_propagation, mixhop_propagation_batched, mixhop_propagation_grouped};
use crate::{Forecaster, ForwardCtx, ModelConfig, WindowBatch};
use ema_autodiff::{Tape, Var};
use ema_graph::{sparsify, AdjacencyMatrix};
use ema_nn::{Binding, DilatedTemporalConv, Initializer, ParamId, ParamStore};
use ema_tensor::{Rng64, Tensor};

/// How MTGNN parameterises its learned adjacency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphLearnerKind {
    /// Wu et al.'s node-embedding construction
    /// `relu(tanh(α(tanh(αE₁M₁)·tanh(αE₂M₂)ᵀ − transpose)))` — low-rank
    /// and directionally antisymmetric (the paper's MTGNN).
    Embedding,
    /// Direct parameterisation: a free `[V, V]` logit matrix squashed
    /// through a sigmoid (a deterministic GTS-style learner; paper
    /// future work on alternative graph-learning modules).
    Direct,
}

/// One temporal-graph block's parameters.
struct Block {
    filter: DilatedTemporalConv,
    gate: DilatedTemporalConv,
    mixhop: Vec<ParamId>, // depth + 1 matrices [C, C]
    skip_w: ParamId,      // [C, C]
}

/// The MTGNN forecaster.
pub struct Mtgnn {
    store: ParamStore,
    // Graph learner.
    e1: ParamId, // [V, d]
    e2: ParamId, // [V, d]
    m1: ParamId, // [d, d]
    m2: ParamId, // [d, d]
    direct_logits: ParamId, // [V, V], used by the Direct learner
    learner: GraphLearnerKind,
    static_prior: Option<Tensor>, // max-normalised initial graph
    learn_graph: bool,
    // Temporal/graph stack.
    start_w: ParamId, // [C, 1]
    start_b: ParamId, // [C]
    blocks: Vec<Block>,
    end_w1: ParamId, // [C, C]
    end_b1: ParamId, // [C]
    end_w2: ParamId, // [1, C]
    end_b2: ParamId, // [1]
    // Hyper-parameters.
    alpha: f64,
    top_k: usize,
    beta: f64,
    depth: usize,
    dropout: f64,
    seq_len: usize,
    num_variables: usize,
}

impl Mtgnn {
    /// Builds an MTGNN for windows of exactly `seq_len` steps.
    /// A provided `initial_graph` becomes an additive prior inside the
    /// graph learner (the paper's "initial graph structure" mode);
    /// `None` starts from a purely random learned graph.
    #[must_use]
    pub fn new(
        num_variables: usize,
        seq_len: usize,
        initial_graph: Option<&AdjacencyMatrix>,
        config: &ModelConfig,
    ) -> Self {
        Self::with_learner(
            num_variables,
            seq_len,
            initial_graph,
            config,
            true,
            GraphLearnerKind::Embedding,
        )
    }

    /// [`Mtgnn::new`] with graph learning optionally disabled (ablation:
    /// the model then propagates over the static prior alone, which must
    /// be provided).
    ///
    /// # Panics
    /// Panics if graph learning is disabled without a static graph, or
    /// on a node-count mismatch.
    #[must_use]
    pub fn with_options(
        num_variables: usize,
        seq_len: usize,
        initial_graph: Option<&AdjacencyMatrix>,
        config: &ModelConfig,
        learn_graph: bool,
    ) -> Self {
        Self::with_learner(
            num_variables,
            seq_len,
            initial_graph,
            config,
            learn_graph,
            GraphLearnerKind::Embedding,
        )
    }

    /// [`Mtgnn::with_options`] with an explicit graph-learner kind.
    ///
    /// # Panics
    /// Panics if graph learning is disabled without a static graph, or
    /// on a node-count mismatch.
    #[must_use]
    pub fn with_learner(
        num_variables: usize,
        seq_len: usize,
        initial_graph: Option<&AdjacencyMatrix>,
        config: &ModelConfig,
        learn_graph: bool,
        learner: GraphLearnerKind,
    ) -> Self {
        assert!(seq_len > 0, "seq_len must be positive");
        assert!(
            learn_graph || initial_graph.is_some(),
            "disabling graph learning requires a static graph"
        );
        if let Some(g) = initial_graph {
            assert_eq!(
                g.num_nodes(),
                num_variables,
                "graph has {} nodes, expected {num_variables}",
                g.num_nodes()
            );
        }
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(config.seed);
        let d = config.embed_dim;
        let c = config.hidden;
        let init = Initializer::XavierUniform;

        let e1 = store.register("gl.e1", Initializer::Normal(1.0).init(&[num_variables, d], &mut rng));
        let e2 = store.register("gl.e2", Initializer::Normal(1.0).init(&[num_variables, d], &mut rng));
        let m1 = store.register("gl.m1", init.init(&[d, d], &mut rng));
        let m2 = store.register("gl.m2", init.init(&[d, d], &mut rng));
        let direct_logits = store.register(
            "gl.direct",
            Initializer::Normal(1.0).init(&[num_variables, num_variables], &mut rng),
        );

        let start_w = store.register("start.w", init.init(&[c, 1], &mut rng));
        let start_b = store.register("start.b", Initializer::Zeros.init(&[c], &mut rng));

        // Two blocks with kernels clamped to the shrinking sequence.
        let k1 = config.kernel.min(seq_len).max(1);
        let len1 = seq_len - (k1 - 1);
        let k2 = config.kernel.min(len1).max(1);
        let mut blocks = Vec::new();
        for (b, k) in [(0usize, k1), (1usize, k2)] {
            let filter = DilatedTemporalConv::new(
                &mut store,
                &format!("block{b}.filter"),
                c,
                c,
                k,
                1,
                &mut rng,
            );
            let gate = DilatedTemporalConv::new(
                &mut store,
                &format!("block{b}.gate"),
                c,
                c,
                k,
                1,
                &mut rng,
            );
            let mixhop = (0..=config.mixhop_depth)
                .map(|h| {
                    store.register(
                        format!("block{b}.mixhop{h}"),
                        init.init(&[c, c], &mut rng),
                    )
                })
                .collect();
            let skip_w = store.register(format!("block{b}.skip"), init.init(&[c, c], &mut rng));
            blocks.push(Block {
                filter,
                gate,
                mixhop,
                skip_w,
            });
        }

        let end_w1 = store.register("end.w1", init.init(&[c, c], &mut rng));
        let end_b1 = store.register("end.b1", Initializer::Zeros.init(&[c], &mut rng));
        let end_w2 = store.register("end.w2", init.init(&[1, c], &mut rng));
        let end_b2 = store.register("end.b2", Initializer::Zeros.init(&[1], &mut rng));

        Self {
            store,
            e1,
            e2,
            m1,
            m2,
            direct_logits,
            learner,
            static_prior: initial_graph.map(|g| g.max_normalized().into_weights()),
            learn_graph,
            start_w,
            start_b,
            blocks,
            end_w1,
            end_b1,
            end_w2,
            end_b2,
            alpha: config.graph_alpha,
            top_k: config.graph_top_k.min(num_variables.saturating_sub(1)).max(1),
            beta: config.mixhop_beta,
            depth: config.mixhop_depth,
            dropout: config.dropout,
            seq_len,
            num_variables,
        }
    }

    /// The raw learned adjacency computed from the *current* parameter
    /// values with plain tensor math (before top-k sparsification).
    fn plain_adjacency(&self) -> Tensor {
        let mut a = match self.learner {
            GraphLearnerKind::Embedding => {
                let e1 = self.store.value(self.e1);
                let e2 = self.store.value(self.e2);
                let m1 = self.store.value(self.m1);
                let m2 = self.store.value(self.m2);
                let t1 = e1.matmul(m1).scale(self.alpha).tanh();
                let t2 = e2.matmul(m2).scale(self.alpha).tanh();
                let a0 = t1.matmul_nt(&t2);
                let asym = a0.sub(&a0.transpose());
                asym.scale(self.alpha).tanh().relu()
            }
            GraphLearnerKind::Direct => self.store.value(self.direct_logits).sigmoid(),
        };
        if let Some(prior) = &self.static_prior {
            a = a.add(prior);
        }
        a
    }

    /// Extracts the learned graph for Experiment C: the current
    /// adjacency, top-k sparsified — ready to feed into other GNNs.
    #[must_use]
    pub fn learned_graph(&self) -> AdjacencyMatrix {
        let a = AdjacencyMatrix::new(self.plain_adjacency());
        sparsify::top_k_per_row(&a, self.top_k)
    }

    /// Builds the normalised propagation matrix on the tape. Returns the
    /// tape var for `D̃⁻¹(A_masked + I)`.
    fn adjacency_var(&self, tape: &Tape, binding: &Binding) -> Var {
        let v = self.num_variables;
        if !self.learn_graph {
            // Static-only ablation: constant row-normalised prior.
            let prior = self
                .static_prior
                .as_ref()
                .expect("static graph checked at construction");
            let adj = AdjacencyMatrix::new(prior.clone());
            return tape.leaf(ema_graph::normalize::row_norm_self_loops(&adj));
        }
        // Learned graph with gradients, mirroring plain_adjacency().
        let mut a = match self.learner {
            GraphLearnerKind::Embedding => {
                // tanh(α E₁M₁)·tanh(α E₂M₂)ᵀ, antisymmetrised.
                let e1m1 = tape.matmul(binding.var(self.e1), binding.var(self.m1));
                let t1 = {
                    let scaled = tape.scale(e1m1, self.alpha);
                    tape.tanh(scaled)
                };
                let e2m2 = tape.matmul(binding.var(self.e2), binding.var(self.m2));
                let t2 = {
                    let scaled = tape.scale(e2m2, self.alpha);
                    tape.tanh(scaled)
                };
                let a0 = tape.matmul_nt(t1, t2);
                let a0t = tape.transpose(a0);
                let asym = tape.sub(a0, a0t);
                let scaled = tape.scale(asym, self.alpha);
                let th = tape.tanh(scaled);
                tape.relu(th)
            }
            GraphLearnerKind::Direct => tape.sigmoid(binding.var(self.direct_logits)),
        };
        if let Some(prior) = &self.static_prior {
            let p = tape.leaf(prior.clone());
            a = tape.add(a, p);
        }
        // Top-k mask from the identical plain computation (gradients
        // flow through the surviving entries).
        let plain = self.plain_adjacency();
        let kept = sparsify::top_k_per_row(&AdjacencyMatrix::new(plain), self.top_k);
        let mask = kept.weights().map(|w| if w > 0.0 { 1.0 } else { 0.0 });
        let mask_var = tape.leaf(mask);
        let masked = tape.mul(a, mask_var);
        // Row-normalise with self loops: Ã = A + I; Â = D̃⁻¹ Ã.
        let eye = tape.leaf(Tensor::eye(v));
        let a_tilde = tape.add(masked, eye);
        let ones_col = tape.leaf(Tensor::ones(&[v, 1]));
        let row_sums = tape.matmul(a_tilde, ones_col); // [V, 1]
        let ones_row = tape.leaf(Tensor::ones(&[1, v]));
        let denom = tape.matmul(row_sums, ones_row); // [V, V]
        tape.div(a_tilde, denom)
    }

    /// Pre-draws every dropout mask of the batched forward in the
    /// per-window RNG order: windows outermost, then blocks, then the
    /// block's gated steps, each a row-major `[V, C]` draw — exactly
    /// the sequence the per-window path consumes. Returns one
    /// `[W·V, C]` mask per (block, gated step), or `None` when
    /// dropout is inactive (matching `Tape::dropout`, which draws
    /// nothing in eval mode or at rate zero).
    fn predraw_masks(&self, ctx: &mut ForwardCtx, wins: usize) -> Option<Vec<Vec<Tensor>>> {
        assert!(
            (0.0..1.0).contains(&self.dropout),
            "dropout rate must be in [0, 1), got {}",
            self.dropout
        );
        if !ctx.training || self.dropout == 0.0 {
            return None;
        }
        let keep = 1.0 - self.dropout;
        let v = self.num_variables;
        let c = self.blocks[0].filter.out_channels();
        let mut lens = Vec::with_capacity(self.blocks.len());
        let mut len = self.seq_len;
        for block in &self.blocks {
            len -= block.filter.shrinkage();
            lens.push(len);
        }
        let mut masks: Vec<Vec<Tensor>> = lens
            .iter()
            .map(|&l| (0..l).map(|_| Tensor::zeros(&[wins * v, c])).collect())
            .collect();
        for w in 0..wins {
            for (block_masks, &l) in masks.iter_mut().zip(&lens) {
                for mask in block_masks.iter_mut().take(l) {
                    for e in &mut mask.data_mut()[w * v * c..(w + 1) * v * c] {
                        if ctx.rng.bernoulli(keep) {
                            *e = 1.0 / keep;
                        }
                    }
                }
            }
        }
        Some(masks)
    }

    /// Cohort [`Mtgnn::predraw_masks`]: one `[Σ W_b·V, C]` mask per
    /// (block, gated step), filled individual-major. Each individual's
    /// rows are drawn from its *own* stream in its standalone
    /// (window-major) order; a rate-0 individual's rows are filled with
    /// 1.0 and consume zero draws, matching the passthrough its oracle
    /// path takes. Returns `None` when no individual drops out.
    fn predraw_masks_cohort(
        group: &[&Self],
        batch: &CohortBatch,
        ctx: &mut CohortCtx,
    ) -> Option<Vec<Vec<Tensor>>> {
        for (b, m) in group.iter().enumerate() {
            assert!(
                (0.0..1.0).contains(&m.dropout),
                "individual {b}: dropout rate must be in [0, 1), got {}",
                m.dropout
            );
        }
        if !ctx.training || group.iter().all(|m| m.dropout == 0.0) {
            return None;
        }
        let first = group[0];
        let v = batch.num_vars();
        let c = first.blocks[0].filter.out_channels();
        let mut lens = Vec::with_capacity(first.blocks.len());
        let mut len = first.seq_len;
        for block in &first.blocks {
            len -= block.filter.shrinkage();
            lens.push(len);
        }
        let total = batch.total_rows();
        let mut masks: Vec<Vec<Tensor>> = lens
            .iter()
            .map(|&l| (0..l).map(|_| Tensor::zeros(&[total * v, c])).collect())
            .collect();
        for (b, (m, &wins)) in group.iter().zip(batch.group_wins()).enumerate() {
            let off = batch.offset(b);
            if m.dropout == 0.0 {
                for (block_masks, &l) in masks.iter_mut().zip(&lens) {
                    for mask in block_masks.iter_mut().take(l) {
                        mask.data_mut()[off * v * c..(off + wins) * v * c].fill(1.0);
                    }
                }
                continue;
            }
            let keep = 1.0 - m.dropout;
            let rng = &mut ctx.rngs[b];
            for w in 0..wins {
                for (block_masks, &l) in masks.iter_mut().zip(&lens) {
                    for mask in block_masks.iter_mut().take(l) {
                        for e in &mut mask.data_mut()[(off + w) * v * c..(off + w + 1) * v * c] {
                            if rng.bernoulli(keep) {
                                *e = 1.0 / keep;
                            }
                        }
                    }
                }
            }
        }
        Some(masks)
    }
}

impl Forecaster for Mtgnn {
    fn name(&self) -> &'static str {
        "MTGNN"
    }

    fn as_any_mtgnn(&self) -> Option<&Mtgnn> {
        Some(self)
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn num_variables(&self) -> usize {
        self.num_variables
    }

    fn predict_window(
        &self,
        tape: &Tape,
        binding: &Binding,
        window: &Tensor,
        ctx: &mut ForwardCtx,
    ) -> Var {
        assert_eq!(window.dims()[1], self.num_variables, "window width");
        assert_eq!(
            window.dims()[0],
            self.seq_len,
            "MTGNN was built for seq_len {} but got {}",
            self.seq_len,
            window.dims()[0]
        );
        let v = self.num_variables;
        // The learned adjacency depends on parameters only: build its
        // subgraph once per epoch and share it across windows (its
        // embedding gradients then accumulate through the shared nodes).
        let a_hat = ctx.memo("mtgnn_a_hat", || self.adjacency_var(tape, binding));

        // Start convolution: lift each step's [V, 1] to [V, C].
        let mut seq: Vec<Var> = (0..self.seq_len)
            .map(|t| {
                let x = tape.leaf(window.row(t).reshaped(&[v, 1]));
                tape.linear(x, binding.var(self.start_w), binding.var(self.start_b))
            })
            .collect();

        let mut skip_acc: Option<Var> = None;
        for block in &self.blocks {
            // Gated temporal convolution.
            let filt = block.filter.forward(tape, binding, &seq);
            let gate = block.gate.forward(tape, binding, &seq);
            let z: Vec<Var> = filt
                .iter()
                .zip(gate.iter())
                .map(|(&f, &g)| {
                    let gt = tape.gated_tanh(f, g);
                    tape.dropout(gt, self.dropout, ctx.training, ctx.rng)
                })
                .collect();
            // Skip connection from the block's last gated step.
            let z_last = *z.last().expect("non-empty conv output");
            let skip = tape.matmul_nt(z_last, binding.var(block.skip_w));
            skip_acc = Some(match skip_acc {
                Some(acc) => tape.add(acc, skip),
                None => skip,
            });
            // Graph propagation per step + residual from the aligned
            // input step.
            let shrink = seq.len() - z.len();
            let weights: Vec<Var> = block.mixhop.iter().map(|&w| binding.var(w)).collect();
            let mut next = Vec::with_capacity(z.len());
            for (t, &zt) in z.iter().enumerate() {
                let g = mixhop_propagation(tape, a_hat, zt, &weights, self.beta, self.depth);
                let res = seq[t + shrink];
                next.push(tape.add(g, res));
            }
            seq = next;
        }

        // Output module on the accumulated skip features.
        let last = *seq.last().expect("non-empty final sequence");
        let skip = {
            let acc = skip_acc.expect("at least one block");
            tape.add(acc, last)
        };
        let h = tape.relu(skip);
        let h1 = {
            let lin = tape.linear(h, binding.var(self.end_w1), binding.var(self.end_b1));
            tape.relu(lin)
        };
        let pred = tape.linear(h1, binding.var(self.end_w2), binding.var(self.end_b2)); // [V, 1]
        tape.flatten(pred)
    }

    fn predict_batch(
        &self,
        tape: &Tape,
        binding: &Binding,
        batch: &WindowBatch,
        ctx: &mut ForwardCtx,
    ) -> Var {
        assert_eq!(batch.num_vars(), self.num_variables, "window width");
        assert_eq!(
            batch.seq_len(),
            self.seq_len,
            "MTGNN was built for seq_len {} but got {}",
            self.seq_len,
            batch.seq_len()
        );
        let v = self.num_variables;
        let wins = batch.wins();
        // Dropout is the only RNG consumer; pre-draw every mask in the
        // per-window order (windows outermost) so the draw sequence —
        // and therefore every result byte — matches the oracle path.
        let masks = self.predraw_masks(ctx, wins);
        let a_hat = ctx.memo("mtgnn_a_hat", || self.adjacency_var(tape, binding));

        // Start convolution: step t across all windows is one
        // window-blocked [W·V, 1] column lifted to [W·V, C].
        let mut seq: Vec<Var> = (0..self.seq_len)
            .map(|t| {
                let x = tape.leaf(batch.step(t).reshaped(&[wins * v, 1]));
                tape.batched_linear(
                    x,
                    binding.var(self.start_w),
                    binding.var(self.start_b),
                    wins,
                )
            })
            .collect();

        let mut skip_acc: Option<Var> = None;
        for (b, block) in self.blocks.iter().enumerate() {
            let filt = block.filter.forward_batched(tape, binding, &seq, wins);
            let gate = block.gate.forward_batched(tape, binding, &seq, wins);
            let z: Vec<Var> = filt
                .iter()
                .zip(gate.iter())
                .enumerate()
                .map(|(t, (&f, &g))| {
                    let gt = tape.gated_tanh(f, g);
                    match &masks {
                        Some(m) => tape.dropout_masked(gt, m[b][t].clone()),
                        None => gt,
                    }
                })
                .collect();
            let z_last = *z.last().expect("non-empty conv output");
            let skip = tape.batched_matmul_nt(z_last, binding.var(block.skip_w), wins);
            skip_acc = Some(match skip_acc {
                Some(acc) => tape.add(acc, skip),
                None => skip,
            });
            let shrink = seq.len() - z.len();
            let weights: Vec<Var> = block.mixhop.iter().map(|&w| binding.var(w)).collect();
            let mut next = Vec::with_capacity(z.len());
            for (t, &zt) in z.iter().enumerate() {
                let g = mixhop_propagation_batched(
                    tape, a_hat, zt, &weights, self.beta, self.depth, wins,
                );
                let res = seq[t + shrink];
                next.push(tape.add(g, res));
            }
            seq = next;
        }

        let last = *seq.last().expect("non-empty final sequence");
        let skip = {
            let acc = skip_acc.expect("at least one block");
            tape.add(acc, last)
        };
        let h = tape.relu(skip);
        let h1 = {
            let lin = tape.batched_linear(h, binding.var(self.end_w1), binding.var(self.end_b1), wins);
            tape.relu(lin)
        };
        let pred = tape.batched_linear(h1, binding.var(self.end_w2), binding.var(self.end_b2), wins); // [W·V, 1]
        tape.reshape(pred, &[wins, v])
    }
}

impl CohortForecaster for Mtgnn {
    fn predict_cohort(
        group: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        batch: &CohortBatch,
        ctx: &mut CohortCtx,
    ) -> Var {
        assert_eq!(group.len(), batch.num_groups(), "one window batch per model");
        assert_eq!(group.len(), bindings.len(), "one binding per model");
        let first = group[0];
        for (b, model) in group.iter().enumerate() {
            assert_eq!(
                model.num_variables,
                batch.num_vars(),
                "individual {b}: batch has {} variables, model expects {}",
                batch.num_vars(),
                model.num_variables
            );
            assert_eq!(
                model.seq_len,
                batch.seq_len(),
                "individual {b}: MTGNN was built for seq_len {} but got {}",
                model.seq_len,
                batch.seq_len()
            );
            assert_eq!(
                model.depth, first.depth,
                "individual {b}: cohort models must share the mix-hop depth"
            );
            assert!(
                model.beta == first.beta,
                "individual {b}: cohort models must share the mix-hop beta"
            );
        }
        let v = batch.num_vars();
        let group_wins = batch.group_wins();
        let total = batch.total_rows();
        // Dropout is the only RNG consumer; pre-draw every mask before
        // anything else touches the tape so each individual's stream is
        // consumed exactly as its standalone batched forward would.
        let masks = Self::predraw_masks_cohort(group, batch, ctx);
        // Per-individual propagation matrices (parameter-only subgraphs),
        // in stack order — each learner/prior mode builds its own.
        let a_hats: Vec<Var> = group
            .iter()
            .zip(bindings)
            .map(|(m, bind)| m.adjacency_var(tape, bind))
            .collect();

        // Start convolution with each individual's own lift parameters.
        let start_params: Vec<(Var, Var)> = group
            .iter()
            .zip(bindings)
            .map(|(m, bind)| (bind.var(m.start_w), bind.var(m.start_b)))
            .collect();
        let mut seq: Vec<Var> = (0..first.seq_len)
            .map(|t| {
                let x = tape.leaf(batch.step(t).reshaped(&[total * v, 1]));
                tape.group_linear_blocks(x, &start_params, group_wins, v)
            })
            .collect();

        let mut skip_acc: Option<Var> = None;
        for bi in 0..first.blocks.len() {
            let filters: Vec<&DilatedTemporalConv> =
                group.iter().map(|m| &m.blocks[bi].filter).collect();
            let gates: Vec<&DilatedTemporalConv> =
                group.iter().map(|m| &m.blocks[bi].gate).collect();
            let filt =
                DilatedTemporalConv::forward_grouped(&filters, tape, bindings, &seq, group_wins, v);
            let gate =
                DilatedTemporalConv::forward_grouped(&gates, tape, bindings, &seq, group_wins, v);
            let z: Vec<Var> = filt
                .iter()
                .zip(gate.iter())
                .enumerate()
                .map(|(t, (&f, &g))| {
                    let gt = tape.gated_tanh(f, g);
                    match &masks {
                        Some(m) => tape.dropout_masked(gt, m[bi][t].clone()),
                        None => gt,
                    }
                })
                .collect();
            let z_last = *z.last().expect("non-empty conv output");
            let skip_ws: Vec<Var> = group
                .iter()
                .zip(bindings)
                .map(|(m, bind)| bind.var(m.blocks[bi].skip_w))
                .collect();
            let skip = tape.group_matmul_nt(z_last, &skip_ws, group_wins, v);
            skip_acc = Some(match skip_acc {
                Some(acc) => tape.add(acc, skip),
                None => skip,
            });
            let shrink = seq.len() - z.len();
            let hop_weights: Vec<Vec<Var>> = (0..=first.depth)
                .map(|k| {
                    group
                        .iter()
                        .zip(bindings)
                        .map(|(m, bind)| bind.var(m.blocks[bi].mixhop[k]))
                        .collect()
                })
                .collect();
            let mut next = Vec::with_capacity(z.len());
            for (t, &zt) in z.iter().enumerate() {
                let g = mixhop_propagation_grouped(
                    tape,
                    &a_hats,
                    zt,
                    &hop_weights,
                    first.beta,
                    first.depth,
                    group_wins,
                    v,
                );
                let res = seq[t + shrink];
                next.push(tape.add(g, res));
            }
            seq = next;
        }

        let last = *seq.last().expect("non-empty final sequence");
        let skip = {
            let acc = skip_acc.expect("at least one block");
            tape.add(acc, last)
        };
        let h = tape.relu(skip);
        let end1: Vec<(Var, Var)> = group
            .iter()
            .zip(bindings)
            .map(|(m, bind)| (bind.var(m.end_w1), bind.var(m.end_b1)))
            .collect();
        let h1 = {
            let lin = tape.group_linear_blocks(h, &end1, group_wins, v);
            tape.relu(lin)
        };
        let end2: Vec<(Var, Var)> = group
            .iter()
            .zip(bindings)
            .map(|(m, bind)| (bind.var(m.end_w2), bind.var(m.end_b2)))
            .collect();
        let pred = tape.group_linear_blocks(h1, &end2, group_wins, v); // [ΣW·V, 1]
        tape.reshape(pred, &[total, v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_nn::{Adam, Optimizer, OptimizerConfig};

    fn ring_graph(n: usize) -> AdjacencyMatrix {
        let mut a = AdjacencyMatrix::empty(n);
        for i in 0..n {
            let j = (i + 1) % n;
            a.set_weight(i, j, 1.0);
            a.set_weight(j, i, 1.0);
        }
        a
    }

    #[test]
    fn prediction_shape_without_prior() {
        let model = Mtgnn::new(6, 5, None, &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(1);
        let window = Tensor::rand_normal(&[5, 6], 0.0, 1.0, &mut rng);
        let pred = model.predict(&window, &mut rng);
        assert_eq!(pred.dims(), &[6]);
        assert!(pred.all_finite());
    }

    #[test]
    fn prediction_with_static_prior() {
        let g = ring_graph(6);
        let model = Mtgnn::new(6, 3, Some(&g), &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(2);
        let window = Tensor::rand_normal(&[3, 6], 0.0, 1.0, &mut rng);
        assert!(model.predict(&window, &mut rng).all_finite());
    }

    #[test]
    fn short_windows_work() {
        let mut rng = Rng64::seed_from(3);
        for s in [1usize, 2] {
            let model = Mtgnn::new(4, s, None, &ModelConfig::tiny(0));
            let window = Tensor::rand_normal(&[s, 4], 0.0, 1.0, &mut rng);
            assert_eq!(model.predict(&window, &mut rng).dims(), &[4]);
        }
    }

    #[test]
    fn learned_graph_has_top_k_structure() {
        let cfg = ModelConfig::tiny(4);
        let model = Mtgnn::new(8, 3, None, &cfg);
        let g = model.learned_graph();
        assert_eq!(g.num_nodes(), 8);
        for i in 0..8 {
            let deg = (0..8).filter(|&j| g.weight(i, j) > 0.0).count();
            assert!(deg <= cfg.graph_top_k, "node {i} exceeds top-k");
        }
    }

    #[test]
    fn graph_learning_updates_the_graph() {
        let mut model = Mtgnn::new(5, 3, None, &ModelConfig::tiny(5));
        let before = model.learned_graph();
        let mut rng = Rng64::seed_from(6);
        let window = Tensor::rand_normal(&[3, 5], 0.0, 1.0, &mut rng);
        let target = Tensor::from_vec1(vec![0.5, -0.5, 0.2, 0.1, -0.3]);
        let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.02));
        for _ in 0..30 {
            let tape = Tape::new();
            let binding = model.params().bind(&tape);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let pred = model.predict_window(&tape, &binding, &window, &mut ctx);
            let tgt = tape.leaf(target.clone());
            let loss = tape.mse(pred, tgt);
            let grads = tape.backward(loss);
            adam.step(model.params_mut(), &binding, &grads);
        }
        let after = model.learned_graph();
        assert_ne!(
            before.weights().data(),
            after.weights().data(),
            "graph learner did not move"
        );
    }

    #[test]
    fn static_only_ablation_ignores_embeddings() {
        let g = ring_graph(5);
        let model = Mtgnn::with_options(5, 3, Some(&g), &ModelConfig::tiny(7), false);
        let mut rng = Rng64::seed_from(8);
        let window = Tensor::rand_normal(&[3, 5], 0.0, 1.0, &mut rng);
        assert!(model.predict(&window, &mut rng).all_finite());
    }

    #[test]
    #[should_panic(expected = "requires a static graph")]
    fn ablation_without_graph_panics() {
        let _ = Mtgnn::with_options(5, 3, None, &ModelConfig::tiny(0), false);
    }

    #[test]
    fn direct_learner_runs_and_learns() {
        let mut model = Mtgnn::with_learner(
            5,
            3,
            None,
            &ModelConfig::tiny(11),
            true,
            GraphLearnerKind::Direct,
        );
        let before = model.learned_graph();
        let mut rng = Rng64::seed_from(12);
        let window = Tensor::rand_normal(&[3, 5], 0.0, 1.0, &mut rng);
        let target = Tensor::from_vec1(vec![0.1, -0.2, 0.3, -0.4, 0.5]);
        let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.02));
        for _ in 0..30 {
            let tape = Tape::new();
            let binding = model.params().bind(&tape);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let pred = model.predict_window(&tape, &binding, &window, &mut ctx);
            let tgt = tape.leaf(target.clone());
            let loss = tape.mse(pred, tgt);
            let grads = tape.backward(loss);
            adam.step(model.params_mut(), &binding, &grads);
        }
        let after = model.learned_graph();
        assert_ne!(
            before.weights().data(),
            after.weights().data(),
            "direct learner did not move"
        );
        assert!(after.weights().all_finite());
    }

    #[test]
    fn learner_kinds_produce_different_graphs() {
        let cfg = ModelConfig::tiny(13);
        let emb = Mtgnn::with_learner(6, 2, None, &cfg, true, GraphLearnerKind::Embedding);
        let dir = Mtgnn::with_learner(6, 2, None, &cfg, true, GraphLearnerKind::Direct);
        assert_ne!(
            emb.learned_graph().weights().data(),
            dir.learned_graph().weights().data()
        );
    }

    #[test]
    fn trains_to_fit_target() {
        let mut model = Mtgnn::new(4, 3, None, &ModelConfig::tiny(9));
        let mut rng = Rng64::seed_from(10);
        let window = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let target = Tensor::from_vec1(vec![0.4, -0.2, 0.7, 0.0]);
        let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.02));
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let tape = Tape::new();
            let binding = model.params().bind(&tape);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let pred = model.predict_window(&tape, &binding, &window, &mut ctx);
            let tgt = tape.leaf(target.clone());
            let loss = tape.mse(pred, tgt);
            last = tape.value(loss).data()[0];
            first.get_or_insert(last);
            let grads = tape.backward(loss);
            adam.step(model.params_mut(), &binding, &grads);
        }
        assert!(last < first.unwrap() * 0.2, "loss stuck at {last}");
    }
}
