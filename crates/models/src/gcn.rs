//! Graph-convolution primitives shared by the GNN models.

use ema_autodiff::{Tape, Var};

/// A single GCN layer on the tape: `Â · H · Wᵀ + b`, where `a_hat` is a
/// (constant or learned) `[V, V]` propagation matrix, `h` is `[V, F_in]`
/// and `w`/`b` are a `[F_out, F_in]` weight and `[F_out]` bias.
pub fn gcn_layer(tape: &Tape, a_hat: Var, h: Var, w: Var, b: Var) -> Var {
    let propagated = tape.matmul(a_hat, h);
    tape.linear(propagated, w, b)
}

/// Batched [`gcn_layer`] over `wins` window row-blocks: the shared
/// `[V, V]` propagation matrix multiplies each `[V, F_in]` block of
/// `h: [W·V, F_in]`; weights and bias are shared. Row-block `w` is
/// bit-identical to the per-window layer on window `w` alone.
pub fn gcn_layer_batched(tape: &Tape, a_hat: Var, h: Var, w: Var, b: Var, wins: usize) -> Var {
    let propagated = tape.block_lhs_matmul(a_hat, h, wins);
    tape.batched_linear(propagated, w, b, wins)
}

/// Grouped [`gcn_layer_batched`] over a cohort stack: group `b`'s
/// window blocks of `h: [Σ W_b·V, F_in]` propagate through its *own*
/// `[V, V]` matrix and `(w_b, bias_b)` pair — bit-identical per row
/// block to the per-individual batched layer.
pub fn gcn_layer_grouped(
    tape: &Tape,
    a_hats: &[Var],
    h: Var,
    params: &[(Var, Var)],
    group_wins: &[usize],
    nodes: usize,
) -> Var {
    let propagated = tape.group_block_lhs_matmul(a_hats, h, group_wins);
    tape.group_linear_blocks(propagated, params, group_wins, nodes)
}

/// MTGNN's mix-hop propagation:
///
/// ```text
/// H⁽⁰⁾ = H_in
/// H⁽ᵏ⁾ = β·H_in + (1 − β)·Â·H⁽ᵏ⁻¹⁾
/// out  = Σ_k H⁽ᵏ⁾ · W_kᵀ
/// ```
///
/// `weights` supplies one `[F_out, F_in]` weight var per hop
/// (`depth + 1` of them, including hop 0).
///
/// # Panics
/// Panics if `weights.len() != depth + 1`.
pub fn mixhop_propagation(
    tape: &Tape,
    a_hat: Var,
    h_in: Var,
    weights: &[Var],
    beta: f64,
    depth: usize,
) -> Var {
    assert_eq!(
        weights.len(),
        depth + 1,
        "mix-hop needs depth + 1 weight matrices"
    );
    let mut h = h_in;
    let mut out: Option<Var> = None;
    for (k, &w) in weights.iter().enumerate() {
        if k > 0 {
            let prop = tape.matmul(a_hat, h);
            let keep = tape.scale(h_in, beta);
            let walk = tape.scale(prop, 1.0 - beta);
            h = tape.add(keep, walk);
        }
        let term = tape.matmul_nt(h, w);
        out = Some(match out {
            Some(acc) => tape.add(acc, term),
            None => term,
        });
    }
    out.expect("depth + 1 >= 1")
}

/// Batched [`mixhop_propagation`] over `wins` window row-blocks: the
/// shared `[V, V]` adjacency propagates each `[V, F_in]` block of
/// `h_in: [W·V, F_in]`; the hop weights are shared.
///
/// # Panics
/// Panics if `weights.len() != depth + 1`.
pub fn mixhop_propagation_batched(
    tape: &Tape,
    a_hat: Var,
    h_in: Var,
    weights: &[Var],
    beta: f64,
    depth: usize,
    wins: usize,
) -> Var {
    assert_eq!(
        weights.len(),
        depth + 1,
        "mix-hop needs depth + 1 weight matrices"
    );
    let mut h = h_in;
    let mut out: Option<Var> = None;
    for (k, &w) in weights.iter().enumerate() {
        if k > 0 {
            let prop = tape.block_lhs_matmul(a_hat, h, wins);
            let keep = tape.scale(h_in, beta);
            let walk = tape.scale(prop, 1.0 - beta);
            h = tape.add(keep, walk);
        }
        let term = tape.batched_matmul_nt(h, w, wins);
        out = Some(match out {
            Some(acc) => tape.add(acc, term),
            None => term,
        });
    }
    out.expect("depth + 1 >= 1")
}

/// Grouped [`mixhop_propagation_batched`] over a cohort stack: group
/// `b`'s window blocks of `h_in: [Σ W_b·V, F_in]` propagate through
/// its *own* adjacency and hop weights (`hop_weights[k][b]`); `beta`
/// and `depth` are structural and shared, so the keep/walk mixing
/// stays a dense elementwise op.
///
/// # Panics
/// Panics if `hop_weights.len() != depth + 1` or per-hop lengths
/// mismatch the group count.
#[allow(clippy::too_many_arguments)]
pub fn mixhop_propagation_grouped(
    tape: &Tape,
    a_hats: &[Var],
    h_in: Var,
    hop_weights: &[Vec<Var>],
    beta: f64,
    depth: usize,
    group_wins: &[usize],
    nodes: usize,
) -> Var {
    assert_eq!(
        hop_weights.len(),
        depth + 1,
        "mix-hop needs depth + 1 weight matrices"
    );
    let mut h = h_in;
    let mut out: Option<Var> = None;
    for (k, w_k) in hop_weights.iter().enumerate() {
        assert_eq!(w_k.len(), a_hats.len(), "mix-hop hop {k} weight count");
        if k > 0 {
            let prop = tape.group_block_lhs_matmul(a_hats, h, group_wins);
            let keep = tape.scale(h_in, beta);
            let walk = tape.scale(prop, 1.0 - beta);
            h = tape.add(keep, walk);
        }
        let term = tape.group_matmul_nt(h, w_k, group_wins, nodes);
        out = Some(match out {
            Some(acc) => tape.add(acc, term),
            None => term,
        });
    }
    out.expect("depth + 1 >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::{Rng64, Tensor};

    #[test]
    fn gcn_layer_shapes() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(0);
        let a = tape.leaf(Tensor::eye(4));
        let h = tape.leaf(Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut rng));
        let w = tape.leaf(Tensor::rand_normal(&[6, 3], 0.0, 1.0, &mut rng));
        let b = tape.leaf(Tensor::zeros(&[6]));
        let out = gcn_layer(&tape, a, h, w, b);
        assert_eq!(tape.dims(out), vec![4, 6]);
    }

    #[test]
    fn identity_propagation_reduces_to_linear() {
        let tape = Tape::new();
        let mut rng = Rng64::seed_from(1);
        let a = tape.leaf(Tensor::eye(3));
        let hv = Tensor::rand_normal(&[3, 2], 0.0, 1.0, &mut rng);
        let wv = Tensor::rand_normal(&[2, 2], 0.0, 1.0, &mut rng);
        let h = tape.leaf(hv.clone());
        let w = tape.leaf(wv.clone());
        let b = tape.leaf(Tensor::zeros(&[2]));
        let out = gcn_layer(&tape, a, h, w, b);
        let expected = hv.matmul(&wv.transpose());
        ema_tensor::assert_tensors_close(&tape.value(out), &expected, 1e-12);
    }

    #[test]
    fn mixhop_with_zero_adjacency_keeps_input_mix() {
        // Â = 0 ⇒ H⁽ᵏ⁾ = β·H_in for k ≥ 1.
        let tape = Tape::new();
        let a = tape.leaf(Tensor::zeros(&[3, 3]));
        let h_in = tape.leaf(Tensor::ones(&[3, 2]));
        let w0 = tape.leaf(Tensor::eye(2));
        let w1 = tape.leaf(Tensor::eye(2));
        let out = mixhop_propagation(&tape, a, h_in, &[w0, w1], 0.25, 1);
        // out = H_in + 0.25·H_in = 1.25 everywhere.
        assert!(tape
            .value(out)
            .data()
            .iter()
            .all(|&v| (v - 1.25).abs() < 1e-12));
    }

    #[test]
    fn mixhop_depth_grows_receptive_field() {
        // Path graph 0→1→2; signal starts at node 0 only. Depth 2
        // reaches node 2, depth 1 does not.
        let mut adj = Tensor::zeros(&[3, 3]);
        adj.set2(1, 0, 1.0); // node 1 listens to node 0
        adj.set2(2, 1, 1.0); // node 2 listens to node 1
        let tape = Tape::new();
        let a = tape.leaf(adj);
        let mut h0 = Tensor::zeros(&[3, 1]);
        h0.set2(0, 0, 1.0);
        let h_in = tape.leaf(h0);
        let eye = Tensor::eye(1);
        let w: Vec<Var> = (0..3).map(|_| tape.leaf(eye.clone())).collect();

        let out1 = mixhop_propagation(&tape, a, h_in, &w[..2], 0.0, 1);
        assert_eq!(tape.value(out1).at2(2, 0), 0.0);
        let out2 = mixhop_propagation(&tape, a, h_in, &w, 0.0, 2);
        assert!(tape.value(out2).at2(2, 0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "depth + 1")]
    fn mixhop_validates_weight_count() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::eye(2));
        let h = tape.leaf(Tensor::ones(&[2, 1]));
        let w = tape.leaf(Tensor::eye(1));
        let _ = mixhop_propagation(&tape, a, h, &[w], 0.1, 2);
    }
}
