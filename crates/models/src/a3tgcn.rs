//! A3TGCN: Attention Temporal Graph Convolutional Network (Bai et al.,
//! 2021), the paper's R-GCN representative.
//!
//! A TGCN cell — a GRU whose gates are computed by graph convolutions
//! over the variable graph — runs across the window; a temporal
//! attention module pools the hidden states into a context that a
//! per-node head maps to the 1-lag prediction.

use crate::cohort::{cohort_dropout, CohortBatch, CohortCtx, CohortForecaster};
use crate::gcn::{gcn_layer, gcn_layer_batched, gcn_layer_grouped};
use crate::{Forecaster, ForwardCtx, ModelConfig, WindowBatch};
use ema_autodiff::{Tape, Var};
use ema_graph::{normalize, AdjacencyMatrix};
use ema_nn::{Binding, Initializer, ParamId, ParamStore, TemporalAttention};
use ema_tensor::{Rng64, Tensor};

/// One TGCN gate's parameters: a graph-convolution weight over the
/// concatenated `[x ‖ h]` features.
struct Gate {
    w: ParamId, // [H, 1 + H]
    b: ParamId, // [H]
}

impl Gate {
    fn new(store: &mut ParamStore, name: &str, hidden: usize, rng: &mut Rng64) -> Self {
        let w = store.register(
            format!("{name}.w"),
            Initializer::XavierUniform.init(&[hidden, 1 + hidden], rng),
        );
        let b = store.register(
            format!("{name}.b"),
            Initializer::Zeros.init(&[hidden], rng),
        );
        Self { w, b }
    }
}

/// The A3TGCN forecaster.
pub struct A3tgcn {
    store: ParamStore,
    update: Gate,
    reset: Gate,
    candidate: Gate,
    attention: TemporalAttention,
    head_w: ParamId, // [1, H]
    head_b: ParamId, // [1]
    a_hat: Tensor,   // symmetric GCN normalisation of the input graph
    hidden: usize,
    dropout: f64,
    use_attention: bool,
    num_variables: usize,
}

impl A3tgcn {
    /// Builds an A3TGCN over the given static graph.
    ///
    /// # Panics
    /// Panics if the graph's node count differs from `num_variables`.
    #[must_use]
    pub fn new(num_variables: usize, graph: &AdjacencyMatrix, config: &ModelConfig) -> Self {
        Self::with_options(num_variables, graph, config, true)
    }

    /// [`A3tgcn::new`] with temporal attention optionally disabled —
    /// the ablation reduces the model to a plain TGCN whose last hidden
    /// state feeds the head (isolating the "A3" part's contribution).
    ///
    /// # Panics
    /// Panics if the graph's node count differs from `num_variables`.
    #[must_use]
    pub fn with_options(
        num_variables: usize,
        graph: &AdjacencyMatrix,
        config: &ModelConfig,
        use_attention: bool,
    ) -> Self {
        assert_eq!(
            graph.num_nodes(),
            num_variables,
            "graph has {} nodes, expected {num_variables}",
            graph.num_nodes()
        );
        let mut store = ParamStore::new();
        let mut rng = Rng64::seed_from(config.seed);
        let hidden = config.hidden;
        let update = Gate::new(&mut store, "tgcn.update", hidden, &mut rng);
        let reset = Gate::new(&mut store, "tgcn.reset", hidden, &mut rng);
        let candidate = Gate::new(&mut store, "tgcn.candidate", hidden, &mut rng);
        let attention =
            TemporalAttention::new(&mut store, "attn", hidden, config.attn_dim, &mut rng);
        let head_w = store.register(
            "head.w",
            Initializer::XavierUniform.init(&[1, hidden], &mut rng),
        );
        let head_b = store.register("head.b", Initializer::Zeros.init(&[1], &mut rng));
        Self {
            store,
            update,
            reset,
            candidate,
            attention,
            head_w,
            head_b,
            a_hat: normalize::gcn_norm(graph),
            hidden,
            dropout: config.dropout,
            use_attention,
            num_variables,
        }
    }

    /// One TGCN step: graph-convolved GRU gates.
    fn tgcn_step(&self, tape: &Tape, binding: &Binding, a_hat: Var, x: Var, h: Var) -> Var {
        // x: [V, 1], h: [V, H]
        let xh = tape.hcat(x, h); // [V, 1 + H]
        // Update and reset read the same graph-propagated features:
        // compute Â·[x ‖ h] once and share it between both gates.
        let xh_prop = tape.matmul(a_hat, xh); // [V, 1 + H]
        let u_pre = tape.linear(xh_prop, binding.var(self.update.w), binding.var(self.update.b));
        let u = tape.sigmoid(u_pre);
        let r_pre = tape.linear(xh_prop, binding.var(self.reset.w), binding.var(self.reset.b));
        let r = tape.sigmoid(r_pre);
        let rh = tape.mul(r, h);
        let xrh = tape.hcat(x, rh);
        let c_pre = gcn_layer(
            tape,
            a_hat,
            xrh,
            binding.var(self.candidate.w),
            binding.var(self.candidate.b),
        );
        let c = tape.tanh(c_pre);
        // h' = u ⊙ h + (1 − u) ⊙ c
        let uh = tape.mul(u, h);
        let uc = tape.mul(u, c);
        let c_minus_uc = tape.sub(c, uc);
        tape.add(uh, c_minus_uc)
    }

    /// [`A3tgcn::tgcn_step`] over `wins` window row-blocks:
    /// `x: [W·V, 1]`, `h: [W·V, H]`, mirroring the per-window op order
    /// exactly so every row block — and every parameter-gradient
    /// accumulation — is bit-identical.
    fn tgcn_step_batched(
        &self,
        tape: &Tape,
        binding: &Binding,
        a_hat: Var,
        x: Var,
        h: Var,
        wins: usize,
    ) -> Var {
        let xh = tape.hcat(x, h); // [W·V, 1 + H]
        let xh_prop = tape.block_lhs_matmul(a_hat, xh, wins); // [W·V, 1 + H]
        let u_pre = tape.batched_linear(
            xh_prop,
            binding.var(self.update.w),
            binding.var(self.update.b),
            wins,
        );
        let u = tape.sigmoid(u_pre);
        let r_pre = tape.batched_linear(
            xh_prop,
            binding.var(self.reset.w),
            binding.var(self.reset.b),
            wins,
        );
        let r = tape.sigmoid(r_pre);
        let rh = tape.mul(r, h);
        let xrh = tape.hcat(x, rh);
        let c_pre = gcn_layer_batched(
            tape,
            a_hat,
            xrh,
            binding.var(self.candidate.w),
            binding.var(self.candidate.b),
            wins,
        );
        let c = tape.tanh(c_pre);
        let uh = tape.mul(u, h);
        let uc = tape.mul(u, c);
        let c_minus_uc = tape.sub(c, uc);
        tape.add(uh, c_minus_uc)
    }

    /// [`A3tgcn::tgcn_step_batched`] over a cohort stack: each
    /// individual's window blocks propagate through its *own* `a_hat`
    /// and gate parameters via the grouped ops, in the exact batched op
    /// order so every row block is bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn tgcn_step_grouped(
        group: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        a_hats: &[Var],
        x: Var,
        h: Var,
        group_wins: &[usize],
        v: usize,
    ) -> Var {
        let pairs = |f: &dyn Fn(&Self) -> (ParamId, ParamId)| -> Vec<(Var, Var)> {
            group
                .iter()
                .zip(bindings)
                .map(|(m, bind)| {
                    let (w, b) = f(m);
                    (bind.var(w), bind.var(b))
                })
                .collect()
        };
        let xh = tape.hcat(x, h); // [Σ W_b·V, 1 + H]
        let xh_prop = tape.group_block_lhs_matmul(a_hats, xh, group_wins);
        let update = pairs(&|m| (m.update.w, m.update.b));
        let u_pre = tape.group_linear_blocks(xh_prop, &update, group_wins, v);
        let u = tape.sigmoid(u_pre);
        let reset = pairs(&|m| (m.reset.w, m.reset.b));
        let r_pre = tape.group_linear_blocks(xh_prop, &reset, group_wins, v);
        let r = tape.sigmoid(r_pre);
        let rh = tape.mul(r, h);
        let xrh = tape.hcat(x, rh);
        let candidate = pairs(&|m| (m.candidate.w, m.candidate.b));
        let c_pre = gcn_layer_grouped(tape, a_hats, xrh, &candidate, group_wins, v);
        let c = tape.tanh(c_pre);
        let uh = tape.mul(u, h);
        let uc = tape.mul(u, c);
        let c_minus_uc = tape.sub(c, uc);
        tape.add(uh, c_minus_uc)
    }
}

impl Forecaster for A3tgcn {
    fn name(&self) -> &'static str {
        "A3TGCN"
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn num_variables(&self) -> usize {
        self.num_variables
    }

    fn predict_window(
        &self,
        tape: &Tape,
        binding: &Binding,
        window: &Tensor,
        ctx: &mut ForwardCtx,
    ) -> Var {
        assert_eq!(window.dims()[1], self.num_variables, "window width");
        let seq = window.dims()[0];
        let v = self.num_variables;
        // Constants shared by every window of the epoch: the normalised
        // propagation matrix and the initial hidden state (read-only —
        // each step produces a fresh var).
        let a_hat = ctx.memo("a3tgcn_a_hat", || tape.leaf(self.a_hat.clone()));
        let mut h = ctx.memo("a3tgcn_h0", || tape.leaf(Tensor::zeros(&[v, self.hidden])));
        let mut states = Vec::with_capacity(seq);
        for t in 0..seq {
            // Node features at step t: each variable's value, [V, 1].
            let x = tape.leaf(window.row(t).reshaped(&[v, 1]));
            h = self.tgcn_step(tape, binding, a_hat, x, h);
            states.push(h);
        }
        let ctx_state = if self.use_attention {
            self.attention.forward(tape, binding, &states) // [V, H]
        } else {
            *states.last().expect("non-empty window")
        };
        let dropped = tape.dropout(ctx_state, self.dropout, ctx.training, ctx.rng);
        let pred = tape.linear(dropped, binding.var(self.head_w), binding.var(self.head_b)); // [V, 1]
        tape.flatten(pred)
    }

    fn predict_batch(
        &self,
        tape: &Tape,
        binding: &Binding,
        batch: &WindowBatch,
        ctx: &mut ForwardCtx,
    ) -> Var {
        assert_eq!(batch.num_vars(), self.num_variables, "batch width");
        let wins = batch.wins();
        let seq = batch.seq_len();
        let v = self.num_variables;
        let a_hat = ctx.memo("a3tgcn_a_hat", || tape.leaf(self.a_hat.clone()));
        let mut h = ctx.memo("a3tgcn_h0", || {
            tape.leaf(Tensor::zeros(&[wins * v, self.hidden]))
        });
        let mut states = Vec::with_capacity(seq);
        for t in 0..seq {
            // Step t's [W, V] rows reshape to the window-blocked
            // [W·V, 1] node-feature column.
            let x = tape.leaf(batch.step(t).reshaped(&[wins * v, 1]));
            h = self.tgcn_step_batched(tape, binding, a_hat, x, h, wins);
            states.push(h);
        }
        let ctx_state = if self.use_attention {
            self.attention.forward_batched(tape, binding, &states, wins) // [W·V, H]
        } else {
            *states.last().expect("non-empty window")
        };
        // [W·V, H] mask rows are drawn window-major — the per-window
        // draw sequence exactly.
        let dropped = tape.dropout(ctx_state, self.dropout, ctx.training, ctx.rng);
        let pred = tape.batched_linear(
            dropped,
            binding.var(self.head_w),
            binding.var(self.head_b),
            wins,
        ); // [W·V, 1]
        tape.reshape(pred, &[wins, v])
    }
}

impl CohortForecaster for A3tgcn {
    fn predict_cohort(
        group: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        batch: &CohortBatch,
        ctx: &mut CohortCtx,
    ) -> Var {
        assert_eq!(group.len(), batch.num_groups(), "one window batch per model");
        assert_eq!(group.len(), bindings.len(), "one binding per model");
        let first = group[0];
        for (b, model) in group.iter().enumerate() {
            assert_eq!(
                model.num_variables,
                batch.num_vars(),
                "individual {b}: batch has {} variables, model expects {}",
                batch.num_vars(),
                model.num_variables
            );
            assert_eq!(
                model.hidden, first.hidden,
                "individual {b}: cohort models must share the hidden width"
            );
            assert_eq!(
                model.use_attention, first.use_attention,
                "individual {b}: cohort models must agree on attention use"
            );
        }
        let v = batch.num_vars();
        let seq = batch.seq_len();
        let group_wins = batch.group_wins();
        let total = batch.total_rows();
        // Per-individual propagation constants, in stack order — the
        // grouped block-lhs op applies each to its own window blocks.
        let a_hats: Vec<Var> = group.iter().map(|m| tape.leaf(m.a_hat.clone())).collect();
        let mut h = tape.leaf(Tensor::zeros(&[total * v, first.hidden]));
        let mut states = Vec::with_capacity(seq);
        for t in 0..seq {
            // Step t's [Σ W_b, V] rows reshape to the window-blocked
            // [Σ W_b·V, 1] node-feature column, individual-major.
            let x = tape.leaf(batch.step(t).reshaped(&[total * v, 1]));
            h = Self::tgcn_step_grouped(group, tape, bindings, &a_hats, x, h, group_wins, v);
            states.push(h);
        }
        let ctx_state = if first.use_attention {
            let attns: Vec<&TemporalAttention> = group.iter().map(|m| &m.attention).collect();
            TemporalAttention::forward_grouped(&attns, tape, bindings, &states, group_wins)
        } else {
            *states.last().expect("non-empty window")
        };
        // Each individual's [W_b·V, H] mask rows come from its own
        // stream in the per-window (window-major) draw order.
        let rates: Vec<f64> = group.iter().map(|m| m.dropout).collect();
        let node_rows: Vec<usize> = group_wins.iter().map(|&w| w * v).collect();
        let dropped = cohort_dropout(tape, ctx_state, &rates, &node_rows, ctx);
        let heads: Vec<(Var, Var)> = group
            .iter()
            .zip(bindings)
            .map(|(m, bind)| (bind.var(m.head_w), bind.var(m.head_b)))
            .collect();
        let pred = tape.group_linear_blocks(dropped, &heads, group_wins, v); // [Σ W_b·V, 1]
        tape.reshape(pred, &[total, v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_nn::{Adam, Optimizer, OptimizerConfig};

    fn ring_graph(n: usize) -> AdjacencyMatrix {
        let mut a = AdjacencyMatrix::empty(n);
        for i in 0..n {
            let j = (i + 1) % n;
            a.set_weight(i, j, 1.0);
            a.set_weight(j, i, 1.0);
        }
        a
    }

    #[test]
    fn prediction_shape_and_finiteness() {
        let model = A3tgcn::new(6, &ring_graph(6), &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(1);
        let window = Tensor::rand_normal(&[5, 6], 0.0, 1.0, &mut rng);
        let pred = model.predict(&window, &mut rng);
        assert_eq!(pred.dims(), &[6]);
        assert!(pred.all_finite());
    }

    #[test]
    fn seq1_works() {
        let model = A3tgcn::new(4, &ring_graph(4), &ModelConfig::tiny(0));
        let mut rng = Rng64::seed_from(2);
        let window = Tensor::rand_normal(&[1, 4], 0.0, 1.0, &mut rng);
        assert_eq!(model.predict(&window, &mut rng).dims(), &[4]);
    }

    #[test]
    #[should_panic(expected = "nodes, expected")]
    fn rejects_mismatched_graph() {
        let _ = A3tgcn::new(5, &ring_graph(4), &ModelConfig::tiny(0));
    }

    #[test]
    fn different_graphs_give_different_predictions() {
        let cfg = ModelConfig::tiny(3);
        let ring = A3tgcn::new(6, &ring_graph(6), &cfg);
        let full = A3tgcn::new(6, &AdjacencyMatrix::complete(6), &cfg);
        let mut rng = Rng64::seed_from(4);
        let window = Tensor::rand_normal(&[4, 6], 0.0, 1.0, &mut rng);
        let a = ring.predict(&window, &mut rng);
        let b = full.predict(&window, &mut rng);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn attention_ablation_changes_predictions() {
        let cfg = ModelConfig::tiny(8);
        let with_attn = A3tgcn::new(5, &ring_graph(5), &cfg);
        let without = A3tgcn::with_options(5, &ring_graph(5), &cfg, false);
        let mut rng = Rng64::seed_from(9);
        let window = Tensor::rand_normal(&[4, 5], 0.0, 1.0, &mut rng);
        let a = with_attn.predict(&window, &mut rng);
        let b = without.predict(&window, &mut rng);
        assert_ne!(a.data(), b.data());
        assert!(b.all_finite());
    }

    #[test]
    fn gradients_flow_and_loss_drops() {
        let mut model = A3tgcn::new(4, &ring_graph(4), &ModelConfig::tiny(5));
        let mut rng = Rng64::seed_from(6);
        let window = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let target = Tensor::from_vec1(vec![0.3, -0.4, 0.1, 0.6]);
        let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.02));
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..120 {
            let tape = Tape::new();
            let binding = model.params().bind(&tape);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let pred = model.predict_window(&tape, &binding, &window, &mut ctx);
            let tgt = tape.leaf(target.clone());
            let loss = tape.mse(pred, tgt);
            last = tape.value(loss).data()[0];
            first.get_or_insert(last);
            let grads = tape.backward(loss);
            adam.step(model.params_mut(), &binding, &grads);
        }
        assert!(last < first.unwrap() * 0.2, "loss stuck at {last}");
    }
}
