//! Cohort batching: one tape graph per B individuals.
//!
//! A [`CohortBatch`] row-stacks B individuals' [`WindowBatch`]es into
//! one operand set, **individual-major then window-major**: step `t` is
//! the `[Σ_b W_b, V]` concatenation of each individual's `[W_b, V]`
//! step rows. Models implementing [`CohortForecaster`] run the whole
//! group through one forward graph using grouped-operand tape ops
//! (`Tape::group_linear`), with each individual keeping its own
//! parameters; row block `b` of the output is bit-identical to
//! [`Forecaster::predict_batch`] on that individual alone.
//!
//! **RNG contract:** randomness (dropout masks) is consumed
//! individual-major — group `b` draws exactly the sequence its
//! standalone forward would draw, from its own stream in
//! [`CohortCtx::rngs`], so batching individuals never changes numbers.

use crate::{Forecaster, WindowBatch};
use ema_autodiff::{Tape, Var};
use ema_nn::Binding;
use ema_tensor::{Rng64, Tensor};

/// B individuals' window batches row-stacked into one operand set.
///
/// Rebuilt whenever the active group changes (e.g. an individual
/// early-stops out of a training cohort): the stacking is an input
/// layout only and carries no state.
#[derive(Debug, Clone)]
pub struct CohortBatch {
    group_wins: Vec<usize>,
    offsets: Vec<usize>,
    seq_len: usize,
    num_vars: usize,
    /// `steps[t]` is `[Σ_b W_b, V]`: individual-major concatenation of
    /// each batch's window-major step rows.
    steps: Vec<Tensor>,
    /// `[Σ_b W_b·s, V]`: individual-major concatenation of each batch's
    /// window-stacked rows (`WindowBatch::stacked`).
    stacked: Tensor,
    /// `[Σ_b W_b·V, s]`: individual-major concatenation of each batch's
    /// transposed window stacks (`WindowBatch::stacked_transposed`).
    stacked_transposed: Tensor,
}

impl CohortBatch {
    /// Stacks the given window batches. All batches must agree on
    /// `seq_len` and `num_vars` and be non-empty.
    ///
    /// # Panics
    /// Panics on an empty cohort, an empty member batch, or
    /// mismatched window geometry.
    #[must_use]
    pub fn from_batches(batches: &[&WindowBatch]) -> Self {
        assert!(!batches.is_empty(), "cohort batch needs at least one individual");
        let seq_len = batches[0].seq_len();
        let num_vars = batches[0].num_vars();
        let mut group_wins = Vec::with_capacity(batches.len());
        let mut offsets = Vec::with_capacity(batches.len() + 1);
        let mut total = 0usize;
        for (b, batch) in batches.iter().enumerate() {
            assert_eq!(batch.seq_len(), seq_len, "individual {b} seq_len mismatch");
            assert_eq!(batch.num_vars(), num_vars, "individual {b} num_vars mismatch");
            assert!(batch.wins() > 0, "individual {b} has zero windows");
            offsets.push(total);
            group_wins.push(batch.wins());
            total += batch.wins();
        }
        offsets.push(total);
        let steps = (0..seq_len)
            .map(|t| {
                let mut data = Vec::with_capacity(total * num_vars);
                for batch in batches {
                    data.extend_from_slice(batch.step(t).data());
                }
                Tensor::from_vec(&[total, num_vars], data).expect("cohort step shape")
            })
            .collect();
        let mut stacked = Vec::with_capacity(total * seq_len * num_vars);
        let mut stacked_t = Vec::with_capacity(total * num_vars * seq_len);
        for batch in batches {
            stacked.extend_from_slice(batch.stacked().data());
            stacked_t.extend_from_slice(batch.stacked_transposed().data());
        }
        let stacked = Tensor::from_vec(&[total * seq_len, num_vars], stacked)
            .expect("cohort stacked shape");
        let stacked_transposed = Tensor::from_vec(&[total * num_vars, seq_len], stacked_t)
            .expect("cohort stacked_transposed shape");
        Self {
            group_wins,
            offsets,
            seq_len,
            num_vars,
            steps,
            stacked,
            stacked_transposed,
        }
    }

    /// Number of individuals in the stack.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.group_wins.len()
    }

    /// Windows per individual, in stack order.
    #[must_use]
    pub fn group_wins(&self) -> &[usize] {
        &self.group_wins
    }

    /// First stacked row of individual `b`'s block.
    #[must_use]
    pub fn offset(&self, b: usize) -> usize {
        self.offsets[b]
    }

    /// Total stacked rows (`Σ_b W_b`).
    #[must_use]
    pub fn total_rows(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// Window length shared by every individual.
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Variable count shared by every individual.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Step `t` across the whole cohort: `[Σ_b W_b, V]`.
    #[must_use]
    pub fn step(&self, t: usize) -> &Tensor {
        &self.steps[t]
    }

    /// The whole cohort's window rows: `[Σ_b W_b·s, V]`,
    /// individual-major concatenation of each `WindowBatch::stacked`.
    #[must_use]
    pub fn stacked(&self) -> &Tensor {
        &self.stacked
    }

    /// Transposed window blocks: `[Σ_b W_b·V, s]`, individual-major
    /// concatenation of each `WindowBatch::stacked_transposed`.
    #[must_use]
    pub fn stacked_transposed(&self) -> &Tensor {
        &self.stacked_transposed
    }
}

/// Per-forward cohort context: training flag plus one RNG stream per
/// individual (stack order). Each individual's stream is consumed
/// exactly as its standalone forward would consume its own RNG.
pub struct CohortCtx<'a> {
    /// Training mode (dropout active)?
    pub training: bool,
    /// One stream per individual, in stack order.
    pub rngs: &'a mut [Rng64],
}

impl<'a> CohortCtx<'a> {
    /// Training-mode context.
    pub fn train(rngs: &'a mut [Rng64]) -> Self {
        Self { training: true, rngs }
    }

    /// Evaluation-mode context (no randomness drawn).
    pub fn eval(rngs: &'a mut [Rng64]) -> Self {
        Self { training: false, rngs }
    }
}

/// Models that can run a whole cohort through one tape graph.
pub trait CohortForecaster: Forecaster {
    /// Forwards every individual's window batch at once: row block `b`
    /// of the returned `[Σ_b W_b, V]` output is bit-identical to
    /// `group[b].predict_batch` on its own tape with its own RNG.
    fn predict_cohort(
        group: &[&Self],
        tape: &Tape,
        bindings: &[&Binding],
        batch: &CohortBatch,
        ctx: &mut CohortCtx,
    ) -> Var
    where
        Self: Sized;
}

/// Grouped dropout over a cohort row stack, bit-identical per block to
/// `Tape::dropout` on that individual alone:
///
/// - not training, or every rate zero → identity (no tape node, no
///   draws), matching `Tape::dropout`'s pass-through;
/// - otherwise one `[Σ rows, cols]` mask is built individual-major.
///   A rate-zero group's rows are filled with `1.0` (exact identity
///   under `mul`, zero draws); an active group draws its `W_b · cols`
///   Bernoullis row-major from **its own** stream — the exact
///   per-individual draw sequence.
///
/// # Panics
/// Panics when slice lengths disagree or a rate is outside `[0, 1)`.
pub fn cohort_dropout(
    tape: &Tape,
    a: Var,
    rates: &[f64],
    group_wins: &[usize],
    ctx: &mut CohortCtx,
) -> Var {
    assert_eq!(rates.len(), group_wins.len(), "one dropout rate per group");
    assert_eq!(rates.len(), ctx.rngs.len(), "one RNG stream per group");
    for (b, &rate) in rates.iter().enumerate() {
        assert!(
            (0.0..1.0).contains(&rate),
            "group {b} dropout rate {rate} outside [0, 1)"
        );
    }
    if !ctx.training || rates.iter().all(|&r| r == 0.0) {
        return a;
    }
    let cols = tape.dims(a)[1];
    let total: usize = group_wins.iter().sum();
    let mut mask = Tensor::zeros(&[total, cols]);
    let data = mask.data_mut();
    let mut off = 0usize;
    for ((&rate, &wins), rng) in rates.iter().zip(group_wins).zip(ctx.rngs.iter_mut()) {
        let block = &mut data[off * cols..(off + wins) * cols];
        if rate == 0.0 {
            block.fill(1.0);
        } else {
            let keep = 1.0 - rate;
            for v in block.iter_mut() {
                if rng.bernoulli(keep) {
                    *v = 1.0 / keep;
                }
            }
        }
        off += wins;
    }
    tape.dropout_masked(a, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{A3tgcn, Astgcn, ForwardCtx, LstmForecaster, ModelConfig, Mtgnn};
    use ema_graph::AdjacencyMatrix;

    fn window_batch(wins: usize, seq: usize, v: usize, seed: u64) -> WindowBatch {
        let mut rng = Rng64::seed_from(seed);
        let windows: Vec<Tensor> = (0..wins)
            .map(|_| Tensor::rand_normal(&[seq, v], 0.0, 1.0, &mut rng))
            .collect();
        WindowBatch::from_windows(&windows)
    }

    /// A different graph per individual so grouped constants are
    /// genuinely per-group: ring, complete, or path, by index.
    fn graph_for(b: usize, n: usize) -> AdjacencyMatrix {
        match b % 3 {
            0 => {
                let mut a = AdjacencyMatrix::empty(n);
                for i in 0..n {
                    let j = (i + 1) % n;
                    a.set_weight(i, j, 1.0);
                    a.set_weight(j, i, 1.0);
                }
                a
            }
            1 => AdjacencyMatrix::complete(n),
            _ => {
                let mut a = AdjacencyMatrix::empty(n);
                for i in 0..n - 1 {
                    a.set_weight(i, i + 1, 1.0);
                    a.set_weight(i + 1, i, 1.0);
                }
                a
            }
        }
    }

    /// Asserts the cohort forward matches each individual's standalone
    /// batched forward bit for bit — training mode (dropout active,
    /// per-individual streams) and eval mode.
    fn assert_cohort_matches_oracle<M: CohortForecaster>(
        models: &[M],
        wins: &[usize],
        seq: usize,
        v: usize,
    ) {
        for training in [true, false] {
            let batches: Vec<WindowBatch> = wins
                .iter()
                .enumerate()
                .map(|(b, &w)| window_batch(w, seq, v, 10 + b as u64))
                .collect();
            let batch_refs: Vec<&WindowBatch> = batches.iter().collect();
            let cohort = CohortBatch::from_batches(&batch_refs);

            let tape = Tape::new();
            let bindings: Vec<Binding> = models.iter().map(|m| m.params().bind(&tape)).collect();
            let binding_refs: Vec<&Binding> = bindings.iter().collect();
            let group: Vec<&M> = models.iter().collect();
            let mut rngs: Vec<Rng64> =
                (0..wins.len()).map(|b| Rng64::seed_from(70 + b as u64)).collect();
            let mut ctx = CohortCtx { training, rngs: &mut rngs };
            let out = M::predict_cohort(&group, &tape, &binding_refs, &cohort, &mut ctx);
            let out_value = tape.value(out);

            for (b, model) in models.iter().enumerate() {
                let reference = Tape::new();
                let binding = model.params().bind(&reference);
                let mut rng = Rng64::seed_from(70 + b as u64);
                let mut rctx = if training {
                    ForwardCtx::train(&mut rng)
                } else {
                    ForwardCtx::eval(&mut rng)
                };
                let rout = model.predict_batch(&reference, &binding, &batches[b], &mut rctx);
                let (off, w) = (cohort.offset(b), wins[b]);
                assert_eq!(
                    &out_value.data()[off * v..(off + w) * v],
                    reference.value(rout).data(),
                    "individual {b} rows (training = {training})"
                );
            }
        }
    }

    #[test]
    fn cohort_batch_stacks_individual_major() {
        let b0 = window_batch(3, 2, 4, 1);
        let b1 = window_batch(5, 2, 4, 2);
        let cohort = CohortBatch::from_batches(&[&b0, &b1]);
        assert_eq!(cohort.num_groups(), 2);
        assert_eq!(cohort.group_wins(), &[3, 5]);
        assert_eq!(cohort.total_rows(), 8);
        assert_eq!(cohort.offset(0), 0);
        assert_eq!(cohort.offset(1), 3);
        for t in 0..2 {
            let step = cohort.step(t);
            assert_eq!(step.dims(), &[8, 4]);
            assert_eq!(&step.data()[..3 * 4], b0.step(t).data(), "step {t} block 0");
            assert_eq!(&step.data()[3 * 4..], b1.step(t).data(), "step {t} block 1");
        }
    }

    #[test]
    #[should_panic(expected = "seq_len mismatch")]
    fn cohort_batch_rejects_mixed_seq_len() {
        let b0 = window_batch(2, 2, 3, 1);
        let b1 = window_batch(2, 3, 3, 2);
        let _ = CohortBatch::from_batches(&[&b0, &b1]);
    }

    #[test]
    fn lstm_cohort_forward_matches_per_individual() {
        let (v, seq, wins) = (4, 3, [3usize, 1, 4]);
        let models: Vec<LstmForecaster> = (0..wins.len())
            .map(|b| LstmForecaster::new(v, &ModelConfig::tiny(100 + b as u64)))
            .collect();
        assert_cohort_matches_oracle(&models, &wins, seq, v);
    }

    #[test]
    fn a3tgcn_cohort_forward_matches_per_individual() {
        let (v, seq, wins) = (4, 3, [3usize, 1, 4]);
        let models: Vec<A3tgcn> = (0..wins.len())
            .map(|b| {
                A3tgcn::with_options(v, &graph_for(b, v), &ModelConfig::tiny(100 + b as u64), true)
            })
            .collect();
        assert_cohort_matches_oracle(&models, &wins, seq, v);
    }

    #[test]
    fn a3tgcn_cohort_without_attention_matches_per_individual() {
        let (v, seq, wins) = (3, 2, [2usize, 3]);
        let models: Vec<A3tgcn> = (0..wins.len())
            .map(|b| {
                A3tgcn::with_options(v, &graph_for(b, v), &ModelConfig::tiny(200 + b as u64), false)
            })
            .collect();
        assert_cohort_matches_oracle(&models, &wins, seq, v);
    }

    #[test]
    fn astgcn_cohort_forward_matches_per_individual() {
        let (v, seq, wins) = (4, 3, [3usize, 1, 4]);
        let models: Vec<Astgcn> = (0..wins.len())
            .map(|b| {
                Astgcn::with_options(
                    v,
                    seq,
                    &graph_for(b, v),
                    &ModelConfig::tiny(100 + b as u64),
                    true,
                )
            })
            .collect();
        assert_cohort_matches_oracle(&models, &wins, seq, v);
    }

    #[test]
    fn mtgnn_cohort_forward_matches_per_individual() {
        let (v, seq, wins) = (4, 3, [3usize, 1, 4]);
        let models: Vec<Mtgnn> = (0..wins.len())
            .map(|b| {
                Mtgnn::new(
                    v,
                    seq,
                    Some(&graph_for(b, v)),
                    &ModelConfig::tiny(100 + b as u64),
                )
            })
            .collect();
        assert_cohort_matches_oracle(&models, &wins, seq, v);
    }
}
