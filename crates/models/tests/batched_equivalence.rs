//! Property tests pinning the batched forward path
//! ([`Forecaster::predict_batch`]) bit-identical to the per-window
//! oracle graph (`predict_window` per window + `stack_rows`) — in
//! predicted values AND in every parameter gradient, for all four
//! paper models, in both train mode (dropout active, masks drawn
//! window-major) and eval mode, across seeds and window counts.

use ema_autodiff::{Tape, Var};
use ema_check::{gen, prop_tests};
use ema_graph::AdjacencyMatrix;
use ema_models::{build_model, Forecaster, ForwardCtx, ModelConfig, ModelKind, WindowBatch};
use ema_nn::Binding;
use ema_tensor::{Rng64, Tensor};

const V: usize = 4;
const SEQ: usize = 3;

/// Loss + backward on a finished graph; returns the forward value and
/// the gradient of every registered parameter (None when unused).
fn finish(
    tape: &Tape,
    binding: &Binding,
    model: &dyn Forecaster,
    out: Var,
    targets: &Tensor,
) -> (Tensor, Vec<Option<Tensor>>) {
    let tgt = tape.leaf(targets.clone());
    let loss = tape.mse(out, tgt);
    let grads = tape.backward(loss);
    let per_param = model
        .params()
        .ids()
        .iter()
        .map(|&id| grads.get(binding.var(id)).cloned())
        .collect();
    (tape.value(out), per_param)
}

fn run_per_window(
    model: &dyn Forecaster,
    windows: &[Tensor],
    targets: &Tensor,
    training: bool,
    rng_seed: u64,
) -> (Tensor, Vec<Option<Tensor>>) {
    let tape = Tape::new();
    let binding = model.params().bind(&tape);
    let mut rng = Rng64::seed_from(rng_seed);
    let mut ctx = if training {
        ForwardCtx::train(&mut rng)
    } else {
        ForwardCtx::eval(&mut rng)
    };
    let preds: Vec<Var> = windows
        .iter()
        .map(|w| model.predict_window(&tape, &binding, w, &mut ctx))
        .collect();
    let stacked = tape.stack_rows(&preds);
    finish(&tape, &binding, model, stacked, targets)
}

fn run_batched(
    model: &dyn Forecaster,
    batch: &WindowBatch,
    targets: &Tensor,
    training: bool,
    rng_seed: u64,
) -> (Tensor, Vec<Option<Tensor>>) {
    let tape = Tape::new();
    let binding = model.params().bind(&tape);
    let mut rng = Rng64::seed_from(rng_seed);
    let mut ctx = if training {
        ForwardCtx::train(&mut rng)
    } else {
        ForwardCtx::eval(&mut rng)
    };
    let out = model.predict_batch(&tape, &binding, batch, &mut ctx);
    finish(&tape, &binding, model, out, targets)
}

fn assert_bit_identical(label: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.dims(), b.dims(), "{label}: shape mismatch");
    assert!(
        a.data() == b.data(),
        "{label}: values differ bit-wise\n  oracle:  {:?}\n  batched: {:?}",
        a.data(),
        b.data()
    );
}

/// One full comparison: same model, same windows, same RNG seed — the
/// batched graph must match the per-window graph byte for byte.
fn check_model(kind: ModelKind, seed: u64, wins: usize, training: bool) {
    let cfg = ModelConfig::tiny(seed);
    let graph = AdjacencyMatrix::complete(V);
    let g = if kind.uses_graph() { Some(&graph) } else { None };
    let model = build_model(kind, V, SEQ, &cfg, g);
    let mut data_rng = Rng64::seed_from(seed ^ 0x9e37_79b9);
    let windows: Vec<Tensor> = (0..wins)
        .map(|_| Tensor::rand_normal(&[SEQ, V], 0.0, 1.0, &mut data_rng))
        .collect();
    let targets = Tensor::rand_normal(&[wins, V], 0.0, 1.0, &mut data_rng);
    let batch = WindowBatch::from_windows(&windows);

    let rng_seed = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(7);
    let (val_a, grads_a) = run_per_window(model.as_ref(), &windows, &targets, training, rng_seed);
    let (val_b, grads_b) = run_batched(model.as_ref(), &batch, &targets, training, rng_seed);

    let mode = if training { "train" } else { "eval" };
    assert_bit_identical(&format!("{} {mode} values", kind.label()), &val_a, &val_b);
    assert_eq!(grads_a.len(), grads_b.len());
    let ids = model.params().ids();
    for (i, (ga, gb)) in grads_a.iter().zip(grads_b.iter()).enumerate() {
        let name = model.params().name(ids[i]);
        let label = format!("{} {mode} grad `{name}`", kind.label());
        match (ga, gb) {
            (Some(ga), Some(gb)) => assert_bit_identical(&label, ga, gb),
            (None, None) => {}
            _ => panic!("{label}: one path has a gradient, the other none"),
        }
    }
}

/// Generator: (seed, window count, training flag).
fn case(rng: &mut Rng64) -> (u64, usize, bool) {
    (
        gen::usize_in(rng, 0, 1 << 16) as u64,
        gen::usize_in(rng, 1, 5),
        gen::usize_in(rng, 0, 2) == 0,
    )
}

prop_tests! {
    fn lstm_batched_matches_oracle((seed, wins, training) in case) {
        check_model(ModelKind::Lstm, seed, wins, training);
    }

    fn a3tgcn_batched_matches_oracle((seed, wins, training) in case) {
        check_model(ModelKind::A3tgcn, seed, wins, training);
    }

    fn astgcn_batched_matches_oracle((seed, wins, training) in case) {
        check_model(ModelKind::Astgcn, seed, wins, training);
    }

    fn mtgnn_batched_matches_oracle((seed, wins, training) in case) {
        check_model(ModelKind::Mtgnn, seed, wins, training);
    }
}
