//! Property tests pinning the batched forward path
//! ([`Forecaster::predict_batch`]) bit-identical to the per-window
//! oracle graph (`predict_window` per window + `stack_rows`) — in
//! predicted values AND in every parameter gradient, for all four
//! paper models, in both train mode (dropout active, masks drawn
//! window-major) and eval mode, across seeds and window counts — plus
//! the cohort-batched LSTM path ([`CohortForecaster::predict_cohort`],
//! one grouped graph for B individuals) against B separate
//! per-individual graphs.

use ema_autodiff::{Tape, Var};
use ema_check::{gen, prop_tests};
use ema_graph::AdjacencyMatrix;
use ema_models::{
    build_model, A3tgcn, Astgcn, CohortBatch, CohortCtx, CohortForecaster, Forecaster,
    ForwardCtx, LstmForecaster, ModelConfig, ModelKind, Mtgnn, WindowBatch,
};
use ema_nn::Binding;
use ema_tensor::{derive_stream_seed, Rng64, Tensor};

const V: usize = 4;
const SEQ: usize = 3;

/// Loss + backward on a finished graph; returns the forward value and
/// the gradient of every registered parameter (None when unused).
fn finish(
    tape: &Tape,
    binding: &Binding,
    model: &dyn Forecaster,
    out: Var,
    targets: &Tensor,
) -> (Tensor, Vec<Option<Tensor>>) {
    let tgt = tape.leaf(targets.clone());
    let loss = tape.mse(out, tgt);
    let grads = tape.backward(loss);
    let per_param = model
        .params()
        .ids()
        .iter()
        .map(|&id| grads.get(binding.var(id)).cloned())
        .collect();
    (tape.value(out), per_param)
}

fn run_per_window(
    model: &dyn Forecaster,
    windows: &[Tensor],
    targets: &Tensor,
    training: bool,
    rng_seed: u64,
) -> (Tensor, Vec<Option<Tensor>>) {
    let tape = Tape::new();
    let binding = model.params().bind(&tape);
    let mut rng = Rng64::seed_from(rng_seed);
    let mut ctx = if training {
        ForwardCtx::train(&mut rng)
    } else {
        ForwardCtx::eval(&mut rng)
    };
    let preds: Vec<Var> = windows
        .iter()
        .map(|w| model.predict_window(&tape, &binding, w, &mut ctx))
        .collect();
    let stacked = tape.stack_rows(&preds);
    finish(&tape, &binding, model, stacked, targets)
}

fn run_batched(
    model: &dyn Forecaster,
    batch: &WindowBatch,
    targets: &Tensor,
    training: bool,
    rng_seed: u64,
) -> (Tensor, Vec<Option<Tensor>>) {
    let tape = Tape::new();
    let binding = model.params().bind(&tape);
    let mut rng = Rng64::seed_from(rng_seed);
    let mut ctx = if training {
        ForwardCtx::train(&mut rng)
    } else {
        ForwardCtx::eval(&mut rng)
    };
    let out = model.predict_batch(&tape, &binding, batch, &mut ctx);
    finish(&tape, &binding, model, out, targets)
}

fn assert_bit_identical(label: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.dims(), b.dims(), "{label}: shape mismatch");
    assert!(
        a.data() == b.data(),
        "{label}: values differ bit-wise\n  oracle:  {:?}\n  batched: {:?}",
        a.data(),
        b.data()
    );
}

/// One full comparison: same model, same windows, same RNG seed — the
/// batched graph must match the per-window graph byte for byte.
fn check_model(kind: ModelKind, seed: u64, wins: usize, training: bool) {
    let cfg = ModelConfig::tiny(seed);
    let graph = AdjacencyMatrix::complete(V);
    let g = if kind.uses_graph() { Some(&graph) } else { None };
    let model = build_model(kind, V, SEQ, &cfg, g);
    let mut data_rng = Rng64::seed_from(seed ^ 0x9e37_79b9);
    let windows: Vec<Tensor> = (0..wins)
        .map(|_| Tensor::rand_normal(&[SEQ, V], 0.0, 1.0, &mut data_rng))
        .collect();
    let targets = Tensor::rand_normal(&[wins, V], 0.0, 1.0, &mut data_rng);
    let batch = WindowBatch::from_windows(&windows);

    let rng_seed = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(7);
    let (val_a, grads_a) = run_per_window(model.as_ref(), &windows, &targets, training, rng_seed);
    let (val_b, grads_b) = run_batched(model.as_ref(), &batch, &targets, training, rng_seed);

    let mode = if training { "train" } else { "eval" };
    assert_bit_identical(&format!("{} {mode} values", kind.label()), &val_a, &val_b);
    assert_eq!(grads_a.len(), grads_b.len());
    let ids = model.params().ids();
    for (i, (ga, gb)) in grads_a.iter().zip(grads_b.iter()).enumerate() {
        let name = model.params().name(ids[i]);
        let label = format!("{} {mode} grad `{name}`", kind.label());
        match (ga, gb) {
            (Some(ga), Some(gb)) => assert_bit_identical(&label, ga, gb),
            (None, None) => {}
            _ => panic!("{label}: one path has a gradient, the other none"),
        }
    }
}

/// A different graph per cohort position so grouped constants are
/// genuinely per-individual: ring, complete, or path, by index.
fn cohort_graph(b: usize) -> AdjacencyMatrix {
    match b % 3 {
        0 => {
            let mut a = AdjacencyMatrix::empty(V);
            for i in 0..V {
                let j = (i + 1) % V;
                a.set_weight(i, j, 1.0);
                a.set_weight(j, i, 1.0);
            }
            a
        }
        1 => AdjacencyMatrix::complete(V),
        _ => {
            let mut a = AdjacencyMatrix::empty(V);
            for i in 0..V - 1 {
                a.set_weight(i, i + 1, 1.0);
                a.set_weight(i + 1, i, 1.0);
            }
            a
        }
    }
}

/// One cohort comparison: B independent models forward through ONE
/// grouped tape graph ([`CohortForecaster::predict_cohort`]) with
/// per-individual MSE losses summed into one scalar, vs B separate
/// [`Forecaster::predict_batch`] graphs — values per row block AND
/// every individual's parameter gradients must match byte for byte.
/// Per the cohort RNG contract each individual draws from its own
/// stream, so the oracle runs reuse the same derived seeds. `build`
/// constructs individual `b`'s model (with its own graph) from a seed.
fn check_cohort<M: CohortForecaster>(
    label: &str,
    seed: u64,
    groups: usize,
    training: bool,
    build: &dyn Fn(usize, u64) -> M,
) {
    let mut data_rng = Rng64::seed_from(seed ^ 0x9e37_79b9);
    let mut models = Vec::with_capacity(groups);
    let mut batches = Vec::with_capacity(groups);
    let mut targets = Vec::with_capacity(groups);
    let mut rng_seeds = Vec::with_capacity(groups);
    for b in 0..groups {
        let wins = gen::usize_in(&mut data_rng, 1, 5);
        let windows: Vec<Tensor> = (0..wins)
            .map(|_| Tensor::rand_normal(&[SEQ, V], 0.0, 1.0, &mut data_rng))
            .collect();
        models.push(build(b, seed.wrapping_add(b as u64)));
        batches.push(WindowBatch::from_windows(&windows));
        targets.push(Tensor::rand_normal(&[wins, V], 0.0, 1.0, &mut data_rng));
        rng_seeds.push(derive_stream_seed(seed, b as u64));
    }

    // Cohort path: one tape, one grouped forward, one backward.
    let tape = Tape::new();
    let bindings: Vec<Binding> = models.iter().map(|m| m.params().bind(&tape)).collect();
    let binding_refs: Vec<&Binding> = bindings.iter().collect();
    let group_refs: Vec<&M> = models.iter().collect();
    let batch_refs: Vec<&WindowBatch> = batches.iter().collect();
    let cohort = CohortBatch::from_batches(&batch_refs);
    let mut rngs: Vec<Rng64> = rng_seeds.iter().map(|&s| Rng64::seed_from(s)).collect();
    let mut ctx = if training {
        CohortCtx::train(&mut rngs)
    } else {
        CohortCtx::eval(&mut rngs)
    };
    let out = M::predict_cohort(&group_refs, &tape, &binding_refs, &cohort, &mut ctx);
    let mut total: Option<Var> = None;
    for (b, tgt) in targets.iter().enumerate() {
        let off = cohort.offset(b);
        let pred = tape.slice_rows(out, off, off + cohort.group_wins()[b]);
        let loss = tape.mse(pred, tape.leaf(tgt.clone()));
        total = Some(match total {
            Some(acc) => tape.add(acc, loss),
            None => loss,
        });
    }
    let grads = tape.backward(total.expect("non-empty cohort"));
    let cohort_val = tape.value(out);

    // Oracle: each individual on its own tape with its own stream.
    let mode = if training { "train" } else { "eval" };
    for (b, model) in models.iter().enumerate() {
        let (val, oracle_grads) =
            run_batched(model, &batches[b], &targets[b], training, rng_seeds[b]);
        let off = cohort.offset(b);
        let wins = cohort.group_wins()[b];
        assert_eq!(
            &cohort_val.data()[off * V..(off + wins) * V],
            val.data(),
            "{label} individual {b} {mode} values differ bit-wise"
        );
        let ids = model.params().ids();
        for (i, oracle) in oracle_grads.iter().enumerate() {
            let name = model.params().name(ids[i]);
            let grad_label = format!("{label} individual {b} {mode} grad `{name}`");
            let cohort_grad = grads.get(bindings[b].var(ids[i]));
            match (oracle, cohort_grad) {
                (Some(ga), Some(gb)) => assert_bit_identical(&grad_label, ga, gb),
                (None, None) => {}
                _ => panic!("{grad_label}: one path has a gradient, the other none"),
            }
        }
    }
}

/// Generator: (seed, window count, training flag).
fn case(rng: &mut Rng64) -> (u64, usize, bool) {
    (
        gen::usize_in(rng, 0, 1 << 16) as u64,
        gen::usize_in(rng, 1, 5),
        gen::usize_in(rng, 0, 2) == 0,
    )
}

/// Generator: (seed, group count, training flag) for the cohort case.
fn cohort_case(rng: &mut Rng64) -> (u64, usize, bool) {
    (
        gen::usize_in(rng, 0, 1 << 16) as u64,
        gen::usize_in(rng, 1, 5),
        gen::usize_in(rng, 0, 2) == 0,
    )
}

prop_tests! {
    fn lstm_batched_matches_oracle((seed, wins, training) in case) {
        check_model(ModelKind::Lstm, seed, wins, training);
    }

    fn a3tgcn_batched_matches_oracle((seed, wins, training) in case) {
        check_model(ModelKind::A3tgcn, seed, wins, training);
    }

    fn astgcn_batched_matches_oracle((seed, wins, training) in case) {
        check_model(ModelKind::Astgcn, seed, wins, training);
    }

    fn mtgnn_batched_matches_oracle((seed, wins, training) in case) {
        check_model(ModelKind::Mtgnn, seed, wins, training);
    }

    fn lstm_cohort_matches_per_individual_oracle((seed, groups, training) in cohort_case) {
        check_cohort("LSTM", seed, groups, training, &|_b, s| {
            LstmForecaster::new(V, &ModelConfig::tiny(s))
        });
    }

    fn a3tgcn_cohort_matches_per_individual_oracle((seed, groups, training) in cohort_case) {
        check_cohort("A3TGCN", seed, groups, training, &|b, s| {
            A3tgcn::with_options(V, &cohort_graph(b), &ModelConfig::tiny(s), true)
        });
    }

    fn astgcn_cohort_matches_per_individual_oracle((seed, groups, training) in cohort_case) {
        check_cohort("ASTGCN", seed, groups, training, &|b, s| {
            Astgcn::with_options(V, SEQ, &cohort_graph(b), &ModelConfig::tiny(s), true)
        });
    }

    fn mtgnn_cohort_matches_per_individual_oracle((seed, groups, training) in cohort_case) {
        check_cohort("MTGNN", seed, groups, training, &|b, s| {
            Mtgnn::new(V, SEQ, Some(&cohort_graph(b)), &ModelConfig::tiny(s))
        });
    }
}
