//! End-to-end kernel-backend tolerance: train every paper model a few
//! epochs under the scalar oracle and under the SIMD backend, then
//! compare final losses and eval predictions.
//!
//! Unlike the kernel-level suite
//! (`crates/tensor/tests/backend_equivalence.rs`), which bounds a
//! *single* matmul, training feeds each epoch's rounding differences
//! back through the next epoch's forward pass, so scalar and SIMD runs
//! drift apart geometrically rather than linearly. The documented
//! tolerances below are therefore empirical: measured drift after
//! `EPOCHS` epochs sits at a few ulps (~1e-16) on every model at this
//! scale, and the asserted 1e-9 bounds carry six to seven orders of
//! magnitude of margin while remaining strict enough that any real
//! backend divergence (wrong accumulation order, a dropped element, a
//! lane mix-up) fails immediately.
//!
//! On machines without AVX2+FMA both runs execute the scalar kernel and
//! the comparison is exact.

use ema_autodiff::{Grads, Tape};
use ema_graph::AdjacencyMatrix;
use ema_models::{build_model, ForwardCtx, ModelConfig, ModelKind, WindowBatch};
use ema_nn::{Adam, Optimizer, OptimizerConfig};
use ema_tensor::{with_kernel_backend, KernelBackend, Rng64, Tensor};

const V: usize = 8;
const SEQ: usize = 4;
const WINS: usize = 6;
const EPOCHS: usize = 8;

/// Max |scalar − simd| on any eval prediction element after training.
const PRED_TOL: f64 = 1e-9;
/// Max relative difference in the final training loss.
const LOSS_REL_TOL: f64 = 1e-9;

struct Trained {
    final_loss: f64,
    predictions: Tensor,
}

/// Builds the model fresh from `seed`, trains `EPOCHS` full-batch Adam
/// epochs on the same synthetic windows, and returns the final loss
/// plus eval-mode batched predictions — everything computed under
/// `backend`. Mirrors the steady-state loop in `ema_core::train_model`.
fn train_under(kind: ModelKind, seed: u64, backend: KernelBackend) -> Trained {
    with_kernel_backend(backend, || {
        let cfg = ModelConfig::tiny(seed);
        let graph = AdjacencyMatrix::complete(V);
        let g = if kind.uses_graph() { Some(&graph) } else { None };
        let mut model = build_model(kind, V, SEQ, &cfg, g);

        let mut data_rng = Rng64::seed_from(seed ^ 0xA5A5_5A5A);
        let windows: Vec<Tensor> = (0..WINS)
            .map(|_| Tensor::rand_normal(&[SEQ, V], 0.0, 1.0, &mut data_rng))
            .collect();
        let targets = Tensor::rand_normal(&[WINS, V], 0.0, 1.0, &mut data_rng);
        let batch = WindowBatch::from_windows(&windows);

        let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.01));
        let mut drop_rng = Rng64::seed_from(seed.wrapping_add(13));
        let mut tape = Tape::new();
        let mut grads = Grads::empty();
        let tgt = tape.leaf(targets.clone());
        let keep = tape.len();

        let mut final_loss = f64::NAN;
        for _ in 0..EPOCHS {
            tape.reset_to(keep);
            let binding = model.params().bind(&tape);
            let mut ctx = ForwardCtx::train(&mut drop_rng);
            let stacked = model.predict_batch(&tape, &binding, &batch, &mut ctx);
            let loss = tape.mse(stacked, tgt);
            tape.backward_into(loss, &mut grads);
            adam.step(model.params_mut(), &binding, &grads);
            final_loss = tape.value(loss).data()[0];
        }

        tape.reset_to(keep);
        let binding = model.params().bind(&tape);
        let mut eval_rng = Rng64::seed_from(0);
        let mut ctx = ForwardCtx::eval(&mut eval_rng);
        let out = model.predict_batch(&tape, &binding, &batch, &mut ctx);
        Trained {
            final_loss,
            predictions: tape.value(out),
        }
    })
}

#[test]
fn trained_models_agree_across_backends_within_tolerance() {
    for kind in ModelKind::all() {
        let scalar = train_under(kind, 17, KernelBackend::Scalar);
        let simd = train_under(kind, 17, KernelBackend::Simd);

        let max_pred_diff = scalar
            .predictions
            .data()
            .iter()
            .zip(simd.predictions.data().iter())
            .map(|(&s, &v)| (s - v).abs())
            .fold(0.0f64, f64::max);
        eprintln!(
            "{}: max pred diff {max_pred_diff:e}, losses {} vs {}",
            kind.label(),
            scalar.final_loss,
            simd.final_loss
        );
        let loss_rel = (scalar.final_loss - simd.final_loss).abs()
            / scalar.final_loss.abs().max(f64::MIN_POSITIVE);
        assert!(
            loss_rel <= LOSS_REL_TOL,
            "{}: final losses diverged across backends: scalar {} vs simd {} (rel {loss_rel})",
            kind.label(),
            scalar.final_loss,
            simd.final_loss
        );

        assert_eq!(scalar.predictions.dims(), simd.predictions.dims());
        for (i, (&s, &v)) in scalar
            .predictions
            .data()
            .iter()
            .zip(simd.predictions.data().iter())
            .enumerate()
        {
            assert!(
                (s - v).abs() <= PRED_TOL,
                "{}: predictions diverged at flat index {i}: scalar {s} vs simd {v}",
                kind.label()
            );
        }
    }
}

#[test]
fn training_is_deterministic_within_each_backend() {
    for kind in ModelKind::all() {
        for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
            let first = train_under(kind, 29, backend);
            let again = train_under(kind, 29, backend);
            assert!(
                first.final_loss.to_bits() == again.final_loss.to_bits(),
                "{} ({}): final loss not byte-identical across reruns",
                kind.label(),
                backend.label()
            );
            let same = first
                .predictions
                .data()
                .iter()
                .zip(again.predictions.data().iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                same,
                "{} ({}): predictions not byte-identical across reruns",
                kind.label(),
                backend.label()
            );
        }
    }
}
