//! Property-based tests of the similarity metrics and graph builders.

use ema_similarity::correlation::{cross_correlation, pearson_correlation};
use ema_similarity::cosine::cosine_similarity;
use ema_similarity::dtw::{dtw_distance, dtw_distance_banded};
use ema_similarity::euclidean::{euclidean_distance, gaussian_affinity, pairwise_distances};
use ema_similarity::knn::knn_graph;
use ema_similarity::{build_graph, GraphMetric};
use ema_tensor::Tensor;
use proptest::prelude::*;

fn series(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n..=n)
}

fn mts() -> impl Strategy<Value = Tensor> {
    (10usize..30, 3usize..8).prop_flat_map(|(t, v)| {
        prop::collection::vec(-5.0f64..5.0, t * v)
            .prop_map(move |d| Tensor::from_vec(&[t, v], d).unwrap())
    })
}

proptest! {
    #[test]
    fn dtw_identity_and_symmetry(x in series(20), y in series(20)) {
        prop_assert_eq!(dtw_distance(&x, &x), 0.0);
        prop_assert_eq!(dtw_distance(&x, &y), dtw_distance(&y, &x));
        prop_assert!(dtw_distance(&x, &y) >= 0.0);
    }

    #[test]
    fn dtw_lower_bounds_pointwise_cost(x in series(15), y in series(15)) {
        // DTW relaxes alignment, so it never exceeds the lockstep cost.
        let lockstep: f64 = x.iter().zip(y.iter()).map(|(a, b)| (a - b).abs()).sum();
        prop_assert!(dtw_distance(&x, &y) <= lockstep + 1e-9);
    }

    #[test]
    fn dtw_band_is_monotone(x in series(20), y in series(20)) {
        // Wider bands can only lower (or keep) the distance.
        let d2 = dtw_distance_banded(&x, &y, 2);
        let d5 = dtw_distance_banded(&x, &y, 5);
        let dfull = dtw_distance(&x, &y);
        prop_assert!(d5 <= d2 + 1e-9);
        prop_assert!(dfull <= d5 + 1e-9);
    }

    #[test]
    fn euclidean_triangle_inequality(x in series(10), y in series(10), z in series(10)) {
        let xy = euclidean_distance(&x, &y);
        let yz = euclidean_distance(&y, &z);
        let xz = euclidean_distance(&x, &z);
        prop_assert!(xz <= xy + yz + 1e-9);
    }

    #[test]
    fn correlation_is_bounded_and_scale_invariant(x in series(12), y in series(12)) {
        let r = pearson_correlation(&x, &y);
        prop_assert!(r.abs() <= 1.0 + 1e-12);
        // Positive affine transforms leave correlation unchanged.
        let y2: Vec<f64> = y.iter().map(|v| 3.0 * v + 7.0).collect();
        let r2 = pearson_correlation(&x, &y2);
        prop_assert!((r - r2).abs() < 1e-7, "{r} vs {r2}");
    }

    #[test]
    fn cross_correlation_dominates_plain(x in series(30), y in series(30)) {
        let plain = pearson_correlation(&x, &y).abs();
        let lagged = cross_correlation(&x, &y, 3).abs();
        prop_assert!(lagged >= plain - 1e-12);
    }

    #[test]
    fn cosine_bounded(x in series(8), y in series(8)) {
        prop_assert!(cosine_similarity(&x, &y).abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn affinities_live_in_unit_interval(data in mts()) {
        let a = gaussian_affinity(&pairwise_distances(&data));
        prop_assert!(a.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn knn_union_symmetry_and_degree(data in mts()) {
        let v = data.dims()[1];
        let k = 2.min(v - 1).max(1);
        let g = knn_graph(&data, k);
        prop_assert!(g.is_symmetric());
        for i in 0..v {
            let deg = (0..v).filter(|&j| g.weight(i, j) > 0.0).count();
            prop_assert!(deg >= k, "node {i} has degree {deg} < k {k}");
        }
    }

    #[test]
    fn every_builder_metric_is_well_formed(data in mts()) {
        for metric in [
            GraphMetric::Euclidean,
            GraphMetric::Dtw,
            GraphMetric::Correlation,
            GraphMetric::PartialCorrelation,
            GraphMetric::Cosine,
        ] {
            let g = build_graph(&data, metric);
            prop_assert_eq!(g.num_nodes(), data.dims()[1]);
            prop_assert!(g.weights().all_finite(), "{} not finite", metric.label());
            prop_assert!(g.is_symmetric(), "{} asymmetric", metric.label());
            // No self loops by construction.
            for i in 0..g.num_nodes() {
                prop_assert_eq!(g.weight(i, i), 0.0);
            }
        }
    }
}
