//! Property-based tests of the similarity metrics and graph builders.

use ema_check::{gen, prop_assert, prop_assert_eq, prop_tests};
use ema_similarity::correlation::{cross_correlation, pearson_correlation};
use ema_similarity::cosine::cosine_similarity;
use ema_similarity::dtw::{dtw_distance, dtw_distance_banded};
use ema_similarity::euclidean::{euclidean_distance, gaussian_affinity, pairwise_distances};
use ema_similarity::knn::knn_graph;
use ema_similarity::{build_graph, GraphMetric};
use ema_tensor::{Rng64, Tensor};

fn series(n: usize) -> impl Fn(&mut Rng64) -> Vec<f64> {
    move |rng| gen::vec_f64_len(rng, -10.0, 10.0, n)
}

fn mts(rng: &mut Rng64) -> Tensor {
    let t = gen::usize_in(rng, 10, 30);
    let v = gen::usize_in(rng, 3, 8);
    Tensor::from_vec(&[t, v], gen::vec_f64_len(rng, -5.0, 5.0, t * v)).unwrap()
}

prop_tests! {
    fn dtw_identity_and_symmetry(
        (x, y) in |rng: &mut Rng64| (series(20)(rng), series(20)(rng)),
    ) {
        prop_assert_eq!(dtw_distance(&x, &x), 0.0);
        prop_assert_eq!(dtw_distance(&x, &y), dtw_distance(&y, &x));
        prop_assert!(dtw_distance(&x, &y) >= 0.0);
    }

    fn dtw_lower_bounds_pointwise_cost(
        (x, y) in |rng: &mut Rng64| (series(15)(rng), series(15)(rng)),
    ) {
        // DTW relaxes alignment, so it never exceeds the lockstep cost.
        let lockstep: f64 = x.iter().zip(y.iter()).map(|(a, b)| (a - b).abs()).sum();
        prop_assert!(dtw_distance(&x, &y) <= lockstep + 1e-9);
    }

    fn dtw_band_is_monotone(
        (x, y) in |rng: &mut Rng64| (series(20)(rng), series(20)(rng)),
    ) {
        // Wider bands can only lower (or keep) the distance.
        let d2 = dtw_distance_banded(&x, &y, 2);
        let d5 = dtw_distance_banded(&x, &y, 5);
        let dfull = dtw_distance(&x, &y);
        prop_assert!(d5 <= d2 + 1e-9);
        prop_assert!(dfull <= d5 + 1e-9);
    }

    fn euclidean_triangle_inequality(
        (x, y, z) in |rng: &mut Rng64| (series(10)(rng), series(10)(rng), series(10)(rng)),
    ) {
        let xy = euclidean_distance(&x, &y);
        let yz = euclidean_distance(&y, &z);
        let xz = euclidean_distance(&x, &z);
        prop_assert!(xz <= xy + yz + 1e-9);
    }

    fn correlation_is_bounded_and_scale_invariant(
        (x, y) in |rng: &mut Rng64| (series(12)(rng), series(12)(rng)),
    ) {
        let r = pearson_correlation(&x, &y);
        prop_assert!(r.abs() <= 1.0 + 1e-12);
        // Positive affine transforms leave correlation unchanged.
        let y2: Vec<f64> = y.iter().map(|v| 3.0 * v + 7.0).collect();
        let r2 = pearson_correlation(&x, &y2);
        prop_assert!((r - r2).abs() < 1e-7, "{r} vs {r2}");
    }

    fn cross_correlation_dominates_plain(
        (x, y) in |rng: &mut Rng64| (series(30)(rng), series(30)(rng)),
    ) {
        let plain = pearson_correlation(&x, &y).abs();
        let lagged = cross_correlation(&x, &y, 3).abs();
        prop_assert!(lagged >= plain - 1e-12);
    }

    fn cosine_bounded(
        (x, y) in |rng: &mut Rng64| (series(8)(rng), series(8)(rng)),
    ) {
        prop_assert!(cosine_similarity(&x, &y).abs() <= 1.0 + 1e-12);
    }

    fn affinities_live_in_unit_interval(data in mts) {
        let a = gaussian_affinity(&pairwise_distances(&data));
        prop_assert!(a.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    fn knn_union_symmetry_and_degree(data in mts) {
        let v = data.dims()[1];
        let k = 2.min(v - 1).max(1);
        let g = knn_graph(&data, k);
        prop_assert!(g.is_symmetric());
        for i in 0..v {
            let deg = (0..v).filter(|&j| g.weight(i, j) > 0.0).count();
            prop_assert!(deg >= k, "node {i} has degree {deg} < k {k}");
        }
    }

    fn every_builder_metric_is_well_formed(data in mts) {
        for metric in [
            GraphMetric::Euclidean,
            GraphMetric::Dtw,
            GraphMetric::Correlation,
            GraphMetric::PartialCorrelation,
            GraphMetric::Cosine,
        ] {
            let g = build_graph(&data, metric);
            prop_assert_eq!(g.num_nodes(), data.dims()[1]);
            prop_assert!(g.weights().all_finite(), "{} not finite", metric.label());
            prop_assert!(g.is_symmetric(), "{} asymmetric", metric.label());
            // No self loops by construction.
            for i in 0..g.num_nodes() {
                prop_assert_eq!(g.weight(i, i), 0.0);
            }
        }
    }
}
