//! Property-based tests of the similarity metrics and graph builders.

use ema_check::{gen, prop_assert, prop_assert_eq, prop_tests};
use ema_similarity::correlation::{cross_correlation, pearson_correlation};
use ema_similarity::cosine::cosine_similarity;
use ema_similarity::dtw::{dtw_distance, dtw_distance_banded};
use ema_similarity::euclidean::{euclidean_distance, gaussian_affinity, pairwise_distances};
use ema_similarity::kmedoids::{k_medoids, pairwise_series_distances, SeriesMetric};
use ema_similarity::knn::knn_graph;
use ema_similarity::{build_graph, GraphMetric};
use ema_tensor::{Rng64, Tensor};

fn series(n: usize) -> impl Fn(&mut Rng64) -> Vec<f64> {
    move |rng| gen::vec_f64_len(rng, -10.0, 10.0, n)
}

/// Random symmetric distance matrix (zero diagonal, non-negative) plus
/// a k in 1..=N and an independent clustering seed.
fn dist_k_seed(rng: &mut Rng64) -> (Tensor, usize, u64) {
    let n = gen::usize_in(rng, 2, 9);
    let mut d = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in (i + 1)..n {
            let v = gen::f64_in(rng, 0.0, 10.0);
            d.set2(i, j, v);
            d.set2(j, i, v);
        }
    }
    let k = gen::usize_in(rng, 1, n);
    let seed = rng.next_u64();
    (d, k, seed)
}

fn mts(rng: &mut Rng64) -> Tensor {
    let t = gen::usize_in(rng, 10, 30);
    let v = gen::usize_in(rng, 3, 8);
    Tensor::from_vec(&[t, v], gen::vec_f64_len(rng, -5.0, 5.0, t * v)).unwrap()
}

prop_tests! {
    fn dtw_identity_and_symmetry(
        (x, y) in |rng: &mut Rng64| (series(20)(rng), series(20)(rng)),
    ) {
        prop_assert_eq!(dtw_distance(&x, &x), 0.0);
        prop_assert_eq!(dtw_distance(&x, &y), dtw_distance(&y, &x));
        prop_assert!(dtw_distance(&x, &y) >= 0.0);
    }

    fn dtw_lower_bounds_pointwise_cost(
        (x, y) in |rng: &mut Rng64| (series(15)(rng), series(15)(rng)),
    ) {
        // DTW relaxes alignment, so it never exceeds the lockstep cost.
        let lockstep: f64 = x.iter().zip(y.iter()).map(|(a, b)| (a - b).abs()).sum();
        prop_assert!(dtw_distance(&x, &y) <= lockstep + 1e-9);
    }

    fn dtw_band_is_monotone(
        (x, y) in |rng: &mut Rng64| (series(20)(rng), series(20)(rng)),
    ) {
        // Wider bands can only lower (or keep) the distance.
        let d2 = dtw_distance_banded(&x, &y, 2);
        let d5 = dtw_distance_banded(&x, &y, 5);
        let dfull = dtw_distance(&x, &y);
        prop_assert!(d5 <= d2 + 1e-9);
        prop_assert!(dfull <= d5 + 1e-9);
    }

    fn euclidean_triangle_inequality(
        (x, y, z) in |rng: &mut Rng64| (series(10)(rng), series(10)(rng), series(10)(rng)),
    ) {
        let xy = euclidean_distance(&x, &y);
        let yz = euclidean_distance(&y, &z);
        let xz = euclidean_distance(&x, &z);
        prop_assert!(xz <= xy + yz + 1e-9);
    }

    fn correlation_is_bounded_and_scale_invariant(
        (x, y) in |rng: &mut Rng64| (series(12)(rng), series(12)(rng)),
    ) {
        let r = pearson_correlation(&x, &y);
        prop_assert!(r.abs() <= 1.0 + 1e-12);
        // Positive affine transforms leave correlation unchanged.
        let y2: Vec<f64> = y.iter().map(|v| 3.0 * v + 7.0).collect();
        let r2 = pearson_correlation(&x, &y2);
        prop_assert!((r - r2).abs() < 1e-7, "{r} vs {r2}");
    }

    fn cross_correlation_dominates_plain(
        (x, y) in |rng: &mut Rng64| (series(30)(rng), series(30)(rng)),
    ) {
        let plain = pearson_correlation(&x, &y).abs();
        let lagged = cross_correlation(&x, &y, 3).abs();
        prop_assert!(lagged >= plain - 1e-12);
    }

    fn cosine_bounded(
        (x, y) in |rng: &mut Rng64| (series(8)(rng), series(8)(rng)),
    ) {
        prop_assert!(cosine_similarity(&x, &y).abs() <= 1.0 + 1e-12);
    }

    fn affinities_live_in_unit_interval(data in mts) {
        let a = gaussian_affinity(&pairwise_distances(&data));
        prop_assert!(a.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    fn knn_union_symmetry_and_degree(data in mts) {
        let v = data.dims()[1];
        let k = 2.min(v - 1).max(1);
        let g = knn_graph(&data, k);
        prop_assert!(g.is_symmetric());
        for i in 0..v {
            let deg = (0..v).filter(|&j| g.weight(i, j) > 0.0).count();
            prop_assert!(deg >= k, "node {i} has degree {deg} < k {k}");
        }
    }

    fn kmedoids_assignment_is_argmin_over_medoids((d, k, seed) in dist_k_seed) {
        let n = d.dims()[0];
        let r = k_medoids(&d, k, seed);
        prop_assert_eq!(r.medoids.len(), k);
        prop_assert_eq!(r.assignments.len(), n);
        for p in 0..n {
            let own = d.at2(p, r.medoids[r.assignments[p]]);
            for (c, &m) in r.medoids.iter().enumerate() {
                let dm = d.at2(p, m);
                prop_assert!(own <= dm, "point {p}: assigned dist {own} > medoid {c} dist {dm}");
                // Ties break to the lowest cluster index.
                if dm == own {
                    prop_assert!(r.assignments[p] <= c);
                }
            }
        }
        // The reported objective is the sum of assigned distances.
        let sum: f64 = (0..n).map(|p| d.at2(p, r.medoids[r.assignments[p]])).sum();
        prop_assert_eq!(r.objective, sum);
    }

    fn kmedoids_objective_non_increasing_and_deterministic((d, k, seed) in dist_k_seed) {
        let r = k_medoids(&d, k, seed);
        for w in r.objective_trace.windows(2) {
            prop_assert!(w[1] <= w[0], "objective rose across a swap: {:?}", r.objective_trace);
        }
        prop_assert_eq!(r.objective, *r.objective_trace.last().unwrap());
        // Same (distances, k, seed) → bit-identical result on re-run.
        prop_assert_eq!(k_medoids(&d, k, seed), r);
    }

    fn kmedoids_k1_is_nomothetic_and_kn_is_idiographic((d, _k, seed) in dist_k_seed) {
        let n = d.dims()[0];
        // k = 1: one cluster holding everyone, medoid minimising the
        // total distance (ties to the lowest index).
        let r1 = k_medoids(&d, 1, seed);
        prop_assert!(r1.assignments.iter().all(|&c| c == 0));
        let total = |m: usize| -> f64 { (0..n).map(|p| d.at2(p, m)).sum() };
        let best = total(r1.medoids[0]);
        for m in 0..n {
            prop_assert!(best <= total(m));
        }
        // k = N: every point is its own medoid and cluster.
        let rn = k_medoids(&d, n, seed);
        prop_assert_eq!(rn.medoids, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(rn.assignments, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(rn.objective, 0.0);
    }

    fn kmedoids_over_series_distances_is_well_formed(
        (series, k, seed) in |rng: &mut Rng64| {
            let n = gen::usize_in(rng, 2, 6);
            let series: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    let len = gen::usize_in(rng, 5, 20);
                    gen::vec_f64_len(rng, -5.0, 5.0, len)
                })
                .collect();
            let k = gen::usize_in(rng, 1, n);
            (series, k, rng.next_u64())
        },
    ) {
        for metric in [SeriesMetric::DtwBanded { band: 4 }, SeriesMetric::Euclidean] {
            let d = pairwise_series_distances(&series, metric);
            prop_assert!(d.data().iter().all(|v| v.is_finite() && *v >= 0.0));
            let r = k_medoids(&d, k, seed);
            prop_assert_eq!(r.medoids.len(), k);
            prop_assert!(r.assignments.iter().all(|&c| c < k));
        }
    }

    fn every_builder_metric_is_well_formed(data in mts) {
        for metric in [
            GraphMetric::Euclidean,
            GraphMetric::Dtw,
            GraphMetric::Correlation,
            GraphMetric::PartialCorrelation,
            GraphMetric::Cosine,
        ] {
            let g = build_graph(&data, metric);
            prop_assert_eq!(g.num_nodes(), data.dims()[1]);
            prop_assert!(g.weights().all_finite(), "{} not finite", metric.label());
            prop_assert!(g.is_symmetric(), "{} asymmetric", metric.label());
            // No self loops by construction.
            for i in 0..g.num_nodes() {
                prop_assert_eq!(g.weight(i, i), 0.0);
            }
        }
    }
}
