//! Dynamic Time Warping (DTW) alignment distance.
//!
//! DTW aligns two series that may respond to the same events with
//! different lags or speeds — exactly the situation with emotion and
//! symptom variables in EMA data. The implementation offers the full
//! quadratic DP and a Sakoe–Chiba band restriction.

use crate::euclidean::gaussian_affinity;
use ema_graph::AdjacencyMatrix;
use ema_tensor::{pool::PooledBuf, Tensor};

/// DTW distance between two series with absolute-difference local cost
/// and the standard (symmetric1) step pattern.
///
/// # Panics
/// Panics if either series is empty.
#[must_use]
pub fn dtw_distance(x: &[f64], y: &[f64]) -> f64 {
    dtw_distance_banded(x, y, usize::MAX)
}

/// DTW distance restricted to a Sakoe–Chiba band of half-width `band`
/// around the (rescaled) diagonal. `band = usize::MAX` disables the
/// restriction. A tighter band is faster and regularises pathological
/// warpings; the band is automatically widened to at least
/// `|len(x) − len(y)|` so a path always exists.
///
/// # Panics
/// Panics if either series is empty.
#[must_use]
pub fn dtw_distance_banded(x: &[f64], y: &[f64], band: usize) -> f64 {
    // Pooled DP rows: recycled on drop, so repeated distance calls on
    // one thread stop allocating after the first.
    let mut prev = PooledBuf::uninit(y.len() + 1);
    let mut curr = PooledBuf::uninit(y.len() + 1);
    dtw_banded_with(x, y, band, &mut prev, &mut curr)
}

/// The banded DP core on caller-provided rolling rows (each
/// `len(y) + 1` long; contents may be stale — both rows are fully
/// initialised here). Lets [`pairwise_dtw`] reuse one pair of pooled
/// buffers across all V²/2 column pairs.
fn dtw_banded_with(x: &[f64], y: &[f64], band: usize, prev: &mut [f64], curr: &mut [f64]) -> f64 {
    assert!(!x.is_empty() && !y.is_empty(), "empty series");
    let (n, m) = (x.len(), y.len());
    assert!(prev.len() == m + 1 && curr.len() == m + 1, "DP rows must be len(y) + 1");
    let band = band.max(n.abs_diff(m));
    const INF: f64 = f64::INFINITY;

    // Rolling 2-row DP over the (n+1) x (m+1) accumulated-cost matrix.
    let mut prev = &mut *prev;
    let mut curr = &mut *curr;
    prev.fill(INF);
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(INF);
        // Band bounds for row i (1-based), centred on the scaled diagonal.
        let centre = if n > 1 {
            ((i - 1) * (m - 1)) / (n - 1).max(1) + 1
        } else {
            1
        };
        let lo = centre.saturating_sub(band).max(1);
        let hi = centre.saturating_add(band).min(m);
        for j in lo..=hi {
            let cost = (x[i - 1] - y[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            if best < INF {
                curr[j] = cost + best;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[m];
    assert!(
        d.is_finite(),
        "DTW band too narrow for series of lengths {n} and {m}"
    );
    d
}

/// Normalised DTW: the alignment cost divided by `len(x) + len(y)`,
/// making distances comparable across series lengths.
#[must_use]
pub fn dtw_distance_normalized(x: &[f64], y: &[f64]) -> f64 {
    dtw_distance(x, y) / (x.len() + y.len()) as f64
}

/// Pairwise DTW distance matrix between the columns of a `[T, V]` data
/// matrix, using a Sakoe–Chiba band of `band` steps (`usize::MAX` for
/// unrestricted).
#[must_use]
pub fn pairwise_dtw(data: &Tensor, band: usize) -> Tensor {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    let (t, v) = (data.dims()[0], data.dims()[1]);
    let cols: Vec<Tensor> = (0..v).map(|j| data.col(j)).collect();
    // One pair of pooled DP rows shared by every column pair (all
    // columns have length T), instead of two fresh vecs per pair.
    let mut prev = PooledBuf::uninit(t + 1);
    let mut curr = PooledBuf::uninit(t + 1);
    let mut out = Tensor::zeros(&[v, v]);
    for i in 0..v {
        for j in (i + 1)..v {
            let d = dtw_banded_with(cols[i].data(), cols[j].data(), band, &mut prev, &mut curr);
            out.set2(i, j, d);
            out.set2(j, i, d);
        }
    }
    out
}

/// Builds the DTW similarity graph of a `[T, V]` individual dataset:
/// banded pairwise DTW → Gaussian affinities. The default band of 10
/// steps (roughly one EMA day at 8 beeps/day) bounds how far alignment
/// may stretch.
#[must_use]
pub fn dtw_graph(data: &Tensor) -> AdjacencyMatrix {
    dtw_graph_with_band(data, 10)
}

/// [`dtw_graph`] with an explicit Sakoe–Chiba band.
#[must_use]
pub fn dtw_graph_with_band(data: &Tensor, band: usize) -> AdjacencyMatrix {
    AdjacencyMatrix::new(gaussian_affinity(&pairwise_dtw(data, band)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_have_zero_distance() {
        let x = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&x, &x), 0.0);
    }

    #[test]
    fn dtw_is_symmetric() {
        let x = [1.0, 3.0, 2.0, 5.0];
        let y = [2.0, 1.0, 4.0];
        assert_eq!(dtw_distance(&x, &y), dtw_distance(&y, &x));
    }

    #[test]
    fn dtw_aligns_shifted_series() {
        // y is x delayed by 2 steps; DTW should be much smaller than the
        // pointwise (Euclidean-style) cost.
        let x: Vec<f64> = (0..30).map(|t| ((t as f64) * 0.5).sin()).collect();
        let mut y = vec![x[0]; 2];
        y.extend_from_slice(&x[..28]);
        let dtw = dtw_distance(&x, &y);
        let pointwise: f64 = x.iter().zip(y.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            dtw < pointwise * 0.35,
            "DTW {dtw} not much below pointwise {pointwise}"
        );
    }

    #[test]
    fn dtw_handles_unequal_lengths() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 0.5, 1.0, 1.5, 2.0];
        let d = dtw_distance(&x, &y);
        assert!(d.is_finite());
        assert!(d < 2.0);
    }

    #[test]
    fn band_upper_bounds_full_dtw() {
        let x: Vec<f64> = (0..40).map(|t| (t as f64 * 0.3).cos()).collect();
        let y: Vec<f64> = (0..40).map(|t| (t as f64 * 0.31 + 1.0).cos()).collect();
        let full = dtw_distance(&x, &y);
        let banded = dtw_distance_banded(&x, &y, 3);
        assert!(
            banded >= full - 1e-12,
            "band {banded} below unrestricted {full}"
        );
    }

    #[test]
    fn wide_band_equals_full() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 4.0, 1.0, 9.0, 2.0];
        assert_eq!(
            dtw_distance(&x, &y),
            dtw_distance_banded(&x, &y, 100)
        );
    }

    #[test]
    fn normalized_dtw_is_length_comparable() {
        let x: Vec<f64> = (0..20).map(|t| t as f64).collect();
        let y: Vec<f64> = (0..20).map(|t| t as f64 + 1.0).collect();
        let d = dtw_distance_normalized(&x, &y);
        assert!(d < 1.0);
    }

    #[test]
    fn pairwise_dtw_matrix_properties() {
        let data = Tensor::from_vec2(vec![
            vec![1.0, 1.0, 9.0],
            vec![2.0, 2.2, -5.0],
            vec![3.0, 2.9, 7.0],
        ])
        .unwrap();
        let d = pairwise_dtw(&data, usize::MAX);
        for i in 0..3 {
            assert_eq!(d.at2(i, i), 0.0);
        }
        assert!(d.at2(0, 1) < d.at2(0, 2));
    }

    #[test]
    fn dtw_graph_symmetric_and_bounded() {
        let mut rng = ema_tensor::Rng64::seed_from(9);
        let data = Tensor::rand_normal(&[40, 6], 0.0, 1.0, &mut rng);
        let g = dtw_graph(&data);
        assert!(g.is_symmetric());
        assert!(g.weights().data().iter().all(|&w| (0.0..=1.0).contains(&w)));
    }
}
