//! Partial-correlation graphs — the Gaussian-graphical-model (GGM)
//! structure used throughout network psychometrics (Epskamp et al.,
//! 2018), covering the paper's future-work call for alternative
//! distance metrics.
//!
//! The partial correlation between variables `i` and `j` conditions on
//! all remaining variables and is read off the precision matrix
//! `Θ = Σ⁻¹`: `ρ_{ij·rest} = −Θ_ij / sqrt(Θ_ii · Θ_jj)`.

use crate::correlation::correlation_matrix;
use ema_graph::AdjacencyMatrix;
use ema_tensor::Tensor;

/// Computes the partial-correlation matrix of a `[T, V]` dataset from a
/// ridge-regularised correlation matrix (`Σ + λI`), which keeps the
/// inversion stable for short EMA series. Diagonal is 1.
///
/// # Panics
/// Panics unless `data` is rank 2 with at least two variables, or if
/// `lambda < 0`.
#[must_use]
pub fn partial_correlation_matrix(data: &Tensor, lambda: f64) -> Tensor {
    assert!(lambda >= 0.0, "negative ridge penalty {lambda}");
    let v = data.dims()[1];
    assert!(v >= 2, "partial correlation needs >= 2 variables");
    let mut sigma = correlation_matrix(data);
    for i in 0..v {
        let val = sigma.at2(i, i) + lambda;
        sigma.set2(i, i, val);
    }
    let theta = sigma
        .inverse()
        .expect("ridge-regularised correlation matrix is invertible");
    let mut out = Tensor::eye(v);
    for i in 0..v {
        for j in 0..v {
            if i != j {
                let denom = (theta.at2(i, i) * theta.at2(j, j)).sqrt();
                out.set2(i, j, -theta.at2(i, j) / denom);
            }
        }
    }
    out
}

/// Builds the partial-correlation graph of a `[T, V]` dataset: edge
/// weight `|ρ_{ij·rest}|` with the default ridge `λ = 0.05`.
#[must_use]
pub fn partial_correlation_graph(data: &Tensor) -> AdjacencyMatrix {
    partial_correlation_graph_with(data, 0.05)
}

/// [`partial_correlation_graph`] with an explicit ridge penalty.
#[must_use]
pub fn partial_correlation_graph_with(data: &Tensor, lambda: f64) -> AdjacencyMatrix {
    AdjacencyMatrix::new(partial_correlation_matrix(data, lambda).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Rng64;

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let mut rng = Rng64::seed_from(1);
        let data = Tensor::rand_normal(&[80, 5], 0.0, 1.0, &mut rng);
        let p = partial_correlation_matrix(&data, 0.05);
        for i in 0..5 {
            assert_eq!(p.at2(i, i), 1.0);
            for j in 0..5 {
                assert!((p.at2(i, j) - p.at2(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn values_are_bounded() {
        let mut rng = Rng64::seed_from(2);
        let data = Tensor::rand_normal(&[60, 6], 0.0, 1.0, &mut rng);
        let p = partial_correlation_matrix(&data, 0.05);
        assert!(p.data().iter().all(|&v| v.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn conditioning_removes_indirect_dependence() {
        // Chain x → y → z: x and z correlate marginally, but their
        // partial correlation given y should be much smaller.
        let mut rng = Rng64::seed_from(3);
        let n = 4000;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let x = rng.normal();
            let y = 0.9 * x + 0.3 * rng.normal();
            let z = 0.9 * y + 0.3 * rng.normal();
            rows.push(vec![x, y, z]);
        }
        let data = Tensor::from_vec2(rows).unwrap();
        let marginal = crate::correlation::correlation_matrix(&data);
        let partial = partial_correlation_matrix(&data, 1e-4);
        let marg_xz = marginal.at2(0, 2).abs();
        let part_xz = partial.at2(0, 2).abs();
        assert!(marg_xz > 0.5, "chain should correlate marginally: {marg_xz}");
        assert!(
            part_xz < marg_xz * 0.4,
            "conditioning failed: partial {part_xz} vs marginal {marg_xz}"
        );
    }

    #[test]
    fn direct_dependence_survives_conditioning() {
        let mut rng = Rng64::seed_from(4);
        let n = 4000;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let x = rng.normal();
            let w = rng.normal();
            let y = 0.7 * x + 0.7 * w + 0.3 * rng.normal();
            rows.push(vec![x, w, y]);
        }
        let data = Tensor::from_vec2(rows).unwrap();
        let partial = partial_correlation_matrix(&data, 1e-4);
        assert!(partial.at2(0, 2).abs() > 0.5, "direct edge x→y lost");
    }

    #[test]
    fn graph_construction_is_valid() {
        let mut rng = Rng64::seed_from(5);
        let data = Tensor::rand_normal(&[70, 8], 0.0, 1.0, &mut rng);
        let g = partial_correlation_graph(&data);
        assert_eq!(g.num_nodes(), 8);
        assert!(g.is_symmetric());
        assert!(g.weights().all_finite());
    }
}
