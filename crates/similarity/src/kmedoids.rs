//! Seeded, deterministic K-medoids (PAM) clustering over precomputed
//! distance matrices, plus the per-*individual* time-series distance
//! that feeds it.
//!
//! The similarity metrics elsewhere in this crate compare *variables*
//! within one individual's `[T, V]` study. Cluster-then-personalize
//! training instead needs a distance between *individuals*: each
//! individual's training split is flattened into one long series
//! ([`flatten_series`], column-major so each variable's trajectory
//! stays contiguous) and compared with banded DTW or truncated
//! Euclidean distance ([`SeriesMetric`]). Only the training split is
//! ever flattened — cluster assignment must not leak test data.
//!
//! [`k_medoids`] is classic PAM with a seeded init and a greedy
//! best-improving swap loop. Determinism contract: the same
//! `(distances, k, seed)` always yields the same result — the init
//! draws exactly `n` RNG values via [`Rng64::permutation`], candidate
//! swaps are scanned in ascending `(medoid position, candidate)` order,
//! only *strictly* better swaps are accepted (first of equals wins),
//! and medoids are sorted before final assignment. Nothing depends on
//! thread count: clustering is a single-threaded preprocessing step.

use crate::dtw::dtw_distance_banded;
use ema_tensor::{Rng64, Tensor};

/// Distance between two flattened individual series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesMetric {
    /// Sakoe–Chiba-banded DTW, normalised by the summed lengths so
    /// individuals with different study lengths stay comparable. The
    /// band auto-widens to at least the length difference.
    DtwBanded {
        /// Band half-width in steps (`usize::MAX` for unrestricted).
        band: usize,
    },
    /// Euclidean distance over the common prefix (series truncated to
    /// the shorter length), normalised by that common length.
    Euclidean,
}

impl SeriesMetric {
    /// Human-readable label for reports and obs.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SeriesMetric::DtwBanded { band } => format!("dtw_b{band}"),
            SeriesMetric::Euclidean => "euc".to_string(),
        }
    }
}

/// Flattens a `[T, V]` individual dataset into one series, column-major
/// (variable 0's full trajectory, then variable 1's, …) so each
/// variable's temporal shape survives concatenation.
///
/// # Panics
/// Panics if `data` is not rank 2.
#[must_use]
pub fn flatten_series(data: &Tensor) -> Vec<f64> {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    let (t, v) = (data.dims()[0], data.dims()[1]);
    let mut out = Vec::with_capacity(t * v);
    for j in 0..v {
        for i in 0..t {
            out.push(data.at2(i, j));
        }
    }
    out
}

/// Distance between two flattened series under `metric`.
///
/// # Panics
/// Panics if either series is empty.
#[must_use]
pub fn series_distance(x: &[f64], y: &[f64], metric: SeriesMetric) -> f64 {
    assert!(!x.is_empty() && !y.is_empty(), "empty series");
    match metric {
        SeriesMetric::DtwBanded { band } => {
            dtw_distance_banded(x, y, band) / (x.len() + y.len()) as f64
        }
        SeriesMetric::Euclidean => {
            let n = x.len().min(y.len());
            let ss: f64 = (0..n).map(|i| (x[i] - y[i]) * (x[i] - y[i])).sum();
            ss.sqrt() / n as f64
        }
    }
}

/// Pairwise `[N, N]` distance matrix between flattened individual
/// series (symmetric, zero diagonal).
///
/// # Panics
/// Panics if any series is empty.
#[must_use]
pub fn pairwise_series_distances(series: &[Vec<f64>], metric: SeriesMetric) -> Tensor {
    let n = series.len();
    let mut out = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = series_distance(&series[i], &series[j], metric);
            out.set2(i, j, d);
            out.set2(j, i, d);
        }
    }
    out
}

/// Result of a [`k_medoids`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMedoidsResult {
    /// Medoid point indices, ascending. `medoids[c]` is cluster `c`'s
    /// representative.
    pub medoids: Vec<usize>,
    /// `assignments[p]` is the cluster index of point `p` — the argmin
    /// over medoids of `dist(p, medoid)`, ties to the lowest cluster.
    pub assignments: Vec<usize>,
    /// Final objective: Σₚ minₘ dist(p, m).
    pub objective: f64,
    /// Objective after init and after each accepted swap — strictly
    /// decreasing by construction.
    pub objective_trace: Vec<f64>,
}

/// Seeded, deterministic K-medoids (PAM) over a precomputed `[N, N]`
/// distance matrix.
///
/// Init picks `k` distinct medoids from a seeded permutation; the swap
/// phase repeatedly applies the single best strictly-improving
/// (medoid, non-medoid) swap until none exists. See the module docs
/// for the determinism contract.
///
/// # Panics
/// Panics if `distances` is not square, `k` is 0 or exceeds N, or any
/// distance is non-finite.
#[must_use]
pub fn k_medoids(distances: &Tensor, k: usize, seed: u64) -> KMedoidsResult {
    assert_eq!(distances.rank(), 2, "distances must be [N, N]");
    let n = distances.dims()[0];
    assert_eq!(distances.dims()[1], n, "distances must be square");
    assert!(k >= 1, "k must be positive");
    assert!(k <= n, "k = {k} must not exceed the number of points {n}");
    assert!(
        distances.data().iter().all(|d| d.is_finite()),
        "distances must be finite"
    );

    let mut rng = Rng64::seed_from(seed);
    let perm = rng.permutation(n);
    let mut medoids: Vec<usize> = perm[..k].to_vec();
    medoids.sort_unstable();

    let objective_of = |meds: &[usize]| -> f64 {
        (0..n)
            .map(|p| {
                meds.iter()
                    .map(|&m| distances.at2(p, m))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    };

    let mut objective = objective_of(&medoids);
    let mut objective_trace = vec![objective];
    loop {
        // Best strictly-improving swap this round, scanned in ascending
        // (position, candidate) order with strict `<` so the first of
        // any equal-gain pair wins — deterministic tie-breaking.
        let mut best: Option<(usize, usize, f64)> = None;
        for pos in 0..k {
            for cand in 0..n {
                if medoids.contains(&cand) {
                    continue;
                }
                let old = medoids[pos];
                medoids[pos] = cand;
                let obj = objective_of(&medoids);
                medoids[pos] = old;
                let beats = match best {
                    Some((_, _, b)) => obj < b,
                    None => obj < objective,
                };
                if beats {
                    best = Some((pos, cand, obj));
                }
            }
        }
        match best {
            Some((pos, cand, obj)) => {
                medoids[pos] = cand;
                objective = obj;
                objective_trace.push(obj);
            }
            None => break,
        }
    }
    medoids.sort_unstable();

    let assignments = (0..n)
        .map(|p| {
            argmin_distance(medoids.iter().map(|&m| distances.at2(p, m)))
        })
        .collect();
    KMedoidsResult {
        medoids,
        assignments,
        objective,
        objective_trace,
    }
}

/// Index of the smallest value, ties to the lowest index — the
/// cluster-assignment rule shared by [`k_medoids`] and warm-start
/// fine-tuning (which assigns streamed individuals to the nearest
/// medoid series at train time).
///
/// # Panics
/// Panics if the iterator is empty.
#[must_use]
pub fn argmin_distance(dists: impl Iterator<Item = f64>) -> usize {
    let mut best: Option<(usize, f64)> = None;
    for (i, d) in dists.enumerate() {
        let beats = match best {
            Some((_, b)) => d < b,
            None => true,
        };
        if beats {
            best = Some((i, d));
        }
    }
    best.expect("argmin of empty iterator").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_distances() -> Tensor {
        // Points 0..3 mutually close, 3..6 mutually close, blobs far.
        let mut d = Tensor::zeros(&[6, 6]);
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                let same = (i < 3) == (j < 3);
                d.set2(i, j, if same { 1.0 } else { 10.0 });
            }
        }
        d
    }

    #[test]
    fn recovers_two_blobs() {
        let r = k_medoids(&two_blob_distances(), 2, 7);
        assert!(r.medoids[0] < 3 && r.medoids[1] >= 3);
        assert_eq!(&r.assignments[..3], &[0, 0, 0]);
        assert_eq!(&r.assignments[3..], &[1, 1, 1]);
        assert_eq!(r.objective, 4.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let d = two_blob_distances();
        assert_eq!(k_medoids(&d, 2, 42), k_medoids(&d, 2, 42));
    }

    #[test]
    fn k_equals_n_is_identity_partition() {
        let d = two_blob_distances();
        let r = k_medoids(&d, 6, 3);
        assert_eq!(r.medoids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.assignments, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.objective, 0.0);
    }

    #[test]
    fn objective_trace_is_non_increasing() {
        let d = two_blob_distances();
        let r = k_medoids(&d, 2, 123);
        for w in r.objective_trace.windows(2) {
            assert!(w[1] <= w[0], "trace increased: {:?}", r.objective_trace);
        }
    }

    #[test]
    fn flatten_is_column_major() {
        let data = Tensor::from_vec2(vec![vec![1.0, 10.0], vec![2.0, 20.0]]).unwrap();
        assert_eq!(flatten_series(&data), vec![1.0, 2.0, 10.0, 20.0]);
    }

    #[test]
    fn series_distance_zero_on_identical() {
        let x = [1.0, 2.0, 3.0, 4.0];
        for metric in [SeriesMetric::DtwBanded { band: 2 }, SeriesMetric::Euclidean] {
            assert_eq!(series_distance(&x, &x, metric), 0.0);
        }
    }

    #[test]
    fn pairwise_matrix_is_symmetric_zero_diag() {
        let series = vec![
            vec![1.0, 2.0, 3.0],
            vec![1.5, 2.5, 3.5, 4.0],
            vec![-3.0, 0.0, 3.0],
        ];
        let d = pairwise_series_distances(&series, SeriesMetric::DtwBanded { band: 3 });
        for i in 0..3 {
            assert_eq!(d.at2(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(d.at2(i, j), d.at2(j, i));
            }
        }
    }

    #[test]
    fn argmin_breaks_ties_low() {
        assert_eq!(argmin_distance([2.0, 1.0, 1.0, 3.0].into_iter()), 1);
    }
}
