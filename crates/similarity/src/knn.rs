//! k-nearest-neighbour similarity graphs.

use crate::euclidean::{gaussian_affinity, pairwise_distances};
use ema_graph::AdjacencyMatrix;
use ema_tensor::{pool::PooledBuf, Tensor};

/// Builds the kNN graph of a `[T, V]` individual dataset: for each
/// variable, keep the Gaussian affinities of its `k` nearest (smallest
/// Euclidean distance) neighbours, then symmetrise by union — an edge
/// survives if *either* endpoint selected it, the usual kNN-graph
/// convention (Bintsi et al., 2023).
///
/// # Panics
/// Panics if `k == 0` or `k >= V`.
#[must_use]
pub fn knn_graph(data: &Tensor, k: usize) -> AdjacencyMatrix {
    let v = data.dims()[1];
    assert!(k > 0, "k must be positive");
    assert!(k < v, "k = {k} must be below the number of variables {v}");
    let distances = pairwise_distances(data);
    let affinity = gaussian_affinity(&distances);

    // Pooled/hoisted scratch: the V×V keep mask (0.0/1.0 flags) rides
    // the buffer pool and one candidate vec is reused across all V
    // rows, so repeated graph builds on one thread stop allocating
    // per row.
    let mut keep = PooledBuf::zeroed(v * v);
    let mut neighbours: Vec<(usize, f64)> = Vec::with_capacity(v.saturating_sub(1));
    for i in 0..v {
        neighbours.clear();
        neighbours.extend(
            (0..v)
                .filter(|&j| j != i)
                .map(|j| (j, distances.at2(i, j))),
        );
        neighbours.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        for &(j, _) in neighbours.iter().take(k) {
            keep[i * v + j] = 1.0;
            keep[j * v + i] = 1.0; // union symmetrisation
        }
    }

    let mut out = AdjacencyMatrix::empty(v);
    for i in 0..v {
        for j in 0..v {
            if keep[i * v + j] != 0.0 {
                out.set_weight(i, j, affinity.at2(i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Rng64;

    fn random_data(t: usize, v: usize, seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        Tensor::rand_normal(&[t, v], 0.0, 1.0, &mut rng)
    }

    #[test]
    fn knn_graph_is_symmetric() {
        let g = knn_graph(&random_data(30, 8, 1), 3);
        assert!(g.is_symmetric());
    }

    #[test]
    fn every_node_has_at_least_k_neighbours() {
        let k = 3;
        let g = knn_graph(&random_data(30, 10, 2), k);
        for i in 0..10 {
            let deg = (0..10).filter(|&j| g.weight(i, j) > 0.0).count();
            assert!(deg >= k, "node {i} has only {deg} neighbours");
        }
    }

    #[test]
    fn knn_is_sparser_than_complete() {
        let g = knn_graph(&random_data(30, 12, 3), 2);
        assert!(g.density() < 1.0);
        assert!(g.num_edges() >= 2 * 12); // at least k per node, directed
    }

    #[test]
    fn nearest_neighbour_is_kept() {
        // Columns 0 and 1 nearly identical → mutual nearest neighbours.
        let mut data = random_data(20, 5, 4);
        for t in 0..20 {
            let v0 = data.at2(t, 0);
            data.set2(t, 1, v0 + 0.001);
        }
        let g = knn_graph(&data, 1);
        assert!(g.weight(0, 1) > 0.0);
        assert!(g.weight(1, 0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "below the number of variables")]
    fn rejects_k_too_large() {
        let _ = knn_graph(&random_data(10, 4, 5), 4);
    }
}
