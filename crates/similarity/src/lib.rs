//! # ema-similarity
//!
//! Similarity and distance metrics between EMA variable time series, and
//! the construction of individual similarity graphs from multivariate
//! time-series data — the paper's Section III-D.
//!
//! An individual's data is a `[T, V]` tensor (time × variables). Each of
//! the `V` variables is a graph node; edge weights quantify how similar
//! two variables' trajectories are under one of four metrics:
//!
//! * **EUC** — Euclidean distance between trajectories
//!   ([`euclidean`]), converted to an affinity by a Gaussian kernel;
//! * **kNN** — the Euclidean affinity graph keeping only each node's
//!   `k` nearest neighbours ([`knn`]);
//! * **DTW** — Dynamic Time Warping alignment cost ([`dtw`]), for
//!   variables that respond to events with different lags;
//! * **CORR** — absolute Pearson (optionally lagged cross-)
//!   correlation ([`correlation`]).
//!
//! [`GraphMetric`] enumerates the paper's metrics and
//! [`build_graph`] produces the corresponding [`ema_graph::AdjacencyMatrix`].

#![warn(missing_docs)]

mod builder;
pub mod correlation;
pub mod cosine;
pub mod dtw;
pub mod euclidean;
pub mod kmedoids;
pub mod knn;
pub mod partial;

pub use builder::{build_graph, GraphMetric};
pub use kmedoids::{
    argmin_distance, flatten_series, k_medoids, pairwise_series_distances, series_distance,
    KMedoidsResult, SeriesMetric,
};
