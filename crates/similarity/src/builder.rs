//! Unified graph construction from an individual's MTS data.

use crate::{correlation, cosine, dtw, euclidean, knn, partial};
use ema_graph::{random, AdjacencyMatrix};
use ema_tensor::{Rng64, Tensor};

/// The graph construction strategies evaluated by the paper (Table I)
/// plus the cosine extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphMetric {
    /// Euclidean distance with Gaussian affinity (EUC).
    Euclidean,
    /// k-nearest-neighbour restriction of EUC (kNN); the field is `k`.
    Knn(usize),
    /// Dynamic Time Warping with a Sakoe–Chiba band (DTW).
    Dtw,
    /// Absolute Pearson correlation (CORR).
    Correlation,
    /// Maximum-magnitude lagged cross-correlation (extension); the
    /// field is the maximum lag.
    CrossCorrelation(usize),
    /// Partial correlation conditioned on all other variables, the GGM
    /// structure of network psychometrics (extension).
    PartialCorrelation,
    /// Cosine similarity (extension).
    Cosine,
    /// Random graph matched to ~50% density (the RAND control); the
    /// field is the RNG seed so scenarios stay reproducible.
    Random(u64),
}

impl GraphMetric {
    /// The paper's label for the metric.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GraphMetric::Euclidean => "EUC",
            GraphMetric::Knn(_) => "kNN",
            GraphMetric::Dtw => "DTW",
            GraphMetric::Correlation => "CORR",
            GraphMetric::CrossCorrelation(_) => "XCORR",
            GraphMetric::PartialCorrelation => "PCORR",
            GraphMetric::Cosine => "COS",
            GraphMetric::Random(_) => "RAND",
        }
    }

    /// The four static metrics compared throughout the paper, with the
    /// default `k = 5` for kNN.
    #[must_use]
    pub fn paper_metrics() -> [GraphMetric; 4] {
        [
            GraphMetric::Euclidean,
            GraphMetric::Knn(5),
            GraphMetric::Dtw,
            GraphMetric::Correlation,
        ]
    }
}

/// Builds the similarity graph of an individual's `[T, V]` data under
/// the chosen metric. Graphs must be built from *training* data only to
/// avoid test leakage (the pipeline enforces this).
///
/// # Panics
/// Panics on malformed data (rank != 2) or invalid metric parameters.
#[must_use]
pub fn build_graph(data: &Tensor, metric: GraphMetric) -> AdjacencyMatrix {
    assert_eq!(data.rank(), 2, "individual data must be [T, V]");
    match metric {
        GraphMetric::Euclidean => euclidean::euclidean_graph(data),
        GraphMetric::Knn(k) => knn::knn_graph(data, k),
        GraphMetric::Dtw => dtw::dtw_graph(data),
        GraphMetric::Correlation => correlation::correlation_graph(data),
        GraphMetric::CrossCorrelation(max_lag) => {
            correlation::cross_correlation_graph(data, max_lag)
        }
        GraphMetric::PartialCorrelation => partial::partial_correlation_graph(data),
        GraphMetric::Cosine => cosine::cosine_graph(data),
        GraphMetric::Random(seed) => {
            let v = data.dims()[1];
            let mut rng = Rng64::seed_from(seed);
            let edges = v * (v - 1) / 2;
            random::random_with_edge_count(v, edges, &mut rng).symmetrized()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        Tensor::rand_normal(&[60, 8], 0.0, 1.0, &mut rng)
    }

    #[test]
    fn all_metrics_produce_valid_graphs() {
        let data = sample_data(1);
        for metric in [
            GraphMetric::Euclidean,
            GraphMetric::Knn(3),
            GraphMetric::Dtw,
            GraphMetric::Correlation,
            GraphMetric::CrossCorrelation(4),
            GraphMetric::PartialCorrelation,
            GraphMetric::Cosine,
            GraphMetric::Random(7),
        ] {
            let g = build_graph(&data, metric);
            assert_eq!(g.num_nodes(), 8, "{} node count", metric.label());
            assert!(g.weights().all_finite(), "{} not finite", metric.label());
            assert!(g.num_edges() > 0, "{} produced no edges", metric.label());
        }
    }

    #[test]
    fn static_metrics_are_deterministic() {
        let data = sample_data(2);
        for metric in GraphMetric::paper_metrics() {
            let a = build_graph(&data, metric);
            let b = build_graph(&data, metric);
            assert_eq!(
                a.weights().data(),
                b.weights().data(),
                "{} not deterministic",
                metric.label()
            );
        }
    }

    #[test]
    fn random_metric_is_seed_reproducible() {
        let data = sample_data(3);
        let a = build_graph(&data, GraphMetric::Random(42));
        let b = build_graph(&data, GraphMetric::Random(42));
        let c = build_graph(&data, GraphMetric::Random(43));
        assert_eq!(a.weights().data(), b.weights().data());
        assert_ne!(a.weights().data(), c.weights().data());
    }

    #[test]
    fn random_graph_ignores_data_content() {
        let a = build_graph(&sample_data(4), GraphMetric::Random(1));
        let b = build_graph(&sample_data(5), GraphMetric::Random(1));
        assert_eq!(a.weights().data(), b.weights().data());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(GraphMetric::Euclidean.label(), "EUC");
        assert_eq!(GraphMetric::Knn(5).label(), "kNN");
        assert_eq!(GraphMetric::Dtw.label(), "DTW");
        assert_eq!(GraphMetric::Correlation.label(), "CORR");
        assert_eq!(GraphMetric::Random(0).label(), "RAND");
    }
}
