//! Correlation-based similarity graphs (the paper's CORR metric).

use ema_graph::stats::pearson;
use ema_graph::AdjacencyMatrix;
use ema_tensor::Tensor;

/// Pearson correlation between two equal-length series (0 on zero
/// variance).
///
/// # Panics
/// Panics if lengths differ.
#[must_use]
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> f64 {
    pearson(x, y)
}

/// Maximum-magnitude lagged cross-correlation over lags
/// `−max_lag ..= max_lag`, returning the signed value whose magnitude is
/// largest. Lag 0 reduces to plain Pearson correlation.
///
/// # Panics
/// Panics if lengths differ or `max_lag` leaves fewer than 3 overlapping
/// points.
#[must_use]
pub fn cross_correlation(x: &[f64], y: &[f64], max_lag: usize) -> f64 {
    assert_eq!(x.len(), y.len(), "series length mismatch");
    let n = x.len();
    assert!(
        n > max_lag + 2,
        "max_lag {max_lag} too large for series of length {n}"
    );
    let mut best = 0.0f64;
    for lag in 0..=max_lag {
        // x leads y by `lag`.
        let r1 = pearson(&x[..n - lag], &y[lag..]);
        // y leads x by `lag`.
        let r2 = pearson(&x[lag..], &y[..n - lag]);
        for r in [r1, r2] {
            if r.abs() > best.abs() {
                best = r;
            }
        }
    }
    best
}

/// Pairwise correlation matrix (signed) between the columns of a
/// `[T, V]` data matrix; diagonal is 1.
#[must_use]
pub fn correlation_matrix(data: &Tensor) -> Tensor {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    let v = data.dims()[1];
    let cols: Vec<Tensor> = (0..v).map(|j| data.col(j)).collect();
    let mut out = Tensor::eye(v);
    for i in 0..v {
        for j in (i + 1)..v {
            let r = pearson(cols[i].data(), cols[j].data());
            out.set2(i, j, r);
            out.set2(j, i, r);
        }
    }
    out
}

/// Builds the CORR similarity graph of a `[T, V]` individual dataset:
/// edge weight = |Pearson correlation|, as negative and positive
/// dependencies are equally informative for message passing.
#[must_use]
pub fn correlation_graph(data: &Tensor) -> AdjacencyMatrix {
    AdjacencyMatrix::new(correlation_matrix(data).abs())
}

/// CORR graph using lagged cross-correlation magnitudes with the given
/// maximum lag.
#[must_use]
pub fn cross_correlation_graph(data: &Tensor, max_lag: usize) -> AdjacencyMatrix {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    let v = data.dims()[1];
    let cols: Vec<Tensor> = (0..v).map(|j| data.col(j)).collect();
    let mut out = AdjacencyMatrix::empty(v);
    for i in 0..v {
        for j in (i + 1)..v {
            let r = cross_correlation(cols[i].data(), cols[j].data(), max_lag).abs();
            out.set_weight(i, j, r);
            out.set_weight(j, i, r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Rng64;

    #[test]
    fn perfectly_correlated_columns() {
        let data = Tensor::from_vec2(vec![
            vec![1.0, 2.0],
            vec![2.0, 4.0],
            vec![3.0, 6.0],
        ])
        .unwrap();
        let g = correlation_graph(&data);
        assert!((g.weight(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anticorrelation_counts_as_similarity() {
        let data = Tensor::from_vec2(vec![
            vec![1.0, 3.0],
            vec![2.0, 2.0],
            vec![3.0, 1.0],
        ])
        .unwrap();
        let g = correlation_graph(&data);
        assert!((g.weight(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_matrix_diagonal_is_one() {
        let mut rng = Rng64::seed_from(1);
        let data = Tensor::rand_normal(&[50, 5], 0.0, 1.0, &mut rng);
        let c = correlation_matrix(&data);
        for i in 0..5 {
            assert_eq!(c.at2(i, i), 1.0);
        }
        assert!(c.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn cross_correlation_recovers_lagged_dependence() {
        // y_t = x_{t-3} + tiny noise; plain correlation is weak but
        // lagged correlation is strong.
        let mut rng = Rng64::seed_from(2);
        let x: Vec<f64> = (0..120).map(|_| rng.normal()).collect();
        let mut y = vec![0.0; 120];
        for t in 3..120 {
            y[t] = x[t - 3] + 0.01 * rng.normal();
        }
        let plain = pearson_correlation(&x, &y).abs();
        let lagged = cross_correlation(&x, &y, 5).abs();
        assert!(lagged > 0.9, "lagged correlation {lagged} too weak");
        assert!(lagged > plain + 0.3);
    }

    #[test]
    fn cross_correlation_zero_lag_equals_pearson() {
        let mut rng = Rng64::seed_from(3);
        let x: Vec<f64> = (0..60).map(|_| rng.normal()).collect();
        let y: Vec<f64> = (0..60).map(|_| rng.normal()).collect();
        assert_eq!(cross_correlation(&x, &y, 0), pearson_correlation(&x, &y));
    }

    #[test]
    fn cross_correlation_graph_is_symmetric() {
        let mut rng = Rng64::seed_from(4);
        let data = Tensor::rand_normal(&[60, 6], 0.0, 1.0, &mut rng);
        let g = cross_correlation_graph(&data, 4);
        assert!(g.is_symmetric());
    }

    #[test]
    fn constant_column_correlates_zero() {
        let data = Tensor::from_vec2(vec![
            vec![1.0, 5.0],
            vec![2.0, 5.0],
            vec![3.0, 5.0],
        ])
        .unwrap();
        let g = correlation_graph(&data);
        assert_eq!(g.weight(0, 1), 0.0);
    }
}
