//! Cosine similarity graphs — an additional metric beyond the paper's
//! four, covering its future-work suggestion of "alternative types of
//! distance metrics".

use ema_graph::AdjacencyMatrix;
use ema_tensor::Tensor;

/// Cosine similarity between two series; 0 when either has zero norm.
///
/// # Panics
/// Panics if lengths differ.
#[must_use]
pub fn cosine_similarity(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series length mismatch");
    let dot: f64 = x.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum();
    let nx: f64 = x.iter().map(|&a| a * a).sum::<f64>().sqrt();
    let ny: f64 = y.iter().map(|&b| b * b).sum::<f64>().sqrt();
    if nx <= 0.0 || ny <= 0.0 {
        return 0.0;
    }
    dot / (nx * ny)
}

/// Builds the cosine similarity graph of a `[T, V]` dataset with edge
/// weight `|cos(x_i, x_j)|`.
#[must_use]
pub fn cosine_graph(data: &Tensor) -> AdjacencyMatrix {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    let v = data.dims()[1];
    let cols: Vec<Tensor> = (0..v).map(|j| data.col(j)).collect();
    let mut out = AdjacencyMatrix::empty(v);
    for i in 0..v {
        for j in (i + 1)..v {
            let s = cosine_similarity(cols[i].data(), cols[j].data()).abs();
            out.set_weight(i, j, s);
            out.set_weight(j, i, s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_vectors_have_unit_similarity() {
        assert!((cosine_similarity(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_vectors_have_zero_similarity() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_maps_to_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn graph_weights_in_unit_interval() {
        let mut rng = ema_tensor::Rng64::seed_from(1);
        let data = Tensor::rand_normal(&[30, 5], 0.0, 1.0, &mut rng);
        let g = cosine_graph(&data);
        assert!(g.is_symmetric());
        assert!(g.weights().data().iter().all(|&w| (0.0..=1.0).contains(&w)));
    }
}
