//! Euclidean distance between variable trajectories and Gaussian
//! affinity conversion.

use ema_graph::AdjacencyMatrix;
use ema_tensor::Tensor;

/// Euclidean distance between two equal-length series.
///
/// # Panics
/// Panics if lengths differ or either series is empty.
#[must_use]
pub fn euclidean_distance(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series length mismatch");
    assert!(!x.is_empty(), "empty series");
    x.iter()
        .zip(y.iter())
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Pairwise Euclidean distance matrix between the columns (variables)
/// of a `[T, V]` data matrix. Output is `[V, V]`, symmetric with zero
/// diagonal.
///
/// # Panics
/// Panics unless `data` is rank 2.
#[must_use]
pub fn pairwise_distances(data: &Tensor) -> Tensor {
    assert_eq!(data.rank(), 2, "data must be [T, V]");
    let v = data.dims()[1];
    let cols: Vec<Tensor> = (0..v).map(|j| data.col(j)).collect();
    let mut out = Tensor::zeros(&[v, v]);
    for i in 0..v {
        for j in (i + 1)..v {
            let d = euclidean_distance(cols[i].data(), cols[j].data());
            out.set2(i, j, d);
            out.set2(j, i, d);
        }
    }
    out
}

/// Converts a distance matrix into affinities with a Gaussian kernel
/// `exp(−d² / (2σ²))`, where `σ` is the mean off-diagonal distance.
/// A degenerate all-zero distance matrix maps to the complete graph.
///
/// # Panics
/// Panics unless `distances` is square rank 2.
#[must_use]
pub fn gaussian_affinity(distances: &Tensor) -> Tensor {
    assert_eq!(distances.rank(), 2, "distance matrix must be rank 2");
    let n = distances.dims()[0];
    assert_eq!(n, distances.dims()[1], "distance matrix must be square");
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sum += distances.at2(i, j);
                count += 1;
            }
        }
    }
    let sigma = if count > 0 { sum / count as f64 } else { 0.0 };
    if sigma <= 0.0 {
        let mut out = Tensor::ones(&[n, n]);
        for i in 0..n {
            out.set2(i, i, 0.0);
        }
        return out;
    }
    let denom = 2.0 * sigma * sigma;
    let mut out = distances.map(|d| (-d * d / denom).exp());
    for i in 0..n {
        out.set2(i, i, 0.0);
    }
    out
}

/// Builds the EUC similarity graph of a `[T, V]` individual dataset:
/// pairwise distances → Gaussian affinities.
#[must_use]
pub fn euclidean_graph(data: &Tensor) -> AdjacencyMatrix {
    AdjacencyMatrix::new(gaussian_affinity(&pairwise_distances(data)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn pairwise_is_symmetric_zero_diagonal() {
        let data = Tensor::from_vec2(vec![
            vec![1.0, 2.0, 10.0],
            vec![2.0, 3.0, 20.0],
            vec![3.0, 4.0, 30.0],
        ])
        .unwrap();
        let d = pairwise_distances(&data);
        assert_eq!(d.dims(), &[3, 3]);
        for i in 0..3 {
            assert_eq!(d.at2(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(d.at2(i, j), d.at2(j, i));
            }
        }
        // Columns 0 and 1 differ by a constant 1 per step: d = sqrt(3).
        assert!((d.at2(0, 1) - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn affinity_decreases_with_distance() {
        let d = Tensor::from_vec2(vec![
            vec![0.0, 1.0, 5.0],
            vec![1.0, 0.0, 2.0],
            vec![5.0, 2.0, 0.0],
        ])
        .unwrap();
        let a = gaussian_affinity(&d);
        assert!(a.at2(0, 1) > a.at2(0, 2));
        assert!(a.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(a.at2(1, 1), 0.0);
    }

    #[test]
    fn zero_distances_give_complete_graph() {
        let d = Tensor::zeros(&[3, 3]);
        let a = gaussian_affinity(&d);
        assert_eq!(a.at2(0, 1), 1.0);
        assert_eq!(a.at2(0, 0), 0.0);
    }

    #[test]
    fn graph_from_similar_columns_is_strong() {
        // Columns 0, 1 nearly identical; column 2 wildly different.
        let data = Tensor::from_vec2(vec![
            vec![1.0, 1.1, 50.0],
            vec![2.0, 2.1, -40.0],
            vec![3.0, 2.9, 80.0],
            vec![4.0, 4.2, -90.0],
        ])
        .unwrap();
        let g = euclidean_graph(&data);
        assert!(g.weight(0, 1) > g.weight(0, 2));
        assert!(g.is_symmetric());
    }
}
