//! Generator helpers: small building blocks for property-test inputs.
//!
//! Two styles are provided and mix freely:
//!
//! - **Direct**: functions taking `&mut Rng64` plus bounds, for use
//!   inside hand-written generator fns (`gen::vec_f64(rng, -1.0, 1.0,
//!   1, 32)`).
//! - **Curried**: functions returning an `impl Fn(&mut Rng64) -> T`
//!   closure, for inline use in [`crate::prop_tests!`] clauses
//!   (`seed in gen::u64_below(1000)`).

use ema_tensor::Rng64;

/// Uniform `f64` in `[lo, hi)`, direct form.
pub fn f64_in(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
    rng.uniform_in(lo, hi)
}

/// Uniform `usize` in `[lo, hi)`, direct form.
///
/// # Panics
/// Panics if `lo >= hi`.
pub fn usize_in(rng: &mut Rng64, lo: usize, hi: usize) -> usize {
    assert!(lo < hi, "usize_in bounds inverted: {lo} >= {hi}");
    lo + rng.index(hi - lo)
}

/// Vector of uniform `f64` values with a length drawn from
/// `[len_lo, len_hi)`, direct form.
pub fn vec_f64(rng: &mut Rng64, lo: f64, hi: f64, len_lo: usize, len_hi: usize) -> Vec<f64> {
    let n = usize_in(rng, len_lo, len_hi);
    (0..n).map(|_| rng.uniform_in(lo, hi)).collect()
}

/// Vector of exactly `len` uniform `f64` values, direct form.
pub fn vec_f64_len(rng: &mut Rng64, lo: f64, hi: f64, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.uniform_in(lo, hi)).collect()
}

/// Curried uniform `f64` in `[lo, hi)`.
pub fn f64_range(lo: f64, hi: f64) -> impl Fn(&mut Rng64) -> f64 {
    move |rng| rng.uniform_in(lo, hi)
}

/// Curried uniform `u64` in `[0, n)`.
pub fn u64_below(n: u64) -> impl Fn(&mut Rng64) -> u64 {
    assert!(n > 0, "u64_below needs a positive bound");
    move |rng| {
        // For bounds that fit in usize (all our uses), reuse the
        // unbiased index sampler.
        rng.index(usize::try_from(n).expect("bound fits usize")) as u64
    }
}

/// Curried uniform `usize` in `[lo, hi)`.
pub fn usize_range(lo: usize, hi: usize) -> impl Fn(&mut Rng64) -> usize {
    assert!(lo < hi, "usize_range bounds inverted: {lo} >= {hi}");
    move |rng| lo + rng.index(hi - lo)
}

/// Curried choice among a fixed slice of values (cloned out).
pub fn one_of<T: Clone>(choices: &[T]) -> impl Fn(&mut Rng64) -> T + '_ {
    assert!(!choices.is_empty(), "one_of needs at least one choice");
    move |rng| choices[rng.index(choices.len())].clone()
}

/// Curried vector with element generator and length range `[lo, hi)`.
pub fn vec_of<T>(
    elem: impl Fn(&mut Rng64) -> T,
    len_lo: usize,
    len_hi: usize,
) -> impl Fn(&mut Rng64) -> Vec<T> {
    assert!(len_lo < len_hi, "vec_of bounds inverted: {len_lo} >= {len_hi}");
    move |rng| {
        let n = len_lo + rng.index(len_hi - len_lo);
        (0..n).map(|_| elem(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_generators_respect_bounds() {
        let mut rng = Rng64::seed_from(1);
        for _ in 0..1000 {
            let x = f64_in(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = usize_in(&mut rng, 4, 9);
            assert!((4..9).contains(&n));
        }
    }

    #[test]
    fn vec_generators_respect_lengths() {
        let mut rng = Rng64::seed_from(2);
        for _ in 0..200 {
            let v = vec_f64(&mut rng, 0.0, 1.0, 1, 32);
            assert!((1..32).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            assert_eq!(vec_f64_len(&mut rng, 0.0, 1.0, 7).len(), 7);
        }
    }

    #[test]
    fn curried_generators_cover_their_domain() {
        let mut rng = Rng64::seed_from(3);
        let below = u64_below(5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[below(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "u64_below(5) missed a value");

        let choice = one_of(&["a", "b", "c"]);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..300 {
            *counts.entry(choice(&mut rng)).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn vec_of_composes_element_generators() {
        let mut rng = Rng64::seed_from(4);
        let g = vec_of(f64_range(-1.0, 1.0), 2, 6);
        for _ in 0..100 {
            let v = g(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| x.abs() <= 1.0));
        }
    }
}
