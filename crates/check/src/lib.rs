//! # ema-check
//!
//! A small, fully in-house property-testing harness driven by the
//! workspace's seeded [`Rng64`]. It replaces `proptest` so the whole
//! workspace builds and tests with zero external dependencies.
//!
//! ## Writing a property test
//!
//! Generators are plain callables `Fn(&mut Rng64) -> T`; combinator
//! helpers live in [`gen`]. The [`prop_tests!`] macro turns each
//! `fn name(pattern in generator) { body }` item into a `#[test]` that
//! runs the body over many seeded cases:
//!
//! ```
//! use ema_check::{gen, prop_assert, prop_tests};
//!
//! fn small_vec(rng: &mut ema_tensor::Rng64) -> Vec<f64> {
//!     gen::vec_f64(rng, -10.0, 10.0, 1, 8)
//! }
//!
//! prop_tests! {
//!     fn reverse_twice_is_identity(v in small_vec) {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert!(w == *v, "double reverse changed {v:?}");
//!     }
//! }
//! ```
//!
//! ## Determinism and replay
//!
//! Each test derives its base seed from its fully-qualified name, so
//! runs are deterministic across machines and test-ordering. On failure
//! the harness panics with the case index, the case seed and the
//! `Debug` rendering of the failing input. Environment knobs:
//!
//! - `EMA_CHECK_CASES=N` — cases per property (default 256, the same
//!   default `proptest` used).
//! - `EMA_CHECK_SEED=S` — XORed into every base seed to explore a
//!   different deterministic universe.
//! - `EMA_CHECK_REPLAY=S` — run only the single case with seed `S`
//!   (printed by a failure), for fast debugging.

#![warn(missing_docs)]

use ema_tensor::Rng64;
use std::fmt::Debug;

pub mod gen;

/// Why a property case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropError {
    /// The property was violated; the message explains how.
    Fail(String),
    /// The generated input did not meet a precondition
    /// ([`prop_assume!`]); the case is discarded, not failed.
    Discard,
}

/// Result of evaluating one property case.
pub type PropResult = Result<(), PropError>;

/// Default number of cases per property (matches proptest's default).
pub const DEFAULT_CASES: usize = 256;

/// Mixes a u64 (splitmix64 finalizer) to derive per-case seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a hash of a test name, the deterministic base seed.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// A configured property-test runner. Usually constructed through the
/// [`prop_tests!`] macro; build one directly for tests that need a
/// custom case count (e.g. expensive end-to-end properties).
#[derive(Debug, Clone)]
pub struct Check {
    name: String,
    cases: usize,
    seed: u64,
}

impl Check {
    /// Creates a runner for the named property, seeded from the name.
    #[must_use]
    pub fn named(name: &str) -> Self {
        let cases = env_u64("EMA_CHECK_CASES").map_or(DEFAULT_CASES, |n| n.max(1) as usize);
        let seed = fnv1a(name) ^ env_u64("EMA_CHECK_SEED").unwrap_or(0);
        Self {
            name: name.to_string(),
            cases,
            seed,
        }
    }

    /// Overrides the case count (expensive properties run fewer cases).
    /// `EMA_CHECK_CASES` still wins if set.
    #[must_use]
    pub fn cases(mut self, n: usize) -> Self {
        assert!(n > 0, "a property needs at least one case");
        if env_u64("EMA_CHECK_CASES").is_none() {
            self.cases = n;
        }
        self
    }

    /// Runs the property: generate a case, evaluate, repeat.
    ///
    /// Discarded cases ([`prop_assume!`]) do not count towards the case
    /// total; the discard budget is ten attempts per requested case.
    ///
    /// # Panics
    /// Panics with full reproduction info on the first failing case, or
    /// if the discard budget is exhausted.
    pub fn run<T, G, P>(&self, generate: G, property: P)
    where
        T: Debug,
        G: Fn(&mut Rng64) -> T,
        P: Fn(&T) -> PropResult,
    {
        if let Some(replay) = env_u64("EMA_CHECK_REPLAY") {
            self.run_case(replay, usize::MAX, &generate, &property);
            return;
        }
        let mut passed = 0usize;
        let mut attempts = 0usize;
        let budget = self.cases.saturating_mul(10);
        while passed < self.cases {
            assert!(
                attempts < budget,
                "property {:?}: discard budget exhausted ({} attempts for {} cases); \
                 loosen the generator or the prop_assume! preconditions",
                self.name,
                attempts,
                self.cases
            );
            let case_seed = mix(self.seed ^ (attempts as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
            if self.run_case(case_seed, passed, &generate, &property) {
                passed += 1;
            }
            attempts += 1;
        }
    }

    /// Runs a single case; returns false when the case was discarded.
    fn run_case<T, G, P>(&self, case_seed: u64, index: usize, generate: &G, property: &P) -> bool
    where
        T: Debug,
        G: Fn(&mut Rng64) -> T,
        P: Fn(&T) -> PropResult,
    {
        let mut rng = Rng64::seed_from(case_seed);
        let input = generate(&mut rng);
        match property(&input) {
            Ok(()) => true,
            Err(PropError::Discard) => false,
            Err(PropError::Fail(msg)) => panic!(
                "property {:?} failed at case {} (seed {case_seed}):\n  input: {:?}\n  {}\n\
                 replay with EMA_CHECK_REPLAY={case_seed}",
                self.name, index, input, msg
            ),
        }
    }
}

/// Asserts a condition inside a property body, failing the case (not
/// the process) so the harness can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if cond {} else { fail }` keeps negated float comparisons out
        // of the expansion (clippy::neg_cmp_op_on_partial_ord fires at
        // every call site otherwise).
        if $cond {
        } else {
            return Err($crate::PropError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return Err($crate::PropError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::PropError::Fail(format!(
                "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::PropError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Discards the current case when a generated input misses a
/// precondition. Discards don't count towards the case total.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return Err($crate::PropError::Discard);
        }
    };
}

/// Declares seeded property tests.
///
/// Each item `fn name(pat in generator, ...) { body }` becomes a
/// `#[test]`. A generator is any expression callable as
/// `Fn(&mut Rng64) -> T` — a fn item, a closure, or a call returning a
/// closure. An optional leading `@cases(N)` marker overrides the case
/// count for one test (useful for expensive properties).
#[macro_export]
macro_rules! prop_tests {
    ($(
        $(@cases($cases:expr))?
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $gen:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let check = $crate::Check::named(concat!(module_path!(), "::", stringify!($name)));
                $(let check = check.cases($cases);)?
                check.run(
                    |rng| ( $( ($gen)(rng), )+ ),
                    |case| {
                        let ( $( $pat, )+ ) = ::std::clone::Clone::clone(case);
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_f64(rng: &mut Rng64) -> f64 {
        rng.uniform()
    }

    #[test]
    fn same_name_same_cases() {
        // Two runs of the same property see identical inputs.
        let collect = || {
            let mut seen = Vec::new();
            let cell = std::cell::RefCell::new(&mut seen);
            Check::named("determinism-probe").cases(32).run(unit_f64, |x| {
                cell.borrow_mut().push(*x);
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn different_names_differ() {
        let collect = |name: &str| {
            let mut seen = Vec::new();
            let cell = std::cell::RefCell::new(&mut seen);
            Check::named(name).cases(8).run(unit_f64, |x| {
                cell.borrow_mut().push(*x);
                Ok(())
            });
            seen
        };
        assert_ne!(collect("alpha"), collect("beta"));
    }

    #[test]
    #[should_panic(expected = "replay with EMA_CHECK_REPLAY=")]
    fn failure_reports_replay_seed() {
        Check::named("always-fails").cases(4).run(unit_f64, |_| {
            Err(PropError::Fail("nope".into()))
        });
    }

    #[test]
    #[should_panic(expected = "discard budget exhausted")]
    fn discard_budget_is_enforced() {
        Check::named("always-discards")
            .cases(4)
            .run(unit_f64, |_| Err(PropError::Discard));
    }

    #[test]
    fn discards_do_not_count_as_cases() {
        let mut passed = 0usize;
        let cell = std::cell::RefCell::new(&mut passed);
        Check::named("half-discard").cases(50).run(unit_f64, |x| {
            if *x < 0.5 {
                return Err(PropError::Discard);
            }
            **cell.borrow_mut() += 1;
            Ok(())
        });
        assert_eq!(passed, 50);
    }

    prop_tests! {
        fn macro_declares_runnable_tests(x in unit_f64, y in unit_f64) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        @cases(16)
        fn macro_supports_case_override_and_tuples((a, b) in |rng: &mut Rng64| (rng.uniform(), rng.uniform())) {
            prop_assert!(a >= 0.0);
            prop_assert_eq!(b >= 0.0, true);
        }

        fn macro_supports_assume(x in unit_f64) {
            prop_assume!(x > 0.1);
            prop_assert!(x > 0.05);
        }
    }
}
