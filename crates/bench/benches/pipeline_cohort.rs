//! Cohort throughput of the full per-individual pipeline (split →
//! graph → train → evaluate) scheduled by the `ema_core::exec` engine
//! at 1, 2 and all available workers. Each entry records
//! individuals/sec as `throughput_per_sec` in
//! `results/BENCH_pipeline.json`. Results JSON is byte-identical at
//! every thread count; only the wall-clock figures here move.

use ema_bench::Harness;
use ema_core::experiments::ExperimentScale;
use ema_core::{run_cohort_with, Executor, GraphSpec};
use ema_models::ModelKind;
use std::hint::black_box;

fn main() {
    let mut harness = Harness::new("pipeline");

    // An LSTM cohort sized so each worker gets several jobs (12
    // individuals ÷ 2 workers = 6 each): per-job scheduling overhead is
    // amortized and thread counts differ by more than queue noise,
    // while one sample still finishes in tens of milliseconds.
    let mut scale = ExperimentScale::tiny();
    scale.num_individuals = 12;
    let dataset = scale.dataset();
    let spec = scale.spec(ModelKind::Lstm, GraphSpec::None, 2);

    let max = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut counts = vec![1, 2, max];
    counts.sort_unstable();
    counts.dedup();

    for threads in counts {
        let executor = Executor::with_threads(threads);
        harness.bench_function(&format!("cohort_lstm_threads_{threads}"), |b| {
            b.items(dataset.individuals.len() as f64);
            b.iter(|| black_box(run_cohort_with(&dataset, &spec, &executor)));
        });
    }

    harness.finish();
}
