//! Cohort throughput of the full per-individual pipeline (split →
//! graph → train → evaluate) scheduled by the `ema_core::exec` engine,
//! plus the streamed sharded cohort path at study scale. Each entry
//! records individuals/sec as `throughput_per_sec` and its peak heap
//! working set as `peak_bytes` in `results/BENCH_pipeline.json`.
//! Results JSON is byte-identical at every thread count and shard
//! size; only the wall-clock figures here move.

use ema_bench::Harness;
use ema_core::experiments::ExperimentScale;
use ema_core::{
    run_cohort_sharded, run_cohort_with, CohortPath, Executor, GraphSpec, TrainConfig,
    TrainStrategy,
};
use ema_data::{EmaGenerator, GeneratorConfig};
use ema_models::{ModelConfig, ModelKind};
use std::hint::black_box;

fn main() {
    let mut harness = Harness::new("pipeline");

    // An LSTM cohort sized so each worker gets several jobs (12
    // individuals ÷ 2 workers = 6 each): per-job scheduling overhead is
    // amortized and thread counts differ by more than queue noise,
    // while one sample still finishes in tens of milliseconds.
    let mut scale = ExperimentScale::tiny();
    scale.num_individuals = 12;
    let dataset = scale.dataset();
    let spec = scale.spec(ModelKind::Lstm, GraphSpec::None, 2);

    let max = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut counts = vec![1, 2, max];
    counts.sort_unstable();
    counts.dedup();

    for threads in counts {
        let executor = Executor::with_threads(threads);
        harness.bench_function(&format!("cohort_lstm_threads_{threads}"), |b| {
            b.items(dataset.individuals.len() as f64);
            b.iter(|| black_box(run_cohort_with(&dataset, &spec, &executor)));
        });
    }

    // Streamed sharded cohort at study scale: 10k individuals are never
    // materialized at once — each shard job generates, trains and drops
    // its 64 individuals, so `peak_bytes` stays bounded by
    // (workers × shard) while `throughput_per_sec` records
    // individuals/sec. The batched entry (one tape graph per shard per
    // epoch) is gated against the per-individual oracle entry (one tape
    // graph per individual per epoch); both are bit-identical in
    // results. Individuals are kept tiny (V=3, ~12 time points, 2
    // epochs) so one full stream fits a bench sample.
    const STREAM_N: usize = 10_000;
    const SHARD: usize = 64;
    let generator = EmaGenerator::new(GeneratorConfig {
        num_individuals: STREAM_N,
        num_variables: 3,
        mean_time_points: 12,
        seed: 2024,
        ..GeneratorConfig::default()
    });
    let mut stream_spec = ExperimentScale::tiny().spec(ModelKind::Lstm, GraphSpec::None, 2);
    stream_spec.model_config = ModelConfig::tiny(0);
    stream_spec.train_config = TrainConfig::quick(4, 7);
    let executor = Executor::with_threads(max);
    for (name, path) in [
        ("cohort_stream_10k_batched", CohortPath::Batched),
        ("cohort_stream_10k_per_individual", CohortPath::PerIndividual),
    ] {
        let mut spec = stream_spec.clone();
        spec.cohort_path = path;
        harness.bench_function(name, |b| {
            b.items(STREAM_N as f64);
            // One full stream costs seconds; a handful of samples keeps
            // the suite under the bench budget (baseline recorded with
            // the same override).
            b.samples(3);
            b.iter(|| black_box(run_cohort_sharded(&generator, &spec, SHARD, &executor)));
        });
    }

    // Cluster-then-personalize at the same study scale: K-medoids over
    // representative individuals, 4 cluster models trained once on the
    // caller thread, then every streamed individual fine-tunes a single
    // epoch from its cluster checkpoint instead of training 4 epochs
    // from scratch. Same generator, spec and shard size as the
    // idiographic stream entries above, so the headline comparison
    // (`cohort_stream_10k_warmstart_batched` vs
    // `cohort_stream_10k_batched`) isolates the training-strategy win;
    // `peak_bytes` stays (workers × shard)-bounded — the plan adds only
    // K checkpoints plus K flattened medoid series.
    for (name, path) in [
        ("cohort_stream_10k_warmstart_batched", CohortPath::Batched),
        (
            "cohort_stream_10k_warmstart_per_individual",
            CohortPath::PerIndividual,
        ),
    ] {
        let mut spec = stream_spec.clone();
        spec.cohort_path = path;
        spec.train_strategy = TrainStrategy::ClusterWarmStart {
            k: 4,
            cluster_epochs: 4,
            fine_tune_epochs: 1,
        };
        harness.bench_function(name, |b| {
            b.items(STREAM_N as f64);
            b.samples(3);
            b.iter(|| black_box(run_cohort_sharded(&generator, &spec, SHARD, &executor)));
        });
    }

    // Graph-model streams at the same study scale: the grouped
    // graph-conv/attention ops put a whole shard's A3TGCN/MTGNN
    // forward on one tape graph per epoch, gated here against the
    // per-individual oracle path (bit-identical results, fewer graphs).
    // Each individual builds its own training-split correlation graph
    // on the worker that generates its shard, so `peak_bytes` stays
    // bounded by (workers × shard) exactly as in the LSTM stream.
    let graph = GraphSpec::Static {
        metric: ema_similarity::GraphMetric::Correlation,
        gdt: ema_graph::sparsify::DensityThreshold::Gdt40,
    };
    // Graph-model tape graphs hold far more live intermediates per
    // window than the LSTM's, so a 64-individual shard's backward
    // working set falls out of cache and the grouped-op win inverts;
    // shard 8 is the measured sweet spot (64/16/8/4 swept). Shard size
    // never changes a byte of the results (the determinism grid), so
    // this is a pure throughput knob.
    let graph_shard: usize = std::env::var("EMA_BENCH_GRAPH_SHARD")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    for (model, label) in [(ModelKind::A3tgcn, "a3tgcn"), (ModelKind::Mtgnn, "mtgnn")] {
        let mut model_spec = ExperimentScale::tiny().spec(model, graph.clone(), 2);
        model_spec.model_config = ModelConfig::tiny(0);
        // Graph forwards cost ~an order of magnitude more than the
        // LSTM's, so halve the epochs to keep one full stream inside a
        // bench sample.
        model_spec.train_config = TrainConfig::quick(2, 7);
        for (path, suffix) in [
            (CohortPath::Batched, "batched"),
            (CohortPath::PerIndividual, "per_individual"),
        ] {
            let mut spec = model_spec.clone();
            spec.cohort_path = path;
            harness.bench_function(&format!("cohort_stream_10k_{label}_{suffix}"), |b| {
                b.items(STREAM_N as f64);
                b.samples(2);
                b.iter(|| {
                    black_box(run_cohort_sharded(&generator, &spec, graph_shard, &executor))
                });
            });
        }
    }

    harness.finish();
}
