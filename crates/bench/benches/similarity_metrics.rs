//! Benchmarks of the graph-construction metrics at paper scale
//! (T = 140 time points, V = 26 variables).

use ema_bench::Harness;
use ema_similarity::{build_graph, dtw, GraphMetric};
use ema_tensor::{Rng64, Tensor};
use std::hint::black_box;

fn paper_scale_data() -> Tensor {
    let mut rng = Rng64::seed_from(7);
    Tensor::rand_normal(&[140, 26], 0.0, 1.0, &mut rng)
}

fn bench_metrics(c: &mut Harness) {
    let data = paper_scale_data();
    for metric in [
        GraphMetric::Euclidean,
        GraphMetric::Knn(5),
        GraphMetric::Correlation,
        GraphMetric::Cosine,
    ] {
        c.bench_function(&format!("build_graph_{}", metric.label()), |b| {
            b.iter(|| build_graph(black_box(&data), metric))
        });
    }
}

fn bench_dtw(c: &mut Harness) {
    let mut rng = Rng64::seed_from(8);
    let x: Vec<f64> = (0..140).map(|_| rng.normal()).collect();
    let y: Vec<f64> = (0..140).map(|_| rng.normal()).collect();
    c.bench_function("dtw_full_140", |b| {
        b.iter(|| dtw::dtw_distance(black_box(&x), black_box(&y)))
    });
    c.bench_function("dtw_band10_140", |b| {
        b.iter(|| dtw::dtw_distance_banded(black_box(&x), black_box(&y), 10))
    });
    let data = paper_scale_data();
    c.bench_function("dtw_graph_140x26", |b| {
        b.iter(|| dtw::dtw_graph(black_box(&data)))
    });
}

fn main() {
    let mut harness = Harness::new("similarity_metrics");
    bench_metrics(&mut harness);
    bench_dtw(&mut harness);
    harness.finish();
}
