//! Benchmarks of one forward pass (and forward+backward) per model at
//! paper dimensions: V = 26, hidden = 32, Seq5 windows.

use ema_autodiff::Tape;
use ema_bench::Harness;
use ema_graph::AdjacencyMatrix;
use ema_models::{build_model, Forecaster, ForwardCtx, ModelConfig, ModelKind};
use ema_tensor::{Rng64, Tensor};
use std::hint::black_box;

const V: usize = 26;
const SEQ: usize = 5;

fn setup(kind: ModelKind) -> (Box<dyn Forecaster>, Tensor) {
    let mut rng = Rng64::seed_from(1);
    let graph = AdjacencyMatrix::new(Tensor::rand_uniform(&[V, V], 0.0, 1.0, &mut rng));
    let config = ModelConfig::default();
    let g = if kind.uses_graph() { Some(&graph) } else { None };
    let model = build_model(kind, V, SEQ, &config, g);
    let window = Tensor::rand_normal(&[SEQ, V], 0.0, 1.0, &mut rng);
    (model, window)
}

fn bench_forward(c: &mut Harness) {
    for kind in ModelKind::all() {
        let (model, window) = setup(kind);
        let mut rng = Rng64::seed_from(2);
        c.bench_function(&format!("forward_{}", kind.label()), |b| {
            b.iter(|| model.predict(black_box(&window), &mut rng))
        });
    }
}

fn bench_forward_backward(c: &mut Harness) {
    for kind in ModelKind::all() {
        let (model, window) = setup(kind);
        let target = Tensor::zeros(&[V]);
        let mut rng = Rng64::seed_from(3);
        c.bench_function(&format!("forward_backward_{}", kind.label()), |b| {
            b.iter(|| {
                let tape = Tape::new();
                let binding = model.params().bind(&tape);
                let mut ctx = ForwardCtx::train(&mut rng);
                let pred = model.predict_window(&tape, &binding, &window, &mut ctx);
                let tgt = tape.leaf(target.clone());
                let loss = tape.mse(pred, tgt);
                black_box(tape.backward(loss))
            })
        });
    }
}

fn main() {
    let mut harness = Harness::new("model_step");
    bench_forward(&mut harness);
    bench_forward_backward(&mut harness);
    harness.finish();
}
