//! Microbenchmarks of the tensor substrate at EMA-relevant sizes
//! (V = 26 variables, hidden = 32).

use ema_bench::Harness;
use ema_tensor::{Rng64, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Harness) {
    let mut rng = Rng64::seed_from(1);
    let a = Tensor::rand_normal(&[26, 32], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(&[32, 32], 0.0, 1.0, &mut rng);
    c.bench_function("matmul_26x32_32x32", |bencher| {
        bencher.iter(|| black_box(&a).matmul(black_box(&b)))
    });

    let big_a = Tensor::rand_normal(&[128, 128], 0.0, 1.0, &mut rng);
    let big_b = Tensor::rand_normal(&[128, 128], 0.0, 1.0, &mut rng);
    c.bench_function("matmul_128x128", |bencher| {
        bencher.iter(|| black_box(&big_a).matmul(black_box(&big_b)))
    });
}

fn bench_elementwise(c: &mut Harness) {
    let mut rng = Rng64::seed_from(2);
    let a = Tensor::rand_normal(&[26, 32], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(&[26, 32], 0.0, 1.0, &mut rng);
    c.bench_function("elementwise_add_26x32", |bencher| {
        bencher.iter(|| black_box(&a).add(black_box(&b)))
    });
    c.bench_function("tanh_26x32", |bencher| {
        bencher.iter(|| black_box(&a).tanh())
    });
    c.bench_function("softmax_rows_26x32", |bencher| {
        bencher.iter(|| black_box(&a).softmax_last())
    });
}

fn bench_reductions(c: &mut Harness) {
    let mut rng = Rng64::seed_from(3);
    let a = Tensor::rand_normal(&[140, 26], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(&[140, 26], 0.0, 1.0, &mut rng);
    c.bench_function("mse_140x26", |bencher| {
        bencher.iter(|| black_box(&a).mse(black_box(&b)))
    });
    c.bench_function("col_sums_140x26", |bencher| {
        bencher.iter(|| black_box(&a).col_sums())
    });
}

fn main() {
    let mut harness = Harness::new("tensor_ops");
    bench_matmul(&mut harness);
    bench_elementwise(&mut harness);
    bench_reductions(&mut harness);
    harness.finish();
}
