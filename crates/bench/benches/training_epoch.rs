//! Benchmarks of one full-batch training epoch per model on a
//! paper-sized individual (T ≈ 140, V = 26, Seq5): the unit of work the
//! experiments repeat 300 times per individual. (The series is
//! shortened to T = 80 and sampling kept small so the suite stays
//! tractable on a single core; relative model costs are unaffected.)

use ema_autodiff::{Grads, Tape};
use ema_bench::Harness;
use ema_core::{train_model, TrainConfig};
use ema_data::{make_windows, split_train_test};
use ema_graph::AdjacencyMatrix;
use ema_models::{build_model, ForwardCtx, ModelConfig, ModelKind, WindowBatch};
use ema_nn::{Adam, Optimizer, OptimizerConfig};
use ema_obs::ObsMode;
use ema_tensor::{Rng64, Tensor};
use std::hint::black_box;

const V: usize = 26;
const SEQ: usize = 5;

fn bench_epoch(c: &mut Harness) {
    let mut rng = Rng64::seed_from(1);
    let data = Tensor::rand_normal(&[80, V], 0.0, 1.0, &mut rng);
    let (train, _) = split_train_test(&data, 0.7);
    let windows = make_windows(&train, SEQ);
    let targets = windows.targets_matrix();
    let graph = AdjacencyMatrix::new(Tensor::rand_uniform(&[V, V], 0.0, 1.0, &mut rng));

    for kind in ModelKind::all() {
        let g = if kind.uses_graph() { Some(&graph) } else { None };
        let mut model = build_model(kind, V, SEQ, &ModelConfig::default(), g);
        let mut adam = Adam::new(OptimizerConfig::with_learning_rate(0.01));
        let mut drop_rng = Rng64::seed_from(2);
        // Persistent workspaces, exactly like `ema_core::train_model`:
        // the measured iteration is a *steady-state* epoch on the
        // batched forward path (one tape graph over all windows) —
        // tape node storage, gradient slots, the stacked window batch,
        // the target-leaf tape prefix and pooled tensor buffers all
        // carried over from the previous epoch.
        let mut tape = Tape::new();
        let mut grads = Grads::empty();
        let batch = WindowBatch::from_windows(&windows.inputs);
        let tgt = tape.leaf(targets.clone());
        let keep = tape.len();
        c.bench_function(&format!("train_epoch_{}", kind.label()), |b| {
            b.iter(|| {
                tape.reset_to(keep);
                let binding = model.params().bind(&tape);
                let mut ctx = ForwardCtx::train(&mut drop_rng);
                let stacked = model.predict_batch(&tape, &binding, &batch, &mut ctx);
                let loss = tape.mse(stacked, tgt);
                tape.backward_into(loss, &mut grads);
                adam.step(model.params_mut(), &binding, &grads);
                black_box(tape.value(loss))
            })
        });
    }
}

/// The observability tax: the same short LSTM training run timed under
/// `EMA_OBS=off` (inert span guards, kernel counting disabled) and
/// `full` (spans profiled + emitted, kernel FLOP/byte counters live).
/// The two medians land in `BENCH_training_epoch.json`, so `bench_gate`
/// holds the line on both and their ratio tracks the instrumentation
/// overhead — the contract is that `full` stays within a few percent of
/// `off` on the epoch hot path.
fn bench_obs_overhead(c: &mut Harness) {
    let mut rng = Rng64::seed_from(3);
    let data = Tensor::rand_normal(&[80, V], 0.0, 1.0, &mut rng);
    let (train, _) = split_train_test(&data, 0.7);
    let windows = make_windows(&train, SEQ);
    let config = TrainConfig { epochs: 5, ..TrainConfig::default() };
    let restore = ema_obs::mode();
    for (label, mode) in [("off", ObsMode::Off), ("full", ObsMode::Full)] {
        ema_obs::set_mode(mode);
        let mut model = build_model(ModelKind::Lstm, V, SEQ, &ModelConfig::default(), None);
        c.bench_function(&format!("obs_overhead_{label}"), |b| {
            b.iter(|| black_box(train_model(model.as_mut(), &windows, &config).final_loss()))
        });
    }
    ema_obs::set_mode(restore);
}

fn main() {
    let mut harness = Harness::new("training_epoch");
    bench_epoch(&mut harness);
    bench_obs_overhead(&mut harness);
    harness.finish();
}
