//! Minimal Criterion-style micro-benchmark harness.
//!
//! Each `[[bench]]` target (`harness = false`) builds a [`Harness`],
//! registers closures with [`Harness::bench_function`], and calls
//! [`Harness::finish`], which prints a table and writes
//! `results/BENCH_<suite>.json`.
//!
//! Methodology per benchmark: a wall-clock warmup estimates the
//! per-iteration cost, iterations are calibrated so one sample takes
//! roughly [`Config::sample_ms`], and the reported figure is the
//! median over [`Config::samples`] samples (median is robust to the
//! odd scheduler hiccup, unlike the mean).
//!
//! Knobs (for CI or quick local runs):
//! - `EMA_BENCH_SAMPLES`: sample count (default 15)
//! - `EMA_BENCH_SAMPLE_MS`: target milliseconds per sample (default 20)
//! - a positional CLI argument filters benchmarks by substring, as in
//!   `cargo bench -p ema-bench --bench tensor_ops -- matmul`

use ema_core::Json;
use std::time::Instant;

/// Harness-wide settings, resolved from the environment once.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Samples per benchmark; the median is reported.
    pub samples: usize,
    /// Target wall-clock per sample, in milliseconds.
    pub sample_ms: f64,
    /// Warmup wall-clock before calibration, in milliseconds.
    pub warmup_ms: f64,
}

impl Config {
    fn from_env() -> Self {
        let env_num = |key: &str, default: f64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| *v > 0.0)
                .unwrap_or(default)
        };
        Self {
            samples: env_num("EMA_BENCH_SAMPLES", 15.0) as usize,
            sample_ms: env_num("EMA_BENCH_SAMPLE_MS", 20.0),
            warmup_ms: env_num("EMA_BENCH_SAMPLE_MS", 20.0).min(50.0),
        }
    }
}

/// Timing results for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name as registered.
    pub name: String,
    /// Median nanoseconds per iteration over all samples.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Mean over all samples, ns per iteration.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Logical items processed per iteration (e.g. individuals per
    /// cohort run), when the benchmark declared any via
    /// [`Bencher::items`].
    pub items_per_iter: Option<f64>,
    /// Heap allocations per iteration, counted by the in-house
    /// [`crate::alloc::CountingAllocator`] over one untimed iteration
    /// run after the timed samples (steady state, so pools and
    /// persistent workspaces are warm).
    pub allocs_per_iter: Option<f64>,
    /// Peak heap bytes above the pre-iteration live footprint over the
    /// same untimed steady-state iteration — the bench's peak working
    /// set (a floor on true RSS; see `crate::alloc`).
    pub peak_bytes: Option<f64>,
}

impl BenchResult {
    /// Items per second at the median iteration time, when the
    /// benchmark declared an item count.
    #[must_use]
    pub fn throughput_per_sec(&self) -> Option<f64> {
        self.items_per_iter.map(|items| items * 1e9 / self.median_ns)
    }

    fn to_json_value(&self) -> Json {
        let mut members = vec![
            ("name", Json::Str(self.name.clone())),
            ("median_ns", Json::Num(self.median_ns)),
            ("min_ns", Json::Num(self.min_ns)),
            ("mean_ns", Json::Num(self.mean_ns)),
            ("samples", Json::Num(self.samples as f64)),
            ("iters_per_sample", Json::Num(self.iters_per_sample as f64)),
        ];
        if let Some(items) = self.items_per_iter {
            members.push(("items_per_iter", Json::Num(items)));
        }
        if let Some(tp) = self.throughput_per_sec() {
            members.push(("throughput_per_sec", Json::Num(tp)));
        }
        if let Some(allocs) = self.allocs_per_iter {
            members.push(("allocs_per_iter", Json::Num(allocs)));
        }
        if let Some(peak) = self.peak_bytes {
            members.push(("peak_bytes", Json::Num(peak)));
        }
        Json::obj(members)
    }
}

/// Per-benchmark driver handed to the registered closure; call
/// [`Bencher::iter`] exactly once with the workload.
pub struct Bencher {
    config: Config,
    items_per_iter: Option<f64>,
    result: Option<(f64, f64, f64, u64)>,
    allocs_per_iter: Option<f64>,
    peak_bytes: Option<f64>,
}

impl Bencher {
    /// Declares how many logical items one iteration processes (e.g.
    /// individuals per cohort run); the suite then reports and records
    /// a `throughput_per_sec` figure alongside the timing.
    pub fn items(&mut self, per_iter: f64) {
        self.items_per_iter = Some(per_iter);
    }

    /// Overrides the suite-wide sample count for this benchmark. Meant
    /// for macro-benchmarks (whole-study cohort streams) where one
    /// iteration costs seconds and the suite default would blow the
    /// bench budget. The committed baseline is recorded with the same
    /// override, so `bench_gate` comparisons stay
    /// methodology-identical.
    pub fn samples(&mut self, n: usize) {
        self.config.samples = n.max(1);
    }

    /// Warm up, calibrate and sample `f`, recording the statistics.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup: run until the warmup budget elapses, counting iters to
        // get a first cost estimate.
        let warmup_budget = self.config.warmup_ms / 1e3;
        let start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while start.elapsed().as_secs_f64() < warmup_budget {
            std::hint::black_box(f());
            warmup_iters += 1;
        }
        let est_ns = start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;

        // Calibrate so each sample takes ~sample_ms.
        let iters = ((self.config.sample_ms * 1e6 / est_ns.max(1.0)).ceil() as u64).max(1);

        let mut per_iter_ns = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        self.result = Some((median, min, mean, iters));

        // One extra untimed iteration under the counting allocator: by
        // now the workload is in steady state (pools warm, workspaces
        // grown), so the delta is the per-iteration heap-alloc count
        // the hot path actually pays. Rebasing the allocator's peak to
        // the current live footprint first makes the peak reading the
        // iteration's own high-water mark above steady state.
        let allocs_before = crate::alloc::alloc_count();
        let live_before = crate::alloc::live_bytes();
        crate::alloc::reset_peak_bytes();
        std::hint::black_box(f());
        self.allocs_per_iter = Some((crate::alloc::alloc_count() - allocs_before) as f64);
        self.peak_bytes =
            Some(crate::alloc::peak_bytes().saturating_sub(live_before) as f64);
    }
}

/// Collects benchmarks for one suite and writes the JSON record.
pub struct Harness {
    suite: String,
    config: Config,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a harness for the named suite, reading the env config
    /// and an optional substring filter from the CLI arguments (flags
    /// such as `--bench` that cargo forwards are ignored).
    #[must_use]
    pub fn new(suite: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Self {
            suite: suite.to_string(),
            config: Config::from_env(),
            filter,
            results: Vec::new(),
        }
    }

    /// Runs one benchmark (unless filtered out) and records its stats.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            config: self.config,
            items_per_iter: None,
            result: None,
            allocs_per_iter: None,
            peak_bytes: None,
        };
        {
            let _bench_span = ema_obs::span!("bench", suite = self.suite.as_str(), name = name);
            f(&mut bencher);
            // Attribute the benchmark's kernel work to the bench span's
            // phase rather than letting it leak into a later drain site.
            ema_obs::drain_kernel_counters();
        }
        let (median_ns, min_ns, mean_ns, iters) = bencher
            .result
            .expect("benchmark closure must call Bencher::iter");
        ema_obs::recorder().set_gauge(&format!("bench_median_ns.{}.{name}", self.suite), median_ns);
        if let Some(allocs) = bencher.allocs_per_iter {
            ema_obs::recorder()
                .set_gauge(&format!("bench_allocs_per_iter.{}.{name}", self.suite), allocs);
        }
        if let Some(peak) = bencher.peak_bytes {
            ema_obs::recorder()
                .set_gauge(&format!("bench_peak_bytes.{}.{name}", self.suite), peak);
        }
        let result = BenchResult {
            name: name.to_string(),
            median_ns,
            min_ns,
            mean_ns,
            // The bencher's own config: Bencher::samples may have
            // overridden the suite-wide count.
            samples: bencher.config.samples,
            iters_per_sample: iters,
            items_per_iter: bencher.items_per_iter,
            allocs_per_iter: bencher.allocs_per_iter,
            peak_bytes: bencher.peak_bytes,
        };
        let throughput = result
            .throughput_per_sec()
            .map(|tp| format!("  ({tp:.2} items/s)"))
            .unwrap_or_default();
        let allocs = result
            .allocs_per_iter
            .map(|a| {
                let peak = result
                    .peak_bytes
                    .map(|p| format!(", peak {}", format_bytes(p)))
                    .unwrap_or_default();
                format!("  [{a:.0} allocs/iter{peak}]")
            })
            .unwrap_or_default();
        println!(
            "{:<40} median {:>12} /iter{}{}  (min {}, {} samples × {} iters)",
            name,
            format_ns(median_ns),
            throughput,
            allocs,
            format_ns(min_ns),
            result.samples,
            iters,
        );
        self.results.push(result);
    }

    /// Prints the footer and writes `results/BENCH_<suite>.json`. The
    /// record carries the kernel backend the suite ran on (`bench_gate`
    /// reads only the `benchmarks` array, so the extra field is inert
    /// for gating but keeps baselines self-describing).
    pub fn finish(self) {
        let backend = ema_tensor::KernelBackend::active().label();
        ema_obs::point!("bench_suite_done", suite = self.suite.as_str(), benchmarks = self.results.len());
        let json = Json::obj(vec![
            ("suite", Json::Str(self.suite.clone())),
            ("kernel_backend", Json::Str(backend.to_string())),
            (
                "benchmarks",
                Json::Arr(self.results.iter().map(BenchResult::to_json_value).collect()),
            ),
        ])
        .pretty();
        if let Some(path) = crate::save_json(&format!("BENCH_{}", self.suite), &json) {
            println!(
                "{} benchmarks ({backend} kernels) -> {}",
                self.results.len(),
                path.display()
            );
        }
    }
}

/// Renders a byte figure with a readable unit.
fn format_bytes(bytes: f64) -> String {
    if bytes < 1024.0 {
        format!("{bytes:.0} B")
    } else if bytes < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bytes / 1024.0)
    } else if bytes < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bytes / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", bytes / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Renders a nanosecond figure with a readable unit.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_harness_records() {
        let mut bencher = Bencher {
            config: Config {
                samples: 3,
                sample_ms: 0.05,
                warmup_ms: 0.05,
            },
            items_per_iter: None,
            result: None,
            allocs_per_iter: None,
            peak_bytes: None,
        };
        bencher.iter(|| std::hint::black_box(42u64.wrapping_mul(7)));
        let (median, min, mean, iters) = bencher.result.unwrap();
        assert!(median > 0.0 && min > 0.0 && mean > 0.0);
        assert!(min <= median && median <= mean * 3.0);
        assert!(iters >= 1);
        // An allocation-free workload measures zero allocs per iter.
        assert_eq!(bencher.allocs_per_iter, Some(0.0));
    }

    #[test]
    fn bencher_counts_allocating_workloads() {
        let mut bencher = Bencher {
            config: Config {
                samples: 2,
                sample_ms: 0.05,
                warmup_ms: 0.05,
            },
            items_per_iter: None,
            result: None,
            allocs_per_iter: None,
            peak_bytes: None,
        };
        bencher.iter(|| std::hint::black_box(vec![0u8; 256]));
        assert!(bencher.allocs_per_iter.unwrap() >= 1.0);
    }

    #[test]
    fn results_serialise_to_bench_json_shape() {
        let r = BenchResult {
            name: "matmul".into(),
            median_ns: 1234.5,
            min_ns: 1200.0,
            mean_ns: 1250.0,
            samples: 15,
            iters_per_sample: 1000,
            items_per_iter: None,
            allocs_per_iter: None,
            peak_bytes: None,
        };
        let v = r.to_json_value();
        assert_eq!(v.require("name").unwrap().to_str().unwrap(), "matmul");
        assert_eq!(v.require("median_ns").unwrap().to_f64().unwrap(), 1234.5);
        // Timing-only benchmarks carry no throughput members.
        assert!(v.require("throughput_per_sec").is_err());
        // Round trip through the writer/parser.
        let parsed = Json::parse(&v.pretty()).unwrap();
        assert_eq!(parsed.require("samples").unwrap().to_usize().unwrap(), 15);
    }

    #[test]
    fn throughput_derives_from_items_and_median() {
        let r = BenchResult {
            name: "cohort".into(),
            median_ns: 2e9, // 2 s per iteration
            min_ns: 1.9e9,
            mean_ns: 2.1e9,
            samples: 5,
            iters_per_sample: 1,
            items_per_iter: Some(10.0),
            allocs_per_iter: Some(12.0),
            peak_bytes: Some(4096.0),
        };
        assert_eq!(r.throughput_per_sec(), Some(5.0));
        let v = r.to_json_value();
        assert_eq!(v.require("items_per_iter").unwrap().to_f64().unwrap(), 10.0);
        assert_eq!(v.require("throughput_per_sec").unwrap().to_f64().unwrap(), 5.0);
        assert_eq!(v.require("allocs_per_iter").unwrap().to_f64().unwrap(), 12.0);
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12e9).ends_with('s'));
    }
}
