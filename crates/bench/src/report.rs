//! Analysis of obs run manifests: the logic behind the `obs_report`
//! binary.
//!
//! A [`RunSummary`] is the parsed form of one `<run>.summary.json`
//! manifest (see `ema_obs::manifest`). [`render_report`] turns it into
//! the human-readable profile/kernel/utilization report; [`diff_profiles`]
//! compares two runs' span profiles path by path and flags self-time
//! regressions using the same leave-one-out load normalization as the
//! `bench_gate` binary — shared-host load inflates every path together,
//! a real regression moves one path relative to the others.
//!
//! Everything here is pure (JSON in, text out) so the report formats
//! and the diff flagging are unit-testable without running experiments.

use ema_obs::{Histogram, Json, Profile, ProfileNode};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Self-time floor for diffing: paths whose baseline self time is below
/// this are too noisy to flag (a few scheduler ticks flip their ratio).
pub const DEFAULT_MIN_DIFF_SELF_NS: u64 = 100_000;

/// Diff tolerance as a fraction: flag paths >15% over their
/// load-normalized baseline (`bench_gate`'s default).
pub const DEFAULT_DIFF_TOLERANCE: f64 = 0.15;

/// Upper bound on the diff's load-normalization scale, mirroring
/// `bench_gate`: a uniform slowdown beyond this still gets flagged.
const MAX_LOAD_SCALE: f64 = 1.5;

/// One run's parsed summary manifest.
pub struct RunSummary {
    /// The run name (`run` field; file stems may carry a `.N` suffix).
    pub name: String,
    /// Obs mode the run was recorded under.
    pub mode: String,
    /// Total run wall time in nanoseconds.
    pub wall_ns: u64,
    /// `(title, wall_ns)` per phase, in run order.
    pub phases: Vec<(String, u64)>,
    /// Metrics counters (kernel work, pool hits, worker utilization).
    pub counters: BTreeMap<String, u64>,
    /// Metrics gauges (`tape_nodes`, bench medians).
    pub gauges: BTreeMap<String, f64>,
    /// Metrics histograms that parse back (job latency, losses).
    pub histograms: BTreeMap<String, Histogram>,
    /// The aggregated span profile.
    pub profile: Profile,
}

impl RunSummary {
    /// Parses a summary manifest. Only `run` and `wall_ns` are hard
    /// requirements; everything else degrades to empty so a report can
    /// still render for partial manifests.
    pub fn from_json(j: &Json) -> Result<RunSummary, String> {
        let name = j
            .get("run")
            .and_then(Json::as_str)
            .ok_or("summary has no 'run' field — is this a run summary manifest?")?
            .to_string();
        let mode = j.get("mode").and_then(Json::as_str).unwrap_or("summary").to_string();
        let wall_ns =
            j.get("wall_ns").and_then(Json::as_usize).ok_or("summary has no 'wall_ns'")? as u64;
        let phases = j
            .get("phases")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|p| {
                        Some((
                            p.get("title")?.as_str()?.to_string(),
                            p.get("wall_ns")?.as_usize()? as u64,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let metrics = j.get("metrics");
        let counters = metrics
            .and_then(|m| m.get("counters"))
            .map(|c| match c {
                Json::Obj(pairs) => pairs
                    .iter()
                    .filter_map(|(k, v)| Some((k.clone(), v.as_usize()? as u64)))
                    .collect(),
                _ => BTreeMap::new(),
            })
            .unwrap_or_default();
        let gauges = metrics
            .and_then(|m| m.get("gauges"))
            .map(|g| match g {
                Json::Obj(pairs) => {
                    pairs.iter().filter_map(|(k, v)| Some((k.clone(), v.as_f64()?))).collect()
                }
                _ => BTreeMap::new(),
            })
            .unwrap_or_default();
        let histograms = metrics
            .and_then(|m| m.get("histograms"))
            .map(|h| match h {
                Json::Obj(pairs) => pairs
                    .iter()
                    .filter_map(|(k, v)| Some((k.clone(), Histogram::from_json(v)?)))
                    .collect(),
                _ => BTreeMap::new(),
            })
            .unwrap_or_default();
        let profile = j.get("profile").and_then(Profile::from_json).unwrap_or_default();
        Ok(RunSummary { name, mode, wall_ns, phases, counters, gauges, histograms, profile })
    }
}

/// Formats nanoseconds with a unit that keeps 3-4 significant digits.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Renders the span profile as an indented tree, children sorted by
/// total time descending, with calls/total/self/min/max columns.
fn render_profile(out: &mut String, profile: &Profile, wall_ns: u64) {
    let coverage = if wall_ns > 0 {
        100.0 * profile.total_root_ns() as f64 / wall_ns as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "span profile — root coverage {coverage:.1}% of wall \
         (can exceed 100% when worker threads overlap)"
    );
    let _ = writeln!(
        out,
        "  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  path",
        "calls", "total", "self", "min", "max"
    );
    fn walk(out: &mut String, name: &str, node: &ProfileNode, depth: usize) {
        let _ = writeln!(
            out,
            "  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {}{}",
            node.count(),
            fmt_ns(node.total_ns()),
            fmt_ns(node.self_ns()),
            fmt_ns(node.min_ns()),
            fmt_ns(node.max_ns()),
            "  ".repeat(depth),
            name
        );
        let mut children: Vec<(&str, &ProfileNode)> = node.children().collect();
        children.sort_by(|a, b| b.1.total_ns().cmp(&a.1.total_ns()).then(a.0.cmp(b.0)));
        for (child_name, child) in children {
            walk(out, child_name, child, depth + 1);
        }
    }
    let mut roots: Vec<(&str, &ProfileNode)> = profile.roots().collect();
    roots.sort_by(|a, b| b.1.total_ns().cmp(&a.1.total_ns()).then(a.0.cmp(b.0)));
    for (name, root) in roots {
        walk(out, name, root, 0);
    }
}

/// One row of the kernel work table: `kernel.<phase>.<backend>.*`
/// counters joined with the phase's wall time.
struct KernelRow {
    phase: String,
    backend: String,
    calls: u64,
    flops: u64,
    bytes: u64,
}

/// Collects `kernel.<phase>.<backend>.{calls,flops,bytes}` counters
/// into rows (phase titles may themselves contain dots — the backend
/// and kind are the *last two* dot-separated segments).
fn kernel_rows(counters: &BTreeMap<String, u64>) -> Vec<KernelRow> {
    let mut rows: BTreeMap<(String, String), KernelRow> = BTreeMap::new();
    for (key, &value) in counters {
        let Some(rest) = key.strip_prefix("kernel.") else { continue };
        let Some((rest, kind)) = rest.rsplit_once('.') else { continue };
        let Some((phase, backend)) = rest.rsplit_once('.') else { continue };
        if !matches!(backend, "scalar" | "simd") {
            continue;
        }
        let row = rows.entry((phase.to_string(), backend.to_string())).or_insert_with(|| {
            KernelRow {
                phase: phase.to_string(),
                backend: backend.to_string(),
                calls: 0,
                flops: 0,
                bytes: 0,
            }
        });
        match kind {
            "calls" => row.calls = value,
            "flops" => row.flops = value,
            "bytes" => row.bytes = value,
            _ => {}
        }
    }
    rows.into_values().collect()
}

/// Renders the kernel work table: achieved GFLOP/s relates each phase's
/// FLOPs to that phase's wall time (the run wall when the phase is the
/// synthetic `run` bucket), so overlapping workers show up as > 1-core
/// throughput.
fn render_kernel_table(out: &mut String, s: &RunSummary) {
    let rows = kernel_rows(&s.counters);
    if rows.is_empty() {
        return;
    }
    let _ = writeln!(out, "kernel work (matmul funnel)");
    let _ = writeln!(
        out,
        "  {:<14} {:<7} {:>12} {:>10} {:>10} {:>10}",
        "phase", "backend", "calls", "gflop", "gflop/s", "gbytes"
    );
    for row in rows {
        let phase_wall = s
            .phases
            .iter()
            .find(|(title, _)| *title == row.phase)
            .map_or(s.wall_ns, |&(_, wall)| wall);
        let gflops = row.flops as f64 / 1e9;
        let rate = if phase_wall > 0 {
            // flop/ns ≡ GFLOP/s: the 1e9s cancel.
            row.flops as f64 / phase_wall as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {:<14} {:<7} {:>12} {:>10.3} {:>10.2} {:>10.3}",
            row.phase,
            row.backend,
            row.calls,
            gflops,
            rate,
            row.bytes as f64 / 1e9
        );
    }
    let (hits, misses) = (s.counters.get("pool_hits"), s.counters.get("pool_misses"));
    if let (Some(&hits), Some(&misses)) = (hits, misses) {
        let total = hits + misses;
        let rate = if total > 0 { 100.0 * hits as f64 / total as f64 } else { 0.0 };
        let _ = writeln!(out, "  pool: {hits} hits / {misses} misses ({rate:.1}% hit rate)");
    }
    let cluster = (
        s.counters.get("cluster.cache_hits"),
        s.counters.get("cluster.cache_misses"),
    );
    if let (Some(&hits), Some(&misses)) = cluster {
        let total = hits + misses;
        let rate = if total > 0 { 100.0 * hits as f64 / total as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "  cluster cache: {hits} hits / {misses} misses ({rate:.1}% hit rate; \
             misses = cluster trainings, hits = warm starts)"
        );
    }
    if let Some(&nodes) = s.gauges.get("tape_nodes") {
        let _ = writeln!(out, "  tape: {nodes:.0} nodes per epoch graph");
    }
}

/// Renders per-worker utilization (busy fraction of each worker's run
/// loop) plus job-latency quantiles from the `exec.job_latency_ns`
/// histogram.
fn render_workers(out: &mut String, s: &RunSummary) {
    let mut workers: BTreeMap<usize, (u64, u64, u64)> = BTreeMap::new();
    for (key, &value) in &s.counters {
        let Some(rest) = key.strip_prefix("exec.worker_") else { continue };
        let Some((kind, worker)) = rest.split_once('.') else { continue };
        let Ok(worker) = worker.parse::<usize>() else { continue };
        let entry = workers.entry(worker).or_insert((0, 0, 0));
        match kind {
            "busy_ns" => entry.0 = value,
            "wait_ns" => entry.1 = value,
            "jobs" => entry.2 = value,
            _ => {}
        }
    }
    if workers.is_empty() {
        return;
    }
    let _ = writeln!(out, "executor utilization");
    let _ = writeln!(
        out,
        "  {:>6} {:>8} {:>12} {:>12} {:>8}",
        "worker", "jobs", "busy", "wait", "busy%"
    );
    for (worker, (busy, wait, jobs)) in &workers {
        let loop_ns = busy + wait;
        let pct = if loop_ns > 0 { 100.0 * *busy as f64 / loop_ns as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "  {:>6} {:>8} {:>12} {:>12} {:>7.1}%",
            worker,
            jobs,
            fmt_ns(*busy),
            fmt_ns(*wait),
            pct
        );
    }
    // Shard balance for sharded cohort runs: each shard is one job, so
    // the per-worker `jobs` column above is the balance; this line adds
    // the stream totals (how many shards, how many individuals, how
    // full the average shard was).
    if let (Some(&shards), Some(&individuals)) =
        (s.counters.get("exec.shard_batches"), s.counters.get("exec.shard_individuals"))
    {
        let avg = if shards > 0 { individuals as f64 / shards as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "  shards: {shards} batches, {individuals} individuals (avg {avg:.1}/shard)"
        );
    }
    // A sharded run that asked for the cohort-batched path but got the
    // per-individual fallback (model without a cohort forward) should
    // be visible, not silent.
    if let Some(&fallbacks) = s.counters.get("exec.cohort_fallbacks") {
        let _ = writeln!(
            out,
            "  cohort fallbacks: {fallbacks} run(s) fell back to the per-individual path"
        );
    }
    if let Some(h) = s.histograms.get("exec.job_latency_ns") {
        if let (Some(p50), Some(p99)) = (h.quantile(0.50), h.quantile(0.99)) {
            let _ = writeln!(
                out,
                "  job latency: p50 ≈ {}, p99 ≈ {} over {} jobs (bucket estimates)",
                fmt_ns(p50 as u64),
                fmt_ns(p99 as u64),
                h.total()
            );
        }
    }
}

/// Renders the full single-run report.
#[must_use]
pub fn render_report(s: &RunSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "run '{}' (mode {}), wall {}", s.name, s.mode, fmt_ns(s.wall_ns));
    if !s.phases.is_empty() {
        let phases: Vec<String> =
            s.phases.iter().map(|(title, wall)| format!("{title} {}", fmt_ns(*wall))).collect();
        let _ = writeln!(out, "phases: {}", phases.join(", "));
    }
    let _ = writeln!(out);
    if s.profile.is_empty() {
        let _ = writeln!(out, "span profile: EMPTY — no spans closed during this run");
    } else {
        render_profile(&mut out, &s.profile, s.wall_ns);
    }
    let _ = writeln!(out);
    render_kernel_table(&mut out, s);
    render_workers(&mut out, s);
    out
}

/// One path's before/after self time in a two-run diff.
pub struct DiffLine {
    /// The `;`-joined call path.
    pub path: String,
    /// Baseline self nanoseconds.
    pub base_self_ns: u64,
    /// Candidate self nanoseconds.
    pub cand_self_ns: u64,
    /// Candidate / baseline self-time ratio.
    pub ratio: f64,
    /// True when the path slowed beyond the load-normalized tolerance.
    pub flagged: bool,
}

/// Diffs two runs' span profiles by call path (self time only — total
/// time double-counts a regression in every ancestor). Paths below
/// `min_self_ns` in the baseline are skipped as noise; the remaining
/// ratios are load-normalized by the **least-inflated sibling path**
/// (leave-one-out minimum ratio, clamped to `[1, 1.5]` like
/// `bench_gate`), and a path is flagged when it still sits more than
/// `tolerance` above that scale. Returned sorted by ratio descending.
#[must_use]
pub fn diff_profiles(
    base: &Profile,
    cand: &Profile,
    min_self_ns: u64,
    tolerance: f64,
) -> Vec<DiffLine> {
    let base_flat: BTreeMap<String, u64> =
        base.flatten().into_iter().map(|(path, node)| (path, node.self_ns())).collect();
    let cand_flat: BTreeMap<String, u64> =
        cand.flatten().into_iter().map(|(path, node)| (path, node.self_ns())).collect();
    let matched: Vec<(String, u64, u64)> = base_flat
        .iter()
        .filter(|(_, &self_ns)| self_ns >= min_self_ns)
        .filter_map(|(path, &b)| Some((path.clone(), b, *cand_flat.get(path)?)))
        .collect();
    let ratios: Vec<f64> = matched.iter().map(|(_, b, c)| *c as f64 / *b as f64).collect();
    let mut lines: Vec<DiffLine> = matched
        .into_iter()
        .zip(&ratios)
        .enumerate()
        .map(|(i, ((path, base_self_ns, cand_self_ns), &ratio))| {
            let scale = ratios
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &r)| r)
                .min_by(f64::total_cmp)
                .map_or(1.0, |m| m.clamp(1.0, MAX_LOAD_SCALE));
            DiffLine {
                path,
                base_self_ns,
                cand_self_ns,
                ratio,
                flagged: ratio > scale * (1.0 + tolerance),
            }
        })
        .collect();
    lines.sort_by(|a, b| b.ratio.total_cmp(&a.ratio).then(a.path.cmp(&b.path)));
    lines
}

/// Renders a two-run diff; returns the text and the flagged-path count.
#[must_use]
pub fn render_diff(base: &RunSummary, cand: &RunSummary, tolerance: f64) -> (String, usize) {
    let lines = diff_profiles(&base.profile, &cand.profile, DEFAULT_MIN_DIFF_SELF_NS, tolerance);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile diff: '{}' ({}) -> '{}' ({}), paths with self ≥ {}",
        base.name,
        fmt_ns(base.wall_ns),
        cand.name,
        fmt_ns(cand.wall_ns),
        fmt_ns(DEFAULT_MIN_DIFF_SELF_NS)
    );
    if lines.is_empty() {
        let _ = writeln!(out, "no call paths above the self-time floor in both runs");
        return (out, 0);
    }
    let _ = writeln!(
        out,
        "  {:<9} {:>10} {:>10} {:>8}  path",
        "", "base self", "cand self", "ratio"
    );
    let mut flagged = 0usize;
    for line in &lines {
        let marker = if line.flagged {
            flagged += 1;
            "SLOWER >"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {:<9} {:>10} {:>10} {:>7.2}x  {}",
            marker,
            fmt_ns(line.base_self_ns),
            fmt_ns(line.cand_self_ns),
            line.ratio,
            line.path
        );
    }
    let _ = writeln!(
        out,
        "{} path(s) beyond the load-normalized {:.0}% tolerance",
        flagged,
        tolerance * 100.0
    );
    (out, flagged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_from(paths: &[(&str, u64)]) -> Profile {
        // Build via the JSON form so tests stay decoupled from how
        // records accumulate: each (path, self_ns) becomes a chain of
        // single-child nodes whose leaf holds the time.
        let mut p = Profile::new();
        for (path, self_ns) in paths {
            let parts: Vec<String> = path.split(';').map(str::to_string).collect();
            for depth in 1..=parts.len() {
                // Give every prefix a call so intermediate nodes exist;
                // only the leaf carries the marked duration.
                let dur = if depth == parts.len() { *self_ns } else { 0 };
                p.record(&parts[..depth], dur);
            }
        }
        p
    }

    fn summary_with_profile(name: &str, profile: Profile) -> RunSummary {
        RunSummary {
            name: name.to_string(),
            mode: "summary".to_string(),
            wall_ns: 1_000_000_000,
            phases: vec![("train".to_string(), 800_000_000)],
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            profile,
        }
    }

    #[test]
    fn parses_a_manifest_and_renders_every_section() {
        let manifest = Json::obj(vec![
            ("run", Json::from("probe")),
            ("mode", Json::from("full")),
            ("wall_ns", Json::from(2_000_000_000u64)),
            (
                "phases",
                Json::Arr(vec![Json::obj(vec![
                    ("title", Json::from("train")),
                    ("start_ns", Json::from(0u64)),
                    ("wall_ns", Json::from(1_500_000_000u64)),
                ])]),
            ),
            (
                "metrics",
                Json::obj(vec![
                    (
                        "counters",
                        Json::obj(vec![
                            ("kernel.train.simd.calls", Json::from(100u64)),
                            ("kernel.train.simd.flops", Json::from(3_000_000_000u64)),
                            ("kernel.train.simd.bytes", Json::from(400_000_000u64)),
                            ("exec.worker_busy_ns.0", Json::from(900_000_000u64)),
                            ("exec.worker_wait_ns.0", Json::from(100_000_000u64)),
                            ("exec.worker_jobs.0", Json::from(4u64)),
                            ("exec.shard_batches", Json::from(4u64)),
                            ("exec.shard_individuals", Json::from(10u64)),
                            ("exec.cohort_fallbacks", Json::from(1u64)),
                            ("pool_hits", Json::from(90u64)),
                            ("pool_misses", Json::from(10u64)),
                            ("cluster.cache_hits", Json::from(8u64)),
                            ("cluster.cache_misses", Json::from(2u64)),
                        ]),
                    ),
                    ("gauges", Json::obj(vec![("tape_nodes", Json::Num(1234.0))])),
                    (
                        "histograms",
                        Json::obj(vec![(
                            "exec.job_latency_ns",
                            Json::obj(vec![
                                ("bounds", Json::Arr(vec![Json::Num(1e6), Json::Num(1e9)])),
                                (
                                    "counts",
                                    Json::Arr(vec![
                                        Json::from(0u64),
                                        Json::from(4u64),
                                        Json::from(0u64),
                                    ]),
                                ),
                                ("total", Json::from(4u64)),
                                ("sum", Json::Num(2e9)),
                                ("min", Json::Num(4e8)),
                                ("max", Json::Num(6e8)),
                            ]),
                        )]),
                    ),
                ]),
            ),
            (
                "profile",
                profile_from(&[("main;train", 1_400_000_000), ("main", 500_000_000)]).to_json(),
            ),
        ]);
        let s = RunSummary::from_json(&manifest).expect("parses");
        assert_eq!(s.name, "probe");
        assert_eq!(s.phases, vec![("train".to_string(), 1_500_000_000)]);
        assert!(!s.profile.is_empty());
        let report = render_report(&s);
        // Profile tree with both paths.
        assert!(report.contains("span profile"), "{report}");
        assert!(report.contains("main"), "{report}");
        assert!(report.contains("train"), "{report}");
        // Kernel table: 3 GFLOP over the 1.5 s train phase = 2 GFLOP/s.
        assert!(report.contains("simd"), "{report}");
        assert!(report.contains("2.00"), "{report}");
        // Pool, tape, worker and latency sections all render.
        assert!(report.contains("90.0% hit rate"), "{report}");
        assert!(
            report.contains("cluster cache: 8 hits / 2 misses (80.0% hit rate"),
            "{report}"
        );
        assert!(report.contains("1234 nodes"), "{report}");
        assert!(report.contains("90.0%"), "{report}");
        assert!(report.contains("shards: 4 batches, 10 individuals (avg 2.5/shard)"), "{report}");
        assert!(report.contains("cohort fallbacks: 1 run(s)"), "{report}");
        assert!(report.contains("p50"), "{report}");
    }

    #[test]
    fn report_marks_an_empty_profile() {
        let s = summary_with_profile("empty", Profile::new());
        assert!(render_report(&s).contains("EMPTY"));
    }

    #[test]
    fn diff_flags_the_artificially_slowed_path_only() {
        // Baseline: three paths of comparable weight. Candidate: one
        // path 2x slower, the others unchanged — the classic "this
        // change regressed one phase" fixture.
        let base = profile_from(&[
            ("run;train", 10_000_000),
            ("run;evaluate", 5_000_000),
            ("run;build_graph", 2_000_000),
        ]);
        let cand = profile_from(&[
            ("run;train", 20_000_000),
            ("run;evaluate", 5_000_000),
            ("run;build_graph", 2_000_000),
        ]);
        let lines = diff_profiles(&base, &cand, 1_000_000, 0.15);
        let flagged: Vec<&str> =
            lines.iter().filter(|l| l.flagged).map(|l| l.path.as_str()).collect();
        assert_eq!(flagged, vec!["run;train"]);
        // Sorted by ratio descending: the slowed path leads.
        assert_eq!(lines[0].path, "run;train");
        assert!((lines[0].ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diff_load_normalization_absorbs_uniform_slowdowns() {
        let base = profile_from(&[
            ("run;train", 10_000_000),
            ("run;evaluate", 5_000_000),
            ("run;build_graph", 2_000_000),
        ]);
        // Everything 1.3x slower: shared-host load, not a regression.
        let cand = profile_from(&[
            ("run;train", 13_000_000),
            ("run;evaluate", 6_500_000),
            ("run;build_graph", 2_600_000),
        ]);
        let lines = diff_profiles(&base, &cand, 1_000_000, 0.15);
        assert!(lines.iter().all(|l| !l.flagged), "uniform load must not flag");
        // But a uniform slowdown past the scale cap still fails.
        let cand = profile_from(&[
            ("run;train", 20_000_000),
            ("run;evaluate", 10_000_000),
            ("run;build_graph", 4_000_000),
        ]);
        let lines = diff_profiles(&base, &cand, 1_000_000, 0.15);
        assert!(lines.iter().all(|l| l.flagged), "2x everywhere exceeds the 1.5x cap");
    }

    #[test]
    fn diff_skips_paths_below_the_self_floor_and_unmatched_paths() {
        let base = profile_from(&[("run;tiny", 10), ("run;gone", 5_000_000), ("run;kept", 5_000_000)]);
        let cand = profile_from(&[("run;tiny", 10_000), ("run;kept", 5_000_000)]);
        let lines = diff_profiles(&base, &cand, 1_000_000, 0.15);
        let paths: Vec<&str> = lines.iter().map(|l| l.path.as_str()).collect();
        assert_eq!(paths, vec!["run;kept"], "tiny (below floor) and gone (unmatched) drop");
    }

    #[test]
    fn render_diff_counts_flags() {
        let base = summary_with_profile(
            "base",
            profile_from(&[("run;a", 10_000_000), ("run;b", 10_000_000)]),
        );
        let cand = summary_with_profile(
            "cand",
            profile_from(&[("run;a", 30_000_000), ("run;b", 10_000_000)]),
        );
        let (text, flagged) = render_diff(&base, &cand, DEFAULT_DIFF_TOLERANCE);
        assert_eq!(flagged, 1);
        assert!(text.contains("SLOWER"), "{text}");
        assert!(text.contains("run;a"), "{text}");
    }

    #[test]
    fn kernel_rows_parse_phases_containing_dots() {
        let mut counters = BTreeMap::new();
        counters.insert("kernel.phase.v2.scalar.calls".to_string(), 7u64);
        counters.insert("kernel.phase.v2.scalar.flops".to_string(), 42u64);
        let rows = kernel_rows(&counters);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].phase, "phase.v2");
        assert_eq!(rows[0].backend, "scalar");
        assert_eq!(rows[0].calls, 7);
        assert_eq!(rows[0].flops, 42);
    }
}
