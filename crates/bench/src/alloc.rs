//! A counting `#[global_allocator]` wrapper around the system allocator.
//!
//! Installed by this crate only (bench and test binaries that link
//! `ema-bench`), so experiment binaries in other crates run on the plain
//! system allocator. The counter lets the harness report
//! `allocs_per_iter` next to each timing — the allocation-free hot path
//! is *measured*, not asserted (see `Harness` / `BenchResult`).
//!
//! Counting is a single relaxed atomic increment per `alloc`/`realloc`,
//! cheap enough to leave on during timed samples without skewing the
//! medians.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap allocations observed process-wide since startup.
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts `alloc`/`realloc` calls.
pub struct CountingAllocator;

// SAFETY: delegates every operation verbatim to `System`; the only
// addition is a relaxed counter increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Total heap allocations since process start. Subtract two readings to
/// count the allocations of a code region (single-threaded regions give
/// exact figures; concurrent allocations from other threads are
/// attributed to whoever is measuring).
#[must_use]
pub fn alloc_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_observes_heap_allocations() {
        let before = alloc_count();
        let v: Vec<u64> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        drop(v);
        let after = alloc_count();
        assert!(after > before, "Vec::with_capacity must count as an alloc");
    }

    #[test]
    fn counter_is_monotonic() {
        let a = alloc_count();
        let b = alloc_count();
        assert!(b >= a);
    }
}
