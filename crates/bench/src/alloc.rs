//! A counting `#[global_allocator]` wrapper around the system allocator.
//!
//! Installed by this crate only (bench and test binaries that link
//! `ema-bench`), so experiment binaries in other crates run on the plain
//! system allocator. The counter lets the harness report
//! `allocs_per_iter` next to each timing — the allocation-free hot path
//! is *measured*, not asserted (see `Harness` / `BenchResult`).
//!
//! Counting is a handful of relaxed atomic operations per
//! `alloc`/`dealloc`/`realloc`, cheap enough to leave on during timed
//! samples without skewing the medians.
//!
//! Besides the call counter the wrapper tracks **live bytes** (current
//! heap footprint) and their high-water mark: [`peak_bytes`] after
//! [`reset_peak_bytes`] gives a region's peak heap usage — the
//! `peak_bytes` figure the harness reports per bench entry and the
//! peak-RSS proxy the cohort-scaling benches record. Byte accounting is
//! exact for what passes through the global allocator (it does not see
//! stack usage or mmapped regions, so it is a floor on true RSS).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap allocations observed process-wide since startup.
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
/// Bytes currently allocated (alloc minus dealloc), process-wide.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE_BYTES`] since startup or the last
/// [`reset_peak_bytes`].
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Records `size` freshly allocated bytes and pushes the peak.
fn record_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// System allocator wrapper that counts calls and live/peak bytes.
pub struct CountingAllocator;

// SAFETY: delegates every operation verbatim to `System`; the only
// additions are relaxed counter updates with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // The old block is gone, the new one is live.
            LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            record_alloc(new_size);
        }
        new_ptr
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Total heap allocations since process start. Subtract two readings to
/// count the allocations of a code region (single-threaded regions give
/// exact figures; concurrent allocations from other threads are
/// attributed to whoever is measuring).
#[must_use]
pub fn alloc_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// Bytes currently live on the heap (allocated minus freed).
#[must_use]
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start or the last
/// [`reset_peak_bytes`].
#[must_use]
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Rebases the peak to the current live footprint, so the next
/// [`peak_bytes`] reading reports the high-water mark of the region
/// that follows. Concurrent allocations from other threads are
/// attributed to whoever is measuring (same caveat as [`alloc_count`]).
pub fn reset_peak_bytes() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_observes_heap_allocations() {
        let before = alloc_count();
        let v: Vec<u64> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        drop(v);
        let after = alloc_count();
        assert!(after > before, "Vec::with_capacity must count as an alloc");
    }

    #[test]
    fn counter_is_monotonic() {
        let a = alloc_count();
        let b = alloc_count();
        assert!(b >= a);
    }

    #[test]
    fn peak_bytes_tracks_a_regions_high_water_mark() {
        reset_peak_bytes();
        let base = peak_bytes();
        let v: Vec<u8> = vec![0; 1 << 20];
        std::hint::black_box(&v);
        let with_buf = peak_bytes();
        assert!(
            with_buf >= base + (1 << 20),
            "peak {with_buf} did not cover the 1 MiB buffer over base {base}"
        );
        drop(v);
        // Peak is a high-water mark: freeing must not lower it.
        assert!(peak_bytes() >= with_buf);
        // Rebasing returns it to the (now lower) live footprint.
        reset_peak_bytes();
        assert!(peak_bytes() < with_buf);
    }

    #[test]
    fn live_bytes_falls_after_free() {
        let before = live_bytes();
        let v: Vec<u8> = vec![0; 1 << 16];
        std::hint::black_box(&v);
        assert!(live_bytes() >= before + (1 << 16));
        drop(v);
        assert!(live_bytes() < before + (1 << 16));
    }
}
