//! # ema-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation, plus in-house microbenchmarks of the substrate
//! (see [`harness`]; `cargo bench --workspace` writes
//! `results/BENCH_<suite>.json` records).
//!
//! ## Table/figure binaries
//!
//! | Binary | Paper artifact | Run |
//! |--------|----------------|-----|
//! | `table1` | Table I (scenario grid) | `cargo run --release -p ema-bench --bin table1` |
//! | `table2` | Table II (Experiment A) | `cargo run --release -p ema-bench --bin table2 -- --scale quick` |
//! | `table3` | Table III (Experiment B) | `cargo run --release -p ema-bench --bin table3 -- --scale quick` |
//! | `fig3`   | Fig. 3 (Experiment C) | `cargo run --release -p ema-bench --bin fig3 -- --scale quick` |
//! | `ablation` | design-choice ablations | `cargo run --release -p ema-bench --bin ablation -- --scale quick` |
//!
//! `--scale` is `tiny` (seconds), `quick` (minutes, default) or `full`
//! (the paper's N=100/V=26/300-epoch setting; hours of CPU). Each binary
//! prints the regenerated artifact next to the paper's reference values
//! and writes a JSON record under `results/`.
//!
//! Every binary also accepts `--threads N`, which sets the cohort
//! executor's worker count (default: `EMA_THREADS`, then available
//! parallelism). Results JSON is byte-identical at every thread count;
//! the flag only changes wall-clock time.

#![warn(missing_docs)]

pub mod alloc;
pub mod harness;
pub mod report;

pub use harness::{BenchResult, Bencher, Harness};

use ema_core::experiments::ExperimentScale;
use std::path::{Path, PathBuf};

/// Parses `--scale {tiny|quick|full}` from CLI args (default: quick).
///
/// # Panics
/// Panics with usage help on an unknown scale name.
#[must_use]
pub fn scale_from_args() -> ExperimentScale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = "quick".to_string();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--scale" {
            scale = iter
                .next()
                .expect("--scale requires a value: tiny | quick | full")
                .clone();
        }
    }
    match scale.as_str() {
        "tiny" => ExperimentScale::tiny(),
        "quick" => ExperimentScale::quick(),
        "full" => ExperimentScale::full(),
        other => panic!("unknown scale {other:?}; use tiny | quick | full"),
    }
}

/// Parses `--threads N` from the CLI args and installs it as the
/// process-wide cohort thread count ([`ema_core::exec`]). Without the
/// flag the `EMA_THREADS` env knob (then available parallelism)
/// applies. Returns the effective count either way; results are
/// byte-identical at any value.
///
/// # Panics
/// Panics with usage help when the value is missing or not a positive
/// integer.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--threads" {
            let raw = iter
                .next()
                .expect("--threads requires a positive integer value");
            let n: usize = raw
                .parse()
                .ok()
                .filter(|n| *n >= 1)
                .unwrap_or_else(|| panic!("--threads expects a positive integer, got {raw:?}"));
            ema_core::exec::set_global_threads(n);
            return n;
        }
    }
    ema_core::exec::default_threads()
}

/// Human-readable description of a scale, for run records.
#[must_use]
pub fn describe_scale(scale: &ExperimentScale) -> String {
    format!(
        "N={} V={} T̄={} epochs={} hidden={}",
        scale.num_individuals,
        scale.num_variables,
        scale.mean_time_points,
        scale.epochs,
        scale.hidden
    )
}

/// True when the CLI arguments carry the `--obs` flag, which forces
/// full-verbosity telemetry for this process (equivalent to
/// `EMA_OBS=full`).
#[must_use]
pub fn obs_flag_from_args() -> bool {
    std::env::args().any(|a| a == "--obs")
}

/// RAII handle for one binary's obs run manifest; finishes the run and
/// prints the summary path when dropped. Inert when obs is off.
pub struct ObsRun {
    active: bool,
}

impl ObsRun {
    /// Starts an obs run manifest named after the binary. `--obs` on
    /// the command line upgrades the mode to `full` (streamed JSONL);
    /// otherwise the `EMA_OBS` env knob applies (default `summary`,
    /// which still records a run summary). The run writes to
    /// `results/obs/<name>.jsonl` / `<name>.summary.json` at the
    /// workspace root.
    #[must_use]
    pub fn begin(name: &str, config: ema_obs::Json) -> Self {
        if obs_flag_from_args() {
            ema_obs::set_mode(ema_obs::ObsMode::Full);
        }
        let active = ema_obs::recorder().begin_run(name, config);
        Self { active }
    }

    /// Starts a run for a table/figure binary, recording its scale as
    /// the run config.
    #[must_use]
    pub fn for_scale(name: &str, scale: &ExperimentScale) -> Self {
        let config = ema_obs::Json::obj(vec![
            ("bin", ema_obs::Json::from(name)),
            ("num_individuals", ema_obs::Json::from(scale.num_individuals)),
            ("num_variables", ema_obs::Json::from(scale.num_variables)),
            ("mean_time_points", ema_obs::Json::from(scale.mean_time_points)),
            ("epochs", ema_obs::Json::from(scale.epochs)),
            ("hidden", ema_obs::Json::from(scale.hidden)),
        ]);
        Self::begin(name, config)
    }
}

impl Drop for ObsRun {
    fn drop(&mut self) {
        if self.active {
            if let Some(path) = ema_obs::recorder().finish_run() {
                println!("obs manifest at {}", path.display());
            }
        }
    }
}

/// Writes a JSON record under the workspace-root `results/<name>.json`
/// (created on demand), returning the path. Anchored at the workspace
/// root rather than the current directory because `cargo run` and
/// `cargo bench` start binaries in different directories. Failures are
/// reported but non-fatal — the table was already printed.
pub fn save_json(name: &str, json: &str) -> Option<PathBuf> {
    // crates/bench -> crates -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels below the workspace root");
    let dir = root.join("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results/: {e}");
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// The paper's reference values for Table II (Seq5 column), used by the
/// binaries to print side-by-side comparisons.
pub const PAPER_TABLE2_SEQ5: [(&str, f64); 13] = [
    ("Baseline LSTM", 1.022),
    ("A3TGCN_EUC", 1.034),
    ("ASTGCN_EUC", 0.885),
    ("MTGNN_EUC", 0.845),
    ("A3TGCN_DTW", 1.034),
    ("ASTGCN_DTW", 0.883),
    ("MTGNN_DTW", 0.846),
    ("A3TGCN_kNN", 1.035),
    ("ASTGCN_kNN", 0.893),
    ("MTGNN_kNN", 0.841),
    ("A3TGCN_CORR", 1.027),
    ("ASTGCN_CORR", 0.885),
    ("MTGNN_CORR", 0.840),
];

/// The paper's Table III reference values at GDT = 20% (Seq5).
pub const PAPER_TABLE3_GDT20: [(&str, f64); 15] = [
    ("A3TGCN_EUC", 1.034),
    ("ASTGCN_EUC", 0.885),
    ("MTGNN_EUC", 0.845),
    ("A3TGCN_DTW", 1.034),
    ("ASTGCN_DTW", 0.883),
    ("MTGNN_DTW", 0.846),
    ("A3TGCN_kNN", 1.035),
    ("ASTGCN_kNN", 0.893),
    ("MTGNN_kNN", 0.841),
    ("A3TGCN_CORR", 1.027),
    ("ASTGCN_CORR", 0.885),
    ("MTGNN_CORR", 0.840),
    ("A3TGCN_RAND", 1.032),
    ("ASTGCN_RAND", 1.059),
    ("MTGNN_RAND", 0.849),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_mentions_dimensions() {
        let s = ExperimentScale::full();
        let d = describe_scale(&s);
        assert!(d.contains("N=100"));
        assert!(d.contains("V=26"));
        assert!(d.contains("epochs=300"));
    }

    #[test]
    fn paper_references_have_expected_orderings() {
        // MTGNN < ASTGCN < LSTM in the paper for every metric.
        let get = |name: &str| {
            PAPER_TABLE2_SEQ5
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        for metric in ["EUC", "DTW", "kNN", "CORR"] {
            assert!(get(&format!("MTGNN_{metric}")) < get(&format!("ASTGCN_{metric}")));
            assert!(get(&format!("ASTGCN_{metric}")) < get("Baseline LSTM"));
        }
    }
}
