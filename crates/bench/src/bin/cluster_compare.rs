//! Runs the cluster-then-personalize comparison: idiographic vs
//! K-medoids cluster warm-start vs nomothetic training, per model.

use ema_bench::{describe_scale, save_json, scale_from_args};
use ema_core::experiments::{run_cluster_compare, strategies};

fn main() {
    let scale = scale_from_args();
    let threads = ema_bench::threads_from_args();
    let _obs = ema_bench::ObsRun::for_scale("cluster_compare", &scale);
    println!(
        "Cluster-then-personalize comparison ({}, threads={threads})\n",
        describe_scale(&scale)
    );
    for (name, strategy) in strategies(&scale) {
        println!("  {name}: {strategy:?}");
    }
    println!();
    let started = std::time::Instant::now();
    ema_obs::recorder().phase("experiment");
    let table = run_cluster_compare(&scale);
    ema_obs::recorder().phase("report");
    println!("{}", table.render());
    println!("elapsed: {:.1?}\n", started.elapsed());
    println!("shape expectations: Cluster ≈ Idiographic (within noise) at a");
    println!("fraction of the training epochs; Nomothetic worst (no");
    println!("personalization, serves the shared cluster model as-is).");

    if let Some(path) = save_json("cluster_compare", &table.to_json()) {
        println!("run recorded at {}", path.display());
        ema_obs::recorder().annotate("results_json", path.display().to_string().into());
    }
}
