//! `obs_report` — analyze obs run manifests.
//!
//! Usage:
//!   obs_report <run> — render one run's profile/kernel/utilization
//!     report; exits nonzero when the manifest has no span profile
//!     (the CI smoke uses this to catch a silently-dead profiler).
//!   obs_report <base> <candidate> [--tolerance PCT] — diff the two
//!     runs' span profiles and flag call paths whose self time moved
//!     more than PCT (default 15%) beyond the load-normalized scale.
//!
//! A `<run>` argument may be a path to a `.summary.json` file, a path
//! without the suffix, or a bare run stem resolved under the default
//! obs directory (`results/obs/`).

use ema_bench::report::{render_diff, render_report, RunSummary, DEFAULT_DIFF_TOLERANCE};
use ema_obs::{default_obs_dir, Json};
use std::path::PathBuf;
use std::process::ExitCode;

/// Resolves a run argument to an existing `.summary.json` path.
fn resolve(arg: &str) -> Result<PathBuf, String> {
    let direct = PathBuf::from(arg);
    let candidates = [
        direct.clone(),
        PathBuf::from(format!("{arg}.summary.json")),
        default_obs_dir().join(format!("{arg}.summary.json")),
    ];
    for path in &candidates {
        if path.is_file() {
            return Ok(path.clone());
        }
    }
    Err(format!(
        "no summary manifest for '{arg}' (tried {})",
        candidates.iter().map(|p| p.display().to_string()).collect::<Vec<_>>().join(", ")
    ))
}

fn load(arg: &str) -> Result<RunSummary, String> {
    let path = resolve(arg)?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("parse {}: {e:?}", path.display()))?;
    RunSummary::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = DEFAULT_DIFF_TOLERANCE;
    let mut runs: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                let pct = args
                    .get(i + 1)
                    .ok_or("--tolerance needs a percentage")?
                    .parse::<f64>()
                    .map_err(|e| format!("--tolerance: {e}"))?;
                tolerance = pct / 100.0;
                i += 2;
            }
            arg if arg.starts_with("--") => return Err(format!("unknown flag {arg}")),
            arg => {
                runs.push(arg);
                i += 1;
            }
        }
    }
    match runs.as_slice() {
        [single] => {
            let summary = load(single)?;
            print!("{}", render_report(&summary));
            if summary.profile.is_empty() {
                return Err(format!("run '{}' recorded no span profile", summary.name));
            }
            Ok(ExitCode::SUCCESS)
        }
        [base, cand] => {
            let base = load(base)?;
            let cand = load(cand)?;
            let (text, _flagged) = render_diff(&base, &cand, tolerance);
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        _ => Err("usage: obs_report <run> [<candidate-run>] [--tolerance PCT]".to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("obs_report: {msg}");
            ExitCode::FAILURE
        }
    }
}
