//! Runs the ablation suite: MTGNN ingredient knock-outs and trivial
//! baseline calibration (not in the paper; supports DESIGN.md's
//! design-choice analysis).

use ema_bench::{describe_scale, save_json, scale_from_args};
use ema_core::experiments::run_ablation;

fn main() {
    let scale = scale_from_args();
    let threads = ema_bench::threads_from_args();
    let _obs = ema_bench::ObsRun::for_scale("ablation", &scale);
    println!("Ablations ({}, threads={threads})\n", describe_scale(&scale));
    let started = std::time::Instant::now();
    ema_obs::recorder().phase("experiment");
    let table = run_ablation(&scale);
    ema_obs::recorder().phase("report");
    println!("{}", table.render());
    println!("elapsed: {:.1?}\n", started.elapsed());
    println!("reading guide:");
    println!("  ZeroPrediction ≈ 1.0 calibrates the z-normalised scale;");
    println!("  'MTGNN (static only)' isolates the graph-learning module's value;");
    println!("  'MTGNN (learned, no prior)' shows learning from scratch.");

    if let Some(path) = save_json("ablation", &table.to_json()) {
        println!("run recorded at {}", path.display());
        ema_obs::recorder().annotate("results_json", path.display().to_string().into());
    }
}
