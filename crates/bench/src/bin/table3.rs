//! Regenerates Table III (Experiment B): graph construction metric ×
//! graph density threshold, including the random-graph control.

use ema_bench::{describe_scale, save_json, scale_from_args, PAPER_TABLE3_GDT20};
use ema_core::experiments::run_experiment_b;

fn main() {
    let scale = scale_from_args();
    let threads = ema_bench::threads_from_args();
    let _obs = ema_bench::ObsRun::for_scale("table3", &scale);
    println!("Experiment B ({}, threads={threads})\n", describe_scale(&scale));
    let started = std::time::Instant::now();
    ema_obs::recorder().phase("experiment");
    let table = run_experiment_b(&scale);
    ema_obs::recorder().phase("report");
    println!("{}", table.render());
    println!("elapsed: {:.1?}\n", started.elapsed());

    println!("{:<16}{:>12}{:>12}", "row", "paper 20%", "ours 20%");
    println!("{}", "-".repeat(40));
    for (name, paper_value) in PAPER_TABLE3_GDT20 {
        if let Some(cell) = table.cell(name, "GDT = 20%") {
            println!("{name:<16}{paper_value:>12.3}{:>12.3}", cell.mean);
        }
    }
    println!("\nshape expectations: RAND hurts ASTGCN the most and MTGNN the");
    println!("least (graph learning repairs it); distance metrics are close to");
    println!("each other; denser CORR helps ASTGCN/A3TGCN.");

    if let Some(path) = save_json("table3", &table.to_json()) {
        println!("run recorded at {}", path.display());
        ema_obs::recorder().annotate("results_json", path.display().to_string().into());
    }
}
