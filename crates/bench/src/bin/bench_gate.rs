//! Performance regression gate over `Harness` suite JSON.
//!
//! Compares freshly recorded bench suites against committed baselines,
//! matching benchmarks by name and failing (exit code 1) when any
//! median slows down — or any `allocs_per_iter` or `peak_bytes`
//! figure grows — by more than the tolerance.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> [<baseline2> <candidate2> ...] [--tolerance PCT]
//! ```
//!
//! Positional arguments are (baseline, candidate) pairs, so one
//! invocation can gate several suites (e.g. `BENCH_training_epoch.json`
//! and `BENCH_pipeline.json` cohort throughput).
//!
//! The default tolerance is **15%**: generous enough to absorb normal
//! scheduler and cache noise on a busy CI box (medians over a handful
//! of short samples routinely wobble several percent, and the CI run
//! uses fast settings — few samples, short sample windows — that widen
//! the spread further), yet tight enough that a real regression, like
//! an allocation sneaking back into the training hot loop, lands well
//! outside it. Allocation counts are near-deterministic, so the same
//! tolerance is conservative there. Speedups and new benchmarks pass;
//! a benchmark that *disappears* from the candidate fails the gate, so
//! coverage cannot silently shrink.
//!
//! ## Shared-host load normalization
//!
//! On a shared box, external load inflates **every** benchmark's
//! median together — often beyond any reasonable tolerance — while a
//! real code regression is *differential* (the touched path slows
//! down relative to the untouched ones). The timing gate therefore
//! scales each benchmark's allowance by the suite's **least-inflated
//! other benchmark** (leave-one-out minimum ratio, floored at 1 so a
//! fast box never raises the bar): if the calmest sibling ran 1.3×
//! its baseline, the whole run is presumed ≥1.3× loaded and each
//! bench may be up to `1.3 × (1 + tolerance)` over baseline. The
//! scale is capped at [`MAX_LOAD_SCALE`] so a uniform whole-suite
//! regression past the cap still fails, and the allocation gate is
//! never normalized — counts don't care about load.

use ema_obs::Json;
use std::process::ExitCode;

/// Regression tolerance as a fraction (0.15 = +15% is still OK).
const DEFAULT_TOLERANCE: f64 = 0.15;

/// Upper bound on the load-normalization scale: even if every sibling
/// benchmark inflated beyond this, the allowance stops growing, so a
/// genuine uniform slowdown past `MAX_LOAD_SCALE × (1 + tolerance)`
/// always fails.
const MAX_LOAD_SCALE: f64 = 1.5;

/// Per-benchmark gated quantities: the timing median and the
/// allocation count (absent in pre-telemetry suite files).
struct Entry {
    name: String,
    median_ns: f64,
    allocs_per_iter: Option<f64>,
    peak_bytes: Option<f64>,
}

fn entries(suite: &Json, path: &str) -> Vec<Entry> {
    let benches = suite
        .get("benchmarks")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{path}: no 'benchmarks' array"));
    benches
        .iter()
        .map(|b| {
            let name = b
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{path}: benchmark without a name"))
                .to_string();
            let median_ns = b
                .get("median_ns")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{path}: '{name}' has no median_ns"));
            let allocs_per_iter = b.get("allocs_per_iter").and_then(Json::as_f64);
            let peak_bytes = b.get("peak_bytes").and_then(Json::as_f64);
            Entry { name, median_ns, allocs_per_iter, peak_bytes }
        })
        .collect()
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"))
}

/// Gates one candidate suite against its baseline; returns the number
/// of failed benchmarks.
fn gate_suite(baseline_path: &str, candidate_path: &str, tolerance: f64) -> u32 {
    let baseline = entries(&load(baseline_path), baseline_path);
    let candidate = entries(&load(candidate_path), candidate_path);
    println!("-- {candidate_path} vs {baseline_path}");

    // Median ratios of every matched benchmark, in baseline order;
    // missing benchmarks fail below and are excluded here.
    let ratios: Vec<Option<f64>> = baseline
        .iter()
        .map(|base| {
            candidate
                .iter()
                .find(|c| c.name == base.name)
                .map(|c| c.median_ns / base.median_ns)
        })
        .collect();

    let mut failures = 0u32;
    for (base, own_ratio) in baseline.iter().zip(&ratios) {
        let Some(cand) = candidate.iter().find(|c| c.name == base.name) else {
            eprintln!("GATE FAIL {}: present in baseline, missing from candidate", base.name);
            failures += 1;
            continue;
        };
        let ratio = own_ratio.expect("matched benchmark has a ratio");
        // Leave-one-out load scale: the least-inflated *other*
        // benchmark bounds how much of this one's slowdown can be
        // blamed on shared-host load. A lone benchmark gets no
        // normalization (scale 1).
        let scale = ratios
            .iter()
            .zip(&baseline)
            .filter(|(r, b)| r.is_some() && b.name != base.name)
            .map(|(r, _)| r.expect("filtered on Some"))
            .min_by(f64::total_cmp)
            .map_or(1.0, |m| m.clamp(1.0, MAX_LOAD_SCALE));
        let delta_pct = (ratio - 1.0) * 100.0;
        let verdict = if ratio > scale * (1.0 + tolerance) {
            failures += 1;
            "GATE FAIL"
        } else {
            "gate ok  "
        };
        let load_note = if scale > 1.0 {
            format!("  [load scale {scale:.2}]")
        } else {
            String::new()
        };
        println!(
            "{verdict} {}: {:.3} ms -> {:.3} ms ({delta_pct:+.1}%){load_note}",
            base.name,
            base.median_ns / 1e6,
            cand.median_ns / 1e6,
        );
        // Allocation gate: counts are near-deterministic, so growth
        // beyond the tolerance means an allocation crept into a hot
        // loop even if the timing median absorbed it.
        if let (Some(base_allocs), Some(cand_allocs)) = (base.allocs_per_iter, cand.allocs_per_iter)
        {
            if base_allocs > 0.0 && cand_allocs > base_allocs * (1.0 + tolerance) {
                failures += 1;
                eprintln!(
                    "GATE FAIL {}: allocs/iter {} -> {} (+{:.1}%)",
                    base.name,
                    base_allocs,
                    cand_allocs,
                    (cand_allocs / base_allocs - 1.0) * 100.0
                );
            }
        }
        // Peak-heap gate: like allocation counts, the steady-state
        // high-water mark is near-deterministic and load-independent,
        // so it is never normalized. Growth beyond the tolerance means
        // a working-set regression (e.g. a shard holding more than one
        // cohort batch alive at a time).
        if let (Some(base_peak), Some(cand_peak)) = (base.peak_bytes, cand.peak_bytes) {
            if base_peak > 0.0 && cand_peak > base_peak * (1.0 + tolerance) {
                failures += 1;
                eprintln!(
                    "GATE FAIL {}: peak bytes {:.0} -> {:.0} (+{:.1}%)",
                    base.name,
                    base_peak,
                    cand_peak,
                    (cand_peak / base_peak - 1.0) * 100.0
                );
            }
        }
    }
    for cand in &candidate {
        if !baseline.iter().any(|b| b.name == cand.name) {
            println!("gate ok   {}: new benchmark (no baseline)", cand.name);
        }
    }
    failures
}

fn main() -> ExitCode {
    const USAGE: &str =
        "usage: bench_gate <baseline.json> <candidate.json> [<baseline2> <candidate2> ...] [--tolerance PCT]";
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let pct: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a percentage, e.g. --tolerance 15");
                tolerance = pct / 100.0;
            }
            _ => paths.push(arg),
        }
    }
    assert!(!paths.is_empty() && paths.len().is_multiple_of(2), "{USAGE}");

    let mut failures = 0u32;
    for pair in paths.chunks(2) {
        failures += gate_suite(&pair[0], &pair[1], tolerance);
    }

    if failures > 0 {
        eprintln!(
            "bench gate: {failures} check(s) regressed beyond {:.0}% tolerance",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench gate: all medians (load-normalized), allocation counts and peak bytes within {:.0}% of baseline",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    }
}
